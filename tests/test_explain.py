"""Unit tests for Armstrong explanations and cover diffs."""

from __future__ import annotations

import pytest

from repro.core.attributes import Schema
from repro.core.depminer import DepMiner
from repro.errors import ReproError
from repro.explain import diff_covers, explain_armstrong
from repro.fd.fd import parse_fd


class TestExplainArmstrong:
    def test_paper_example(self, paper_relation):
        result = DepMiner().run(paper_relation)
        explanations = explain_armstrong(result)
        assert len(explanations) == len(result.armstrong)
        assert explanations[0].witnessed_max_set == \
            paper_relation.schema.universe()
        # The row for max set A must refute A -> B, C, D, E.
        row_a = next(
            e for e in explanations
            if e.witnessed_max_set.compact() == "A"
        )
        assert "A -/-> B" in row_a.demonstrates
        assert "A -/-> E" in row_a.demonstrates
        assert len(row_a.demonstrates) == 4

    def test_witnesses_actually_agree_exactly(self, paper_relation):
        result = DepMiner().run(paper_relation)
        armstrong = result.armstrong
        for explanation in explain_armstrong(result)[1:]:
            agreed = armstrong.agree_set_of_pair(0, explanation.row_index)
            assert agreed == explanation.witnessed_max_set

    def test_falls_back_to_classical(self, paper_relation):
        result = DepMiner(build_armstrong="classical").run(paper_relation)
        explanations = explain_armstrong(result)
        assert len(explanations) == len(result.classical_armstrong)

    def test_requires_some_armstrong(self, paper_relation):
        result = DepMiner(build_armstrong="none").run(paper_relation)
        with pytest.raises(ReproError, match="no Armstrong"):
            explain_armstrong(result)

    def test_render(self, paper_relation):
        result = DepMiner().run(paper_relation)
        text = explain_armstrong(result)[1].render()
        assert text.startswith("row 1:")
        assert "agrees with row 0" in text


class TestDiffCovers:
    @pytest.fixture
    def schema(self):
        return Schema.of_width(4)

    def test_identical(self, schema):
        fds = [parse_fd(schema, "A -> B")]
        diff = diff_covers(fds, list(fds))
        assert diff.is_equivalent
        assert diff.render() == "covers are identical"

    def test_added_and_removed(self, schema):
        old = [parse_fd(schema, "A -> B")]
        new = [parse_fd(schema, "C -> D")]
        diff = diff_covers(old, new)
        assert [str(fd) for fd in diff.added] == ["C -> D"]
        assert [str(fd) for fd in diff.removed] == ["A -> B"]
        assert not diff.is_equivalent

    def test_reformulated_not_counted_as_added(self, schema):
        old = [parse_fd(schema, "A -> B"), parse_fd(schema, "B -> C")]
        new = [
            parse_fd(schema, "A -> B"),
            parse_fd(schema, "B -> C"),
            parse_fd(schema, "A -> C"),  # implied by the old cover
        ]
        diff = diff_covers(old, new)
        assert [str(fd) for fd in diff.reformulated] == ["A -> C"]
        assert not diff.added
        assert diff.is_equivalent

    def test_removed_but_still_implied_is_silent(self, schema):
        old = [
            parse_fd(schema, "A -> B"),
            parse_fd(schema, "B -> C"),
            parse_fd(schema, "A -> C"),
        ]
        new = [parse_fd(schema, "A -> B"), parse_fd(schema, "B -> C")]
        diff = diff_covers(old, new)
        assert not diff.removed
        assert diff.is_equivalent

    def test_schema_mismatch(self, schema):
        other = Schema(["w", "x", "y", "z"])
        with pytest.raises(ReproError, match="different schemas"):
            diff_covers(
                [parse_fd(schema, "A -> B")], [parse_fd(other, "w -> x")]
            )

    def test_drift_workflow_through_json(self, paper_relation):
        """Serialize -> reload -> mutate the data -> diff."""
        from repro.core.depminer import discover_fds
        from repro.core.relation import Relation
        from repro.serialize import fds_from_json, fds_to_json

        old_fds = fds_from_json(fds_to_json(discover_fds(paper_relation)))
        mutated = Relation.from_rows(
            paper_relation.schema,
            list(paper_relation.rows()) + [(7, 1, 85, "Biochemistry", 9)],
        )
        new_fds = discover_fds(mutated)
        diff = diff_covers(old_fds, new_fds)
        # The new row breaks B -> E (depnum 1 now maps to mgr 5 and 9).
        assert any(str(fd) == "B -> E" for fd in diff.removed)

    def test_render_lists_changes(self, schema):
        old = [parse_fd(schema, "A -> B")]
        new = [parse_fd(schema, "C -> D")]
        text = diff_covers(old, new).render()
        assert "added" in text and "removed" in text