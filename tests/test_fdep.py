"""Unit tests for the FDEP baseline."""

from __future__ import annotations

import random

import pytest

from repro.core.attributes import Schema
from repro.core.depminer import DepMiner, discover_fds
from repro.core.relation import Relation
from repro.fd.bruteforce import bruteforce_minimal_fds
from repro.fdep import Fdep, specialize_hypotheses


class TestSpecialization:
    def test_untouched_when_no_hypothesis_refuted(self):
        # witness 0b001; hypothesis {B} (0b010) escapes it already.
        assert specialize_hypotheses(0b001, [0b010], 0b111, 0b100) == [0b010]

    def test_refuted_empty_hypothesis_extends(self):
        # ∅ is refuted by any witness; extensions avoid witness and rhs.
        result = specialize_hypotheses(0b001, [0], 0b1111, 0b1000)
        assert result == [0b010, 0b100]

    def test_minimization_after_extension(self):
        # {A} survives; refuted ∅ would extend to {B}, {C}; witness 0b001
        # refutes subsets of {A}... set up: witness = {A} (0b001),
        # hypotheses = [∅, {B}]: ∅ refuted, {B} survives; extensions of ∅
        # are {B}, {C} -> {B} kept once, {C} incomparable.
        result = specialize_hypotheses(0b001, [0, 0b010], 0b111, 0b100)
        assert result == [0b010]

    def test_dead_end_when_no_escape(self):
        # universe = witness ∪ rhs: nothing can escape.
        assert specialize_hypotheses(0b01, [0], 0b11, 0b10) == []


class TestFdep:
    def test_paper_example(self, paper_relation):
        result = Fdep().run(paper_relation)
        assert result.fds == discover_fds(paper_relation)
        assert result.num_rows == 7

    def test_negative_cover_is_the_maximal_sets(self, paper_relation):
        fdep = Fdep().run(paper_relation)
        depminer = DepMiner().run(paper_relation)
        assert {a: sorted(m) for a, m in fdep.negative_cover.items()} == \
            {a: sorted(m) for a, m in depminer.max_sets.items()}

    def test_lhs_families_exclude_the_trivial_singleton(self, paper_relation):
        result = Fdep().run(paper_relation)
        for attribute, masks in result.lhs_sets.items():
            assert all(not mask & (1 << attribute) for mask in masks)

    @pytest.mark.parametrize("seed", range(15))
    def test_matches_brute_force_on_random_relations(self, seed):
        rng = random.Random(seed)
        width = rng.randint(1, 5)
        schema = Schema.of_width(width)
        relation = Relation.from_rows(
            schema,
            [
                tuple(rng.randint(0, 2) for _ in range(width))
                for _ in range(rng.randint(0, 14))
            ],
        )
        assert Fdep().run(relation).fds == bruteforce_minimal_fds(relation)

    def test_constant_column(self):
        schema = Schema.of_width(2)
        relation = Relation.from_rows(schema, [(1, 9), (2, 9)])
        fds = {str(fd) for fd in Fdep().run(relation).fds}
        assert "∅ -> B" in fds

    def test_empty_relation(self):
        schema = Schema.of_width(2)
        relation = Relation.from_rows(schema, [])
        fds = {str(fd) for fd in Fdep().run(relation).fds}
        assert fds == {"∅ -> A", "∅ -> B"}

    def test_null_semantics_forwarded(self):
        schema = Schema.of_width(2)
        relation = Relation.from_rows(schema, [(None, 1), (None, 2)])
        default = {str(fd) for fd in Fdep().run(relation).fds}
        sql = {str(fd) for fd in Fdep(nulls_equal=False).run(relation).fds}
        assert default != sql

    def test_phase_timings(self, paper_relation):
        result = Fdep().run(paper_relation)
        assert set(result.phase_seconds) == {
            "strip", "negative_cover", "specialize",
        }
        assert result.total_seconds >= 0
