"""Unit tests for the benchmark harness and reports."""

from __future__ import annotations

import pytest

from repro.bench.harness import (
    ALGORITHM_NAMES,
    CellResult,
    GridResult,
    run_algorithm,
    run_cell,
    run_grid,
)
from repro.bench.report import (
    armstrong_table,
    ascii_figure,
    speedup_table,
    times_table,
)
from repro.datagen.synthetic import SyntheticSpec, generate_relation
from repro.datagen.workloads import WorkloadGrid
from repro.errors import BenchmarkError


@pytest.fixture
def tiny_grid():
    return WorkloadGrid(
        name="test",
        correlation=0.5,
        attribute_counts=(3, 4),
        tuple_counts=(30, 60),
    )


@pytest.fixture
def grid_result(tiny_grid):
    return run_grid(tiny_grid, algorithms=("depminer", "tane"))


class TestRunAlgorithm:
    def test_all_known_algorithms_agree_on_fd_count(self):
        relation = generate_relation(4, 50, correlation=0.5, seed=7)
        counts = set()
        for name in ALGORITHM_NAMES:
            _seconds, num_fds, _size = run_algorithm(name, relation)
            counts.add(num_fds)
        assert len(counts) == 1

    def test_unknown_algorithm(self):
        relation = generate_relation(2, 5)
        with pytest.raises(BenchmarkError, match="unknown algorithm"):
            run_algorithm("quantum", relation)

    def test_armstrong_sizes_agree_between_miners(self):
        relation = generate_relation(4, 80, correlation=0.3, seed=1)
        sizes = {
            run_algorithm(name, relation)[2] for name in ALGORITHM_NAMES
        }
        assert len(sizes) == 1


class TestRunCell:
    def test_in_process(self):
        spec = SyntheticSpec(3, 40, correlation=0.5, seed=0)
        cell = run_cell(spec, "depminer")
        assert cell.algorithm == "depminer"
        assert cell.seconds >= 0
        assert not cell.timed_out
        assert cell.display_time != "*"

    def test_soft_timeout_flag(self):
        spec = SyntheticSpec(3, 40, correlation=0.5, seed=0)
        cell = run_cell(spec, "depminer", timeout=0.0)
        assert cell.timed_out
        assert cell.display_time == "*"

    def test_isolated_run_completes(self):
        spec = SyntheticSpec(3, 30, correlation=0.5, seed=0)
        cell = run_cell(spec, "depminer", timeout=60.0, isolated=True)
        assert not cell.timed_out
        assert cell.num_fds >= 0

    def test_isolated_run_times_out(self):
        spec = SyntheticSpec(8, 4000, correlation=0.3, seed=0)
        cell = run_cell(spec, "tane", timeout=0.01, isolated=True)
        assert cell.timed_out
        assert cell.display_time == "*"


class TestCellTraces:
    def test_run_cell_attaches_a_span_tree(self):
        from repro.obs import MetricsRegistry, Tracer

        spec = SyntheticSpec(3, 40, correlation=0.5, seed=0)
        tracer = Tracer()
        metrics = MetricsRegistry()
        cell = run_cell(spec, "depminer", tracer=tracer, metrics=metrics)
        assert cell.trace is not None
        names = [span.name for span in cell.trace]
        assert names.count("bench.cell") == 1
        assert "agree_sets" in names
        assert metrics.snapshot()["gauges"]["fd.count"] == cell.num_fds

    def test_untraced_cell_has_no_trace(self):
        spec = SyntheticSpec(3, 40, correlation=0.5, seed=0)
        assert run_cell(spec, "depminer").trace is None

    def test_run_grid_slices_one_trace_per_cell(self, tiny_grid):
        from repro.obs import Tracer

        tracer = Tracer()
        result = run_grid(
            tiny_grid, algorithms=("depminer", "tane"), tracer=tracer
        )
        for cell in result.cells:
            roots = [
                span for span in cell.trace if span.name == "bench.cell"
            ]
            assert len(roots) == 1
            assert roots[0].attrs["algorithm"] == cell.algorithm
            assert roots[0].attrs["rows"] == cell.spec.num_tuples


class TestRunGrid:
    def test_covers_every_cell_and_algorithm(self, tiny_grid, grid_result):
        expected = (
            len(tiny_grid.attribute_counts)
            * len(tiny_grid.tuple_counts)
            * 2
        )
        assert len(grid_result.cells) == expected

    def test_rejects_unknown_algorithm(self, tiny_grid):
        with pytest.raises(BenchmarkError):
            run_grid(tiny_grid, algorithms=("nope",))

    def test_progress_callback(self, tiny_grid):
        lines = []
        run_grid(
            tiny_grid, algorithms=("depminer",), progress=lines.append
        )
        assert len(lines) == 4
        assert "Dep-Miner" in lines[0]

    def test_cell_lookup(self, grid_result):
        cell = grid_result.cell(3, 30, "depminer")
        assert isinstance(cell, CellResult)
        assert grid_result.cell(99, 30, "depminer") is None

    def test_time_series(self, grid_result, tiny_grid):
        series = grid_result.time_series(3, "tane")
        assert [x for x, _y in series] == list(tiny_grid.tuple_counts)
        assert all(y is not None for _x, y in series)

    def test_armstrong_series(self, grid_result, tiny_grid):
        series = grid_result.armstrong_series(4)
        assert len(series) == len(tiny_grid.tuple_counts)
        assert all(size is not None and size >= 1 for _x, size in series)


class TestToDict:
    def test_document_round_trips_through_json(self, grid_result):
        import json

        document = json.loads(json.dumps(grid_result.to_dict()))
        assert document["grid"]["correlation"] == 0.5
        assert set(document["algorithms"]) == {"depminer", "tane"}
        assert len(document["cells"]) == len(grid_result.cells)
        cell = document["cells"][0]
        assert {"attrs", "rows", "algorithm", "seconds", "num_fds",
                "armstrong_size", "timed_out"} <= set(cell)


class TestReports:
    def test_times_table_layout(self, grid_result):
        text = times_table(grid_result)
        assert "Dep-Miner" in text
        assert "TANE" in text
        assert "|r|" in text
        assert "c = 50%" in text

    def test_armstrong_table_layout(self, grid_result):
        text = armstrong_table(grid_result)
        assert "Armstrong" in text
        assert "30" in text and "60" in text

    def test_speedup_table(self, grid_result):
        text = speedup_table(grid_result)
        assert "Speedup" in text
        assert "x" in text

    def test_ascii_figure_renders_points(self):
        series = {
            "one": [(10, 1.0), (20, 2.0)],
            "two": [(10, 2.0), (20, None)],
        }
        text = ascii_figure(series, title="demo")
        assert text.startswith("demo")
        assert "o = one" in text
        assert "+ = two" in text

    def test_ascii_figure_empty(self):
        assert "no data" in ascii_figure({"a": [(1, None)]}, title="t")

    def test_ascii_figure_flat_series(self):
        text = ascii_figure({"flat": [(1, 5.0), (2, 5.0)]}, title="flat")
        assert "flat" in text
