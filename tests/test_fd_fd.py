"""Unit tests for FD objects and parsing."""

from __future__ import annotations

import pytest

from repro.core.attributes import Schema
from repro.errors import ReproError
from repro.fd.fd import FD, fds_to_text, parse_fd, sort_fds


@pytest.fixture
def schema():
    return Schema.of_width(4)


class TestFD:
    def test_basic_accessors(self, schema):
        fd = FD(schema.attribute_set(["B", "C"]), "A")
        assert fd.rhs == "A"
        assert fd.rhs_index == 0
        assert fd.rhs_mask == 0b1
        assert fd.lhs.names == ("B", "C")
        assert str(fd) == "BC -> A"

    def test_rhs_by_index(self, schema):
        fd = FD(schema.attribute_set(["A"]), 3)
        assert fd.rhs == "D"

    def test_rejects_unknown_rhs(self, schema):
        with pytest.raises(Exception):
            FD(schema.attribute_set(["A"]), "Z")
        with pytest.raises(Exception):
            FD(schema.attribute_set(["A"]), 9)

    def test_trivial(self, schema):
        assert FD(schema.attribute_set(["A", "B"]), "A").is_trivial()
        assert not FD(schema.attribute_set(["B"]), "A").is_trivial()

    def test_attributes_union(self, schema):
        fd = FD(schema.attribute_set(["B"]), "A")
        assert fd.attributes().names == ("A", "B")

    def test_holds_in(self, schema, paper_relation):
        paper_schema = paper_relation.schema
        holds = FD(paper_schema.attribute_set(["D"]), "B")
        fails = FD(paper_schema.attribute_set(["A"]), "B")
        assert holds.holds_in(paper_relation)
        assert not fails.holds_in(paper_relation)

    def test_equality_and_hash(self, schema):
        first = FD(schema.attribute_set(["B"]), "A")
        second = FD(schema.attribute_set("B"), 0)
        assert first == second
        assert len({first, second}) == 1
        assert first != FD(schema.attribute_set(["B"]), "C")

    def test_empty_lhs_rendering(self, schema):
        assert str(FD(schema.empty(), "A")) == "∅ -> A"


class TestParse:
    def test_compact_form(self, schema):
        assert str(parse_fd(schema, "BC -> A")) == "BC -> A"

    def test_comma_form(self, schema):
        assert str(parse_fd(schema, "B,C->A")) == "BC -> A"

    def test_space_form(self, schema):
        assert str(parse_fd(schema, "B C -> A")) == "BC -> A"

    def test_empty_lhs_forms(self, schema):
        for text in ("-> A", "{} -> A", "∅ -> A"):
            assert parse_fd(schema, text).lhs.is_empty()

    def test_multicharacter_names(self):
        schema = Schema(["left", "right", "value"])
        fd = parse_fd(schema, "left,right -> value")
        assert fd.lhs.names == ("left", "right")

    def test_single_multicharacter_lhs(self):
        schema = Schema(["left", "right"])
        assert parse_fd(schema, "left -> right").lhs.names == ("left",)

    def test_rejects_missing_arrow(self, schema):
        with pytest.raises(ReproError, match="->"):
            parse_fd(schema, "A B")

    def test_rejects_unknown_rhs(self, schema):
        with pytest.raises(ReproError, match="unknown rhs"):
            parse_fd(schema, "A -> Z")

    def test_rejects_unknown_lhs(self, schema):
        with pytest.raises(ReproError, match="unknown attribute"):
            parse_fd(schema, "AZ -> B")


class TestOrderingAndText:
    def test_sort_is_deterministic(self, schema):
        fds = [
            FD(schema.attribute_set(["B", "C"]), "A"),
            FD(schema.attribute_set(["B"]), "A"),
            FD(schema.attribute_set(["A"]), "B"),
        ]
        ordered = sort_fds(reversed(fds))
        assert [str(fd) for fd in ordered] == [
            "B -> A", "BC -> A", "A -> B",
        ]

    def test_fds_to_text(self, schema):
        fds = [FD(schema.attribute_set(["A"]), "B")]
        assert fds_to_text(fds) == "A -> B"
