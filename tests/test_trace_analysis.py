"""Tests for :mod:`repro.obs.analyze` and the ``repro trace`` CLI."""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs import (
    MetricsRegistry,
    RunManifest,
    Tracer,
    aggregate_phases,
    chrome_trace_events,
    critical_path,
    diff_traces,
    export_chrome_trace,
    export_jsonl,
    load_trace,
    render_diff,
    render_summary,
    summarize_trace,
)

SCRIPTS = Path(__file__).resolve().parent.parent / "scripts"


def miner_like_tracer(slow: float = 0.0) -> Tracer:
    tracer = Tracer()
    with tracer.span("depminer.run"):
        with tracer.span("strip", phase=True):
            pass
        with tracer.span("agree_sets", phase=True):
            time.sleep(0.002)
        with tracer.span("lhs", phase=True):
            if slow:
                time.sleep(slow)
            with tracer.span("attribute"):
                pass
    return tracer


@pytest.fixture
def trace_file(tmp_path):
    tracer = miner_like_tracer()
    path = tmp_path / "run.jsonl"
    export_jsonl(str(path), tracer, MetricsRegistry(),
                 meta={"command": "discover"})
    return path


@pytest.fixture
def manifest_file(tmp_path):
    manifest = RunManifest.build("discover", tracer=miner_like_tracer())
    path = tmp_path / "manifest.json"
    manifest.write(path)
    return path


class TestLoadTrace:
    def test_detects_jsonl(self, trace_file):
        loaded = load_trace(trace_file)
        assert loaded["kind"] == "trace"
        assert len(loaded["spans"]) == 5

    def test_detects_manifest(self, manifest_file):
        loaded = load_trace(manifest_file)
        assert loaded["kind"] == "manifest"
        assert loaded["phases"]

    def test_rejects_garbage(self, tmp_path):
        path = tmp_path / "nope.json"
        path.write_text("not json at all\n")
        with pytest.raises(ValueError):
            load_trace(path)


class TestSummarize:
    def test_phases_and_totals(self, trace_file):
        summary = summarize_trace(load_trace(trace_file))
        assert summary["span_count"] == 5
        assert summary["error_count"] == 0
        assert summary["total_seconds"] > 0
        assert set(summary["phases"]) == {"strip", "agree_sets", "lhs"}
        rendered = render_summary(summary)
        assert "agree_sets" in rendered
        assert "%" in rendered

    def test_critical_path_descends_largest_child(self, trace_file):
        rows = critical_path(load_trace(trace_file))
        assert rows[0]["name"] == "depminer.run"
        assert rows[1]["name"] == "agree_sets"
        assert rows[0]["share"] == pytest.approx(1.0)

    def test_manifest_and_trace_agree(self, tmp_path):
        tracer = miner_like_tracer()
        jsonl = tmp_path / "t.jsonl"
        export_jsonl(str(jsonl), tracer, MetricsRegistry(),
                     meta={"command": "discover"})
        manifest = tmp_path / "m.json"
        RunManifest.build("discover", tracer=tracer).write(manifest)
        one = summarize_trace(load_trace(jsonl))
        two = summarize_trace(load_trace(manifest))
        assert one["phases"] == pytest.approx(two["phases"])


class TestAggregateAndDiff:
    def test_aggregate_phases(self):
        runs = [{"strip": 1.0, "lhs": 3.0}, {"strip": 2.0, "lhs": 5.0}]
        agg = aggregate_phases(runs)
        assert agg["strip"]["count"] == 2
        assert agg["strip"]["mean"] == pytest.approx(1.5)
        assert agg["lhs"]["max"] == 5.0

    def test_diff_flags_the_grown_phase(self, tmp_path):
        fast = tmp_path / "fast.jsonl"
        slow = tmp_path / "slow.jsonl"
        export_jsonl(str(fast), miner_like_tracer(), MetricsRegistry(),
                     meta={"command": "discover"})
        export_jsonl(str(slow), miner_like_tracer(slow=0.05),
                     MetricsRegistry(), meta={"command": "discover"})
        diff = diff_traces(load_trace(fast), load_trace(slow))
        lhs_row = next(r for r in diff["phases"] if r["phase"] == "lhs")
        assert lhs_row["ratio"] > 5
        assert diff["total"]["ratio"] > 1
        table = render_diff(diff)
        assert "lhs" in table
        assert "|" in table


class TestChromeExport:
    def test_events_are_complete_and_microsecond(self, trace_file):
        events = chrome_trace_events(load_trace(trace_file))
        assert len(events) == 5
        assert all(e["ph"] == "X" for e in events)
        root = next(e for e in events if e["name"] == "depminer.run")
        assert root["ts"] == 0
        assert root["dur"] > 0
        phase_event = next(e for e in events if e["name"] == "agree_sets")
        assert phase_event["cat"] == "phase"

    def test_export_loads_as_json(self, manifest_file, tmp_path):
        out = tmp_path / "chrome.json"
        export_chrome_trace(out, load_trace(manifest_file))
        document = json.loads(out.read_text())
        assert document["traceEvents"]

    def test_error_span_is_highlighted(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("run"):
                raise RuntimeError("x")
        events = chrome_trace_events(
            {"kind": "trace", "meta": {},
             "spans": [s.to_record() for s in tracer.iter_tree()],
             "metrics": [], "phases": {}}
        )
        assert events[0]["args"]["error"]


class TestTraceCli:
    def test_summary_text_and_json(self, trace_file, capsys):
        assert main(["trace", "summary", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "phases:" in out
        assert "agree_sets" in out
        assert main(["trace", "summary", str(trace_file), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["span_count"] == 5

    def test_critical_path(self, manifest_file, capsys):
        assert main(["trace", "critical-path", str(manifest_file)]) == 0
        assert "depminer.run" in capsys.readouterr().out

    def test_diff(self, trace_file, manifest_file, capsys):
        assert main(["trace", "diff", str(trace_file),
                     str(manifest_file)]) == 0
        out = capsys.readouterr().out
        assert "phase" in out

    def test_export_chrome(self, trace_file, tmp_path, capsys):
        out_path = tmp_path / "chrome.json"
        assert main(["trace", "export-chrome", str(trace_file),
                     "-o", str(out_path)]) == 0
        assert json.loads(out_path.read_text())["traceEvents"]

    def test_missing_file_is_a_clean_error(self, tmp_path, capsys):
        rc = main(["trace", "summary", str(tmp_path / "absent.json")])
        assert rc != 0


class TestTelemetryCli:
    @pytest.fixture
    def csv(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text(
            "a,b,c\n" + "\n".join(
                f"{i % 3},{i % 2},{i}" for i in range(30)
            ) + "\n"
        )
        return path

    def test_discover_telemetry_writes_a_valid_manifest(self, csv,
                                                        tmp_path, capsys):
        from repro.obs import validate_manifest

        out = tmp_path / "run.json"
        assert main(["discover", str(csv), "--telemetry", str(out)]) == 0
        document = json.loads(out.read_text())
        assert validate_manifest(document) == []
        assert document["command"] == "discover"
        assert document["phases"]
        assert document["relation"]["rows"] == 30
        assert document["relation"]["fingerprint"]
        assert document["resources"]["samples"] >= 2

    def test_telemetry_directory_default_naming(self, csv, tmp_path,
                                                monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["discover", str(csv), "--telemetry"]) == 0
        written = list((tmp_path / "results" / "telemetry").glob(
            "discover-*.json"))
        assert len(written) == 1

    def test_manifest_feeds_trace_summary(self, csv, tmp_path, capsys):
        out = tmp_path / "run.json"
        assert main(["discover", str(csv), "--telemetry", str(out)]) == 0
        capsys.readouterr()
        assert main(["trace", "summary", str(out)]) == 0
        assert "phases:" in capsys.readouterr().out


class TestCheckTraceScript:
    @pytest.fixture
    def check_trace(self):
        sys.path.insert(0, str(SCRIPTS))
        try:
            import check_trace

            yield check_trace
        finally:
            sys.path.remove(str(SCRIPTS))

    def test_clean_trace_passes(self, check_trace, trace_file):
        assert check_trace.check_file(trace_file) == []

    def test_unclosed_and_misparented_spans_are_flagged(self, check_trace,
                                                        trace_file,
                                                        tmp_path):
        records = [json.loads(line)
                   for line in trace_file.read_text().splitlines()]
        for record in records:
            if record.get("name") == "strip":
                record["end"] = None
            if record.get("name") == "lhs":
                record["depth"] = 7
        bad = tmp_path / "bad.jsonl"
        bad.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        problems = check_trace.check_file(bad)
        assert any("never closed" in p for p in problems)
        assert any("depth" in p for p in problems)

    def test_child_escaping_parent_window_is_flagged(self, check_trace,
                                                     trace_file, tmp_path):
        records = [json.loads(line)
                   for line in trace_file.read_text().splitlines()]
        for record in records:
            if record.get("name") == "agree_sets":
                record["end"] = record["end"] + 10.0
        bad = tmp_path / "late.jsonl"
        bad.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        problems = check_trace.check_file(bad)
        assert any("ends after its parent" in p for p in problems)
