"""Unit tests for the TANE→Armstrong extension (section 5.1)."""

from __future__ import annotations

import pytest

from repro.core.attributes import Schema
from repro.core.depminer import DepMiner
from repro.core.relation import Relation
from repro.tane.armstrong_ext import cmax_from_lhs, tane_with_armstrong


class TestCmaxFromLhs:
    def test_recovers_cmax_via_transversals(self, paper_relation):
        depminer = DepMiner().run(paper_relation)
        recovered = cmax_from_lhs(
            depminer.lhs_sets, len(paper_relation.schema)
        )
        expected = {a: sorted(m) for a, m in depminer.cmax_sets.items()}
        assert {a: sorted(m) for a, m in recovered.items()} == expected

    def test_constant_column_maps_to_no_edges(self):
        assert cmax_from_lhs({0: [0]}, 2) == {0: []}

    def test_berge_method(self, paper_relation):
        depminer = DepMiner().run(paper_relation)
        recovered = cmax_from_lhs(
            depminer.lhs_sets, len(paper_relation.schema), method="berge"
        )
        assert {a: sorted(m) for a, m in recovered.items()} == \
            {a: sorted(m) for a, m in depminer.cmax_sets.items()}


class TestTaneWithArmstrong:
    def test_matches_depminer_end_to_end(self, paper_relation):
        tane = tane_with_armstrong(paper_relation)
        depminer = DepMiner().run(paper_relation)
        assert tane.fds == depminer.fds
        assert tane.max_union == depminer.max_union
        assert {a: sorted(m) for a, m in tane.max_sets.items()} == \
            {a: sorted(m) for a, m in depminer.max_sets.items()}
        assert len(tane.armstrong) == len(depminer.armstrong)

    def test_armstrong_none_when_not_existing(self):
        schema = Schema.of_width(3)
        relation = Relation.from_rows(
            schema, [(0, 0, 0), (1, 0, 1), (1, 1, 0)]
        )
        result = tane_with_armstrong(relation)
        assert result.armstrong is None
        assert result.classical_armstrong is not None

    def test_total_seconds_includes_extension(self, paper_relation):
        result = tane_with_armstrong(paper_relation)
        assert result.total_seconds >= result.tane_result.total_seconds
        assert result.extension_seconds >= 0

    def test_armstrong_values_from_initial_relation(self, paper_relation):
        result = tane_with_armstrong(paper_relation)
        for name in paper_relation.schema.names:
            assert set(result.armstrong.column(name)) <= set(
                paper_relation.column(name)
            )
