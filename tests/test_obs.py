"""Tests for the ``repro.obs`` observability package.

Covers the tracer (nesting, error paths, disabled mode), the metrics
registry, the JSONL exporters (round-trip + schema validation), the
progress callbacks (including abort), and the end-to-end counters a full
:class:`~repro.core.depminer.DepMiner` run produces on the paper's
worked example.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.attributes import Schema
from repro.core.depminer import DepMiner
from repro.core.relation import Relation
from repro.errors import ArmstrongExistenceError
from repro.fdep import Fdep
from repro.obs import (
    NULL_METRICS,
    NULL_TRACER,
    MetricsRegistry,
    ProgressAborted,
    Tracer,
    dumps_jsonl,
    emit_progress,
    flame_text,
    parse_jsonl,
    spans_markdown,
    trace_records,
    validate_records,
)
from repro.obs.tracer import _NULL_SPAN
from repro.tane.tane import Tane


class TestSpanBasics:
    def test_nesting_assigns_parent_and_depth(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.depth == 0 and outer.parent_id is None
        assert inner.depth == 1 and inner.parent_id == outer.span_id
        # Children finish first, but iter_tree restores parent-first order.
        assert [s.name for s in tracer.iter_tree()] == ["outer", "inner"]

    def test_duration_and_status(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            pass
        assert span.finished
        assert span.status == "ok" and span.error is None
        assert span.duration >= 0

    def test_error_spans_keep_their_duration(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("broken")
        (span,) = tracer.finished_spans()
        assert span.status == "error"
        assert "ValueError: broken" in span.error
        assert span.finished and span.duration >= 0

    def test_attrs_are_recorded(self):
        tracer = Tracer()
        with tracer.span("phase1", phase=True, width=5) as span:
            pass
        assert span.attrs == {"phase": True, "width": 5}

    def test_wrap_decorator(self):
        tracer = Tracer()

        @tracer.wrap("wrapped", kind="test")
        def add(a, b):
            return a + b

        assert add(2, 3) == 5
        (span,) = tracer.find("wrapped")
        assert span.attrs == {"kind": "test"}

    def test_mark_slices_a_shared_tracer(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        mark = tracer.mark()
        with tracer.span("second"):
            pass
        assert [s.name for s in tracer.finished_spans(mark)] == ["second"]
        assert len(tracer.finished_spans()) == 2

    def test_phase_seconds_selects_flagged_spans(self):
        tracer = Tracer()
        with tracer.span("setup"):
            pass
        with tracer.span("solve", phase=True) as solve:
            pass
        seconds = tracer.phase_seconds()
        assert set(seconds) == {"solve"}
        assert seconds["solve"] == solve.duration

    def test_threads_share_one_tracer(self):
        tracer = Tracer()

        def work(name):
            with tracer.span(name):
                with tracer.span(f"{name}.child"):
                    pass

        threads = [
            threading.Thread(target=work, args=(f"t{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        spans = tracer.finished_spans()
        assert len(spans) == 8
        roots = [s for s in spans if s.parent_id is None]
        assert len(roots) == 4  # each thread's stack is its own

    def test_memory_tracing_records_a_delta(self):
        tracer = Tracer(trace_memory=True)
        try:
            with tracer.span("alloc") as span:
                blob = [0] * 50_000
            assert span.memory_delta is not None
            del blob
        finally:
            tracer.close()


class TestDisabledMode:
    def test_null_tracer_allocates_nothing(self):
        assert NULL_TRACER.span("anything") is _NULL_SPAN
        assert NULL_TRACER.span("other", attr=1) is _NULL_SPAN
        with NULL_TRACER.span("x") as span:
            assert span is _NULL_SPAN
        assert NULL_TRACER.finished_spans() == []

    def test_null_span_does_not_swallow_exceptions(self):
        with pytest.raises(RuntimeError):
            with NULL_TRACER.span("x"):
                raise RuntimeError("propagates")

    def test_null_metrics_ignores_updates(self):
        NULL_METRICS.inc("c")
        NULL_METRICS.gauge("g", 3)
        NULL_METRICS.observe("h", 1.5)
        assert NULL_METRICS.names() == []


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        metrics = MetricsRegistry()
        metrics.inc("couples", 5)
        metrics.inc("couples")
        metrics.gauge("classes", 7)
        metrics.gauge("classes", 9)
        metrics.observe("level", 2)
        metrics.observe("level", 6)
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["couples"] == 6
        assert snapshot["gauges"]["classes"] == 9
        histogram = snapshot["histograms"]["level"]
        assert histogram["count"] == 2
        assert histogram["min"] == 2 and histogram["max"] == 6
        assert histogram["mean"] == 4.0

    def test_to_records_and_markdown(self):
        metrics = MetricsRegistry()
        metrics.inc("a.count", 3)
        metrics.gauge("b.size", 10)
        metrics.observe("c.dist", 1)
        records = metrics.to_records()
        assert [r["kind"] for r in records] == [
            "counter", "gauge", "histogram",
        ]
        table = metrics.to_markdown()
        assert "| a.count | counter | 3 |" in table
        assert "count=1" in table

    def test_clear(self):
        metrics = MetricsRegistry()
        metrics.inc("x")
        metrics.clear()
        assert metrics.names() == []


class TestDepMinerInstrumentation:
    def test_paper_example_metrics(self, paper_relation):
        metrics = MetricsRegistry()
        result = DepMiner(metrics=metrics).run(paper_relation)
        snapshot = metrics.snapshot()
        # Lemma 1: only couples within maximal classes are enumerated.
        assert snapshot["counters"]["agree.couples_enumerated"] == 6
        assert snapshot["gauges"]["agree.sets"] == 5
        assert snapshot["gauges"]["agree.maximal_classes"] == 4
        assert snapshot["gauges"]["fd.count"] == len(result.fds) == 14
        assert snapshot["gauges"]["partition.rows"] == 7
        assert "transversal.level_size" in snapshot["histograms"]

    def test_phase_seconds_are_span_durations(self, paper_relation):
        tracer = Tracer()
        result = DepMiner(tracer=tracer).run(paper_relation)
        assert result.trace is tracer
        assert set(result.phase_seconds) == {
            "strip", "agree_sets", "cmax", "lhs", "fd_output", "armstrong",
        }
        for name, seconds in result.phase_seconds.items():
            (span,) = tracer.find(name)
            assert span.attrs.get("phase")
            assert seconds == span.duration

    def test_default_run_still_records_phases(self, paper_relation):
        # No hooks passed: a private tracer still feeds phase_seconds.
        result = DepMiner().run(paper_relation)
        assert result.trace is not None
        assert result.phase_seconds["agree_sets"] >= 0
        assert result.total_seconds == sum(result.phase_seconds.values())

    def test_span_tree_shape(self, paper_relation):
        tracer = Tracer()
        DepMiner(tracer=tracer).run(paper_relation)
        names = [s.name for s in tracer.iter_tree()]
        assert names[0] == "depminer.run"
        for phase in ("strip", "agree_sets", "cmax", "lhs", "fd_output",
                      "armstrong"):
            assert phase in names
        (root,) = tracer.roots()
        assert root.attrs == {"width": 5, "rows": 7, "backend": "python"}

    def test_error_path_keeps_partial_trace(self):
        # This relation has no real-world Armstrong relation, so the
        # strict mode raises in phase 5 — the earlier phases' timings
        # must survive on miner.last_trace (the recorded-on-error fix).
        schema = Schema.of_width(3)
        relation = Relation.from_rows(
            schema, [(0, 0, 0), (1, 0, 1), (1, 1, 0)]
        )
        miner = DepMiner(build_armstrong="strict")
        with pytest.raises(ArmstrongExistenceError):
            miner.run(relation)
        tracer = miner.last_trace
        assert tracer is not None
        seconds = tracer.phase_seconds()
        assert {"strip", "agree_sets", "cmax", "lhs", "fd_output"} <= \
            set(seconds)
        (armstrong_span,) = tracer.find("armstrong")
        assert armstrong_span.status == "error"
        assert "ArmstrongExistenceError" in armstrong_span.error


class TestTaneAndFdepInstrumentation:
    def test_tane_trace_and_metrics(self, paper_relation):
        tracer = Tracer()
        metrics = MetricsRegistry()
        result = Tane(tracer=tracer, metrics=metrics).run(paper_relation)
        assert result.trace is tracer
        assert set(result.phase_seconds) == {"strip", "lattice"}
        levels = tracer.find("level")
        assert levels and all(s.parent_id is not None for s in levels)
        assert metrics.snapshot()["gauges"]["fd.count"] == len(result.fds)

    def test_fdep_trace_and_metrics(self, paper_relation):
        tracer = Tracer()
        metrics = MetricsRegistry()
        result = Fdep(tracer=tracer, metrics=metrics).run(paper_relation)
        assert result.trace is tracer
        assert set(result.phase_seconds) == {
            "strip", "negative_cover", "specialize",
        }
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["fdep.specializations"] >= 1
        assert snapshot["gauges"]["fd.count"] == len(result.fds)


class TestProgress:
    def test_none_callback_is_a_noop(self):
        emit_progress(None, "stage", 10)

    def test_callback_receives_stage_and_counts(self, paper_relation):
        # jobs=1 pinned: the serial loops emit per-couple stages; under
        # the sharded layer the stages are *.shards (test_parallel.py).
        calls = []
        DepMiner(jobs=1, progress=lambda *args: calls.append(args)).run(
            paper_relation
        )
        stages = {call[0] for call in calls}
        assert "agree_sets.couples" in stages
        assert "lhs.attributes" in stages
        final = [c for c in calls if c[0] == "agree_sets.couples"][-1]
        assert final[1] == final[2] == 6  # done == total at completion

    def test_returning_false_aborts_the_run(self, paper_relation):
        def abort(stage, done, total=None):
            return False

        with pytest.raises(ProgressAborted) as info:
            DepMiner(jobs=1, progress=abort).run(paper_relation)
        assert info.value.stage == "agree_sets.couples"

    def test_tane_abort(self, paper_relation):
        def abort_levels(stage, done, total=None):
            if stage == "tane.levels" and done >= 2:
                return False
            return None

        with pytest.raises(ProgressAborted):
            Tane(progress=abort_levels).run(paper_relation)


class TestExporters:
    def _traced_run(self, paper_relation):
        tracer = Tracer()
        metrics = MetricsRegistry()
        DepMiner(tracer=tracer, metrics=metrics).run(paper_relation)
        return tracer, metrics

    def test_jsonl_round_trip(self, paper_relation, tmp_path):
        tracer, metrics = self._traced_run(paper_relation)
        records = trace_records(tracer, metrics, meta={"command": "test"})
        parsed = parse_jsonl(dumps_jsonl(records))
        assert parsed["meta"][0]["command"] == "test"
        assert len(parsed["spans"]) == len(tracer.finished_spans())
        assert {r["name"] for r in parsed["metrics"]} == set(metrics.names())
        assert parsed["other"] == []
        # Tree order: every parent precedes its children.
        seen = set()
        for record in parsed["spans"]:
            if record["parent_id"] is not None:
                assert record["parent_id"] in seen
            seen.add(record["id"])

    def test_validate_accepts_real_traces(self, paper_relation):
        tracer, metrics = self._traced_run(paper_relation)
        records = trace_records(tracer, metrics)
        assert validate_records(records) == []

    def test_validate_flags_problems(self):
        assert validate_records([]) == ["trace is empty"]
        problems = validate_records([
            {"type": "span", "id": 0},
        ])
        assert any("meta" in p for p in problems)
        problems = validate_records([
            {"type": "meta", "format": "repro-trace", "version": 1},
            {"type": "span", "id": 1, "name": "x", "depth": 0,
             "start": 1.0, "end": 0.5, "duration": -0.5, "status": "weird",
             "attrs": {}, "parent_id": 99},
            {"type": "metric", "kind": "bogus", "name": "", },
        ])
        assert any("ends before" in p for p in problems)
        assert any("negative" in p for p in problems)
        assert any("parent_id" in p for p in problems)
        assert any("status" in p for p in problems)
        assert any("metric kind" in p for p in problems)

    def test_flame_and_markdown_renderers(self, paper_relation):
        tracer, _ = self._traced_run(paper_relation)
        flame = flame_text(tracer)
        assert "depminer.run" in flame and "█" in flame
        table = spans_markdown(tracer)
        assert table.startswith("| span |")
        assert "armstrong" in table
