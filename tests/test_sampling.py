"""Unit tests for guided-sampling FD discovery."""

from __future__ import annotations

import random

import pytest

from repro.core.attributes import Schema
from repro.core.depminer import discover_fds
from repro.core.relation import Relation
from repro.core.sampling import discover_with_sampling
from repro.datagen.synthetic import generate_relation
from repro.errors import ReproError


class TestFindViolation:
    def test_returns_witness_pair(self):
        schema = Schema.of_width(2)
        relation = Relation.from_rows(
            schema, [(1, "x"), (1, "y"), (2, "z")]
        )
        violation = relation.find_violation(["A"], ["B"])
        assert violation == (0, 1)

    def test_none_when_fd_holds(self):
        schema = Schema.of_width(2)
        relation = Relation.from_rows(schema, [(1, "x"), (1, "x")])
        assert relation.find_violation(["A"], ["B"]) is None

    def test_witness_actually_violates(self, paper_relation):
        violation = paper_relation.find_violation(["A"], ["B"])
        assert violation is not None
        i, j = violation
        a = paper_relation.schema.attribute_set(["A"])
        b = paper_relation.schema.attribute_set(["B"])
        assert paper_relation.tuples_agree(i, j, a)
        assert not paper_relation.tuples_agree(i, j, b)


class TestSamplingDiscovery:
    def test_exact_on_paper_relation(self, paper_relation):
        result = discover_with_sampling(paper_relation, sample_size=3)
        assert result.fds == discover_fds(paper_relation)

    def test_exact_on_synthetic_relations(self):
        relation = generate_relation(6, 400, correlation=0.5, seed=3)
        result = discover_with_sampling(relation, sample_size=32, seed=1)
        assert result.fds == discover_fds(relation)
        assert result.sample_size < len(relation)

    @pytest.mark.parametrize("seed", range(10))
    def test_exact_on_random_relations(self, seed):
        rng = random.Random(seed)
        width = rng.randint(2, 5)
        schema = Schema.of_width(width)
        relation = Relation.from_rows(
            schema,
            [
                tuple(rng.randint(0, 4) for _ in range(width))
                for _ in range(rng.randint(1, 60))
            ],
        )
        result = discover_with_sampling(relation, sample_size=5, seed=seed)
        assert result.fds == discover_fds(relation)

    def test_tiny_sample_still_converges(self, paper_relation):
        result = discover_with_sampling(paper_relation, sample_size=1)
        assert result.fds == discover_fds(paper_relation)
        assert result.rounds >= 1

    def test_whole_relation_as_sample_takes_one_round(self, paper_relation):
        result = discover_with_sampling(paper_relation, sample_size=1000)
        assert result.rounds == 1
        assert result.sample_size == len(paper_relation)

    def test_sample_rows_come_from_the_relation(self, paper_relation):
        result = discover_with_sampling(paper_relation, sample_size=3)
        original_rows = set(paper_relation.rows())
        assert set(result.sample.rows()) <= original_rows

    def test_rejects_bad_sample_size(self, paper_relation):
        with pytest.raises(ReproError):
            discover_with_sampling(paper_relation, sample_size=0)

    def test_max_rounds_guard(self):
        relation = generate_relation(6, 500, correlation=0.5, seed=0)
        with pytest.raises(ReproError, match="converge"):
            discover_with_sampling(
                relation, sample_size=2, max_rounds=1, seed=0
            )

    def test_deterministic_given_seed(self, paper_relation):
        first = discover_with_sampling(paper_relation, sample_size=3, seed=9)
        second = discover_with_sampling(paper_relation, sample_size=3, seed=9)
        assert first.fds == second.fds
        assert list(first.sample.rows()) == list(second.sample.rows())

    def test_empty_relation(self):
        schema = Schema.of_width(2)
        relation = Relation.from_rows(schema, [])
        result = discover_with_sampling(relation, sample_size=4)
        assert {str(fd) for fd in result.fds} == {"∅ -> A", "∅ -> B"}
