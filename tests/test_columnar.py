"""Property tests for the columnar primitives (`repro.columnar`).

Each columnar stage is pinned against the pure-Python implementation it
replaces, on hypothesis-generated inputs plus the boundary shapes that
matter to the mathematics:

* **factorization round-trip** — ``uniques[codes[row]] == values[row]``
  for every row, under both null semantics (``nulls_equal=False`` must
  give each ``None`` its own fresh code);
* **grouping ≡ stripped partitions** — the lexsort-grouped
  :func:`~repro.columnar.grouping.to_stripped_partition` equals
  :func:`~repro.partitions.partition.stripped_partition_of_column`,
  again under both null semantics;
* **batch intersection ≡ agree sets** —
  :func:`~repro.columnar.agree.columnar_agree_sets` equals
  :func:`~repro.core.agree_sets.naive_agree_sets`, including the
  all-distinct, all-equal, single-row and ``∅``-membership edge cases;
* **packed cmax ≡ maximal sets** —
  :func:`~repro.columnar.cmax.maximal_sets_packed` equals
  :func:`~repro.core.maximal_sets.maximal_sets` +
  :func:`~repro.core.maximal_sets.complement_maximal_sets`;
* the **NumPy-absent fallback**: ``DepMiner(backend="columnar")``
  degrades to the python backend with a logged warning instead of
  failing, and the columnar package raises the typed
  :class:`~repro.columnar.ColumnarUnavailableError`.

The whole module skips on the NumPy-free CI lane (except the fallback
tests, which *simulate* that lane and so run everywhere NumPy exists —
they monkeypatch availability rather than the import machinery).
"""

from __future__ import annotations

import logging

import pytest
from hypothesis import given, settings, strategies as st

import repro.columnar as columnar_pkg
from repro.columnar import ColumnarUnavailableError, numpy_available
from repro.core.agree_sets import naive_agree_sets
from repro.core.attributes import Schema
from repro.core.depminer import DepMiner
from repro.core.maximal_sets import complement_maximal_sets, maximal_sets
from repro.core.relation import Relation
from repro.errors import ReproError
from repro.partitions.partition import stripped_partition_of_column
from tests.oracle import wide_lane_boundary_relation

pytestmark = pytest.mark.skipif(
    not numpy_available(),
    reason="columnar primitives need NumPy (fallback tests cover the "
           "NumPy-free path separately)",
)

if numpy_available():
    import numpy as np

    from repro.columnar import (
        candidate_couples,
        columnar_agree_sets,
        encode_column,
        encode_relation,
        maximal_sets_packed,
        to_stripped_partition,
    )


# -- strategies --------------------------------------------------------------

#: Column cells: small ints, short strings, and None (exercising both
#: null semantics), mixed within one column.
cells = st.one_of(
    st.integers(min_value=0, max_value=3),
    st.sampled_from(["x", "y"]),
    st.none(),
)

columns = st.lists(cells, min_size=0, max_size=14)


@st.composite
def relations(draw, max_width=4, max_rows=12, max_value=3,
              allow_none=False):
    width = draw(st.integers(min_value=1, max_value=max_width))
    num_rows = draw(st.integers(min_value=0, max_value=max_rows))
    cell = st.integers(min_value=0, max_value=max_value)
    if allow_none:
        cell = st.one_of(cell, st.none())
    rows = [
        tuple(draw(cell) for _ in range(width))
        for _ in range(num_rows)
    ]
    return Relation.from_rows(Schema.of_width(width), rows)


@st.composite
def agree_families(draw, max_width=8, max_masks=10):
    width = draw(st.integers(min_value=1, max_value=max_width))
    universe = (1 << width) - 1
    masks = draw(st.lists(
        st.integers(min_value=0, max_value=universe), max_size=max_masks,
    ))
    return width, set(masks)


# -- factorization -----------------------------------------------------------

@settings(max_examples=80, deadline=None)
@given(columns, st.booleans())
def test_factorization_round_trip(values, nulls_equal):
    codes, uniques = encode_column(values, nulls_equal=nulls_equal)
    assert codes.shape == (len(values),)
    for row, value in enumerate(values):
        assert uniques[codes[row]] == value
    # Codes are dense and first-occurrence ordered.
    if len(values):
        assert codes.max() == len(uniques) - 1
        assert codes[0] == 0


@settings(max_examples=60, deadline=None)
@given(columns)
def test_unequal_nulls_get_fresh_codes(values):
    codes, uniques = encode_column(values, nulls_equal=False)
    null_codes = [int(codes[row]) for row, value in enumerate(values)
                  if value is None]
    assert len(null_codes) == len(set(null_codes)), (
        "each None cell must factorize to its own code under "
        "nulls_equal=False"
    )
    non_null = [int(codes[row]) for row, value in enumerate(values)
                if value is not None]
    assert not set(null_codes) & set(non_null)
    assert all(uniques[code] is None for code in null_codes)


# -- grouping ----------------------------------------------------------------

@settings(max_examples=80, deadline=None)
@given(columns, st.booleans())
def test_grouping_equals_stripped_partition(values, nulls_equal):
    codes, _ = encode_column(values, nulls_equal=nulls_equal)
    assert to_stripped_partition(codes) == stripped_partition_of_column(
        values, nulls_equal=nulls_equal
    )


def test_grouping_edge_cases():
    for values in ([], [7], [7, 7, 7], [1, 2, 3, 4]):
        codes, _ = encode_column(values)
        assert to_stripped_partition(codes) == (
            stripped_partition_of_column(values)
        )


# -- agree sets --------------------------------------------------------------

@settings(max_examples=80, deadline=None)
@given(relations(allow_none=True), st.booleans())
def test_columnar_agree_sets_equal_core(relation, nulls_equal):
    ec = encode_relation(relation, nulls_equal=nulls_equal)
    # naive_agree_sets is nulls_equal=True semantics; route through a
    # miner-free reference for the False case: re-encode None cells as
    # globally fresh values and compare on that relation.
    if nulls_equal:
        reference = naive_agree_sets(relation)
    else:
        fresh = iter(range(-1, -10_000, -1))
        rows = [
            tuple(next(fresh) if cell is None else cell for cell in row)
            for row in relation.rows()
        ]
        reference = naive_agree_sets(
            Relation.from_rows(relation.schema, rows)
        )
    assert columnar_agree_sets(ec) == reference


def test_agree_set_edge_cases():
    schema = Schema.of_width(3)
    single = Relation.from_rows(schema, [(1, 2, 3)])
    all_equal = Relation.from_rows(schema, [(1, 2, 3)] * 4)
    all_distinct = Relation.from_rows(
        schema, [(i, -i, i * i) for i in range(5)]
    )
    # One row: no couples, no agree sets — not even ∅.
    assert columnar_agree_sets(encode_relation(single)) == set()
    # Every couple agrees everywhere: ag(r) = {R}, ∅ absent.
    assert columnar_agree_sets(encode_relation(all_equal)) == {0b111}
    # No couple agrees anywhere: ag(r) = {∅} via the couple-count test.
    assert columnar_agree_sets(encode_relation(all_distinct)) == {0}
    for relation in (single, all_equal, all_distinct):
        assert columnar_agree_sets(
            encode_relation(relation)
        ) == naive_agree_sets(relation)


def test_empty_agree_set_membership_requires_missing_couples():
    # Two rows agreeing on A only: the single couple is enumerated, so
    # ∅ must NOT be added; on three rows with one all-distinct pair it
    # must be.
    schema = Schema.of_width(2)
    two = Relation.from_rows(schema, [(1, 1), (1, 2)])
    assert columnar_agree_sets(encode_relation(two)) == {0b01}
    three = Relation.from_rows(schema, [(1, 1), (1, 2), (9, 9)])
    assert columnar_agree_sets(encode_relation(three)) == (
        naive_agree_sets(three)
    )
    assert 0 in columnar_agree_sets(encode_relation(three))


@settings(max_examples=40, deadline=None)
@given(relations())
def test_candidate_couples_are_distinct_and_ordered(relation):
    ec = encode_relation(relation)
    left, right = candidate_couples(ec)
    assert left.shape == right.shape
    assert bool((left < right).all())
    keys = left * max(len(relation), 1) + right
    assert len(np.unique(keys)) == len(keys), "couples must be distinct"


def test_wide_relation_masks_cross_the_lane_boundary():
    relation = wide_lane_boundary_relation()
    ec = encode_relation(relation)
    agree = columnar_agree_sets(ec)
    assert agree == naive_agree_sets(relation)
    assert any(mask >> 63 for mask in agree)


# -- cmax --------------------------------------------------------------------

@settings(max_examples=80, deadline=None)
@given(agree_families())
def test_maximal_sets_packed_equals_core(family):
    width, agree = family
    schema = Schema.of_width(width)
    expected_max = maximal_sets(agree, schema)
    expected_cmax = complement_maximal_sets(expected_max, schema)
    max_sets, cmax_sets = maximal_sets_packed(agree, schema)
    assert {a: sorted(v) for a, v in max_sets.items()} == (
        {a: sorted(v) for a, v in expected_max.items()}
    )
    assert cmax_sets == expected_cmax


def test_maximal_sets_packed_empty_family():
    schema = Schema.of_width(3)
    max_sets, cmax_sets = maximal_sets_packed(set(), schema)
    assert max_sets == {0: [], 1: [], 2: []}
    assert cmax_sets == {0: [], 1: [], 2: []}


# -- NumPy-absent fallback ---------------------------------------------------

class TestNumpyFallback:
    def test_miner_degrades_to_python_with_a_warning(self, monkeypatch,
                                                     caplog):
        # DepMiner imports numpy_available from the package at call
        # time, so patching the package attribute simulates the
        # NumPy-free environment.
        monkeypatch.setattr(columnar_pkg, "numpy_available",
                            lambda: False)
        with caplog.at_level(logging.WARNING):
            miner = DepMiner(backend="columnar", build_armstrong="none")
        assert miner.backend == "python"
        assert any("falling back" in message
                   for message in caplog.messages)
        relation = Relation.from_rows(
            Schema.of_width(2), [(1, 1), (1, 2)]
        )
        assert miner.run(relation).fds  # still mines

    def test_require_numpy_raises_the_typed_error(self, monkeypatch):
        monkeypatch.setattr(columnar_pkg, "numpy_available",
                            lambda: False)
        with pytest.raises(ColumnarUnavailableError) as excinfo:
            columnar_pkg.require_numpy()
        assert isinstance(excinfo.value, ReproError)

    def test_unknown_backend_is_rejected(self):
        with pytest.raises(ReproError):
            DepMiner(backend="gpu")
