"""Unit tests for the mini SQL SELECT dialect."""

from __future__ import annotations

import pytest

from repro.errors import QueryError
from repro.storage.database import Database
from repro.storage.sql import execute_sql, parse_select
from repro.storage.table import Table


@pytest.fixture
def db():
    database = Database("t")
    database.create_table(
        Table.from_rows(
            "emp",
            ["id", "name", "dept", "salary", "bonus"],
            [
                (1, "ann", "cs", 100, None),
                (2, "bob", "cs", 120, 10),
                (3, "cat", "math", 90, None),
                (4, "dan", "math", 90, 5),
                (5, "eve", "cs", 100, None),
            ],
        )
    )
    return database


class TestParsing:
    def test_star(self):
        statement = parse_select("SELECT * FROM emp")
        assert statement.columns is None
        assert statement.table == "emp"
        assert not statement.distinct

    def test_column_list_and_distinct(self):
        statement = parse_select("select distinct dept, name from emp")
        assert statement.columns == ["dept", "name"]
        assert statement.distinct

    def test_trailing_semicolon(self):
        assert parse_select("SELECT * FROM emp;").table == "emp"

    def test_rejects_garbage(self):
        with pytest.raises(QueryError):
            parse_select("SELEKT * FROM emp")
        with pytest.raises(QueryError, match="trailing"):
            parse_select("SELECT * FROM emp JUNK")
        with pytest.raises(QueryError):
            parse_select("SELECT FROM emp")

    def test_rejects_unknown_operator(self):
        with pytest.raises(QueryError, match="operator"):
            parse_select("SELECT * FROM emp WHERE id , 3")

    def test_rejects_untokenizable_input(self):
        with pytest.raises(QueryError, match="tokenize"):
            parse_select("SELECT * FROM emp WHERE id ~ 3")

    def test_rejects_bad_limit(self):
        with pytest.raises(QueryError):
            parse_select("SELECT * FROM emp LIMIT x")


class TestExecution:
    def test_full_scan(self, db):
        result = execute_sql(db, "SELECT * FROM emp")
        assert len(result) == 5
        assert result.column_names == ("id", "name", "dept", "salary",
                                       "bonus")

    def test_projection(self, db):
        result = execute_sql(db, "SELECT name FROM emp")
        assert result.column_names == ("name",)

    def test_where_comparisons(self, db):
        assert len(execute_sql(db, "SELECT * FROM emp WHERE salary > 90")) == 3
        assert len(execute_sql(db, "SELECT * FROM emp WHERE salary >= 90")) == 5
        assert len(execute_sql(db, "SELECT * FROM emp WHERE dept = 'cs'")) == 3
        assert len(execute_sql(db, "SELECT * FROM emp WHERE dept <> 'cs'")) == 2

    def test_and_conjunction(self, db):
        result = execute_sql(
            db, "SELECT id FROM emp WHERE dept = 'cs' AND salary = 100"
        )
        assert sorted(row[0] for row in result.rows()) == [1, 5]

    def test_is_null(self, db):
        assert len(
            execute_sql(db, "SELECT * FROM emp WHERE bonus IS NULL")
        ) == 3
        assert len(
            execute_sql(db, "SELECT * FROM emp WHERE bonus IS NOT NULL")
        ) == 2

    def test_null_comparisons_are_false(self, db):
        # NULL-valued rows never satisfy <, <=, >, >=.
        assert len(
            execute_sql(db, "SELECT * FROM emp WHERE bonus > 0")
        ) == 2

    def test_order_by_and_desc(self, db):
        result = execute_sql(db, "SELECT id FROM emp ORDER BY salary DESC, id")
        assert [row[0] for row in result.rows()] == [2, 1, 5, 3, 4]

    def test_limit(self, db):
        assert len(execute_sql(db, "SELECT * FROM emp LIMIT 2")) == 2
        assert len(execute_sql(db, "SELECT * FROM emp LIMIT 0")) == 0

    def test_distinct(self, db):
        result = execute_sql(db, "SELECT DISTINCT dept FROM emp")
        assert sorted(row[0] for row in result.rows()) == ["cs", "math"]

    def test_string_literal_escaping(self, db):
        db.create_table(
            Table.from_rows("notes", ["text"], [("it's",), ("plain",)])
        )
        result = execute_sql(
            db, "SELECT * FROM notes WHERE text = 'it''s'"
        )
        assert len(result) == 1

    def test_unknown_table(self, db):
        with pytest.raises(Exception):
            execute_sql(db, "SELECT * FROM ghost")

    def test_run_against_single_table(self, db):
        table = db.table("emp")
        result = execute_sql(table, "SELECT id FROM emp LIMIT 1")
        assert len(result) == 1
        with pytest.raises(QueryError, match="was run against"):
            execute_sql(table, "SELECT id FROM other")

    def test_query_result_feeds_mining(self, db):
        from repro.core.depminer import discover_fds

        result = execute_sql(
            db, "SELECT dept, salary FROM emp WHERE salary >= 90"
        )
        fds = discover_fds(result.to_relation())
        assert fds  # dept/salary carry some structure
