"""Unit tests for Armstrong-axiom derivations."""

from __future__ import annotations

import pytest

from repro.core.attributes import Schema
from repro.errors import ReproError
from repro.fd.axioms import derive
from repro.fd.fd import parse_fd


@pytest.fixture
def schema():
    return Schema.of_width(4)


@pytest.fixture
def fds(schema):
    return [
        parse_fd(schema, "A -> B"),
        parse_fd(schema, "B -> C"),
        parse_fd(schema, "CD -> A"),
    ]


class TestDerive:
    def test_direct_fd(self, schema, fds):
        proof = derive(fds, parse_fd(schema, "A -> B"))
        assert proof is not None
        conclusion = proof.conclusion()
        assert conclusion.lhs.names == ("A",)
        assert conclusion.rhs.names == ("B",)

    def test_transitive_fd(self, schema, fds):
        proof = derive(fds, parse_fd(schema, "A -> C"))
        assert proof is not None
        rules = [step.rule for step in proof.steps]
        assert rules[0] == "reflexivity"
        assert any("transitivity" in rule for rule in rules)
        assert proof.conclusion().rhs.names == ("C",)

    def test_compound_lhs(self, schema, fds):
        proof = derive(fds, parse_fd(schema, "AD -> A"))
        assert proof is not None

    def test_not_implied_returns_none(self, schema, fds):
        assert derive(fds, parse_fd(schema, "C -> B")) is None

    def test_trivial_fd(self, schema):
        proof = derive([], parse_fd(schema, "AB -> A"))
        assert proof is not None
        assert proof.conclusion().rhs.names == ("A",)

    def test_every_step_is_numbered_in_render(self, schema, fds):
        proof = derive(fds, parse_fd(schema, "A -> C"))
        rendered = proof.render()
        assert rendered.startswith("Proof of A -> C:")
        assert "(1)" in rendered
        assert "reflexivity" in rendered

    def test_premise_indices_are_valid(self, schema, fds):
        proof = derive(fds, parse_fd(schema, "AD -> C"))
        assert proof is not None
        for number, step in enumerate(proof.steps, start=1):
            for premise in step.premises:
                assert 1 <= premise < number or premise == number, (
                    "premises must reference earlier or current lines"
                )

    def test_rejects_foreign_schema(self, schema, fds):
        other = Schema(["w", "x", "y", "z"])
        target = parse_fd(other, "w -> x")
        with pytest.raises(ReproError, match="schema"):
            derive(fds, target)

    def test_semantic_soundness_of_each_derived_statement(self, schema, fds):
        """Every derived lhs -> rhs must itself be implied by F."""
        from repro.fd.closure import attribute_closure

        proof = derive(fds, parse_fd(schema, "AD -> C"))
        for step in proof.steps:
            if step.rule.startswith("given"):
                continue
            closure = attribute_closure(step.lhs.mask, fds, schema)
            assert step.rhs.mask & ~closure == 0, step.render(0)
