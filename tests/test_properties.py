"""Property-based tests (hypothesis) on the core invariants.

These pin down the semantic contracts the whole system rests on:

- the three agree-set algorithms are extensionally equal;
- Dep-Miner ≡ TANE ≡ brute force on arbitrary relations;
- Armstrong relations (classical and real-world) satisfy exactly the
  source relation's dependencies;
- partition products match direct grouping;
- ``Tr`` is an involution on simple hypergraphs, and its output is an
  antichain of genuine minimal transversals;
- attribute closure is a closure operator (extensive, monotone,
  idempotent);
- minimal covers are equivalent to their input.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.agree_sets import (
    agree_sets_from_couples,
    agree_sets_from_identifiers,
    naive_agree_sets,
)
from repro.core.attributes import Schema
from repro.core.depminer import DepMiner, discover_fds
from repro.core.relation import Relation
from repro.fd.bruteforce import bruteforce_minimal_fds
from repro.fd.closure import attribute_closure, equivalent_covers
from repro.fd.cover import is_minimal_cover, minimal_cover
from repro.fd.fd import FD
from repro.hypergraph.hypergraph import SimpleHypergraph, minimize_sets
from repro.hypergraph.transversals import (
    minimal_transversals_berge,
    minimal_transversals_levelwise,
)
from repro.partitions.database import StrippedPartitionDatabase
from repro.partitions.partition import (
    partition_product,
    stripped_partition_of_column,
)
from repro.tane.tane import Tane


@st.composite
def relations(draw, max_width=4, max_rows=12, max_value=3):
    width = draw(st.integers(min_value=1, max_value=max_width))
    num_rows = draw(st.integers(min_value=0, max_value=max_rows))
    rows = [
        tuple(
            draw(st.integers(min_value=0, max_value=max_value))
            for _ in range(width)
        )
        for _ in range(num_rows)
    ]
    return Relation.from_rows(Schema.of_width(width), rows)


@st.composite
def hypergraphs(draw, max_vertices=6, max_edges=5):
    num_vertices = draw(st.integers(min_value=1, max_value=max_vertices))
    universe = (1 << num_vertices) - 1
    edges = draw(
        st.lists(
            st.integers(min_value=1, max_value=universe),
            min_size=0,
            max_size=max_edges,
        )
    )
    return num_vertices, minimize_sets(edges)


@st.composite
def fd_sets(draw, width=4, max_fds=6):
    schema = Schema.of_width(width)
    universe = schema.universe_mask
    fds = []
    for _ in range(draw(st.integers(min_value=0, max_value=max_fds))):
        lhs = draw(st.integers(min_value=0, max_value=universe))
        rhs = draw(st.integers(min_value=0, max_value=width - 1))
        fds.append(FD(schema.from_mask(lhs & ~(1 << rhs)), rhs))
    return schema, fds


@settings(max_examples=60, deadline=None)
@given(relations())
def test_agree_set_algorithms_are_extensionally_equal(relation):
    spdb = StrippedPartitionDatabase.from_relation(relation)
    naive = naive_agree_sets(relation)
    assert agree_sets_from_couples(spdb) == naive
    assert agree_sets_from_identifiers(spdb) == naive
    assert agree_sets_from_couples(spdb, max_couples=2) == naive


@settings(max_examples=60, deadline=None)
@given(relations())
def test_miners_agree_with_brute_force(relation):
    expected = bruteforce_minimal_fds(relation)
    assert discover_fds(relation) == expected
    assert discover_fds(relation, agree_algorithm="identifiers") == expected
    assert Tane().run(relation).fds == expected


@settings(max_examples=40, deadline=None)
@given(relations(max_value=9))
def test_armstrong_relations_satisfy_exactly_the_source_dependencies(relation):
    result = DepMiner().run(relation)
    expected = bruteforce_minimal_fds(relation)
    assert bruteforce_minimal_fds(result.classical_armstrong) == expected
    if result.armstrong is not None:
        assert bruteforce_minimal_fds(result.armstrong) == expected
        # Definition 1: values come from the initial relation.
        for name in relation.schema.names:
            assert set(result.armstrong.column(name)) <= set(
                relation.column(name)
            )


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=3), max_size=12),
    st.lists(st.integers(min_value=0, max_value=3), max_size=12),
)
def test_partition_product_matches_direct_grouping(left_col, right_col):
    size = min(len(left_col), len(right_col))
    left_col, right_col = left_col[:size], right_col[:size]
    left = stripped_partition_of_column(left_col)
    right = stripped_partition_of_column(right_col)
    direct = stripped_partition_of_column(
        list(zip(left_col, right_col))
    )
    assert partition_product(left, right) == direct


@settings(max_examples=60, deadline=None)
@given(hypergraphs())
def test_transversal_algorithms_agree_and_produce_antichains(case):
    num_vertices, edges = case
    levelwise = minimal_transversals_levelwise(edges, num_vertices)
    berge = minimal_transversals_berge(edges, num_vertices)
    assert levelwise == berge
    # Antichain property.
    assert minimize_sets(levelwise) == sorted(levelwise)
    # Each result is a genuine minimal transversal.
    if edges:
        h = SimpleHypergraph(num_vertices, edges, check_simple=False)
        for transversal in levelwise:
            assert h.is_minimal_transversal(transversal)


@settings(max_examples=40, deadline=None)
@given(hypergraphs())
def test_transversal_hypergraph_is_an_involution(case):
    num_vertices, edges = case
    if not edges:
        return
    h = SimpleHypergraph(num_vertices, edges, check_simple=False)
    assert h.transversal_hypergraph().transversal_hypergraph() == h


@settings(max_examples=60, deadline=None)
@given(fd_sets(), st.integers(min_value=0, max_value=15))
def test_closure_is_a_closure_operator(case, start_mask):
    schema, fds = case
    start_mask &= schema.universe_mask
    closure = attribute_closure(start_mask, fds, schema)
    # extensive
    assert start_mask & ~closure == 0
    # idempotent
    assert attribute_closure(closure, fds, schema) == closure
    # monotone (against every superset obtained by adding one attribute)
    for attribute in range(len(schema)):
        bigger = start_mask | (1 << attribute)
        bigger_closure = attribute_closure(bigger, fds, schema)
        assert closure & ~bigger_closure == 0


@settings(max_examples=60, deadline=None)
@given(fd_sets())
def test_minimal_cover_is_equivalent_and_minimal(case):
    _schema, fds = case
    cover = minimal_cover(fds)
    assert equivalent_covers(cover, fds)
    assert is_minimal_cover(cover)


@settings(max_examples=40, deadline=None)
@given(relations())
def test_sampling_discovery_is_exact(relation):
    from repro.core.sampling import discover_with_sampling

    result = discover_with_sampling(relation, sample_size=3, seed=0)
    assert result.fds == bruteforce_minimal_fds(relation)
    assert result.sample_size <= len(relation) or len(relation) == 0


@settings(max_examples=40, deadline=None)
@given(relations())
def test_discovered_keys_are_exactly_the_minimal_unique_combinations(relation):
    from itertools import combinations

    from repro.core.keys_mining import discover_keys

    keys = [k.mask for k in discover_keys(relation)]
    # Oracle: enumerate subsets, keep minimal instance superkeys.
    schema = relation.schema
    width = len(schema)
    expected = []
    for size in range(width + 1):
        for subset in combinations(range(width), size):
            mask = 0
            for attribute in subset:
                mask |= 1 << attribute
            if any(mask & kept == kept for kept in expected):
                continue
            if relation.is_superkey(schema.from_mask(mask)):
                expected.append(mask)
    assert keys == sorted(expected)


@settings(max_examples=40, deadline=None)
@given(relations(max_width=3, max_rows=10, max_value=2))
def test_fdep_equals_the_other_miners(relation):
    from repro.fdep import Fdep

    assert Fdep().run(relation).fds == bruteforce_minimal_fds(relation)


@settings(max_examples=30, deadline=None)
@given(relations(max_width=4, max_rows=10, max_value=2))
def test_mined_fds_hold_as_mvds_and_split_losslessly(relation):
    """Every mined FD X -> A also holds as the MVD X ->> A, and the
    Heath split it induces is lossless on the instance (verified by
    joining the projections back)."""
    from repro.fd.mvd import MVD

    schema = relation.schema
    for fd in discover_fds(relation)[:3]:
        mvd = MVD(fd.lhs, schema.from_mask(fd.rhs_mask))
        assert mvd.holds_in(relation)
        if len(relation) == 0:
            continue
        left_names = (fd.lhs | schema.from_mask(fd.rhs_mask)).names
        right_mask = schema.universe_mask & ~fd.rhs_mask
        right_names = schema.from_mask(right_mask).names
        if not left_names or not right_names:
            continue
        joined = relation.project(left_names).natural_join(
            relation.project(right_names)
        )

        def canonical(rel):
            names = sorted(rel.schema.names)
            idx = [rel.schema.index_of(n) for n in names]
            return {tuple(row[i] for i in idx) for row in rel.rows()}

        assert canonical(joined) == canonical(relation)


@settings(max_examples=40, deadline=None)
@given(relations())
def test_discovered_fds_hold_and_are_minimal(relation):
    for fd in discover_fds(relation):
        assert fd.holds_in(relation)
        assert not fd.is_trivial()
        for attribute in fd.lhs.indices():
            shrunk = fd.lhs.remove(attribute)
            assert not relation.satisfies(
                shrunk, relation.schema.from_mask(fd.rhs_mask)
            )


def _canonical_cover(fds):
    return sorted((fd.lhs.mask, fd.rhs_index) for fd in fds)


@settings(max_examples=40, deadline=None)
@given(relations(), st.randoms(use_true_random=False))
def test_cover_is_invariant_under_row_permutation(relation, rng):
    """FDs are a property of the tuple *set*: reordering rows must not
    change the mined cover (nor which agree sets exist)."""
    rows = list(relation.rows())
    rng.shuffle(rows)
    shuffled = Relation.from_rows(relation.schema, rows)
    original = DepMiner(build_armstrong="none").run(relation)
    permuted = DepMiner(build_armstrong="none").run(shuffled)
    assert _canonical_cover(permuted.fds) == _canonical_cover(original.fds)
    assert permuted.agree_sets == original.agree_sets
    assert permuted.cmax_sets == original.cmax_sets


@settings(max_examples=40, deadline=None)
@given(relations(), st.data())
def test_cover_is_invariant_under_duplicate_row_insertion(relation, data):
    """Duplicating existing tuples adds only reflexive agreements and
    must leave the mined cover untouched."""
    rows = list(relation.rows())
    if not rows:
        return
    extra = data.draw(
        st.lists(st.sampled_from(rows), min_size=1, max_size=4)
    )
    positions = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=len(rows)),
            min_size=len(extra), max_size=len(extra),
        )
    )
    padded = list(rows)
    for row, position in zip(extra, positions):
        padded.insert(position, row)
    duplicated = Relation.from_rows(relation.schema, padded)
    original = DepMiner(build_armstrong="none").run(relation)
    padded_result = DepMiner(build_armstrong="none").run(duplicated)
    assert _canonical_cover(padded_result.fds) == _canonical_cover(
        original.fds
    )
    assert padded_result.cmax_sets == original.cmax_sets


def test_wide_relation_crosses_the_uint64_lane_boundary():
    """Nothing above generates schemas wider than a handful of
    attributes, so the 63-bit uint64 lane packing shared by the fast
    agree-set path, the columnar backend and the transversal kernel
    was never exercised past its first lane.  This 70-attribute fixture
    produces agree sets with bits on both sides of bit 63 and pins the
    multi-lane mask reassembly: serial, sharded and (where NumPy is
    available) columnar runs must all emit the identical cover, and
    every mined FD must genuinely hold and be left-minimal."""
    from tests.oracle import wide_lane_boundary_relation

    relation = wide_lane_boundary_relation()
    assert len(relation.schema) == 70
    serial = DepMiner(build_armstrong="none").run(relation)
    assert any(mask >> 63 for mask in serial.agree_sets), (
        "the fixture must straddle bit 63 or it pins nothing"
    )
    sharded = DepMiner(jobs=2, build_armstrong="none").run(relation)
    assert sharded.agree_sets == serial.agree_sets
    assert _canonical_cover(sharded.fds) == _canonical_cover(serial.fds)
    from repro.columnar import numpy_available

    if numpy_available():
        columnar = DepMiner(backend="columnar",
                            build_armstrong="none").run(relation)
        assert columnar.agree_sets == serial.agree_sets
        assert _canonical_cover(columnar.fds) == _canonical_cover(
            serial.fds
        )
    for fd in serial.fds[:20]:
        assert fd.holds_in(relation)
        for attribute in fd.lhs.indices():
            shrunk = fd.lhs.remove(attribute)
            assert not relation.satisfies(
                shrunk, relation.schema.from_mask(fd.rhs_mask)
            )


@settings(max_examples=15, deadline=None)
@given(relations(max_width=4, max_rows=14))
def test_sharded_execution_matches_serial_on_arbitrary_relations(relation):
    """The ``jobs=2`` execution layer is extensionally invisible: same
    agree sets, same cmax sets, same cover, on arbitrary relations."""
    serial = DepMiner(jobs=1, build_armstrong="none").run(relation)
    sharded = DepMiner(jobs=2, build_armstrong="none").run(relation)
    assert sharded.agree_sets == serial.agree_sets
    assert sharded.cmax_sets == serial.cmax_sets
    assert sharded.lhs_sets == serial.lhs_sets
    assert _canonical_cover(sharded.fds) == _canonical_cover(serial.fds)
