"""Unit tests for stripped partition databases and maximal classes."""

from __future__ import annotations

import pytest

from repro.core.attributes import Schema
from repro.core.relation import Relation
from repro.errors import RelationError
from repro.partitions.database import StrippedPartitionDatabase
from repro.partitions.partition import StrippedPartition


@pytest.fixture
def small_relation():
    schema = Schema(["a", "b"])
    return Relation.from_rows(
        schema, [(1, "x"), (1, "x"), (2, "y"), (3, "y")]
    )


class TestConstruction:
    def test_from_relation(self, small_relation):
        spdb = StrippedPartitionDatabase.from_relation(small_relation)
        assert spdb.num_rows == 4
        assert len(spdb) == 2
        assert spdb.partition("a").classes == [(0, 1)]
        assert spdb.partition("b").classes == [(0, 1), (2, 3)]
        assert spdb.partition(0) == spdb.partition("a")

    def test_requires_partition_per_attribute(self):
        schema = Schema(["a", "b"])
        with pytest.raises(RelationError, match="one partition"):
            StrippedPartitionDatabase(
                schema, {0: StrippedPartition([], 3)}, 3
            )

    def test_requires_consistent_row_counts(self):
        schema = Schema(["a", "b"])
        with pytest.raises(RelationError, match="same number"):
            StrippedPartitionDatabase(
                schema,
                {0: StrippedPartition([], 3), 1: StrippedPartition([], 4)},
                3,
            )

    def test_iteration_in_schema_order(self, small_relation):
        spdb = StrippedPartitionDatabase.from_relation(small_relation)
        assert [index for index, _ in spdb] == [0, 1]

    def test_total_classes(self, small_relation):
        spdb = StrippedPartitionDatabase.from_relation(small_relation)
        assert spdb.total_classes() == 3

    def test_repr_mentions_shape(self, small_relation):
        spdb = StrippedPartitionDatabase.from_relation(small_relation)
        assert "rows=4" in repr(spdb)


class TestMaximalClasses:
    def test_drops_dominated_classes(self):
        schema = Schema(["a", "b"])
        # b's class {0,1,2} strictly contains a's class {0,1}.
        relation = Relation.from_rows(
            schema, [(1, "x"), (1, "x"), (2, "x"), (3, "y")]
        )
        spdb = StrippedPartitionDatabase.from_relation(relation)
        assert spdb.maximal_classes() == [(0, 1, 2)]

    def test_keeps_overlapping_incomparable_classes(self):
        schema = Schema(["a", "b"])
        relation = Relation.from_rows(
            schema, [(1, "x"), (1, "y"), (2, "x")]
        )
        spdb = StrippedPartitionDatabase.from_relation(relation)
        # a groups {0,1}; b groups {0,2}: neither contains the other.
        assert spdb.maximal_classes() == [(0, 1), (0, 2)]

    def test_deduplicates_identical_classes(self, small_relation):
        spdb = StrippedPartitionDatabase.from_relation(small_relation)
        # {0,1} appears in both a and b; kept once.
        assert spdb.maximal_classes() == [(0, 1), (2, 3)]

    def test_no_classes_for_all_distinct_relation(self):
        schema = Schema(["a", "b"])
        relation = Relation.from_rows(schema, [(1, "x"), (2, "y")])
        spdb = StrippedPartitionDatabase.from_relation(relation)
        assert spdb.maximal_classes() == []

    def test_empty_relation(self):
        schema = Schema(["a"])
        relation = Relation.from_rows(schema, [])
        spdb = StrippedPartitionDatabase.from_relation(relation)
        assert spdb.maximal_classes() == []


class TestIdentifiers:
    def test_identifiers_only_cover_stripped_rows(self, small_relation):
        spdb = StrippedPartitionDatabase.from_relation(small_relation)
        ec = spdb.equivalence_class_identifiers()
        assert ec[0] == {0: 0, 1: 0}
        assert ec[2] == {1: 1}
        assert ec[3] == {1: 1}
        # Rows 2 and 3 are singletons under 'a': no (a, i) identifier.
        assert 0 not in ec[2]

    def test_row_in_no_class_is_absent(self):
        schema = Schema(["a"])
        relation = Relation.from_rows(schema, [(1,), (2,), (2,)])
        spdb = StrippedPartitionDatabase.from_relation(relation)
        ec = spdb.equivalence_class_identifiers()
        assert 0 not in ec
        assert ec[1] == {0: 0}
