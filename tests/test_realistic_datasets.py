"""Unit tests: the planted FDs of the realistic datasets are found."""

from __future__ import annotations

import pytest

from repro.core.depminer import discover_fds
from repro.datagen.realistic import (
    DATASET_BUILDERS,
    flights_dataset,
    hospital_dataset,
    orders_dataset,
    write_bundle,
)
from repro.fd.closure import implies
from repro.fd.fd import parse_fd


def assert_implied(relation, *fd_texts):
    fds = discover_fds(relation)
    schema = relation.schema
    for text in fd_texts:
        target = parse_fd(schema, text)
        assert implies(fds, target), f"planted FD not found: {text}"


class TestHospital:
    def test_planted_fds_hold(self):
        relation = hospital_dataset(seed=1)
        assert_implied(
            relation,
            "patient_id -> name",
            "ward -> wing",
            "city -> country",
            "patient_id -> age",
        )

    def test_no_accidental_reverse_hierarchy(self):
        relation = hospital_dataset(seed=1)
        # Several cities share a country, so country must not determine
        # city.
        assert not relation.satisfies(["country"], ["city"])

    def test_deterministic(self):
        assert list(hospital_dataset(seed=3).rows()) == \
            list(hospital_dataset(seed=3).rows())


class TestFlights:
    def test_planted_fds_hold(self):
        relation = flights_dataset(seed=2)
        assert_implied(
            relation,
            "flight_no -> carrier",
            "flight_no -> origin",
            "flight_no -> destination",
            "origin,destination -> distance_km",
        )

    def test_leg_id_is_a_key(self):
        relation = flights_dataset(seed=2)
        assert relation.is_superkey(["leg_id"])


class TestOrders:
    def test_planted_fds_hold(self):
        relation = orders_dataset(seed=4)
        assert_implied(
            relation,
            "product -> category",
            "product -> unit_price",
            "customer -> segment",
        )

    def test_nullable_column_actually_has_nulls(self):
        relation = orders_dataset(seed=4)
        assert None in relation.column("discount_code")

    def test_null_semantics_can_differ(self):
        relation = orders_dataset(seed=4, null_rate=0.5)
        default = discover_fds(relation)
        sql = discover_fds(relation, nulls_equal=False)
        assert default != sql


class TestBundle:
    def test_write_bundle_exports_all(self, tmp_path):
        paths = write_bundle(tmp_path, seed=0)
        assert [p.name for p in paths] == [
            "airports.csv", "cities.csv", "customers.csv",
            "flights.csv", "hospital.csv", "orders.csv",
            "products.csv", "wards.csv",
        ]
        for path in paths:
            assert path.stat().st_size > 0

    def test_bundle_without_references(self, tmp_path):
        paths = write_bundle(tmp_path, seed=0, include_references=False)
        assert [p.name for p in paths] == [
            "flights.csv", "hospital.csv", "orders.csv",
        ]

    def test_bundle_round_trips_through_csv(self, tmp_path):
        from repro.storage.csv_io import relation_from_csv

        write_bundle(tmp_path, seed=0)
        relation = relation_from_csv(tmp_path / "flights.csv")
        assert_implied(relation, "flight_no -> carrier")

    def test_builders_registry(self):
        assert set(DATASET_BUILDERS) == {"hospital", "flights", "orders"}
