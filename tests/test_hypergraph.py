"""Unit tests for simple hypergraphs."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.hypergraph.hypergraph import (
    SimpleHypergraph,
    maximize_sets,
    minimize_sets,
)


class TestMinimizeMaximize:
    def test_minimize(self):
        assert minimize_sets([0b011, 0b001, 0b110]) == [0b001, 0b110]

    def test_minimize_removes_duplicates(self):
        assert minimize_sets([0b1, 0b1]) == [0b1]

    def test_minimize_keeps_incomparable(self):
        assert sorted(minimize_sets([0b011, 0b101])) == [0b011, 0b101]

    def test_minimize_empty_set_dominates_all(self):
        assert minimize_sets([0, 0b11]) == [0]

    def test_maximize(self):
        assert maximize_sets([0b011, 0b001, 0b110]) == [0b011, 0b110]

    def test_maximize_empty_input(self):
        assert maximize_sets([]) == []

    def test_minimize_and_maximize_of_antichain_are_identity(self):
        antichain = [0b0011, 0b0101, 0b1001]
        assert sorted(minimize_sets(antichain)) == antichain
        assert sorted(maximize_sets(antichain)) == antichain


class TestSimpleHypergraph:
    def test_basic_properties(self):
        h = SimpleHypergraph(3, [0b011, 0b100])
        assert h.num_vertices == 3
        assert h.edges == [0b011, 0b100]
        assert len(h) == 2
        assert h.vertex_support == 0b111
        assert not h.is_empty()

    def test_rejects_empty_edge(self):
        with pytest.raises(ReproError, match="empty edge"):
            SimpleHypergraph(3, [0])

    def test_rejects_out_of_universe_edge(self):
        with pytest.raises(ReproError, match="outside"):
            SimpleHypergraph(2, [0b100])

    def test_rejects_nested_edges(self):
        with pytest.raises(ReproError, match="nested"):
            SimpleHypergraph(3, [0b001, 0b011])

    def test_from_sets_minimizes(self):
        h = SimpleHypergraph.from_sets(3, [0b011, 0b001, 0b110, 0])
        assert h.edges == [0b001, 0b110]

    def test_is_transversal(self):
        h = SimpleHypergraph(3, [0b011, 0b100])
        assert h.is_transversal(0b101)
        assert h.is_transversal(0b111)
        assert not h.is_transversal(0b001)
        assert not h.is_transversal(0)

    def test_empty_hypergraph_everything_is_transversal(self):
        h = SimpleHypergraph(3, [])
        assert h.is_empty()
        assert h.is_transversal(0)

    def test_is_minimal_transversal(self):
        h = SimpleHypergraph(3, [0b011, 0b100])
        assert h.is_minimal_transversal(0b101)
        assert h.is_minimal_transversal(0b110)
        assert not h.is_minimal_transversal(0b111)
        assert not h.is_minimal_transversal(0b001)

    def test_transversal_hypergraph(self):
        h = SimpleHypergraph(3, [0b011, 0b100])
        tr = h.transversal_hypergraph()
        assert sorted(tr.edges) == [0b101, 0b110]

    def test_nihilpotence_on_paper_cmax(self):
        # cmax(dep(r), A) = {AC, ABD} over ABCDE; Tr(Tr(H)) = H.
        ac = 0b00101
        abd = 0b01011
        h = SimpleHypergraph(5, [ac, abd])
        assert h.transversal_hypergraph().transversal_hypergraph() == h

    def test_equality_and_hash(self):
        first = SimpleHypergraph(3, [0b011, 0b100])
        second = SimpleHypergraph(3, [0b100, 0b011])
        assert first == second
        assert hash(first) == hash(second)
        assert first != SimpleHypergraph(3, [0b011])

    def test_iteration(self):
        h = SimpleHypergraph(2, [0b01, 0b10])
        assert list(h) == [0b01, 0b10]
