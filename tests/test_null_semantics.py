"""Unit tests for the two NULL semantics (null = null vs SQL nulls)."""

from __future__ import annotations

from itertools import combinations

import pytest

from repro.core.attributes import Schema
from repro.core.depminer import DepMiner
from repro.core.relation import Relation
from repro.fd.fd import FD, sort_fds
from repro.partitions.database import StrippedPartitionDatabase
from repro.partitions.partition import stripped_partition_of_column
from repro.tane.tane import Tane


def null_aware_bruteforce(relation, nulls_equal):
    """Brute-force minimal FDs under the chosen null semantics."""
    schema = relation.schema
    width = len(schema)
    fds = []
    for rhs_index in range(width):
        rhs = schema.from_mask(1 << rhs_index)
        others = [a for a in range(width) if a != rhs_index]
        found = []
        for size in range(len(others) + 1):
            for subset in combinations(others, size):
                mask = 0
                for attribute in subset:
                    mask |= 1 << attribute
                if any(mask & f == f for f in found):
                    continue
                lhs = schema.from_mask(mask)
                if relation.satisfies(lhs, rhs, nulls_equal=nulls_equal):
                    found.append(mask)
                    fds.append(FD(lhs, rhs_index))
    return sort_fds(fds)


class TestStrippedPartitionNulls:
    def test_null_rows_dropped_under_sql_semantics(self):
        partition = stripped_partition_of_column(
            [None, None, 1, 1], nulls_equal=False
        )
        assert partition.classes == [(2, 3)]

    def test_null_rows_grouped_by_default(self):
        partition = stripped_partition_of_column([None, None, 1, 1])
        assert partition.classes == [(0, 1), (2, 3)]


class TestSatisfiesNulls:
    def test_null_in_lhs_cannot_violate(self):
        schema = Schema.of_width(2)
        relation = Relation.from_rows(
            schema, [(None, 1), (None, 2), (3, 3)]
        )
        assert not relation.satisfies(["A"], ["B"])  # default: violated
        assert relation.satisfies(["A"], ["B"], nulls_equal=False)

    def test_null_in_rhs_breaks_agreement(self):
        schema = Schema.of_width(2)
        relation = Relation.from_rows(schema, [(1, None), (1, None)])
        assert relation.satisfies(["A"], ["B"])  # None == None
        assert not relation.satisfies(["A"], ["B"], nulls_equal=False)


class TestMinersUnderSqlNulls:
    CASES = [
        [(None, 1), (None, 2), (3, 3)],
        [(1, None), (1, None), (2, 5)],
        [(None, None), (None, None)],
        [(1, 2), (1, 2), (None, 3)],
    ]

    @pytest.mark.parametrize("rows", CASES)
    def test_depminer_matches_null_aware_bruteforce(self, rows):
        schema = Schema.of_width(2)
        relation = Relation.from_rows(schema, rows)
        expected = null_aware_bruteforce(relation, nulls_equal=False)
        mined = DepMiner(
            build_armstrong="none", nulls_equal=False
        ).run(relation).fds
        assert mined == expected

    @pytest.mark.parametrize("rows", CASES)
    def test_tane_matches_null_aware_bruteforce(self, rows):
        schema = Schema.of_width(2)
        relation = Relation.from_rows(schema, rows)
        expected = null_aware_bruteforce(relation, nulls_equal=False)
        assert Tane(nulls_equal=False).run(relation).fds == expected

    def test_semantics_differ_on_null_heavy_data(self):
        schema = Schema.of_width(2)
        relation = Relation.from_rows(
            schema, [(None, 1), (None, 2), (3, 3), (4, 3)]
        )
        default = DepMiner(build_armstrong="none").run(relation).fds
        sql = DepMiner(
            build_armstrong="none", nulls_equal=False
        ).run(relation).fds
        assert default != sql

    def test_random_cross_check(self):
        import random

        rng = random.Random(11)
        for _trial in range(40):
            width = rng.randint(2, 4)
            schema = Schema.of_width(width)
            rows = [
                tuple(
                    rng.choice([None, 0, 1, 2]) for _ in range(width)
                )
                for _ in range(rng.randint(0, 10))
            ]
            relation = Relation.from_rows(schema, rows)
            expected = null_aware_bruteforce(relation, nulls_equal=False)
            mined = DepMiner(
                build_armstrong="none", nulls_equal=False
            ).run(relation).fds
            tane = Tane(nulls_equal=False).run(relation).fds
            assert mined == expected, rows
            assert tane == expected, rows


class TestSpdbOption:
    def test_from_relation_forwards_flag(self):
        schema = Schema.of_width(1)
        relation = Relation.from_rows(schema, [(None,), (None,)])
        default = StrippedPartitionDatabase.from_relation(relation)
        sql = StrippedPartitionDatabase.from_relation(
            relation, nulls_equal=False
        )
        assert default.partition(0).num_classes == 1
        assert sql.partition(0).num_classes == 0
