"""Unit tests for the minimal-transversal algorithms (Algorithm 5 + Berge)."""

from __future__ import annotations

import random
from itertools import combinations

import pytest

from repro.errors import ReproError
from repro.hypergraph.hypergraph import SimpleHypergraph, minimize_sets
from repro.hypergraph.transversals import (
    apriori_gen,
    minimal_transversals,
    minimal_transversals_berge,
    minimal_transversals_levelwise,
)


def brute_force_transversals(edges, num_vertices):
    """Oracle: enumerate all vertex subsets, keep minimal transversals."""
    transversals = [
        mask
        for mask in range(1 << num_vertices)
        if all(mask & edge for edge in edges)
    ]
    return sorted(minimize_sets(transversals))


class TestAprioriGen:
    def test_joins_on_shared_prefix(self):
        assert apriori_gen([(0, 1), (0, 2), (1, 2), (1, 3)]) == [(0, 1, 2)]

    def test_prunes_candidates_with_missing_subsets(self):
        # (0,1,2) needs (1,2); absent -> no candidates.
        assert apriori_gen([(0, 1), (0, 2)]) == []

    def test_level_one_joins_all_pairs(self):
        assert apriori_gen([(0,), (1,), (2,)]) == [(0, 1), (0, 2), (1, 2)]

    def test_empty_level(self):
        assert apriori_gen([]) == []


class TestLevelwise:
    def test_no_edges_gives_empty_transversal(self):
        assert minimal_transversals_levelwise([], 4) == [0]

    def test_single_edge(self):
        assert minimal_transversals_levelwise([0b110], 3) == [0b010, 0b100]

    def test_disjoint_edges_need_one_vertex_each(self):
        result = minimal_transversals_levelwise([0b001, 0b110], 3)
        assert result == [0b011, 0b101]

    def test_paper_example_attribute_A(self):
        # cmax(dep(r), A) = {AC, ABD}: Tr = {A, BC, CD} (example 10).
        ac, abd = 0b00101, 0b01011
        result = minimal_transversals_levelwise([ac, abd], 5)
        a, bc, cd = 0b00001, 0b00110, 0b01100
        assert sorted(result) == sorted([a, bc, cd])

    def test_rejects_empty_edge(self):
        with pytest.raises(ReproError, match="non-empty"):
            minimal_transversals_levelwise([0b01, 0], 2)


class TestBerge:
    def test_no_edges(self):
        assert minimal_transversals_berge([], 3) == [0]

    def test_matches_levelwise_on_paper_edges(self):
        edges = [0b00101, 0b01011]
        assert minimal_transversals_berge(edges, 5) == \
            minimal_transversals_levelwise(edges, 5)

    def test_rejects_empty_edge(self):
        with pytest.raises(ReproError):
            minimal_transversals_berge([0], 1)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_hypergraphs(self, seed):
        rng = random.Random(seed)
        num_vertices = rng.randint(1, 7)
        universe = (1 << num_vertices) - 1
        edges = []
        for _ in range(rng.randint(0, 6)):
            edge = rng.randint(1, universe)
            edges.append(edge)
        edges = minimize_sets(edges)  # keep the hypergraph simple
        expected = brute_force_transversals(edges, num_vertices)
        assert minimal_transversals_levelwise(edges, num_vertices) == expected
        assert minimal_transversals_berge(edges, num_vertices) == expected

    @pytest.mark.parametrize("size", [2, 3, 4])
    def test_complete_uniform_hypergraph(self, size):
        # Edges = all `size`-subsets of 5 vertices; minimal transversals
        # are all (5 - size + 1)-subsets.
        num_vertices = 5
        edges = []
        for subset in combinations(range(num_vertices), size):
            mask = 0
            for vertex in subset:
                mask |= 1 << vertex
            edges.append(mask)
        result = minimal_transversals_levelwise(edges, num_vertices)
        expected_size = num_vertices - size + 1
        assert all(bin(t).count("1") == expected_size for t in result)
        assert len(result) == len(
            list(combinations(range(num_vertices), expected_size))
        )


class TestDispatch:
    def test_methods_agree(self):
        edges = [0b011, 0b101, 0b110]
        assert minimal_transversals(edges, 3, method="levelwise") == \
            minimal_transversals(edges, 3, method="berge")

    def test_unknown_method(self):
        with pytest.raises(ReproError, match="unknown transversal method"):
            minimal_transversals([0b1], 1, method="magic")


class TestNihilpotence:
    @pytest.mark.parametrize("seed", range(10))
    def test_tr_tr_is_identity(self, seed):
        rng = random.Random(seed)
        num_vertices = rng.randint(2, 6)
        universe = (1 << num_vertices) - 1
        edges = minimize_sets(
            rng.randint(1, universe) for _ in range(rng.randint(1, 5))
        )
        h = SimpleHypergraph(num_vertices, edges, check_simple=False)
        assert h.transversal_hypergraph().transversal_hypergraph() == h
