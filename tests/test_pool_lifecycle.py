"""Lifecycle tests: persistent-pool rebuild and shared-memory cleanup.

The tentpole's two stateful pieces — the reusable worker pool and the
shared-memory arena — earn their keep only if their *failure* paths are
boring: a poisoned pool must be rebuilt transparently on the next map,
an aborted or exploded map must not leak ``/dev/shm`` segments, and a
host without NumPy (or without ``multiprocessing.shared_memory``) must
fall back to pickled dispatch with a bit-identical cover.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.core.depminer import DepMiner
from repro.datasets import paper_example_relation
from repro.errors import ReproError
from repro.obs import MetricsRegistry, ProgressAborted
from repro.parallel import (
    MpContextError,
    PersistentPool,
    ShardedExecutor,
    ShardError,
    SharedArrayArena,
    register_shard_kind,
    resolve_start_method,
    shm_available,
)
from repro.parallel import shm as shm_module

needs_shm = pytest.mark.skipif(
    not (shm_available() and os.path.isdir("/dev/shm")),
    reason="needs multiprocessing.shared_memory and a /dev/shm mount",
)
needs_numpy = pytest.mark.skipif(
    not shm_module.numpy_available(), reason="needs NumPy"
)


@register_shard_kind("lifecycle.square")
def _square(shared, payload, metrics):
    return payload * payload


@register_shard_kind("lifecycle.fail_in_worker")
def _fail_in_worker(shared, payload, metrics):
    # Pool workers are daemonic; the serial fallback runs in the main
    # process.  Failing only in workers lets one test observe both the
    # poisoning and the successful serial re-run.
    if multiprocessing.current_process().daemon:
        raise RuntimeError(f"worker refused shard {payload}")
    return payload * payload


@register_shard_kind("lifecycle.boom")
def _boom(shared, payload, metrics):
    raise RuntimeError(f"shard {payload} exploded everywhere")


def _leaked_segments():
    try:
        names = os.listdir("/dev/shm")
    except OSError:
        return set()
    return {n for n in names if n.startswith(shm_module.SEGMENT_PREFIX)}


def _big_array():
    import numpy

    return numpy.arange(100_000, dtype=numpy.int64)  # ~800 KiB


class TestMpContextValidation:
    def test_none_passes_through(self):
        assert resolve_start_method(None) is None

    def test_known_method_is_returned(self):
        method = multiprocessing.get_all_start_methods()[0]
        assert resolve_start_method(method) == method

    def test_unknown_method_raises_typed_error(self):
        with pytest.raises(MpContextError, match="bogus"):
            resolve_start_method("bogus")
        assert issubclass(MpContextError, ReproError)

    def test_depminer_validates_eagerly(self):
        with pytest.raises(MpContextError):
            DepMiner(jobs=2, mp_context="not-a-method")

    def test_error_lists_available_methods(self):
        with pytest.raises(MpContextError) as excinfo:
            resolve_start_method("bogus")
        for method in multiprocessing.get_all_start_methods():
            assert method in str(excinfo.value)


class TestPoolRebuildAfterPoisoning:
    def test_next_executor_rebuilds_a_poisoned_pool(self):
        pool = PersistentPool(jobs=2)
        metrics = MetricsRegistry()
        poisoned = ShardedExecutor(jobs=2, pool=pool, retries=0,
                                   poison_threshold=1, metrics=metrics)
        # Workers refuse every shard -> poisoned -> serial fallback
        # still produces the right answer, and the pool is torn down.
        assert poisoned.map("lifecycle.fail_in_worker", [1, 2, 3]) == [
            1, 4, 9
        ]
        assert poisoned.degraded
        assert metrics.counters.get("parallel.poisoned", 0) >= 1
        assert not pool.live

        # A fresh executor on the same PersistentPool (what the next
        # DepMiner.run() does) transparently rebuilds it.
        healthy = ShardedExecutor(jobs=2, pool=pool, metrics=metrics)
        assert healthy.map("lifecycle.square", [1, 2, 3]) == [1, 4, 9]
        assert not healthy.degraded
        stats = pool.stats()
        assert stats["builds"] == 2
        assert stats["live"]
        pool.close()

    def test_depminer_runs_fine_after_pool_breakage(self):
        miner = DepMiner(jobs=2, build_armstrong="none")
        relation = paper_example_relation()
        first = miner.run(relation).fds
        # Simulate a mid-flight pool death (OOM-killed worker, say).
        assert miner.pool is not None
        miner.pool.mark_broken()
        second = miner.run(relation).fds
        assert {(fd.lhs.mask, fd.rhs_mask) for fd in first} == {
            (fd.lhs.mask, fd.rhs_mask) for fd in second
        }
        assert miner.pool.stats()["builds"] == 2
        miner.close()
        assert miner.pool.closed

    def test_closed_pool_refuses_ensure_but_executor_replaces_it(self):
        pool = PersistentPool(jobs=2)
        pool.close()
        with pytest.raises(ReproError):
            pool.ensure()
        # An executor holding a closed (injected) pool quietly builds a
        # fresh owned one — a service session must survive the daemon
        # pool's shutdown racing its own last request.
        executor = ShardedExecutor(jobs=2, pool=pool, degrade=False)
        assert executor.map("lifecycle.square", [1, 2]) == [1, 4]
        assert executor.pool is not pool
        executor.close()


@needs_shm
@needs_numpy
class TestArenaCleanup:
    def test_arena_close_unlinks_segments(self):
        before = _leaked_segments()
        arena = SharedArrayArena(metrics=MetricsRegistry())
        arena.encode({"data": _big_array()})
        assert len(_leaked_segments()) > len(before)
        arena.close()
        assert _leaked_segments() <= before

    def test_no_leak_when_a_map_explodes(self):
        before = _leaked_segments()
        executor = ShardedExecutor(jobs=2, retries=0, degrade=False)
        with pytest.raises(ShardError):
            executor.map("lifecycle.boom", [0, 1, 2],
                         shared={"data": _big_array()})
        executor.close()
        assert _leaked_segments() <= before

    def test_no_leak_when_progress_aborts(self):
        before = _leaked_segments()
        executor = ShardedExecutor(
            jobs=2, progress=lambda stage, done, total: False
        )
        with pytest.raises(ProgressAborted):
            executor.map("lifecycle.square", [1, 2, 3, 4],
                         shared={"data": _big_array()})
        executor.close()
        assert _leaked_segments() <= before

    def test_no_leak_across_a_full_mining_run(self):
        before = _leaked_segments()
        miner = DepMiner(jobs=2, backend="columnar", shm=True,
                         build_armstrong="none")
        miner.run(paper_example_relation())
        miner.close()
        assert _leaked_segments() <= before


class TestDispatchFallbacks:
    """No NumPy / no shared_memory -> pickled dispatch, same cover."""

    def _covers_match(self, **miner_kwargs):
        relation = paper_example_relation()
        serial = DepMiner(build_armstrong="none").run(relation).fds
        miner = DepMiner(jobs=2, build_armstrong="none", **miner_kwargs)
        parallel = miner.run(relation).fds
        miner.close()
        assert {(fd.lhs.mask, fd.rhs_mask) for fd in serial} == {
            (fd.lhs.mask, fd.rhs_mask) for fd in parallel
        }

    def test_numpy_absent_falls_back_to_pickle(self, monkeypatch):
        monkeypatch.setattr(shm_module, "_np", None)
        assert not shm_module.numpy_available()
        self._covers_match(shm=True)

    def test_shared_memory_absent_falls_back_to_pickle(self, monkeypatch):
        monkeypatch.setattr(shm_module, "_shm", None)
        assert not shm_available()
        self._covers_match(shm=True)

    def test_shm_disabled_executor_publishes_nothing(self):
        metrics = MetricsRegistry()
        executor = ShardedExecutor(jobs=2, shm=False, metrics=metrics)
        assert not executor.shm_active
        assert executor.map("lifecycle.square", [2, 3]) == [4, 9]
        executor.close()
        assert metrics.counters.get("parallel.shm_bytes", 0) == 0

    def test_pool_reuse_counter_increments(self):
        metrics = MetricsRegistry()
        executor = ShardedExecutor(jobs=2, metrics=metrics)
        executor.map("lifecycle.square", [1, 2])
        executor.map("lifecycle.square", [3, 4])
        assert metrics.counters.get("parallel.pool_reuse", 0) >= 1
        stats = executor.pool.stats()
        assert stats["builds"] == 1
        assert stats["maps"] == 2
        executor.close()
