"""Unit tests for inclusion-dependency discovery."""

from __future__ import annotations

import pytest

from repro.datagen.realistic import write_bundle
from repro.errors import ReproError
from repro.ind import (
    IND,
    discover_inds,
    discover_unary_inds,
    suggest_foreign_keys,
)
from repro.storage import Database, Table


@pytest.fixture
def db():
    database = Database("test")
    database.create_table(
        Table.from_rows(
            "products",
            ["pid", "category"],
            [(1, "a"), (2, "b"), (3, "a"), (4, "c")],
        )
    )
    database.create_table(
        Table.from_rows(
            "orders",
            ["oid", "pid", "backup_pid"],
            [(10, 1, 1), (11, 1, 2), (12, 3, 3), (13, 2, 2)],
        )
    )
    return database


class TestIndObject:
    def test_string_form(self):
        ind = IND("orders", ("pid",), "products", ("pid",))
        assert str(ind) == "orders[pid] ⊆ products[pid]"

    def test_canonical_pair_ordering(self):
        first = IND("r", ("b", "a"), "s", ("y", "x"))
        second = IND("r", ("a", "b"), "s", ("x", "y"))
        assert first == second
        assert hash(first) == hash(second)

    def test_arity_and_projections(self):
        ind = IND("r", ("a", "b"), "s", ("x", "y"))
        assert ind.arity == 2
        assert set(map(str, ind.unary_projections())) == {
            "r[a] ⊆ s[x]", "r[b] ⊆ s[y]",
        }

    def test_trivial(self):
        assert IND("r", ("a",), "r", ("a",)).is_trivial()
        assert not IND("r", ("a",), "r", ("b",)).is_trivial()

    def test_validation(self):
        with pytest.raises(ReproError, match="arity"):
            IND("r", ("a",), "s", ("x", "y"))
        with pytest.raises(ReproError, match="duplicate"):
            IND("r", ("a", "a"), "s", ("x", "y"))
        with pytest.raises(ReproError, match="at least one"):
            IND("r", (), "s", ())


class TestUnaryDiscovery:
    def test_finds_the_foreign_key_column(self, db):
        inds = {str(i) for i in discover_unary_inds(db)}
        assert "orders[pid] ⊆ products[pid]" in inds
        assert "orders[backup_pid] ⊆ products[pid]" in inds

    def test_no_reverse_inclusion(self, db):
        inds = {str(i) for i in discover_unary_inds(db)}
        assert "products[pid] ⊆ orders[pid]" not in inds  # 4 not in orders.pid? 4 missing

    def test_intra_table_inclusions_found(self, db):
        inds = {str(i) for i in discover_unary_inds(db)}
        # backup_pid values {1,2,3} ⊆ pid values {1,2,3} within orders.
        assert "orders[backup_pid] ⊆ orders[pid]" in inds

    def test_type_compatibility_filter(self):
        database = Database()
        database.create_table(
            Table.from_rows("r", ["num"], [(1,), (2,)])
        )
        database.create_table(
            Table.from_rows("s", ["text"], [("1",), ("2",), ("x",)])
        )
        inds = discover_unary_inds(database)
        assert not inds  # int column never compared against str column

    def test_empty_lhs_skipped_by_default(self):
        database = Database()
        database.create_table(Table.from_rows("r", ["a"], []))
        # An all-empty column is typed "str"; keep s.b textual so the
        # pair stays type-compatible.
        database.create_table(Table.from_rows("s", ["b"], [("x",)]))
        assert discover_unary_inds(database) == []
        allowed = discover_unary_inds(database, allow_empty_lhs=True)
        assert any(ind.lhs_table == "r" for ind in allowed)

    def test_nulls_ignored_on_the_lhs(self):
        database = Database()
        database.create_table(
            Table.from_rows("r", ["a"], [(1,), (None,)])
        )
        database.create_table(Table.from_rows("s", ["b"], [(1,), (2,)]))
        inds = {str(i) for i in discover_unary_inds(database)}
        assert "r[a] ⊆ s[b]" in inds


class TestNaryDiscovery:
    def test_binary_ind_found(self):
        database = Database()
        database.create_table(
            Table.from_rows(
                "ref", ["x", "y"], [(1, "a"), (2, "b"), (3, "c")]
            )
        )
        database.create_table(
            Table.from_rows(
                "src", ["p", "q"], [(1, "a"), (2, "b"), (1, "a")]
            )
        )
        inds = {str(i) for i in discover_inds(database, max_arity=2)}
        assert "src[p, q] ⊆ ref[x, y]" in inds

    def test_projections_valid_but_combination_not(self):
        database = Database()
        database.create_table(
            Table.from_rows("ref", ["x", "y"], [(1, "a"), (2, "b")])
        )
        # (1, 'b') projects into x and into y, but the pair is absent.
        database.create_table(
            Table.from_rows("src", ["p", "q"], [(1, "b")])
        )
        inds = {str(i) for i in discover_inds(database, max_arity=2)}
        assert "src[p] ⊆ ref[x]" in inds
        assert "src[q] ⊆ ref[y]" in inds
        assert "src[p, q] ⊆ ref[x, y]" not in inds

    def test_max_arity_validation(self, db):
        with pytest.raises(ReproError):
            discover_inds(db, max_arity=0)


class TestForeignKeySuggestions:
    def test_unique_rhs_required(self, db):
        suggestions = {str(i) for i in suggest_foreign_keys(db)}
        assert "orders[pid] ⊆ products[pid]" in suggestions
        # orders.pid has duplicates, so nothing should reference it.
        assert not any("⊆ orders[pid]" in s for s in suggestions)


class TestWarehouseBundle:
    def test_planted_foreign_keys_discovered(self, tmp_path):
        write_bundle(tmp_path, seed=0)
        database = Database()
        database.load_directory(tmp_path)
        suggestions = {str(i) for i in suggest_foreign_keys(database)}
        assert "orders[product] ⊆ products[product_id]" in suggestions
        assert "orders[customer] ⊆ customers[customer_id]" in suggestions
        assert "flights[origin] ⊆ airports[code]" in suggestions
        assert "flights[destination] ⊆ airports[code]" in suggestions
        assert "hospital[city] ⊆ cities[city]" in suggestions
        assert "hospital[ward] ⊆ wards[ward]" in suggestions
