"""Shared fixtures: the paper's worked example and helper factories.

Setting ``REPRO_TEST_JOBS=N`` (N > 1) re-runs the whole suite with every
:class:`~repro.core.depminer.DepMiner` defaulting to ``jobs=N``, so the
tier-1 tests double as a differential check of the sharded execution
layer (tests that pass an explicit ``jobs=`` keep their value).
``REPRO_TEST_MP_CONTEXT=spawn`` additionally defaults the worker pool's
start method, so the same differential sweep exercises spawn-mode
workers (which re-import the package instead of inheriting state by
fork).  CI runs the suite in several of these modes.
"""

from __future__ import annotations

import os

import pytest

from repro.core.attributes import Schema
from repro.core.relation import Relation
from repro.datasets import paper_example_relation

_TEST_JOBS = int(os.environ.get("REPRO_TEST_JOBS", "1"))
_TEST_MP_CONTEXT = os.environ.get("REPRO_TEST_MP_CONTEXT") or None

if _TEST_JOBS > 1 or _TEST_MP_CONTEXT:
    from repro.core.depminer import DepMiner as _DepMiner

    _serial_init = _DepMiner.__init__

    def _sharded_init(self, *args, **kwargs):
        if _TEST_JOBS > 1:
            kwargs.setdefault("jobs", _TEST_JOBS)
        if _TEST_MP_CONTEXT:
            kwargs.setdefault("mp_context", _TEST_MP_CONTEXT)
        _serial_init(self, *args, **kwargs)

    _DepMiner.__init__ = _sharded_init


@pytest.fixture
def paper_schema() -> Schema:
    """The A..E renaming of the employee/department schema."""
    return Schema(["A", "B", "C", "D", "E"])


@pytest.fixture
def paper_relation(paper_schema) -> Relation:
    """The 7-tuple relation of example 1, with short attribute names."""
    return paper_example_relation(short_names=True)


@pytest.fixture
def abcde(paper_schema):
    """Shorthand: compact-name -> AttributeSet over the paper schema."""

    def make(compact: str):
        if compact in ("", "0"):
            return paper_schema.empty()
        return paper_schema.attribute_set(list(compact))

    return make


def masks(schema, *compacts):
    """Compact attribute-set names -> sorted list of bitmasks."""
    out = []
    for compact in compacts:
        mask = 0
        for name in compact:
            mask |= 1 << schema.index_of(name)
        out.append(mask)
    return sorted(out)
