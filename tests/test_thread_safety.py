"""Thread-safety regressions exposed by the discovery daemon.

The service (``repro serve``) was the first caller to hammer the cache
layer from many threads at once, and it surfaced three latent races,
each pinned here by a test that fails on the pre-fix code:

- the :class:`~repro.cache.store.ArtifactStore` memory tier mutated a
  shared ``OrderedDict`` (``move_to_end`` in ``get``, ``popitem`` in
  ``put``) without a lock — concurrent gets against an evicting put
  raised ``KeyError``/``RuntimeError`` and corrupted the LRU order;
- :meth:`~repro.cache.incremental.IncrementalMiner.append` mutates the
  value→rows maps, the column store and the fingerprint across many
  non-atomic steps — two overlapping appends interleaved those steps
  and produced a cover disagreeing with a cold run;
- :meth:`~repro.obs.tracer.Tracer.record` back-dated relayed shard
  spans with ``start = now - seconds``, letting a span start before
  the parent that contains it (``scripts/check_trace.py`` used to
  carry an epsilon just to tolerate this).

The stress tests shrink the thread scheduler's switch interval and the
LRU capacity so the races fire within a few thousand iterations on a
single core.
"""

from __future__ import annotations

import sys
import threading

import pytest

from repro.cache import ArtifactStore, IncrementalMiner, guard_digest
from repro.core.attributes import Schema
from repro.core.depminer import DepMiner
from repro.core.relation import Relation
from repro.errors import CacheError
from repro.obs.tracer import Tracer


@pytest.fixture
def tight_switching():
    """Force frequent thread preemption so races fire quickly."""
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    try:
        yield
    finally:
        sys.setswitchinterval(previous)


def run_threads(workers):
    """Start *workers* together, join them, re-raise the first failure."""
    failures = []
    barrier = threading.Barrier(len(workers))

    def wrap(worker):
        barrier.wait()
        try:
            worker()
        except BaseException as error:  # noqa: BLE001 - relayed to pytest
            failures.append(error)

    threads = [threading.Thread(target=wrap, args=(worker,))
               for worker in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise failures[0]


# -- ArtifactStore memory tier ----------------------------------------------


class TestStoreStress:
    def test_concurrent_get_put_under_eviction(self, tight_switching):
        """Gets racing evicting puts on a tiny LRU never blow up.

        Pre-fix, ``get``'s lookup → ``move_to_end`` pair raced ``put``'s
        ``popitem`` eviction: the entry vanished between the two steps
        and ``move_to_end`` raised ``KeyError`` (or the OrderedDict
        detected concurrent mutation mid-rebalance).
        """
        guard = guard_digest(("a", "b"), 10)
        keys = [f"k{i}" for i in range(3)]
        rounds = 20000

        # Three repeats with a fresh store each: on the unlocked store a
        # single repeat trips the KeyError most of the time; three push
        # the miss probability below a few percent.
        for _ in range(3):
            store = ArtifactStore(cache_dir=None, max_memory_entries=2)

            def reader():
                for i in range(rounds):
                    payload = store.get("stress", keys[i % 3], guard)
                    if payload is not None:
                        assert payload == {"value": keys[i % 3]}

            def writer():
                for i in range(rounds):
                    key = keys[i % 3]
                    store.put("stress", key, guard, {"value": key})

            run_threads([reader, reader, reader,
                         writer, writer, writer])
            # the LRU bound survived the stampede
            assert len(store) <= 2
            stats = dict(store.stats)
            assert stats["cache.put"] == 3 * rounds
            assert stats["cache.hit"] == stats["cache.memory_hit"]
            assert stats["cache.hit"] + stats["cache.miss"] == 3 * rounds

    def test_concurrent_invalidate_and_clear(self, tight_switching):
        """invalidate/clear racing put never corrupts the tier."""
        store = ArtifactStore(cache_dir=None, max_memory_entries=4)
        guard = guard_digest(("a", "b"), 10)

        def writer():
            for i in range(2000):
                store.put("inv", f"k{i % 8}", guard, {"value": i})

        def invalidator():
            for i in range(2000):
                if i % 50 == 0:
                    store.clear()
                else:
                    store.invalidate("inv", f"k{i % 8}")

        run_threads([writer, writer, invalidator])
        assert len(store) <= 4


# -- IncrementalMiner.append -------------------------------------------------


def _seed_relation():
    rows = [(i % 3, f"v{i % 4}", i % 2) for i in range(12)]
    return Relation.from_rows(Schema(["a", "b", "c"]), rows)


def _batches(start, count, step):
    return [[(start + i, f"v{(start + i) % 5}", (start + i) % 3)
             for i in range(j, j + step)]
            for j in range(0, count, step)]


def cover_of(result):
    return sorted((fd.lhs.mask, fd.rhs) for fd in result.fds)


class TestIncrementalAppendConcurrency:
    def test_two_thread_appends_match_cold_run(self, tight_switching):
        """Concurrent appends serialize; the final cover is exact.

        Pre-fix the two appends interleaved their partition-map /
        column / fingerprint updates, so the final state disagreed with
        *any* serial order of the same batches.
        """
        miner = IncrementalMiner(_seed_relation())
        left = _batches(100, 24, 4)
        right = _batches(200, 24, 4)

        run_threads([
            lambda: [miner.append(batch) for batch in left],
            lambda: [miner.append(batch) for batch in right],
        ])

        all_rows = (list(_seed_relation().rows())
                    + [row for batch in left for row in batch]
                    + [row for batch in right for row in batch])
        assert miner.num_rows == len(all_rows)
        # Covers are a property of the row *set*; both interleavings of
        # the batches must land on the cold answer.
        cold = DepMiner().run(
            Relation.from_rows(Schema(["a", "b", "c"]), sorted(all_rows))
        )
        assert cover_of(miner.result) == cover_of(cold)
        # and the fingerprint still matches a cold fingerprint of the
        # grown relation (row order within the store is canonicalized)
        grown = miner.relation()
        assert sorted(grown.rows()) == sorted(all_rows)

    def test_reentrant_append_raises_typed_error(self):
        """append() from inside append() is a CacheError, not a deadlock.

        The documented trap: a progress/metrics callback fired during
        the delta re-mine calls back into ``append`` on the same
        thread.  The non-reentrant lock would deadlock; the owner check
        converts it into a typed error instead.
        """
        miner = IncrementalMiner(_seed_relation())
        inner = miner.miner.derive_from_agree_sets
        seen = {}

        def reentrant(*args, **kwargs):
            # simulate a callback that appends mid-append
            with pytest.raises(CacheError) as excinfo:
                miner.append([(99, "v9", 9)])
            seen["error"] = excinfo.value
            return inner(*args, **kwargs)

        miner.miner.derive_from_agree_sets = reentrant
        miner.append([(50, "v0", 1)])
        assert "re-entrant" in str(seen["error"])
        # the outer append completed despite the rejected inner one
        assert miner.num_rows == 13

    def test_cross_thread_appends_do_not_raise(self):
        """A second thread's append waits instead of raising."""
        miner = IncrementalMiner(_seed_relation())
        run_threads([
            lambda: miner.append([(61, "v1", 0)]),
            lambda: miner.append([(62, "v2", 1)]),
        ])
        assert miner.num_rows == 14


# -- Tracer.record clamping --------------------------------------------------


class TestRecordClamp:
    def test_backdated_span_clamped_to_parent_window(self):
        """A relayed span longer than its parent's life is clamped."""
        tracer = Tracer()
        with tracer.span("parent", phase=True) as parent:
            # a worker reports 100s of wall clock, but the parent span
            # opened only microseconds ago
            tracer.record("parallel.shard", seconds=100.0, kind="agree")
        shard = next(s for s in tracer.finished_spans()
                     if s.name == "parallel.shard")
        assert shard.start >= parent.start
        assert shard.start_unix >= parent.start_unix
        assert shard.end <= parent.end
        # the true duration survives for analysis tools
        assert shard.attrs["seconds"] == pytest.approx(100.0)

    def test_short_span_not_clamped(self):
        """A span that fits inside the parent keeps its real start."""
        import time

        tracer = Tracer()
        with tracer.span("parent", phase=True):
            time.sleep(0.02)
            tracer.record("parallel.shard", seconds=0.005)
        parent = next(s for s in tracer.finished_spans()
                      if s.name == "parent")
        shard = next(s for s in tracer.finished_spans()
                     if s.name == "parallel.shard")
        assert shard.start > parent.start
        assert shard.end - shard.start == pytest.approx(0.005, abs=1e-3)

    def test_exported_trace_passes_exact_containment(self, tmp_path):
        """The strict (epsilon-free) check_trace accepts clamped spans."""
        import json
        import subprocess
        import sys as _sys
        from pathlib import Path

        from repro.obs import export_jsonl

        tracer = Tracer()
        with tracer.span("root", phase=True):
            tracer.record("parallel.shard", seconds=50.0, kind="lhs",
                          shard=0, status="ok")
            tracer.record("parallel.shard", seconds=0.001, kind="lhs",
                          shard=1, status="ok")
        trace_path = tmp_path / "trace.jsonl"
        export_jsonl(trace_path, tracer=tracer,
                     meta={"command": "pytest thread-safety"})
        script = (Path(__file__).resolve().parent.parent
                  / "scripts" / "check_trace.py")
        proc = subprocess.run(
            [_sys.executable, str(script), str(trace_path)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
