"""Unit tests for streaming partition construction."""

from __future__ import annotations

import pytest

from repro.core.depminer import DepMiner
from repro.errors import StorageError
from repro.partitions.database import StrippedPartitionDatabase
from repro.partitions.streaming import mine_csv, stream_partition_database
from repro.storage.csv_io import relation_from_csv


@pytest.fixture
def csv_file(tmp_path):
    path = tmp_path / "emp.csv"
    path.write_text(
        "empnum,depnum,year\n"
        "1,1,85\n"
        "1,5,94\n"
        "2,2,92\n"
        "3,2,92\n"
    )
    return path


class TestStreamPartitionDatabase:
    def test_matches_materialised_path(self, csv_file):
        streamed = stream_partition_database(csv_file)
        materialised = StrippedPartitionDatabase.from_relation(
            relation_from_csv(csv_file, infer_types=False)
        )
        assert streamed.schema == materialised.schema
        for index in range(len(streamed.schema)):
            assert streamed.partition(index) == \
                materialised.partition(index)

    def test_no_header(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("1,a\n1,b\n")
        spdb = stream_partition_database(path, has_header=False)
        assert spdb.schema.names == ("col1", "col2")
        assert spdb.partition("col1").classes == [(0, 1)]

    def test_null_tokens_grouped_or_dropped(self, tmp_path):
        path = tmp_path / "nulls.csv"
        path.write_text("a\nNULL\nNULL\n")
        default = stream_partition_database(path)
        assert default.partition("a").classes == [(0, 1)]
        sql = stream_partition_database(path, nulls_equal=False)
        assert sql.partition("a").classes == []

    def test_ragged_row_reports_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(StorageError, match=":3"):
            stream_partition_database(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError, match="not found"):
            stream_partition_database(tmp_path / "ghost.csv")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(StorageError, match="empty"):
            stream_partition_database(path)

    def test_header_only(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("a,b\n")
        spdb = stream_partition_database(path)
        assert spdb.num_rows == 0


class TestMineCsv:
    def test_same_fds_as_materialised_mining(self, csv_file):
        streamed = mine_csv(csv_file)
        relation = relation_from_csv(csv_file, infer_types=False)
        direct = DepMiner(build_armstrong="classical").run(relation)
        assert streamed.fds == direct.fds
        assert streamed.max_union == direct.max_union

    def test_classical_armstrong_produced(self, csv_file):
        result = mine_csv(csv_file)
        assert result.classical_armstrong is not None
        assert result.armstrong is None  # values were never kept

    def test_miner_options_forwarded(self, csv_file):
        result = mine_csv(csv_file, agree_algorithm="identifiers",
                          build_armstrong="none")
        assert result.classical_armstrong is None
        assert len(result.fds) > 0

    def test_paper_example_through_streaming(self, tmp_path):
        path = tmp_path / "paper.csv"
        path.write_text(
            "A,B,C,D,E\n"
            "1,1,85,Biochemistry,5\n"
            "1,5,94,Admission,12\n"
            "2,2,92,Computer Sce,2\n"
            "3,2,98,Computer Sce,2\n"
            "4,3,98,Geophysics,2\n"
            "5,1,75,Biochemistry,5\n"
            "6,5,88,Admission,12\n"
        )
        result = mine_csv(path)
        assert len(result.fds) == 14
