"""Unit tests for the Relation container."""

from __future__ import annotations

import pytest

from repro.core.attributes import Schema
from repro.core.relation import Relation
from repro.errors import RelationError, SchemaMismatchError


@pytest.fixture
def schema():
    return Schema(["a", "b", "c"])


@pytest.fixture
def relation(schema):
    return Relation.from_rows(
        schema,
        [
            (1, "x", 10),
            (1, "y", 10),
            (2, "x", 20),
            (2, "x", 20),
        ],
    )


class TestConstruction:
    def test_from_rows(self, relation):
        assert len(relation) == 4
        assert relation.row(0) == (1, "x", 10)
        assert relation.row(3) == (2, "x", 20)

    def test_from_columns(self, schema):
        r = Relation.from_columns(schema, [[1, 2], ["x", "y"], [10, 20]])
        assert list(r.rows()) == [(1, "x", 10), (2, "y", 20)]

    def test_from_dicts_infers_schema(self):
        r = Relation.from_dicts([{"p": 1, "q": 2}, {"p": 3, "q": 4}])
        assert r.schema.names == ("p", "q")
        assert r.row(1) == (3, 4)

    def test_from_dicts_with_explicit_schema(self, schema):
        r = Relation.from_dicts(
            [{"a": 1, "b": "x", "c": 2}], schema=schema
        )
        assert r.row(0) == (1, "x", 2)

    def test_from_dicts_missing_attribute(self, schema):
        with pytest.raises(RelationError, match="missing attribute"):
            Relation.from_dicts([{"a": 1, "b": "x"}], schema=schema)

    def test_from_dicts_empty_without_schema(self):
        with pytest.raises(RelationError):
            Relation.from_dicts([])

    def test_rejects_wrong_arity(self, schema):
        with pytest.raises(RelationError, match="arity"):
            Relation.from_rows(schema, [(1, 2)])

    def test_rejects_ragged_columns(self, schema):
        with pytest.raises(RelationError, match="ragged"):
            Relation.from_columns(schema, [[1], [2, 3], [4]])

    def test_rejects_wrong_column_count(self, schema):
        with pytest.raises(RelationError, match="columns"):
            Relation.from_columns(schema, [[1], [2]])

    def test_empty_relation(self, schema):
        r = Relation.from_rows(schema, [])
        assert len(r) == 0
        assert list(r.rows()) == []


class TestAccessors:
    def test_column_by_name_and_index(self, relation):
        assert relation.column("a") == [1, 1, 2, 2]
        assert relation.column(1) == ["x", "y", "x", "x"]

    def test_row_out_of_range(self, relation):
        with pytest.raises(RelationError):
            relation.row(99)
        with pytest.raises(RelationError):
            relation.row(-1)

    def test_attributes_is_universe(self, relation):
        assert relation.attributes == relation.schema.universe()

    def test_restrict(self, relation):
        x = relation.schema.attribute_set(["a", "c"])
        assert relation.restrict(2, x) == (2, 20)

    def test_restrict_foreign_schema(self, relation):
        foreign = Schema(["a", "b", "c"])  # equal schema is fine
        assert relation.restrict(0, foreign.attribute_set(["a"])) == (1,)
        alien = Schema(["x", "y", "z"]).attribute_set(["x"])
        with pytest.raises(SchemaMismatchError):
            relation.restrict(0, alien)

    def test_distinct_values_preserve_first_seen_order(self, relation):
        assert relation.distinct_values("b") == ["x", "y"]

    def test_active_domain_sizes(self, relation):
        assert relation.active_domain_sizes() == {"a": 2, "b": 2, "c": 2}


class TestRelationalOperations:
    def test_project_distinct(self, relation):
        projected = relation.project(["a", "c"])
        assert projected.schema.names == ("a", "c")
        assert sorted(projected.rows()) == [(1, 10), (2, 20)]

    def test_project_keeps_duplicates_when_asked(self, relation):
        projected = relation.project(["a"], distinct=False)
        assert len(projected) == 4

    def test_select(self, relation):
        filtered = relation.select(lambda row: row[0] == 2)
        assert len(filtered) == 2

    def test_distinct(self, relation):
        assert len(relation.distinct()) == 3

    def test_take(self, relation):
        taken = relation.take([3, 0])
        assert list(taken.rows()) == [(2, "x", 20), (1, "x", 10)]


class TestFdChecking:
    def test_tuples_agree(self, relation):
        x = relation.schema.attribute_set(["a", "c"])
        assert relation.tuples_agree(0, 1, x)
        assert not relation.tuples_agree(0, 2, x)

    def test_agree_set_of_pair(self, relation):
        agreed = relation.agree_set_of_pair(0, 1)
        assert agreed.names == ("a", "c")
        assert relation.agree_set_of_pair(2, 3) == relation.attributes

    def test_satisfies_holds(self, relation):
        assert relation.satisfies(["a"], ["c"])
        assert relation.satisfies("a", "c")

    def test_satisfies_fails(self, relation):
        assert not relation.satisfies(["a"], ["b"])

    def test_satisfies_empty_lhs_means_constant(self, schema):
        constant = Relation.from_rows(
            schema, [(1, "x", 9), (2, "y", 9)]
        )
        assert constant.satisfies([], ["c"])
        assert not constant.satisfies([], ["a"])

    def test_satisfies_multi_attribute_rhs(self, relation):
        assert relation.satisfies(["a"], ["a", "c"])
        assert not relation.satisfies(["a"], ["b", "c"])

    def test_is_superkey(self, relation, schema):
        assert not relation.is_superkey(["a"])
        # Rows 2 and 3 are duplicates, so even R is not an instance key.
        assert not relation.is_superkey(["a", "b", "c"])
        unique = Relation.from_rows(
            schema, [(1, "x", 1), (1, "y", 2), (2, "x", 3)]
        )
        assert unique.is_superkey(["a", "b"])
        assert unique.is_superkey(["c"])
        assert not unique.is_superkey(["a"])


class TestMisc:
    def test_equality_ignores_row_order(self, schema):
        first = Relation.from_rows(schema, [(1, "x", 1), (2, "y", 2)])
        second = Relation.from_rows(schema, [(2, "y", 2), (1, "x", 1)])
        assert first == second

    def test_to_text_contains_header_and_rows(self, relation):
        text = relation.to_text()
        assert "a" in text.splitlines()[0]
        assert "x" in text

    def test_to_text_truncates(self, schema):
        r = Relation.from_rows(schema, [(i, "v", i) for i in range(30)])
        text = r.to_text(max_rows=5)
        assert "more rows" in text

    def test_repr(self, relation):
        assert "size=4" in repr(relation)
