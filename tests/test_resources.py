"""Unit tests for :mod:`repro.obs.resources` — the RSS/tracemalloc sampler."""

from __future__ import annotations

import time

import pytest

from repro.obs import ResourceSampler, Tracer, rss_bytes
from repro.obs.resources import children_rss_bytes


class TestRssBytes:
    def test_returns_positive_or_none(self):
        value = rss_bytes()
        assert value is None or value > 0

    def test_is_stable_between_calls(self):
        first, second = rss_bytes(), rss_bytes()
        if first is not None:
            # two immediate reads agree within an order of magnitude
            assert second is not None
            assert 0.1 < second / first < 10


class TestSampler:
    def test_guarantees_two_samples_on_a_sub_10ms_run(self):
        sampler = ResourceSampler(interval=60.0)
        sampler.start()
        summary = sampler.stop()
        assert summary["samples"] >= 2
        assert summary["duration_seconds"] < 1.0
        if summary["rss_supported"]:
            assert summary["rss_peak_bytes"] > 0
            assert summary["rss_start_bytes"] > 0

    def test_background_thread_samples_while_running(self):
        sampler = ResourceSampler(interval=0.002)
        sampler.start()
        time.sleep(0.05)
        summary = sampler.stop()
        assert summary["samples"] >= 5

    def test_restart_raises_and_stop_is_idempotent(self):
        sampler = ResourceSampler(interval=60.0)
        sampler.start()
        with pytest.raises(RuntimeError):
            sampler.start()
        first = sampler.stop()
        second = sampler.stop()
        assert second["samples"] == first["samples"]

    def test_context_manager(self):
        with ResourceSampler(interval=60.0) as sampler:
            pass
        assert sampler.summary()["samples"] >= 2

    def test_per_phase_attribution_follows_the_tracer(self):
        tracer = Tracer()
        sampler = ResourceSampler(interval=0.001, tracer=tracer)
        sampler.start()
        with tracer.span("run"):
            with tracer.span("agree_sets", phase=True):
                time.sleep(0.03)
            with tracer.span("lhs", phase=True):
                time.sleep(0.03)
        summary = sampler.stop()
        per_phase = summary["per_phase"]
        assert "agree_sets" in per_phase
        assert "lhs" in per_phase
        assert per_phase["agree_sets"]["samples"] >= 1
        if summary["rss_supported"]:
            assert per_phase["lhs"]["rss_peak_bytes"] > 0

    def test_attach_writes_span_attrs(self):
        tracer = Tracer()
        sampler = ResourceSampler(interval=60.0)
        sampler.start()
        with tracer.span("strip", phase=True) as span:
            with sampler.attach(span):
                pass
        sampler.stop()
        if sampler.summary()["rss_supported"]:
            assert span.attrs["rss_peak_bytes"] > 0

    def test_tracemalloc_peak_captured_when_requested(self):
        with ResourceSampler(interval=0.002,
                             trace_allocations=True) as sampler:
            blob = [list(range(1000)) for _ in range(100)]
            del blob
        summary = sampler.summary()
        assert summary["tracemalloc_peak_bytes"] is not None
        assert summary["tracemalloc_peak_bytes"] > 0

    def test_summary_shape_matches_manifest_expectations(self):
        with ResourceSampler(interval=60.0) as sampler:
            pass
        summary = sampler.summary()
        for key in ("samples", "interval_seconds", "duration_seconds",
                    "rss_supported", "rss_start_bytes", "rss_peak_bytes",
                    "rss_delta_bytes", "children_rss_peak_bytes",
                    "rss_total_peak_bytes", "tracemalloc_peak_bytes",
                    "per_phase"):
            assert key in summary


class TestChildrenRss:
    def test_returns_nonnegative_or_none(self):
        value = children_rss_bytes()
        assert value is None or value >= 0

    def test_counts_a_live_child_process(self):
        import multiprocessing

        before = children_rss_bytes()
        if before is None:
            pytest.skip("no child-RSS source on this platform")
        context = multiprocessing.get_context("fork") \
            if "fork" in multiprocessing.get_all_start_methods() \
            else multiprocessing.get_context()
        event = context.Event()
        child = context.Process(target=event.wait, args=(30,), daemon=True)
        child.start()
        try:
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if (children_rss_bytes() or 0) > 0:
                    break
                time.sleep(0.01)
            assert (children_rss_bytes() or 0) > 0
        finally:
            event.set()
            child.join(timeout=5)

    def test_sampler_totals_include_children(self):
        import multiprocessing

        if children_rss_bytes() is None:
            pytest.skip("no child-RSS source on this platform")
        context = multiprocessing.get_context("fork") \
            if "fork" in multiprocessing.get_all_start_methods() \
            else multiprocessing.get_context()
        event = context.Event()
        child = context.Process(target=event.wait, args=(30,), daemon=True)
        child.start()
        try:
            with ResourceSampler(interval=0.005) as sampler:
                time.sleep(0.05)
            summary = sampler.summary()
        finally:
            event.set()
            child.join(timeout=5)
        assert summary["children_rss_peak_bytes"] is not None
        assert summary["children_rss_peak_bytes"] > 0
        assert summary["rss_total_peak_bytes"] >= summary["rss_peak_bytes"]
