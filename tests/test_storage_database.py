"""Unit tests for the database catalog."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.storage.database import Database
from repro.storage.table import Table


@pytest.fixture
def table():
    return Table.from_rows(
        "emp", ["id", "dept"], [(1, "cs"), (2, "cs"), (3, "math")]
    )


class TestCatalog:
    def test_create_and_lookup(self, table):
        db = Database("test")
        db.create_table(table)
        assert "emp" in db
        assert db.table("emp") is table
        assert db.table_names() == ["emp"]
        assert len(db) == 1

    def test_create_refuses_overwrite(self, table):
        db = Database()
        db.create_table(table)
        with pytest.raises(StorageError, match="already exists"):
            db.create_table(table)
        db.create_table(table, replace=True)  # explicit replace is fine

    def test_drop(self, table):
        db = Database()
        db.create_table(table)
        db.drop_table("emp")
        assert "emp" not in db

    def test_drop_unknown(self):
        with pytest.raises(StorageError, match="unknown table"):
            Database().drop_table("ghost")

    def test_lookup_unknown_lists_available(self, table):
        db = Database()
        db.create_table(table)
        with pytest.raises(StorageError, match="emp"):
            db.table("ghost")

    def test_rejects_empty_name(self):
        with pytest.raises(StorageError):
            Database("")


class TestLoading:
    def test_load_csv(self, tmp_path):
        (tmp_path / "people.csv").write_text("id,name\n1,ann\n2,bob\n")
        db = Database()
        table = db.load_csv(tmp_path / "people.csv")
        assert table.name == "people"
        assert "people" in db

    def test_load_directory(self, tmp_path):
        (tmp_path / "one.csv").write_text("a\n1\n")
        (tmp_path / "two.csv").write_text("b\n2\n")
        (tmp_path / "ignore.txt").write_text("nope")
        db = Database()
        loaded = db.load_directory(tmp_path)
        assert [t.name for t in loaded] == ["one", "two"]

    def test_load_directory_rejects_file(self, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("a\n1\n")
        with pytest.raises(StorageError, match="not a directory"):
            Database().load_directory(path)


class TestProfiling:
    def test_discover_fds_over_catalogued_table(self, table):
        db = Database()
        db.create_table(table)
        result = db.discover_fds("emp")
        assert "id -> dept" in {str(fd) for fd in result.fds}

    def test_discover_fds_forwards_options(self, table):
        db = Database()
        db.create_table(table)
        result = db.discover_fds("emp", build_armstrong="none")
        assert result.armstrong is None
