"""The sharded execution layer: executor semantics + differential suite.

Two halves:

1. Unit tests of :class:`~repro.parallel.ShardedExecutor` — serial
   fallback, result ordering, bounded in-flight window, worker failure,
   per-shard timeout, cancellation through the progress channel, and
   the observability relay (synthetic spans + merged counters).
2. Differential tests pinning the determinism guarantee: ``jobs=1`` and
   ``jobs ∈ {2, 3, 4}`` produce identical FD covers, agree sets, cmax
   sets and Armstrong sizes on the paper's running example, every
   bundled dataset, seeded random relations, and the ``∅ ∈ ag(r)``
   fully-disagreeing-pair edge case — including the chunk-boundary
   couple-deduplication regression.
"""

from __future__ import annotations

import time

import pytest

from repro.core.attributes import Schema
from repro.core.depminer import DepMiner
from repro.core.relation import Relation
from repro.datagen.synthetic import generate_relation
from repro.datasets import (
    course_schedule_relation,
    paper_example_relation,
    supplier_parts_relation,
)
from repro.errors import ReproError
from repro.obs import MetricsRegistry, ProgressAborted, Tracer
from repro.parallel import (
    ShardedExecutor,
    ShardError,
    ShardTimeoutError,
    parallel_agree_sets,
    parallel_cmax_lhs,
    register_shard_kind,
    resolve_jobs,
)
from repro.partitions.database import StrippedPartitionDatabase

JOBS_GRID = (2, 3, 4)


# Test-only shard kinds (module-level: fork workers inherit the registry).

@register_shard_kind("test.square")
def _square_shard(shared, payload, metrics):
    metrics.inc("test.squared")
    metrics.observe("test.payload_size", payload)
    offset = shared["offset"] if shared else 0
    return payload * payload + offset


@register_shard_kind("test.sleep")
def _sleep_shard(shared, payload, metrics):
    time.sleep(payload)
    return payload


@register_shard_kind("test.fail")
def _fail_shard(shared, payload, metrics):
    raise ValueError(f"shard {payload} exploded")


class TestResolveJobs:
    def test_one_is_one(self):
        assert resolve_jobs(1) == 1

    def test_none_and_zero_mean_all_cores(self):
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) == resolve_jobs(None)

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            resolve_jobs(-2)


class TestShardedExecutorSerial:
    def test_map_preserves_payload_order(self):
        executor = ShardedExecutor(jobs=1)
        assert executor.map("test.square", [3, 1, 2]) == [9, 1, 4]

    def test_shared_context_reaches_the_shard(self):
        executor = ShardedExecutor(jobs=1)
        assert executor.map(
            "test.square", [2], shared={"offset": 10}
        ) == [14]

    def test_empty_map(self):
        assert ShardedExecutor(jobs=1).map("test.square", []) == []

    def test_serial_errors_propagate_unwrapped(self):
        with pytest.raises(ValueError, match="exploded"):
            ShardedExecutor(jobs=1).map("test.fail", [0])

    def test_unknown_kind(self):
        with pytest.raises(ReproError, match="unknown shard kind"):
            ShardedExecutor(jobs=1).map("test.no-such-kind", [1])

    def test_counters_merge_and_spans_record(self):
        tracer = Tracer()
        metrics = MetricsRegistry()
        executor = ShardedExecutor(jobs=1, tracer=tracer, metrics=metrics)
        executor.map("test.square", [1, 2, 3])
        assert metrics.counters["test.squared"] == 3
        assert len(tracer.find("parallel.shard")) == 3
        histogram = metrics.histograms["test.payload_size"]
        assert (histogram.count, histogram.min, histogram.max) == (3, 1, 3)

    def test_progress_abort_cancels(self):
        executor = ShardedExecutor(
            jobs=1, progress=lambda stage, done, total: False
        )
        with pytest.raises(ProgressAborted):
            executor.map("test.square", [1, 2, 3])


class TestShardedExecutorPool:
    def test_results_come_back_in_payload_order(self):
        executor = ShardedExecutor(jobs=2)
        assert executor.map("test.square", list(range(8))) == [
            n * n for n in range(8)
        ]

    def test_shared_context_ships_once_per_worker(self):
        executor = ShardedExecutor(jobs=2)
        assert executor.map(
            "test.square", [1, 2, 3], shared={"offset": 100}
        ) == [101, 104, 109]

    def test_bounded_window(self):
        executor = ShardedExecutor(jobs=2, max_pending=1)
        assert executor.map("test.square", list(range(6))) == [
            n * n for n in range(6)
        ]

    def test_worker_failure_raises_shard_error_with_traceback(self):
        executor = ShardedExecutor(jobs=2)
        with pytest.raises(ShardError, match="exploded"):
            executor.map("test.fail", [0, 1, 2])

    def test_per_shard_timeout(self):
        executor = ShardedExecutor(jobs=2, shard_timeout=0.2)
        with pytest.raises(ShardTimeoutError):
            executor.map("test.sleep", [30.0, 30.0])

    def test_progress_abort_terminates_the_pool(self):
        executor = ShardedExecutor(
            jobs=2, progress=lambda stage, done, total: False
        )
        with pytest.raises(ProgressAborted):
            executor.map("test.square", [1, 2, 3, 4])

    def test_counters_and_spans_flow_back_from_workers(self):
        tracer = Tracer()
        metrics = MetricsRegistry()
        executor = ShardedExecutor(jobs=2, tracer=tracer, metrics=metrics)
        executor.map("test.square", [1, 2, 3, 4])
        assert metrics.counters["test.squared"] == 4
        spans = tracer.find("parallel.shard")
        assert len(spans) == 4
        assert all(span.attrs["kind"] == "test.square" for span in spans)
        assert all(span.duration >= 0 for span in spans)

    def test_histograms_flow_back_from_workers(self):
        metrics = MetricsRegistry()
        executor = ShardedExecutor(jobs=2, metrics=metrics)
        executor.map("test.square", [5, 1, 3])
        histogram = metrics.histograms["test.payload_size"]
        assert (histogram.count, histogram.total) == (3, 9)
        assert (histogram.min, histogram.max) == (1, 5)

    def test_invalid_parameters(self):
        with pytest.raises(ReproError):
            ShardedExecutor(jobs=2, shard_timeout=0)
        with pytest.raises(ReproError):
            ShardedExecutor(jobs=2, max_pending=0)


# -- differential: jobs=1 vs jobs>1 on the full pipeline ---------------------


def canonical_cover(fds):
    return sorted((fd.lhs.mask, fd.rhs_index) for fd in fds)


def assert_identical_results(relation: Relation, jobs: int,
                             **miner_options) -> None:
    serial = DepMiner(jobs=1, **miner_options).run(relation)
    sharded = DepMiner(jobs=jobs, **miner_options).run(relation)
    assert sharded.agree_sets == serial.agree_sets
    assert sharded.max_sets == serial.max_sets
    assert sharded.cmax_sets == serial.cmax_sets
    assert sharded.lhs_sets == serial.lhs_sets
    assert canonical_cover(sharded.fds) == canonical_cover(serial.fds)
    assert sharded.max_union == serial.max_union
    assert sharded.armstrong_size == serial.armstrong_size
    if serial.armstrong is not None:
        assert list(sharded.armstrong.rows()) == list(serial.armstrong.rows())


BUNDLED = {
    "paper_example": paper_example_relation,
    "course_schedule": course_schedule_relation,
    "supplier_parts": supplier_parts_relation,
}


class TestDifferentialJobs:
    @pytest.mark.parametrize("jobs", JOBS_GRID)
    @pytest.mark.parametrize("dataset", sorted(BUNDLED))
    def test_bundled_datasets(self, dataset, jobs):
        assert_identical_results(BUNDLED[dataset](), jobs)

    @pytest.mark.parametrize("jobs", JOBS_GRID)
    @pytest.mark.parametrize("algorithm", ["couples", "identifiers",
                                           "vectorized"])
    def test_every_agree_algorithm(self, algorithm, jobs):
        assert_identical_results(
            paper_example_relation(), jobs, agree_algorithm=algorithm
        )

    @pytest.mark.parametrize("jobs", JOBS_GRID)
    def test_couples_with_chunking(self, jobs):
        assert_identical_results(
            paper_example_relation(), jobs, max_couples=2
        )

    @pytest.mark.parametrize("jobs", JOBS_GRID)
    @pytest.mark.parametrize("seed", range(4))
    def test_seeded_random_relations(self, seed, jobs):
        relation = generate_relation(
            5 + seed % 3, 40 + 10 * seed,
            correlation=(None, 0.3, 0.5, 0.7)[seed % 4], seed=seed,
        )
        assert_identical_results(relation, jobs)

    @pytest.mark.parametrize("jobs", JOBS_GRID)
    def test_transversal_methods(self, jobs):
        for method in ("levelwise", "berge", "dfs"):
            assert_identical_results(
                paper_example_relation(), jobs, transversal_method=method,
                build_armstrong="none",
            )

    def test_max_lhs_size_cap(self):
        assert_identical_results(
            paper_example_relation(), 2, max_lhs_size=1,
            build_armstrong="none",
        )

    def test_jobs_recorded_in_phase_spans(self):
        tracer = Tracer()
        DepMiner(jobs=2, tracer=tracer).run(paper_example_relation())
        agree_span = tracer.find("agree_sets")[0]
        assert agree_span.attrs["jobs"] == 2
        assert tracer.find("parallel.shard")


class TestEmptyAgreeSetEdgeCase:
    """``∅ ∈ ag(r)``: a pair of tuples disagreeing on every attribute."""

    @staticmethod
    def fully_disagreeing_relation() -> Relation:
        schema = Schema(["A", "B", "C"])
        # Rows 2 and 3 share no value on any attribute, so the couple
        # (2, 3) never appears in any stripped class: ∅ ∈ ag(r).
        return Relation.from_rows(schema, [
            ("x", "u", "p"),
            ("x", "u", "q"),
            ("x", "v", "r"),
            ("y", "u", "s"),
        ])

    def test_serial_baseline_has_the_empty_agree_set(self):
        result = DepMiner(jobs=1).run(self.fully_disagreeing_relation())
        assert 0 in result.agree_sets

    @pytest.mark.parametrize("jobs", JOBS_GRID)
    @pytest.mark.parametrize("algorithm", ["couples", "identifiers"])
    def test_sharded_runs_detect_it_too(self, algorithm, jobs):
        relation = self.fully_disagreeing_relation()
        assert_identical_results(relation, jobs, agree_algorithm=algorithm)
        result = DepMiner(jobs=jobs, agree_algorithm=algorithm).run(relation)
        assert 0 in result.agree_sets

    @pytest.mark.parametrize("jobs", JOBS_GRID)
    def test_single_couple_chunks_cross_shard_boundaries(self, jobs):
        """The chunk-boundary regression, sharded: the couple (0, 1)
        lives in two overlapping maximal classes; with one couple per
        chunk a per-shard count would double-count it (6 = C(4,2))
        and mask ∅.  The distinct count must stay 5."""
        relation = self.fully_disagreeing_relation()
        spdb = StrippedPartitionDatabase.from_relation(relation)
        executor = ShardedExecutor(jobs=jobs)
        stats = {}
        agree = parallel_agree_sets(
            spdb, executor, max_couples=1, stats=stats
        )
        assert stats["num_couples"] == 5
        assert stats["num_chunks"] == 5
        assert 0 in agree
        serial = DepMiner(jobs=1).run(relation)
        assert agree == serial.agree_sets


class TestParallelOrchestrators:
    def test_parallel_agree_rejects_unknown_algorithm(self):
        spdb = StrippedPartitionDatabase.from_relation(
            paper_example_relation()
        )
        with pytest.raises(ReproError, match="vectorized"):
            parallel_agree_sets(
                spdb, ShardedExecutor(jobs=2), algorithm="vectorized"
            )

    def test_parallel_agree_rejects_max_couples_for_identifiers(self):
        spdb = StrippedPartitionDatabase.from_relation(
            paper_example_relation()
        )
        with pytest.raises(ReproError, match="max_couples"):
            parallel_agree_sets(
                spdb, ShardedExecutor(jobs=2), algorithm="identifiers",
                max_couples=8,
            )

    def test_parallel_cmax_lhs_rejects_max_size_off_levelwise(self):
        relation = paper_example_relation()
        with pytest.raises(ReproError, match="levelwise"):
            parallel_cmax_lhs(
                [], relation.schema, ShardedExecutor(jobs=2),
                method="berge", max_size=2,
            )

    def test_cmax_lhs_matches_the_serial_phases(self):
        from repro.core.agree_sets import agree_sets_from_couples
        from repro.core.lhs import left_hand_sides
        from repro.core.maximal_sets import (
            complement_maximal_sets,
            maximal_sets,
        )

        relation = course_schedule_relation()
        schema = relation.schema
        spdb = StrippedPartitionDatabase.from_relation(relation)
        agree = agree_sets_from_couples(spdb)
        expected_max = maximal_sets(agree, schema)
        expected_cmax = complement_maximal_sets(expected_max, schema)
        expected_lhs = left_hand_sides(expected_cmax, schema)
        for jobs in (1,) + JOBS_GRID:
            max_sets, cmax, lhs = parallel_cmax_lhs(
                sorted(agree), schema, ShardedExecutor(jobs=jobs)
            )
            assert max_sets == expected_max
            assert cmax == expected_cmax
            assert lhs == expected_lhs


class TestCliJobs:
    def test_discover_jobs_output_is_byte_identical(self, tmp_path, capsys):
        from repro.cli import main
        from repro.storage.csv_io import relation_to_csv

        path = tmp_path / "paper.csv"
        relation_to_csv(paper_example_relation(), str(path), name="paper")
        outputs = {}
        for jobs in (1, 2, 4):
            assert main(["discover", str(path), "--jobs", str(jobs)]) == 0
            outputs[jobs] = capsys.readouterr().out
        assert outputs[1] == outputs[2] == outputs[4]
        assert outputs[1].count("->") == 14
