"""Unit tests for the TANE baseline."""

from __future__ import annotations

import random

import pytest

from repro.core.attributes import Schema
from repro.core.depminer import discover_fds
from repro.core.relation import Relation
from repro.errors import ReproError
from repro.fd.bruteforce import bruteforce_minimal_fds
from repro.partitions.partition import stripped_partition_of_column
from repro.tane.tane import Tane, g3_error


class TestConfiguration:
    def test_rejects_bad_epsilon(self):
        with pytest.raises(ReproError):
            Tane(epsilon=-0.1)
        with pytest.raises(ReproError):
            Tane(epsilon=1.0)

    def test_rejects_bad_max_level(self):
        with pytest.raises(ReproError):
            Tane(max_level=0)


class TestExactDiscovery:
    def test_matches_depminer_on_paper_example(self, paper_relation):
        tane = Tane().run(paper_relation)
        depminer = discover_fds(paper_relation)
        assert tane.fds == depminer

    def test_superkey_pruning_regression(self):
        """All level-2 nodes are superkeys: FDs must still be emitted by
        the key-pruning rule (the deletion-order bug this guards against
        silently dropped half the paper example's FDs)."""
        schema = Schema.of_width(3)
        relation = Relation.from_rows(
            schema, [(1, 1, "x"), (1, 2, "y"), (2, 1, "y"), (2, 2, "x")]
        )
        tane = Tane().run(relation)
        expected = bruteforce_minimal_fds(relation)
        assert tane.fds == expected

    @pytest.mark.parametrize("seed", range(25))
    def test_matches_brute_force_on_random_relations(self, seed):
        rng = random.Random(seed)
        width = rng.randint(1, 5)
        num_rows = rng.randint(0, 14)
        schema = Schema.of_width(width)
        relation = Relation.from_rows(
            schema,
            [
                tuple(rng.randint(0, 2) for _ in range(width))
                for _ in range(num_rows)
            ],
        )
        assert Tane().run(relation).fds == bruteforce_minimal_fds(relation)

    def test_constant_column(self):
        schema = Schema.of_width(2)
        relation = Relation.from_rows(schema, [(1, 9), (2, 9), (3, 9)])
        fds = Tane().run(relation).fds
        assert "∅ -> B" in {str(fd) for fd in fds}

    def test_empty_relation(self):
        schema = Schema.of_width(2)
        relation = Relation.from_rows(schema, [])
        fds = Tane().run(relation).fds
        assert {str(fd) for fd in fds} == {"∅ -> A", "∅ -> B"}

    def test_level_sizes_recorded(self, paper_relation):
        result = Tane().run(paper_relation)
        assert result.level_sizes[0] == 5
        assert all(size > 0 for size in result.level_sizes)

    def test_max_level_caps_the_walk(self, paper_relation):
        capped = Tane(max_level=1).run(paper_relation)
        assert len(capped.level_sizes) == 1
        # Level 1 can only find constant-column FDs; there are none.
        assert capped.fds == []

    def test_phase_timings(self, paper_relation):
        result = Tane().run(paper_relation)
        assert set(result.phase_seconds) == {"strip", "lattice"}
        assert result.total_seconds >= 0

    def test_summary(self, paper_relation):
        assert "exact" in Tane().run(paper_relation).summary()
        assert "approximate" in Tane(epsilon=0.1).run(paper_relation).summary()


class TestLhsSets:
    def test_lhs_sets_add_trivial_singleton(self, paper_relation):
        result = Tane().run(paper_relation)
        schema = paper_relation.schema
        lhs = result.lhs_sets()
        a = schema.index_of("A")
        assert (1 << a) in lhs[a]

    def test_lhs_sets_keep_empty_for_constant(self):
        schema = Schema.of_width(2)
        relation = Relation.from_rows(schema, [(1, 9), (2, 9)])
        lhs = Tane().run(relation).lhs_sets()
        b = schema.index_of("B")
        assert lhs[b] == [0]  # ∅ -> B; {B} must not be added back

    def test_lhs_sets_match_depminer(self, paper_relation):
        from repro.core.depminer import DepMiner

        tane_lhs = Tane().run(paper_relation).lhs_sets()
        depminer_lhs = DepMiner().run(paper_relation).lhs_sets
        assert {a: sorted(m) for a, m in tane_lhs.items()} == \
            {a: sorted(m) for a, m in depminer_lhs.items()}


class TestG3Error:
    def test_zero_when_fd_holds(self):
        lhs = stripped_partition_of_column([1, 1, 2, 2])
        whole = stripped_partition_of_column([(1, "a"), (1, "a"),
                                              (2, "b"), (2, "b")])
        assert g3_error(lhs, whole, 4) == 0.0

    def test_counts_minimum_removals(self):
        # lhs class {0,1,2} splits into sizes 2 and 1 => remove 1 of 4.
        lhs = stripped_partition_of_column([1, 1, 1, 2])
        whole = stripped_partition_of_column(
            [(1, "a"), (1, "a"), (1, "b"), (2, "a")]
        )
        assert g3_error(lhs, whole, 4) == pytest.approx(0.25)

    def test_empty_relation(self):
        empty = stripped_partition_of_column([])
        assert g3_error(empty, empty, 0) == 0.0


class TestApproximateDiscovery:
    def test_approximate_finds_almost_fd(self):
        # B -> A holds except for one violating row out of ten.
        schema = Schema.of_width(2)
        rows = [(i // 2, i // 2) for i in range(9)] + [(9, 0)]
        # B column: 0,0,1,1,2,2,3,3,4,0 ; A: 0,0,1,1,2,2,3,3,4,9
        relation = Relation.from_rows(
            schema, [(a, b) for (a, b) in rows]
        )
        exact = {str(fd) for fd in Tane().run(relation).fds}
        approximate = {
            str(fd) for fd in Tane(epsilon=0.2).run(relation).fds
        }
        assert "B -> A" not in exact
        assert "B -> A" in approximate

    def test_epsilon_zero_equals_exact(self, paper_relation):
        assert Tane(epsilon=0.0).run(paper_relation).fds == \
            Tane().run(paper_relation).fds

    @pytest.mark.parametrize("epsilon", [0.05, 0.15, 0.3])
    def test_reported_approximate_fds_meet_the_error_bound(self, epsilon):
        """Soundness: every reported FD has g3 <= epsilon, verified by
        direct partition computation on the relation."""
        import random

        from repro.partitions.partition import (
            partition_product,
            stripped_partition_of_column,
        )

        rng = random.Random(7)
        schema = Schema.of_width(4)
        relation = Relation.from_rows(
            schema,
            [
                tuple(rng.randint(0, 3) for _ in range(4))
                for _ in range(40)
            ],
        )
        columns = {
            a: stripped_partition_of_column(relation.column(a))
            for a in range(4)
        }

        def partition_of(mask):
            current = None
            for a in range(4):
                if mask & (1 << a):
                    current = columns[a] if current is None else \
                        partition_product(current, columns[a])
            return current

        for fd in Tane(epsilon=epsilon).run(relation).fds:
            lhs_partition = partition_of(fd.lhs.mask)
            whole = partition_of(fd.lhs.mask | fd.rhs_mask)
            if lhs_partition is None:
                # lhs = ∅: error = 1 - max value frequency / n.
                from collections import Counter

                top = Counter(
                    relation.column(fd.rhs_index)
                ).most_common(1)[0][1]
                error = 1 - top / len(relation)
            else:
                error = g3_error(lhs_partition, whole, len(relation))
            assert error <= epsilon + 1e-12, (str(fd), error)

    def test_approximate_is_superset_of_exact_rhs_coverage(self, paper_relation):
        """Every exactly-valid minimal FD is at least *implied* by the
        approximate output (an approximate lhs can only be smaller)."""
        exact = Tane().run(paper_relation).fds
        approx = Tane(epsilon=0.3).run(paper_relation).fds
        for fd in exact:
            assert any(
                other.rhs_index == fd.rhs_index
                and other.lhs.mask & ~fd.lhs.mask == 0
                for other in approx
            ), str(fd)
