"""Backend conformance: python and columnar covers are bit-for-bit equal.

The grid sweep over the brute-force-validated corpus lives in
``tests/test_differential_miners.py``; this module covers the cases
brute force cannot reach and the cross-cutting concerns of the
columnar backend:

* the structured 70-attribute **lane-boundary relation** — agree-set
  masks straddle bit 63, so every uint64-packed stage (columnar agree
  resolution, packed cmax, the lane-packed transversal kernel) must
  reassemble multi-lane masks correctly.  The serial python backend is
  the oracle (itself brute-force-validated on narrow schemas);
* the full backend ∈ {python, columnar} × jobs ∈ {1, 2} × cache on/off
  grid on that wide relation, including warm cache replays;
* trace conformance — the columnar pipeline emits the same phase spans
  (strip, agree_sets, cmax, lhs, fd_output) as the python one, tagged
  ``backend="columnar"``, so ``phase_seconds`` consumers never notice
  the backend swap;
* cache-key separation — artifacts written by one backend are keyed by
  that backend, so switching backends over the same store re-mines
  rather than replaying the other backend's artifacts (and still
  produces the identical cover).
"""

from __future__ import annotations

import pytest

from repro.cache import ArtifactStore
from repro.columnar import numpy_available
from repro.core.depminer import DepMiner
from repro.obs import Tracer
from tests.oracle import (
    WIDE_ATTRS,
    assert_backend_grid_agrees,
    canonical_cover,
    python_oracle_cover,
    wide_lane_boundary_relation,
)

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="columnar backend needs NumPy"
)

PHASES = ("strip", "agree_sets", "cmax", "lhs", "fd_output")


class TestWideLaneBoundary:
    """The >63-attribute relation every packed kernel must survive."""

    def test_masks_straddle_the_lane_boundary(self):
        relation = wide_lane_boundary_relation()
        assert len(relation.schema) == WIDE_ATTRS > 63
        result = DepMiner(backend="python", build_armstrong="none").run(
            relation
        )
        assert any(mask >> 63 for mask in result.agree_sets), (
            "the wide fixture must produce agree sets crossing bit 63 "
            "or it does not pin the lane boundary at all"
        )
        assert result.fds, "a non-trivial cover is expected"

    def test_backend_grid_agrees_on_wide_relation(self):
        relation = wide_lane_boundary_relation()
        assert_backend_grid_agrees(relation)

    def test_shm_and_pool_mode_grid_agrees(self):
        """backend × shm on/off × pool persistent/ephemeral, jobs=2.

        The zero-copy dispatch dimensions of the tentpole: forcing the
        shared-memory arena on (or off) and swapping the persistent
        pool for a per-map one must never change a single bit of the
        cover.  Cache cells are skipped — warm replay is orthogonal to
        how shards travel."""
        relation = wide_lane_boundary_relation()
        assert_backend_grid_agrees(
            relation, jobs_values=(2,), cache_values=(False,),
            shm_values=(False, True),
            pool_modes=("persistent", "ephemeral"),
        )

    @needs_numpy
    def test_columnar_agree_sets_match_python(self):
        relation = wide_lane_boundary_relation()
        python = DepMiner(backend="python", build_armstrong="none").run(
            relation
        )
        columnar = DepMiner(backend="columnar",
                            build_armstrong="none").run(relation)
        assert columnar.agree_sets == python.agree_sets
        assert columnar.cmax_sets == python.cmax_sets
        assert columnar.lhs_sets == python.lhs_sets


@needs_numpy
class TestColumnarTraceConformance:
    def test_columnar_emits_the_same_phase_spans(self):
        relation = wide_lane_boundary_relation()
        tracer = Tracer()
        DepMiner(backend="columnar", build_armstrong="none",
                 tracer=tracer).run(relation)
        spans = {span.name: span for span in tracer.spans}
        for phase in PHASES:
            assert phase in spans, f"columnar run missing {phase} span"
            assert spans[phase].attrs.get("phase") is True
        assert spans["strip"].attrs.get("backend") == "columnar"
        assert spans["agree_sets"].attrs.get("algorithm") == "columnar"

    def test_phase_seconds_cover_the_pipeline(self):
        relation = wide_lane_boundary_relation()
        result = DepMiner(backend="columnar",
                          build_armstrong="none").run(relation)
        for phase in PHASES:
            assert phase in result.phase_seconds


@needs_numpy
class TestBackendCacheSeparation:
    def test_backends_do_not_share_artifacts(self):
        relation = wide_lane_boundary_relation()
        oracle = python_oracle_cover(relation)
        store = ArtifactStore()
        first = DepMiner(backend="columnar", cache=store,
                         build_armstrong="none").run(relation)
        assert canonical_cover(first.fds) == oracle
        misses_after_columnar = store.stats["cache.miss"]
        # The python backend over the same store must re-mine (its keys
        # differ), not replay columnar-keyed artifacts …
        second = DepMiner(backend="python", cache=store,
                          build_armstrong="none").run(relation)
        assert canonical_cover(second.fds) == oracle
        assert store.stats["cache.miss"] > misses_after_columnar
        # … while a warm columnar rerun replays from the store.
        hits_before = store.stats.get("cache.memory_hit", 0)
        third = DepMiner(backend="columnar", cache=store,
                         build_armstrong="none").run(relation)
        assert canonical_cover(third.fds) == oracle
        assert store.stats["cache.memory_hit"] > hits_before
