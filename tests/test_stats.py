"""Unit tests for pipeline statistics counters."""

from __future__ import annotations

from repro.core.depminer import DepMiner
from repro.datagen.synthetic import generate_relation


class TestDepMinerStats:
    def test_paper_example_counters(self, paper_relation):
        stats = DepMiner().run(paper_relation).stats
        assert stats["num_maximal_classes"] == 4    # example 4
        assert stats["largest_maximal_class"] == 3  # {3,4,5}
        assert stats["num_couples"] == 6            # example 5
        assert stats["num_agree_sets"] == 5         # {∅,A,BDE,CE,E}
        assert stats["num_maximal_sets"] == 3       # {A,BDE,CE}
        assert stats["num_fds"] == 14               # example 11

    def test_chunk_counter(self, paper_relation):
        stats = DepMiner(max_couples=2).run(paper_relation).stats
        assert stats["num_chunks"] == 3  # 6 couples in chunks of 2

    def test_identifiers_variant_counts_couples(self, paper_relation):
        # jobs=1 pinned: the serial identifiers algorithm never chunks;
        # the sharded path always does (and reports num_chunks).
        stats = DepMiner(
            jobs=1, agree_algorithm="identifiers"
        ).run(paper_relation).stats
        assert stats["num_couples"] == 6
        assert "num_chunks" not in stats

    def test_counters_scale_with_input(self):
        small = DepMiner().run(
            generate_relation(4, 50, correlation=0.5, seed=0)
        ).stats
        large = DepMiner().run(
            generate_relation(4, 500, correlation=0.5, seed=0)
        ).stats
        assert large["num_couples"] > small["num_couples"]

    def test_empty_relation_counters(self):
        from repro.core.attributes import Schema
        from repro.core.relation import Relation

        relation = Relation.from_rows(Schema.of_width(2), [])
        stats = DepMiner().run(relation).stats
        assert stats["num_couples"] == 0
        assert stats["num_maximal_classes"] == 0
        assert stats["num_fds"] == 2  # the two constant-column FDs
