"""The reliability layer: fault plans, retry/degradation, quarantine.

Four halves plus the acceptance sweep:

1. Unit tests of :class:`FaultSpec` / :class:`FaultPlan` — validation,
   (de)serialization, trigger evaluation (``calls``, ``probability``,
   ``match``, ``times``) and its determinism across fresh plan copies.
2. The instrumentation hooks — :func:`fault_point`,
   :func:`filter_bytes`, :func:`wrap_text_stream` — including the
   injection counters flowing into both the bound and the call-site
   metrics registry.
3. The sharded executor's recovery ladder: per-shard retry with
   deterministic backoff, the poisoned-pool detector, and graceful
   degradation to serial (persistent per-executor, results unchanged).
4. The artifact store's disk-tier quarantine (IO errors disable the
   tier, never the miner) and the atomic-write crash window.

The differential sweep at the bottom pins the contract from
``docs/reliability.md``: with *any* plan active, a mining run either
returns the exact cover of a fault-free run or raises a typed
:class:`~repro.errors.ReproError` — never a silently wrong answer.
"""

from __future__ import annotations

import io

import pytest

from repro.cache import ArtifactStore, guard_digest
from repro.core.depminer import DepMiner
from repro.datagen.synthetic import generate_relation
from repro.datasets import paper_example_relation
from repro.errors import (
    ReliabilityError,
    ReproError,
    StorageError,
)
from repro.obs import MetricsRegistry, Tracer
from repro.parallel import ShardedExecutor, ShardError, register_shard_kind
from repro.partitions.streaming import stream_partition_database
from repro.reliability import (
    KNOWN_SITES,
    DEFAULT_RETRY_POLICY,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    current_plan,
    fault_plan_active,
    fault_point,
    filter_bytes,
    filter_text,
    load_fault_plan,
    wrap_text_stream,
)
from repro.storage.csv_io import read_csv, relation_to_csv, write_csv


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test must leave the process without an active plan."""
    assert current_plan() is None
    yield
    assert current_plan() is None


def plan(*specs, seed=0, name="test-plan") -> FaultPlan:
    return FaultPlan([FaultSpec(**spec) for spec in specs],
                     seed=seed, name=name)


# Shard kind raising a *typed* library error: deterministic, never retried.
@register_shard_kind("test.fail_typed")
def _fail_typed_shard(shared, payload, metrics):
    raise ReproError(f"typed failure on {payload}")


@register_shard_kind("test.reliability_square")
def _square_shard(shared, payload, metrics):
    return payload * payload


# ---------------------------------------------------------------------------
# FaultSpec / FaultPlan


class TestFaultSpec:
    def test_requires_site(self):
        with pytest.raises(ReliabilityError, match="site"):
            FaultSpec.from_dict({"kind": "error"})

    def test_rejects_unknown_kind(self):
        with pytest.raises(ReliabilityError, match="unknown fault kind"):
            FaultSpec("parallel.shard", kind="explode")

    def test_rejects_unknown_error_type(self):
        with pytest.raises(ReliabilityError, match="unknown error type"):
            FaultSpec("parallel.shard", error="KeyboardInterrupt")

    def test_rejects_repro_errors_as_injectables(self):
        # Injected faults exercise recovery paths; they must never
        # imitate typed library failures.
        with pytest.raises(ReliabilityError):
            FaultSpec("parallel.shard", error="ReproError")

    def test_rejects_bad_probability_times_calls(self):
        with pytest.raises(ReliabilityError, match="probability"):
            FaultSpec("parallel.shard", probability=1.5)
        with pytest.raises(ReliabilityError, match="times"):
            FaultSpec("parallel.shard", times=0)
        with pytest.raises(ReliabilityError, match="1-based"):
            FaultSpec("parallel.shard", calls=[0])

    def test_rejects_unknown_fields(self):
        with pytest.raises(ReliabilityError, match="sitee"):
            FaultSpec.from_dict({"sitee": "parallel.shard"})

    def test_round_trips_through_dict(self):
        spec = FaultSpec("cache.disk_read", kind="truncate", truncate=7,
                         calls=[2, 3], probability=0.5,
                         match={"kind": ["agree", "fds"]}, times=2)
        clone = FaultSpec.from_dict(spec.to_dict())
        assert clone.to_dict() == spec.to_dict()

    def test_match_supports_equality_and_membership(self):
        spec = FaultSpec("s", match={"index": [0, 2], "pool": True})
        assert spec.matches_context({"index": 0, "pool": True})
        assert not spec.matches_context({"index": 1, "pool": True})
        assert not spec.matches_context({"index": 0, "pool": False})
        assert not spec.matches_context({})

    def test_build_error_type_and_message(self):
        spec = FaultSpec("s", error="TimeoutError", message="boom")
        error = spec.build_error(3)
        assert isinstance(error, TimeoutError)
        assert str(error) == "boom"
        default = FaultSpec("s").build_error(2)
        assert "call 2" in str(default)


class TestFaultPlan:
    def test_from_json_rejects_garbage(self):
        with pytest.raises(ReliabilityError, match="not valid JSON"):
            FaultPlan.from_json("{nope")
        with pytest.raises(ReliabilityError, match="unknown fault plan"):
            FaultPlan.from_json('{"seeed": 1}')
        with pytest.raises(ReliabilityError, match="list"):
            FaultPlan.from_json('{"faults": "x"}')

    def test_calls_trigger_is_one_based_and_per_site(self):
        p = plan({"site": "storage.read", "calls": [2]})
        assert p.select("storage.read", {}, ("error",))[0] is None
        spec, call = p.select("storage.read", {}, ("error",))
        assert spec is not None and call == 2
        # other sites keep their own counters
        assert p.select("storage.write", {}, ("error",))[0] is None

    def test_times_makes_the_fault_transient(self):
        p = plan({"site": "storage.read", "times": 2})
        fired = [p.select("storage.read", {}, ("error",))[0] is not None
                 for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_probability_draws_are_deterministic(self):
        def run():
            p = plan({"site": "storage.read", "probability": 0.5}, seed=42)
            return [p.select("storage.read", {}, ("error",))[0] is not None
                    for _ in range(32)]

        first, second = run(), run()
        assert first == second
        assert any(first) and not all(first)  # actually probabilistic

    def test_seed_changes_the_injection_pattern(self):
        def pattern(seed):
            p = plan({"site": "storage.read", "probability": 0.5}, seed=seed)
            return tuple(
                p.select("storage.read", {}, ("error",))[0] is not None
                for _ in range(64)
            )

        assert pattern(1) != pattern(2)

    def test_serialized_copy_starts_with_fresh_counters(self):
        p = plan({"site": "storage.read", "times": 1})
        assert p.select("storage.read", {}, ("error",))[0] is not None
        clone = FaultPlan.from_dict(p.to_dict())
        assert clone.select("storage.read", {}, ("error",))[0] is not None
        assert p.select("storage.read", {}, ("error",))[0] is None

    def test_load_fault_plan(self, tmp_path):
        path = tmp_path / "chaos.json"
        path.write_text('{"seed": 3, "faults": [{"site": "storage.read"}]}')
        loaded = load_fault_plan(path)
        assert loaded.seed == 3
        assert loaded.name == "chaos"  # defaults to the file stem
        with pytest.raises(ReliabilityError, match="cannot read"):
            load_fault_plan(tmp_path / "missing.json")

    def test_known_sites_cover_the_instrumented_layers(self):
        assert {"parallel.shard", "cache.disk_read", "cache.disk_write",
                "storage.read", "storage.write",
                "partitions.stream"} == set(KNOWN_SITES)


# ---------------------------------------------------------------------------
# the hooks


class TestHooks:
    def test_fault_point_is_a_noop_without_a_plan(self):
        fault_point("storage.read", path="x")  # must not raise

    def test_fault_point_raises_the_configured_error(self):
        with fault_plan_active(plan({"site": "storage.read",
                                     "error": "OSError"})):
            with pytest.raises(OSError):
                fault_point("storage.read", path="x")

    def test_fault_point_honours_match_context(self):
        p = plan({"site": "storage.read", "match": {"path": "a.csv"}})
        with fault_plan_active(p):
            fault_point("storage.read", path="b.csv")  # no match, no raise
            with pytest.raises(OSError):
                fault_point("storage.read", path="a.csv")

    def test_filter_bytes_and_text_truncate(self):
        p = plan({"site": "cache.disk_read", "kind": "truncate",
                  "truncate": 4})
        with fault_plan_active(p):
            assert filter_bytes("cache.disk_read", b"abcdefgh") == b"abcd"
        with fault_plan_active(plan({"site": "storage.read",
                                     "kind": "truncate", "truncate": 2})):
            assert filter_text("storage.read", "abcdef") == "ab"
        assert filter_bytes("cache.disk_read", b"abcdefgh") == b"abcdefgh"

    def test_wrap_text_stream_only_buffers_when_needed(self):
        handle = io.StringIO("A,B\n1,2\n")
        # no truncate specs for the site: the original handle comes back
        with fault_plan_active(plan({"site": "storage.read"})):
            assert wrap_text_stream("partitions.stream", handle) is handle
        with fault_plan_active(plan({"site": "partitions.stream",
                                     "kind": "truncate", "truncate": 5})):
            wrapped = wrap_text_stream("partitions.stream", handle)
            assert wrapped is not handle
            assert wrapped.read() == "A,B\n1"

    def test_injections_count_into_both_registries(self):
        bound, local = MetricsRegistry(), MetricsRegistry()
        p = plan({"site": "storage.read"})
        with fault_plan_active(p, metrics=bound):
            with pytest.raises(OSError):
                fault_point("storage.read", metrics=local, path="x")
        for registry in (bound, local):
            assert registry.counters["reliability.injected"] == 1
            assert registry.counters["reliability.injected.storage.read"] == 1
        assert p.injected_total() == 1

    def test_one_registry_is_not_double_counted(self):
        registry = MetricsRegistry()
        with fault_plan_active(plan({"site": "storage.read"}),
                               metrics=registry):
            with pytest.raises(OSError):
                fault_point("storage.read", metrics=registry, path="x")
        assert registry.counters["reliability.injected"] == 1

    def test_nested_activation_restores_the_outer_plan(self):
        outer, inner = plan({"site": "storage.read"}), \
            plan({"site": "storage.write"})
        with fault_plan_active(outer):
            with fault_plan_active(inner):
                assert current_plan() is inner
            assert current_plan() is outer


# ---------------------------------------------------------------------------
# executor: retry, poisoning, degradation


def shard_fault(**overrides):
    base = {"site": "parallel.shard", "kind": "error", "error": "OSError"}
    base.update(overrides)
    return base


class TestExecutorRetry:
    def test_transient_fault_is_retried_and_recovers(self):
        metrics = MetricsRegistry()
        tracer = Tracer()
        executor = ShardedExecutor(jobs=1, retries=2, retry_backoff=0.001,
                                   tracer=tracer, metrics=metrics)
        with fault_plan_active(plan(shard_fault(times=1)), metrics=metrics):
            assert executor.map(
                "test.reliability_square", [2, 3]
            ) == [4, 9]
        assert metrics.counters["parallel.retry"] == 1
        assert metrics.counters["reliability.injected"] == 1
        assert len(tracer.find("reliability.retry")) == 1
        assert not executor.degraded

    def test_persistent_fault_exhausts_retries_serially(self):
        executor = ShardedExecutor(jobs=1, retries=1, retry_backoff=0.001)
        with fault_plan_active(plan(shard_fault(probability=1.0))):
            with pytest.raises(OSError, match="injected"):
                executor.map("test.reliability_square", [2])

    def test_typed_library_errors_are_never_retried(self):
        metrics = MetricsRegistry()
        executor = ShardedExecutor(jobs=1, retries=3, retry_backoff=0.001,
                                   metrics=metrics)
        with pytest.raises(ReproError, match="typed failure"):
            executor.map("test.fail_typed", [7])
        assert "parallel.retry" not in metrics.counters

    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(retries=3, base=0.1, cap=0.15, jitter=0.25)
        sleeps = [policy.backoff(n, token="shard-3") for n in (1, 2, 3)]
        assert sleeps == [policy.backoff(n, token="shard-3")
                          for n in (1, 2, 3)]
        assert all(s <= 0.15 * 1.25 for s in sleeps)
        assert policy.backoff(1, token="a") != policy.backoff(1, token="b")
        assert policy.attempts == 4
        assert DEFAULT_RETRY_POLICY.attempts == 3

    def test_retry_policy_validation(self):
        with pytest.raises(ReliabilityError):
            RetryPolicy(retries=-1)
        with pytest.raises(ReliabilityError):
            RetryPolicy(base=0.0)
        with pytest.raises(ReliabilityError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ReliabilityError):
            RetryPolicy().backoff(0)


class TestExecutorDegradation:
    def pool_killer(self):
        # every *pool* attempt dies; the degraded serial re-run is clean
        return plan(shard_fault(probability=1.0, match={"pool": True}))

    def test_degrades_to_serial_and_still_answers(self):
        metrics = MetricsRegistry()
        tracer = Tracer()
        executor = ShardedExecutor(jobs=2, retries=1, retry_backoff=0.001,
                                   tracer=tracer, metrics=metrics)
        with fault_plan_active(self.pool_killer(), metrics=metrics):
            assert executor.map(
                "test.reliability_square", [1, 2, 3, 4]
            ) == [1, 4, 9, 16]
        assert executor.degraded
        assert metrics.counters["parallel.degraded"] == 1
        assert tracer.find("reliability.degraded")
        assert "degraded" in repr(executor)

    def test_degradation_is_sticky_across_maps(self):
        metrics = MetricsRegistry()
        executor = ShardedExecutor(jobs=2, retries=0, retry_backoff=0.001,
                                   metrics=metrics)
        with fault_plan_active(self.pool_killer(), metrics=metrics):
            executor.map("test.reliability_square", [1, 2, 3])
        assert executor.degraded
        # no plan active any more: the second map still runs serially
        # (and correctly) without touching a pool
        assert executor.map(
            "test.reliability_square", [5, 6]
        ) == [25, 36]
        assert metrics.counters["parallel.degraded"] == 1

    def test_poison_threshold_triggers_early_degradation(self):
        metrics = MetricsRegistry()
        executor = ShardedExecutor(jobs=2, retries=5, retry_backoff=0.001,
                                   poison_threshold=2, metrics=metrics)
        with fault_plan_active(self.pool_killer(), metrics=metrics):
            assert executor.map(
                "test.reliability_square", [1, 2, 3, 4]
            ) == [1, 4, 9, 16]
        assert metrics.counters["parallel.poisoned"] == 1
        assert metrics.counters["parallel.degraded"] == 1

    def test_degrade_false_raises_instead(self):
        executor = ShardedExecutor(jobs=2, retries=0, retry_backoff=0.001,
                                   degrade=False)
        with fault_plan_active(self.pool_killer()):
            with pytest.raises(ShardError):
                executor.map("test.reliability_square", [1, 2, 3])
        assert not executor.degraded

    def test_poison_threshold_validation(self):
        with pytest.raises(ReproError):
            ShardedExecutor(jobs=2, poison_threshold=0)


# ---------------------------------------------------------------------------
# artifact store: quarantine + crash window


GUARD = guard_digest(("A", "B"), 4)


class TestStoreQuarantine:
    def test_write_failures_quarantine_the_disk_tier(self, tmp_path):
        metrics = MetricsRegistry()
        store = ArtifactStore(cache_dir=tmp_path, max_disk_failures=2)
        p = plan({"site": "cache.disk_write", "error": "OSError",
                  "probability": 1.0})
        with fault_plan_active(p):
            for n in range(4):
                store.put("agree", f"k{n}", GUARD, [n], metrics=metrics)
        assert store.quarantined and not store.disk_enabled
        assert store.stats["cache.io_error"] == 2  # then the tier is off
        assert store.stats["cache.quarantined"] == 1
        assert metrics.counters["cache.quarantined"] == 1
        assert not list(tmp_path.glob("*.rpc"))
        # the memory tier still answers
        assert store.get("agree", "k0", GUARD) == [0]
        assert "quarantined" in repr(store)

    def test_read_failures_count_but_misses_do_not(self, tmp_path):
        seeder = ArtifactStore(cache_dir=tmp_path)
        seeder.put("agree", "k", GUARD, [1, 2])
        store = ArtifactStore(cache_dir=tmp_path, max_disk_failures=3)
        assert store.get("agree", "absent", GUARD) is None  # plain miss
        assert store.stats["cache.io_error"] == 0
        p = plan({"site": "cache.disk_read", "error": "OSError",
                  "times": 1})
        with fault_plan_active(p):
            assert store.get("agree", "k", GUARD) is None
        assert store.stats["cache.io_error"] == 1
        assert not store.quarantined
        # the fault was transient: the entry is still there
        assert store.get("agree", "k", GUARD) == [1, 2]

    def test_truncated_disk_entry_is_dropped_not_served(self, tmp_path):
        seeder = ArtifactStore(cache_dir=tmp_path)
        seeder.put("agree", "k", GUARD, [1, 2, 3])
        store = ArtifactStore(cache_dir=tmp_path)
        p = plan({"site": "cache.disk_read", "kind": "truncate",
                  "truncate": 6, "times": 1})
        with fault_plan_active(p):
            assert store.get("agree", "k", GUARD) is None
        assert store.stats["cache.disk_corrupt"] == 1
        assert not list(tmp_path.glob("*.rpc"))  # dropped, not kept broken

    def test_crash_window_leaves_no_partial_entry(self, tmp_path):
        store = ArtifactStore(cache_dir=tmp_path)
        p = plan({"site": "cache.disk_write", "error": "OSError",
                  "times": 1})
        with fault_plan_active(p):
            store.put("agree", "k", GUARD, [9])
        # the crash hit between write and publish: no entry, no temp file
        assert not list(tmp_path.glob("*.rpc"))
        assert not list(tmp_path.glob(".*.tmp"))
        store.put("agree", "k2", GUARD, [10])
        assert list(tmp_path.glob("*.rpc"))

    def test_max_disk_failures_validation(self, tmp_path):
        from repro.errors import CacheError

        with pytest.raises(CacheError):
            ArtifactStore(cache_dir=tmp_path, max_disk_failures=0)


# ---------------------------------------------------------------------------
# storage readers


class TestStorageFaults:
    def test_read_csv_wraps_injected_io_errors(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("A,B\n1,2\n")
        with fault_plan_active(plan({"site": "storage.read",
                                     "error": "OSError"})):
            with pytest.raises(StorageError, match="cannot read"):
                read_csv(path)
        assert len(list(read_csv(path).rows())) == 1

    def test_truncated_read_mid_row_is_detected(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("A,B\n1,2\n3,4\n")
        p = plan({"site": "storage.read", "kind": "truncate",
                  "truncate": 9})  # cuts inside the "3,4" row
        with fault_plan_active(p):
            with pytest.raises(StorageError, match="expected 2 fields"):
                read_csv(path)

    def test_write_csv_wraps_injected_io_errors(self, tmp_path):
        table = read_csv_table(tmp_path)
        with fault_plan_active(plan({"site": "storage.write",
                                     "error": "OSError"})):
            with pytest.raises(StorageError, match="cannot write"):
                write_csv(table, tmp_path / "out.csv")

    def test_streaming_wraps_injected_io_errors(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("A,B\n1,2\n1,3\n")
        with fault_plan_active(plan({"site": "partitions.stream",
                                     "error": "OSError"})):
            with pytest.raises(StorageError, match="cannot read"):
                stream_partition_database(path)
        spdb = stream_partition_database(path)
        assert spdb.num_rows == 2

    def test_streaming_truncation_mid_row_is_detected(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("A,B\n1,2\n3,4\n")
        p = plan({"site": "partitions.stream", "kind": "truncate",
                  "truncate": 9})
        with fault_plan_active(p):
            with pytest.raises(StorageError, match="expected 2 fields"):
                stream_partition_database(path)


def read_csv_table(tmp_path):
    path = tmp_path / "seed.csv"
    path.write_text("A,B\n1,2\n")
    return read_csv(path)


# ---------------------------------------------------------------------------
# CLI


class TestCliFaultPlan:
    def test_discover_output_matches_the_fault_free_run(
            self, tmp_path, capsys):
        from repro.cli import main

        csv_path = tmp_path / "paper.csv"
        relation_to_csv(paper_example_relation(), csv_path, name="paper")
        plan_path = tmp_path / "chaos.json"
        plan_path.write_text(
            '{"seed": 5, "faults": ['
            '{"site": "parallel.shard", "kind": "error", "error": '
            '"OSError", "probability": 1.0, "match": {"pool": true}},'
            '{"site": "cache.disk_write", "kind": "error", "error": '
            '"OSError", "probability": 1.0}]}'
        )
        assert main(["discover", str(csv_path)]) == 0
        plain = capsys.readouterr().out
        assert main([
            "discover", str(csv_path), "--jobs", "2",
            "--cache-dir", str(tmp_path / "store"),
            "--fault-plan", str(plan_path),
        ]) == 0
        captured = capsys.readouterr()
        assert captured.out == plain
        assert "fault plan 'chaos'" in captured.err
        assert current_plan() is None  # deactivated on the way out

    def test_malformed_plan_exits_one(self, tmp_path, capsys):
        from repro.cli import main

        csv_path = tmp_path / "paper.csv"
        relation_to_csv(paper_example_relation(), csv_path, name="paper")
        plan_path = tmp_path / "bad.json"
        plan_path.write_text('{"faults": [{"site": "x", "kind": "nuke"}]}')
        assert main([
            "discover", str(csv_path), "--fault-plan", str(plan_path)
        ]) == 1
        assert "unknown fault kind" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# the acceptance sweep: exact answer or typed error, never a wrong cover


def cover(result):
    return sorted((fd.lhs.mask, fd.rhs_index) for fd in result.fds)


SWEEP_PLANS = {
    # transient worker faults, absorbed by per-shard retry
    "transient-shards": [shard_fault(times=2)],
    # every pool attempt dies: degradation to serial must still answer
    "dead-pool": [shard_fault(probability=1.0, match={"pool": True})],
    # a disk that always fails to publish: quarantine, memory-only
    "sick-disk": [{"site": "cache.disk_write", "kind": "error",
                   "error": "OSError", "probability": 1.0}],
    # torn reads of cached artefacts: corrupt entries recompute
    "torn-cache": [{"site": "cache.disk_read", "kind": "truncate",
                    "truncate": 5, "probability": 0.6}],
    # slow shards plus flaky cache reads together
    "mixed": [shard_fault(kind="delay", delay=0.002, probability=0.5),
              {"site": "cache.disk_read", "kind": "error",
               "error": "OSError", "probability": 0.5}],
}


class TestDifferentialFaultSweep:
    relation = generate_relation(5, 36, correlation=0.4, seed=11)
    baseline = cover(DepMiner(jobs=1).run(relation))

    @pytest.mark.parametrize("jobs", [1, 2])
    @pytest.mark.parametrize("disk_cache", [False, True])
    @pytest.mark.parametrize("plan_name", sorted(SWEEP_PLANS))
    def test_exact_cover_or_typed_error(self, plan_name, jobs, disk_cache,
                                        tmp_path):
        chaos = FaultPlan.from_dict(
            {"name": plan_name, "seed": 13, "faults": SWEEP_PLANS[plan_name]}
        )
        cache = (
            ArtifactStore(cache_dir=tmp_path / "store") if disk_cache
            else None
        )
        miner = DepMiner(jobs=jobs, cache=cache)
        with fault_plan_active(chaos):
            try:
                result = miner.run(self.relation)
            except ReproError:
                return  # a typed failure is an acceptable outcome
        assert cover(result) == self.baseline

    def test_warm_cache_under_faults_stays_exact(self, tmp_path):
        """A pre-seeded disk cache read through torn-read faults must
        recompute, not serve garbage."""
        store = ArtifactStore(cache_dir=tmp_path / "store")
        DepMiner(jobs=1, cache=store).run(self.relation)  # seed the cache
        chaos = FaultPlan.from_dict({
            "name": "torn-warm", "seed": 3,
            "faults": [{"site": "cache.disk_read", "kind": "truncate",
                        "truncate": 3, "probability": 1.0}],
        })
        cold = ArtifactStore(cache_dir=tmp_path / "store")
        with fault_plan_active(chaos):
            result = DepMiner(jobs=1, cache=cold).run(self.relation)
        assert cover(result) == self.baseline
