"""Unit tests for maximal sets and their complements (CMAX_SET)."""

from __future__ import annotations

from repro.core.attributes import Schema
from repro.core.maximal_sets import (
    complement_maximal_sets,
    max_set_union,
    maximal_sets,
)

from tests.conftest import masks


class TestMaximalSets:
    def test_keeps_only_maximal_candidates(self):
        schema = Schema.of_width(3)
        agree = set(masks(schema, "A", "AB", "B"))
        result = maximal_sets(agree, schema)
        # For C, candidates are {A, AB, B}; only AB is maximal.
        assert result[schema.index_of("C")] == masks(schema, "AB")

    def test_excludes_sets_containing_the_attribute(self):
        schema = Schema.of_width(2)
        agree = set(masks(schema, "A", "AB"))
        result = maximal_sets(agree, schema)
        # For A: no candidate avoids A -> constant-like, empty family.
        assert result[schema.index_of("A")] == []
        assert result[schema.index_of("B")] == masks(schema, "A")

    def test_empty_agree_set_can_be_the_maximum(self):
        schema = Schema.of_width(2)
        agree = {0}  # two tuples disagreeing on everything
        result = maximal_sets(agree, schema)
        assert result[0] == [0]
        assert result[1] == [0]

    def test_empty_agree_set_dominated_by_larger(self):
        schema = Schema.of_width(2)
        agree = {0} | set(masks(schema, "B"))
        result = maximal_sets(agree, schema)
        assert result[schema.index_of("A")] == masks(schema, "B")

    def test_no_agree_sets_at_all(self):
        schema = Schema.of_width(2)
        result = maximal_sets(set(), schema)
        assert result == {0: [], 1: []}


class TestComplements:
    def test_complement_edges(self):
        schema = Schema.of_width(3)
        max_sets = {0: masks(schema, "B"), 1: [], 2: masks(schema, "A", "B")}
        cmax = complement_maximal_sets(max_sets, schema)
        assert cmax[0] == masks(schema, "AC")
        assert cmax[1] == []
        assert sorted(cmax[2]) == masks(schema, "BC", "AC")

    def test_complement_of_empty_set_is_universe(self):
        schema = Schema.of_width(3)
        cmax = complement_maximal_sets({0: [0]}, schema)
        assert cmax[0] == [schema.universe_mask]

    def test_every_cmax_edge_contains_its_attribute(self, paper_relation):
        from repro.core.agree_sets import naive_agree_sets

        schema = paper_relation.schema
        agree = naive_agree_sets(paper_relation)
        cmax = complement_maximal_sets(maximal_sets(agree, schema), schema)
        for attribute, edges in cmax.items():
            for edge in edges:
                assert edge & (1 << attribute)


class TestDisagreeSetsPath:
    """The upper branch of the paper's Figure 1 must agree with the
    lower one on every input."""

    def test_disagree_sets_are_complements(self, paper_relation):
        from repro.core.agree_sets import naive_agree_sets
        from repro.core.maximal_sets import disagree_sets

        schema = paper_relation.schema
        agree = naive_agree_sets(paper_relation)
        disagree = disagree_sets(agree, schema)
        universe = schema.universe_mask
        assert set(disagree) == {universe & ~mask for mask in agree}

    def test_cmax_via_disagree_equals_cmax_via_max(self, paper_relation):
        from repro.core.agree_sets import naive_agree_sets
        from repro.core.maximal_sets import (
            cmax_from_disagree_sets,
            disagree_sets,
        )

        schema = paper_relation.schema
        agree = naive_agree_sets(paper_relation)
        via_max = complement_maximal_sets(
            maximal_sets(agree, schema), schema
        )
        via_disagree = cmax_from_disagree_sets(
            disagree_sets(agree, schema), schema
        )
        assert {a: sorted(m) for a, m in via_disagree.items()} == \
            {a: sorted(m) for a, m in via_max.items()}

    def test_equality_on_random_agree_families(self):
        import random

        from repro.core.maximal_sets import (
            cmax_from_disagree_sets,
            disagree_sets,
        )

        rng = random.Random(4)
        for _trial in range(30):
            width = rng.randint(1, 6)
            schema = Schema.of_width(width)
            universe = schema.universe_mask
            agree = {
                rng.randint(0, universe)
                for _ in range(rng.randint(0, 10))
            }
            via_max = complement_maximal_sets(
                maximal_sets(agree, schema), schema
            )
            via_disagree = cmax_from_disagree_sets(
                disagree_sets(agree, schema), schema
            )
            assert {a: sorted(m) for a, m in via_disagree.items()} == \
                {a: sorted(m) for a, m in via_max.items()}


class TestMaxUnion:
    def test_union_deduplicates(self):
        schema = Schema.of_width(3)
        max_sets = {
            0: masks(schema, "B"),
            1: masks(schema, "A"),
            2: masks(schema, "A", "B"),
        }
        assert max_set_union(max_sets) == masks(schema, "A", "B")

    def test_union_of_empty_families(self):
        assert max_set_union({0: [], 1: []}) == []

    def test_union_is_sorted(self):
        schema = Schema.of_width(4)
        max_sets = {0: masks(schema, "D", "B"), 1: masks(schema, "C")}
        union = max_set_union(max_sets)
        assert union == sorted(union)
