"""Reusable cross-miner conformance harness (not itself a test module).

The differential and conformance suites all ask the same question —
*does this miner configuration produce the canonical minimal cover?* —
over the same corpus of relations.  This module owns the shared pieces:

* the seeded random **sweep** (``SWEEP``) — workloads narrow enough for
  the brute-force oracle;
* the **corpus** of bundled and degenerate relations
  (:func:`corpus_relations`) — paper example, bundled datasets,
  constant / key-only / single-row / all-distinct shapes;
* the structured **wide relation** (:func:`wide_lane_boundary_relation`)
  whose agree-set masks straddle bit 63, pinning the uint64
  lane-overflow boundary of the packed kernels (70 attributes is
  deliberately past the single-lane limit of 63);
* :func:`canonical_cover` — the comparison key every assertion uses;
* :func:`assert_all_miners_agree` — the classic four-implementation
  differential check (DepMiner variants, TANE, FDEP vs brute force);
* :func:`backend_grid` / :func:`assert_backend_grid_agrees` — the
  backend ∈ {python, columnar} × jobs ∈ {1, 2} × cache on/off sweep.
  Cached cells run twice through the same store, so the warm-hit
  replay path is conformance-checked too.

``tests/test_differential_miners.py`` drives the brute-force-oracle
half; ``tests/test_backend_conformance.py`` drives the backend grid
(using the serial python backend as the oracle where brute force is
intractable, e.g. the 70-attribute wide relation).
"""

from __future__ import annotations

import random

import pytest

from repro.cache import ArtifactStore
from repro.columnar import numpy_available
from repro.core.attributes import Schema
from repro.core.depminer import DepMiner
from repro.core.relation import Relation
from repro.datagen.synthetic import generate_relation
from repro.datasets import (
    course_schedule_relation,
    paper_example_relation,
    supplier_parts_relation,
)
from repro.fd.bruteforce import bruteforce_minimal_fds

# (num_attributes, num_tuples, correlation) — kept narrow enough for the
# brute-force oracle and small enough that the whole sweep stays fast.
WORKLOADS = [
    (3, 12, None),
    (4, 20, None),
    (4, 30, 0.5),
    (5, 25, None),
    (5, 40, 0.3),
    (5, 15, 0.7),
    (6, 30, 0.3),
    (6, 20, None),
]
SEEDS = range(6)
SWEEP = [
    pytest.param(attrs, rows, corr, seed,
                 id=f"a{attrs}-r{rows}-c{corr}-s{seed}")
    for attrs, rows, corr in WORKLOADS
    for seed in SEEDS
]

#: Attributes in the wide lane-boundary relation — past the 63-bit
#: single-lane capacity of every uint64-packed code path.
WIDE_ATTRS = 70


def canonical_cover(fds):
    return sorted((fd.lhs.mask, fd.rhs_index) for fd in fds)


def python_oracle_cover(relation):
    """The serial pure-Python cover — the oracle when brute force can't.

    Brute-force subset enumeration is exponential in the schema width,
    so the wide lane-boundary relation uses the (independently
    brute-force-validated on narrow schemas) serial python backend as
    its reference instead.
    """
    result = DepMiner(backend="python", build_armstrong="none").run(relation)
    return canonical_cover(result.fds)


# -- corpus ------------------------------------------------------------------

def corpus_relations():
    """``(label, relation)`` pairs every conformance sweep must cover.

    All narrow enough for the brute-force oracle; the degenerate shapes
    pin the boundary conditions (∅ agree set, every couple agreeing,
    one tuple, no couples at all).
    """
    yield "paper-example", paper_example_relation()
    yield "course-schedule", course_schedule_relation()
    yield "supplier-parts", supplier_parts_relation()
    yield "constant", Relation.from_rows(
        Schema(["A", "B", "C"]), [(1, 1, 1)] * 5
    )
    yield "key-only", Relation.from_rows(
        Schema(["A", "B", "C"]), [(i, i % 2, i % 3) for i in range(9)]
    )
    yield "single-row", Relation.from_rows(
        Schema(["A", "B", "C"]), [(1, 2, 3)]
    )
    yield "all-distinct", Relation.from_rows(
        Schema(["A", "B", "C"]), [(i, -i, i * i) for i in range(7)]
    )


def wide_lane_boundary_relation(num_rows: int = 14, seed: int = 0):
    """A 70-attribute relation whose agree-set masks cross bit 63.

    A *fully random* wide relation is useless here — its minimal cover
    is combinatorially enormous (minimal transversals of dense
    hypergraphs over 70 vertices).  This one is structured so mining
    stays trivial while the masks still straddle the uint64 lane
    boundary: six low random columns, a band of constant columns
    spanning bits 6–63, a copy of column 0 at bit 64 and a random
    binary column at bit 65.  Every agreeing couple therefore produces
    a mask with bits set on both sides of bit 63.
    """
    rng = random.Random(seed)
    rows = []
    for _ in range(num_rows):
        low = [rng.randint(0, 2) for _ in range(6)]
        rows.append(tuple(low + [7] * 58 + [low[0], rng.randint(0, 1)]
                          + [7] * 4))
    schema = Schema([f"A{index:02d}" for index in range(WIDE_ATTRS)])
    return Relation.from_rows(schema, rows)


# -- DepMiner configuration grids --------------------------------------------

def depminer_variants(relation):
    """Every classic DepMiner configuration that must match the oracle."""
    yield "couples", DepMiner(agree_algorithm="couples",
                              build_armstrong="none")
    yield "couples-chunked", DepMiner(agree_algorithm="couples",
                                      max_couples=3,
                                      build_armstrong="none")
    yield "identifiers", DepMiner(agree_algorithm="identifiers",
                                  build_armstrong="none")
    yield "vectorized", DepMiner(agree_algorithm="vectorized",
                                 build_armstrong="none")
    yield "couples-jobs2", DepMiner(agree_algorithm="couples", jobs=2,
                                    build_armstrong="none")
    yield "identifiers-jobs2", DepMiner(agree_algorithm="identifiers",
                                        jobs=2, build_armstrong="none")


def backend_grid(backends=("python", "columnar"), jobs_values=(1, 2),
                 cache_values=(False, True), shm_values=(None,),
                 pool_modes=("persistent",)):
    """``(label, miner_factory)`` cells of the backend conformance grid.

    Columnar cells are emitted only when NumPy is importable — on the
    NumPy-free CI lane the grid quietly narrows to the python backend
    (``DepMiner`` itself would fall back anyway; skipping here keeps the
    cell labels honest).  Each factory builds a fresh miner; cached
    cells share one in-memory :class:`ArtifactStore` per factory so a
    second run through the same factory exercises the warm-hit replay.

    *shm_values* (``None`` = auto, ``True``/``False`` = force the
    shared-memory arena on/off) and *pool_modes* (``"persistent"`` /
    ``"ephemeral"``) widen the grid over the zero-copy dispatch paths;
    the defaults keep the classic cell count.  Both collapse to a single
    label-free cell dimension on serial (jobs=1) cells, where they are
    no-ops.
    """
    for backend in backends:
        if backend == "columnar" and not numpy_available():
            continue
        for jobs in jobs_values:
            for cached in cache_values:
                for shm in shm_values:
                    for pool_mode in pool_modes:
                        label = (f"{backend}-jobs{jobs}-"
                                 f"{'cache' if cached else 'nocache'}")
                        if shm is not None:
                            label += f"-shm{'on' if shm else 'off'}"
                        if pool_mode != "persistent":
                            label += f"-{pool_mode}"
                        store = ArtifactStore() if cached else None

                        def factory(backend=backend, jobs=jobs,
                                    store=store, shm=shm,
                                    pool_mode=pool_mode):
                            return DepMiner(backend=backend, jobs=jobs,
                                            cache=store, shm=shm,
                                            pool_mode=pool_mode,
                                            build_armstrong="none")

                        yield label, factory


# -- assertions --------------------------------------------------------------

def assert_all_miners_agree(relation):
    """The four-implementation differential check, brute force as oracle."""
    from repro.fdep import Fdep
    from repro.tane.armstrong_ext import tane_with_armstrong

    oracle = canonical_cover(bruteforce_minimal_fds(relation))
    assert canonical_cover(tane_with_armstrong(relation).fds) == oracle, (
        "TANE diverged from the brute-force oracle"
    )
    assert canonical_cover(Fdep().run(relation).fds) == oracle, (
        "FDEP diverged from the brute-force oracle"
    )
    for label, miner in depminer_variants(relation):
        cover = canonical_cover(miner.run(relation).fds)
        assert cover == oracle, (
            f"DepMiner[{label}] diverged from the brute-force oracle"
        )
    return oracle


def assert_backend_grid_agrees(relation, oracle=None, **grid_kwargs):
    """Every backend × jobs × cache cell reproduces the oracle cover.

    *oracle* defaults to the serial python-backend cover.  Cached cells
    run twice through the same store: the first run populates it (miss +
    put), the second must replay the identical cover from the hit.
    """
    if oracle is None:
        oracle = python_oracle_cover(relation)
    for label, factory in backend_grid(**grid_kwargs):
        miner = factory()
        cover = canonical_cover(miner.run(relation).fds)
        assert cover == oracle, (
            f"DepMiner[{label}] diverged from the oracle cover"
        )
        if miner.cache is not None:
            warm = canonical_cover(factory().run(relation).fds)
            assert warm == oracle, (
                f"DepMiner[{label}] warm cache replay diverged from the "
                f"oracle cover"
            )
    return oracle
