"""Unit tests for the brute-force discovery oracle itself."""

from __future__ import annotations

import pytest

from repro.core.attributes import Schema
from repro.core.relation import Relation
from repro.errors import ReproError
from repro.fd.bruteforce import bruteforce_minimal_fds


class TestBruteForce:
    def test_simple_relation(self):
        schema = Schema.of_width(2)
        relation = Relation.from_rows(schema, [(1, "x"), (1, "x"), (2, "y")])
        fds = {str(fd) for fd in bruteforce_minimal_fds(relation)}
        assert fds == {"A -> B", "B -> A"}

    def test_results_are_minimal(self, paper_relation):
        fds = bruteforce_minimal_fds(paper_relation)
        for fd in fds:
            for attribute in fd.lhs.indices():
                shrunk = fd.lhs.remove(attribute)
                assert not paper_relation.satisfies(
                    shrunk, paper_relation.schema.from_mask(fd.rhs_mask)
                ), f"{fd} is not minimal"

    def test_results_are_nontrivial(self, paper_relation):
        assert not any(
            fd.is_trivial() for fd in bruteforce_minimal_fds(paper_relation)
        )

    def test_results_all_hold(self, paper_relation):
        for fd in bruteforce_minimal_fds(paper_relation):
            assert fd.holds_in(paper_relation)

    def test_empty_relation(self):
        schema = Schema.of_width(2)
        fds = bruteforce_minimal_fds(Relation.from_rows(schema, []))
        assert {str(fd) for fd in fds} == {"∅ -> A", "∅ -> B"}

    def test_width_guard(self):
        schema = Schema.of_width(20)
        relation = Relation.from_rows(schema, [])
        with pytest.raises(ReproError, match="exponential"):
            bruteforce_minimal_fds(relation)

    def test_deterministic_order(self, paper_relation):
        first = bruteforce_minimal_fds(paper_relation)
        second = bruteforce_minimal_fds(paper_relation)
        assert first == second
