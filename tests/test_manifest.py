"""Unit tests for :mod:`repro.obs.manifest` — the run-manifest layer."""

from __future__ import annotations

import json

import pytest

from repro.core.relation import Relation, Schema
from repro.obs import (
    MANIFEST_FORMAT,
    MANIFEST_VERSION,
    NULL_TRACER,
    MetricsRegistry,
    RunManifest,
    Tracer,
    capture_environment,
    group_metrics,
    relation_summary,
    validate_manifest,
)


def traced_pipeline() -> Tracer:
    """A small span tree shaped like a miner run (3 phases, 1 child)."""
    tracer = Tracer()
    with tracer.span("run"):
        with tracer.span("strip", phase=True):
            pass
        with tracer.span("agree_sets", phase=True):
            with tracer.span("chunk"):
                pass
        with tracer.span("lhs", phase=True):
            pass
    return tracer


class TestBuild:
    def test_empty_trace(self):
        manifest = RunManifest.build("discover", tracer=Tracer())
        assert manifest.spans == []
        assert manifest.phases == {}
        assert manifest.status == "ok"
        assert manifest.total_seconds == 0.0
        assert validate_manifest(manifest.to_dict()) == []

    def test_no_tracer_at_all(self):
        manifest = RunManifest.build("bench")
        assert manifest.spans == []
        assert validate_manifest(manifest.to_dict()) == []

    def test_disabled_tracer_yields_empty_sections(self):
        manifest = RunManifest.build("discover", tracer=NULL_TRACER)
        assert manifest.spans == []
        assert manifest.phases == {}

    def test_phases_derived_from_phase_spans(self):
        manifest = RunManifest.build("discover", tracer=traced_pipeline())
        assert sorted(manifest.phases) == ["agree_sets", "lhs", "strip"]
        # the non-phase spans are still in the tree
        assert len(manifest.spans) == 5
        fractions = manifest.phase_fractions()
        assert fractions
        assert abs(sum(fractions.values()) - 1.0) < 1e-9

    def test_nested_error_spans_mark_the_run(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("run"):
                with tracer.span("lhs", phase=True):
                    with tracer.span("attribute"):
                        raise ValueError("boom")
        manifest = RunManifest.build("discover", tracer=tracer)
        assert manifest.status == "error"
        errors = [s for s in manifest.spans if s["status"] == "error"]
        # the error propagated through every enclosing span
        assert len(errors) == 3
        assert all(s["end"] is not None for s in errors)
        assert validate_manifest(manifest.to_dict()) == []

    def test_metrics_and_subsystem_grouping(self):
        metrics = MetricsRegistry()
        metrics.inc("cache.hit", 3)
        metrics.inc("transversal.candidates_pruned", 7)
        metrics.gauge("cache.entries", 12)
        metrics.observe("transversal.level_size", 5)
        manifest = RunManifest.build("discover", metrics=metrics)
        assert manifest.counter("cache.hit") == 3
        assert set(manifest.subsystems) == {"cache", "transversal"}
        assert manifest.subsystems["cache"]["gauges"]["cache.entries"] == 12
        histogram = (
            manifest.subsystems["transversal"]["histograms"]
            ["transversal.level_size"]
        )
        assert histogram["count"] == 1

    def test_resources_summary_is_embedded(self):
        class FakeSampler:
            def summary(self):
                return {"rss_peak_bytes": 123}

        manifest = RunManifest.build("discover", resources=FakeSampler())
        assert manifest.resources == {"rss_peak_bytes": 123}

    def test_environment_capture(self):
        env = capture_environment()
        assert env["python"]
        assert env["cpu_count"] >= 1
        manifest = RunManifest.build("discover")
        assert manifest.environment["python"] == env["python"]


class TestRoundTrip:
    def test_json_round_trip_is_byte_stable(self):
        metrics = MetricsRegistry()
        metrics.observe("transversal.level_size", 5)
        metrics.observe("transversal.level_size", 50)
        manifest = RunManifest.build(
            "discover", tracer=traced_pipeline(), metrics=metrics,
            meta={"argv": ["discover", "x.csv"]},
        )
        text = manifest.to_json()
        assert RunManifest.from_json(text).to_json() == text

    def test_write_and_load(self, tmp_path):
        manifest = RunManifest.build("discover", tracer=traced_pipeline())
        path = tmp_path / "deep" / "nested" / "manifest.json"
        manifest.write(path)
        loaded = RunManifest.load(path)
        assert loaded.command == "discover"
        assert loaded.phases == manifest.phases

    def test_from_dict_rejects_invalid(self):
        with pytest.raises(ValueError, match="invalid run manifest"):
            RunManifest.from_dict({"format": "nope"})


class TestValidate:
    def good(self) -> dict:
        return RunManifest.build("discover",
                                 tracer=traced_pipeline()).to_dict()

    def test_good_manifest_is_clean(self):
        assert validate_manifest(self.good()) == []

    def test_format_and_version(self):
        document = self.good()
        document["format"] = "other"
        document["version"] = MANIFEST_VERSION + 1
        problems = validate_manifest(document)
        assert any("format" in p for p in problems)
        assert any("version" in p for p in problems)

    def test_missing_command_and_bad_status(self):
        document = self.good()
        document["command"] = ""
        document["status"] = "meh"
        problems = validate_manifest(document)
        assert any("command" in p for p in problems)
        assert any("status" in p for p in problems)

    def test_negative_phase_duration(self):
        document = self.good()
        document["phases"]["strip"] = -1.0
        assert any("strip" in p for p in validate_manifest(document))

    def test_child_before_parent(self):
        document = self.good()
        document["spans"].reverse()
        assert any("before its parent" in p
                   for p in validate_manifest(document))

    def test_not_a_dict(self):
        assert validate_manifest([]) == ["manifest must be a JSON object"]

    def test_metrics_sections_required(self):
        document = self.good()
        document["metrics"] = {"counters": {}}
        assert any("metrics" in p for p in validate_manifest(document))


class TestRelationSummary:
    def test_fingerprint_is_row_order_invariant(self):
        rows = [("1", "a"), ("2", "b"), ("3", "a")]
        first = Relation.from_rows(Schema(["x", "y"]), rows)
        second = Relation.from_rows(Schema(["x", "y"]),
                                    list(reversed(rows)))
        one = relation_summary(first, source="one.csv")
        two = relation_summary(second, source="two.csv")
        assert one["fingerprint"] == two["fingerprint"]
        assert one["rows"] == 3
        assert one["attributes"] == 2
        assert one["source"] == "one.csv"


class TestGroupMetrics:
    def test_prefixless_names_group_under_themselves(self):
        grouped = group_metrics(
            {"counters": {"fds": 4, "cache.hit": 1}, "gauges": {},
             "histograms": {}}
        )
        assert grouped["fds"]["counters"]["fds"] == 4
        assert grouped["cache"]["counters"]["cache.hit"] == 1


def test_manifest_format_constants():
    manifest = RunManifest.build("x")
    document = manifest.to_dict()
    assert document["format"] == MANIFEST_FORMAT
    assert document["version"] == MANIFEST_VERSION
    # to_json is valid, sorted JSON ending in a newline
    text = manifest.to_json()
    assert text.endswith("\n")
    assert json.loads(text) == json.loads(
        json.dumps(document, sort_keys=True, default=str)
    )
