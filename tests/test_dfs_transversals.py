"""Unit tests for the FastFDs-style DFS transversal search."""

from __future__ import annotations

import random

import pytest

from repro.errors import ReproError
from repro.hypergraph.dfs import minimal_transversals_dfs
from repro.hypergraph.hypergraph import minimize_sets
from repro.hypergraph.transversals import (
    minimal_transversals,
    minimal_transversals_levelwise,
)


class TestDfs:
    def test_no_edges(self):
        assert minimal_transversals_dfs([], 4) == [0]

    def test_single_edge(self):
        assert minimal_transversals_dfs([0b110], 3) == [0b010, 0b100]

    def test_paper_example_attribute_A(self):
        ac, abd = 0b00101, 0b01011
        a, bc, cd = 0b00001, 0b00110, 0b01100
        assert minimal_transversals_dfs([ac, abd], 5) == sorted([a, bc, cd])

    def test_rejects_empty_edge(self):
        with pytest.raises(ReproError):
            minimal_transversals_dfs([0b1, 0], 2)

    @pytest.mark.parametrize("seed", range(30))
    def test_matches_levelwise_on_random_hypergraphs(self, seed):
        rng = random.Random(seed)
        num_vertices = rng.randint(1, 8)
        universe = (1 << num_vertices) - 1
        edges = minimize_sets(
            rng.randint(1, universe) for _ in range(rng.randint(0, 7))
        )
        assert minimal_transversals_dfs(edges, num_vertices) == \
            minimal_transversals_levelwise(edges, num_vertices)

    def test_available_through_dispatcher(self):
        edges = [0b011, 0b101]
        assert minimal_transversals(edges, 3, method="dfs") == \
            minimal_transversals(edges, 3, method="levelwise")


class TestDfsInDepMiner:
    def test_full_pipeline_with_dfs_method(self, paper_relation):
        from repro.core.depminer import DepMiner

        levelwise = DepMiner(transversal_method="levelwise").run(
            paper_relation
        )
        dfs = DepMiner(transversal_method="dfs").run(paper_relation)
        assert dfs.fds == levelwise.fds
        assert dfs.lhs_sets == levelwise.lhs_sets
