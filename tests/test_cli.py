"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def paper_csv(tmp_path):
    path = tmp_path / "emp.csv"
    path.write_text(
        "empnum,depnum,year,depname,mgr\n"
        "1,1,85,Biochemistry,5\n"
        "1,5,94,Admission,12\n"
        "2,2,92,Computer Sce,2\n"
        "3,2,98,Computer Sce,2\n"
        "4,3,98,Geophysics,2\n"
        "5,1,75,Biochemistry,5\n"
        "6,5,88,Admission,12\n"
    )
    return path


class TestEntryPoints:
    def test_python_dash_m_invocation(self, paper_csv):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "discover", str(paper_csv)],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.count("->") == 14

    def test_help_lists_all_commands(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        for command in ("discover", "armstrong", "report", "sample",
                        "diff", "inds", "generate", "bench", "example"):
            assert command in out


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self, paper_csv):
        parser = build_parser()
        assert parser.parse_args(["discover", str(paper_csv)]).command == \
            "discover"
        assert parser.parse_args(
            ["bench", "-e", "table3"]
        ).experiment == "table3"


class TestDiscover:
    def test_prints_the_fourteen_fds(self, paper_csv, capsys):
        assert main(["discover", str(paper_csv)]) == 0
        out = capsys.readouterr().out
        assert out.count("->") == 14
        assert "depname -> depnum" in out

    def test_identifiers_algorithm(self, paper_csv, capsys):
        assert main(
            ["discover", str(paper_csv), "--algorithm", "identifiers"]
        ) == 0
        assert capsys.readouterr().out.count("->") == 14

    def test_armstrong_flag(self, paper_csv, capsys):
        assert main(["discover", str(paper_csv), "--armstrong"]) == 0
        out = capsys.readouterr().out
        assert "Armstrong relation" in out

    def test_stats_flag(self, paper_csv, capsys):
        assert main(["discover", str(paper_csv), "--stats"]) == 0
        assert "minimal FDs: 14" in capsys.readouterr().out

    def test_missing_file_is_reported_not_raised(self, tmp_path, capsys):
        assert main(["discover", str(tmp_path / "ghost.csv")]) == 1
        assert "error:" in capsys.readouterr().err


class TestArmstrong:
    def test_prints_sample(self, paper_csv, capsys):
        assert main(["armstrong", str(paper_csv)]) == 0
        out = capsys.readouterr().out
        assert "empnum" in out

    def test_writes_csv(self, paper_csv, tmp_path, capsys):
        out_path = tmp_path / "sample.csv"
        assert main(
            ["armstrong", str(paper_csv), "--output", str(out_path)]
        ) == 0
        assert out_path.exists()
        assert "wrote 4 tuples" in capsys.readouterr().out

    def test_nonexistent_sample_errors_cleanly(self, tmp_path, capsys):
        path = tmp_path / "tight.csv"
        path.write_text("a,b,c\n0,0,0\n1,0,1\n1,1,0\n")
        assert main(["armstrong", str(path)]) == 1
        assert "no real-world Armstrong" in capsys.readouterr().err


class TestGenerate:
    def test_prints_relation(self, capsys):
        assert main(["generate", "-a", "3", "-t", "5"]) == 0
        out = capsys.readouterr().out
        assert "A" in out.splitlines()[0]

    def test_writes_csv(self, tmp_path, capsys):
        out_path = tmp_path / "synthetic.csv"
        assert main(
            ["generate", "-a", "4", "-t", "20", "-c", "0.3",
             "--seed", "7", "-o", str(out_path)]
        ) == 0
        assert out_path.exists()
        text = out_path.read_text().splitlines()
        assert text[0] == "A,B,C,D"
        assert len(text) == 21

    def test_generation_is_seeded(self, tmp_path):
        first = tmp_path / "one.csv"
        second = tmp_path / "two.csv"
        main(["generate", "-a", "3", "-t", "10", "--seed", "5",
              "-o", str(first)])
        main(["generate", "-a", "3", "-t", "10", "--seed", "5",
              "-o", str(second)])
        assert first.read_text() == second.read_text()


class TestBench:
    def test_table_experiment(self, capsys):
        assert main(
            ["bench", "-e", "table3", "--scale", "tiny",
             "--algorithms", "depminer", "--quiet"]
        ) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "Execution times" in out

    def test_figure_experiment(self, capsys):
        assert main(
            ["bench", "-e", "fig3", "--scale", "tiny",
             "--algorithms", "depminer", "--quiet"]
        ) == 0
        assert "Figure 3" in capsys.readouterr().out

    def test_progress_goes_to_stderr(self, capsys):
        assert main(
            ["bench", "-e", "fig3", "--scale", "tiny",
             "--algorithms", "depminer"]
        ) == 0
        captured = capsys.readouterr()
        assert "Dep-Miner" in captured.err


class TestReport:
    def test_prints_markdown(self, paper_csv, capsys):
        assert main(["report", str(paper_csv)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Profile of `emp`")
        assert "## Candidate keys" in out

    def test_writes_file(self, paper_csv, tmp_path, capsys):
        out_path = tmp_path / "report.md"
        assert main(["report", str(paper_csv), "-o", str(out_path)]) == 0
        assert out_path.exists()
        assert "## Normal forms" in out_path.read_text()
        assert "emp:" in capsys.readouterr().out


class TestObservabilityFlags:
    def test_discover_trace_writes_valid_jsonl(self, paper_csv, tmp_path,
                                               capsys):
        import json

        from repro.obs import parse_jsonl, validate_records

        trace_path = tmp_path / "trace.jsonl"
        assert main(
            ["discover", str(paper_csv), "--trace", str(trace_path)]
        ) == 0
        captured = capsys.readouterr()
        assert "wrote trace to" in captured.err
        text = trace_path.read_text()
        assert validate_records(
            [json.loads(line) for line in text.splitlines()]
        ) == []
        parsed = parse_jsonl(text)
        assert parsed["meta"][0]["command"] == "discover"
        names = {record["name"] for record in parsed["spans"]}
        assert {"depminer.run", "strip", "agree_sets", "cmax", "lhs",
                "fd_output"} <= names
        assert len({record["name"] for record in parsed["metrics"]}) >= 5

    def test_discover_metrics_table(self, paper_csv, capsys):
        assert main(["discover", str(paper_csv), "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "| metric | kind | value |" in out
        assert "agree.couples_enumerated" in out

    def test_discover_progress_goes_to_stderr(self, paper_csv, capsys):
        assert main(["discover", str(paper_csv), "--progress"]) == 0
        assert "[agree_sets.couples]" in capsys.readouterr().err

    def test_bench_trace(self, tmp_path, capsys):
        from repro.obs import parse_jsonl

        trace_path = tmp_path / "bench.jsonl"
        assert main(
            ["bench", "-e", "table3", "--scale", "tiny",
             "--algorithms", "depminer", "--quiet",
             "--trace", str(trace_path)]
        ) == 0
        capsys.readouterr()
        parsed = parse_jsonl(trace_path.read_text())
        cells = [
            record for record in parsed["spans"]
            if record["name"] == "bench.cell"
        ]
        assert cells and all(r["attrs"]["algorithm"] == "depminer"
                             for r in cells)

    def test_report_metrics(self, paper_csv, capsys):
        assert main(["report", str(paper_csv), "--metrics"]) == 0
        assert "| metric | kind | value |" in capsys.readouterr().out

    def test_verbose_flag_parses(self, paper_csv):
        import logging

        parser = build_parser()
        args = parser.parse_args(["-vv", "discover", str(paper_csv)])
        assert args.verbose == 2
        # Undo what a real -v run configures so later tests stay silent.
        root = logging.getLogger("repro")
        previous = (root.level, list(root.handlers))
        try:
            assert main(["-v", "discover", str(paper_csv)]) == 0
        finally:
            root.setLevel(previous[0])
            root.handlers[:] = previous[1]


class TestSample:
    def test_matches_direct_discovery(self, paper_csv, capsys):
        assert main(["sample", str(paper_csv), "--sample-size", "3"]) == 0
        out = capsys.readouterr().out
        assert out.count("->") == 14
        assert "exact cover" in out


class TestDiff:
    def test_identical_csvs(self, paper_csv, capsys):
        assert main(["diff", str(paper_csv), str(paper_csv)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_json_round_trip(self, paper_csv, tmp_path, capsys):
        json_path = tmp_path / "cover.json"
        assert main(
            ["discover", str(paper_csv), "--json", str(json_path)]
        ) == 0
        capsys.readouterr()
        assert main(["diff", str(json_path), str(paper_csv)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_detects_drift(self, paper_csv, tmp_path, capsys):
        mutated = tmp_path / "mutated.csv"
        mutated.write_text(
            paper_csv.read_text() + "7,1,85,Biochemistry,9\n"
        )
        assert main(["diff", str(paper_csv), str(mutated)]) == 2
        out = capsys.readouterr().out
        assert "removed" in out or "added" in out


class TestInds:
    @pytest.fixture
    def warehouse(self, tmp_path):
        (tmp_path / "products.csv").write_text(
            "pid,cat\n1,a\n2,b\n3,a\n"
        )
        (tmp_path / "orders.csv").write_text(
            "oid,pid\n10,1\n11,3\n12,2\n"
        )
        return tmp_path

    def test_lists_inds(self, warehouse, capsys):
        assert main(["inds", str(warehouse)]) == 0
        out = capsys.readouterr().out
        assert "orders[pid] ⊆ products[pid]" in out

    def test_foreign_keys_filter(self, warehouse, capsys):
        assert main(["inds", str(warehouse), "--foreign-keys"]) == 0
        captured = capsys.readouterr()
        assert "orders[pid] ⊆ products[pid]" in captured.out
        assert "foreign-key candidate" in captured.err

    def test_missing_directory_reports_error(self, tmp_path, capsys):
        assert main(["inds", str(tmp_path / "ghost")]) == 1
        assert "error:" in capsys.readouterr().err


class TestExample:
    def test_runs_the_paper_example(self, capsys):
        assert main(["example"]) == 0
        out = capsys.readouterr().out
        assert "Agree sets" in out
        assert out.count("->") == 14
        assert "Armstrong" in out


class TestKeys:
    def test_lists_candidate_keys(self, paper_csv, capsys):
        assert main(["keys", str(paper_csv)]) == 0
        captured = capsys.readouterr()
        # empnum repeats (rows 1-2 share empnum=1): keys are all pairs.
        assert "(empnum, depnum)" in captured.out
        assert "(year, depname)" in captured.out
        assert "6 candidate key(s)" in captured.err

    def test_duplicate_rows_reported(self, tmp_path, capsys):
        path = tmp_path / "dups.csv"
        path.write_text("a,b\n1,2\n1,2\n")
        assert main(["keys", str(path)]) == 0
        assert "duplicate rows" in capsys.readouterr().out
