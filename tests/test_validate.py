"""Unit tests for the result-validation module."""

from __future__ import annotations

import pytest

from repro.core.attributes import AttributeSet
from repro.core.depminer import DepMiner
from repro.datagen.synthetic import generate_relation
from repro.fd.fd import FD
from repro.validate import validate_result


class TestKnownGoodResults:
    def test_paper_example_validates(self, paper_relation):
        result = DepMiner().run(paper_relation)
        report = validate_result(result, paper_relation)
        assert report.ok, report.render()
        assert "agree-sets-oracle" in report.checks_run
        assert any(
            check.startswith("armstrong-dep-equality")
            for check in report.checks_run
        )

    def test_synthetic_relations_validate(self):
        for seed in range(5):
            relation = generate_relation(5, 60, correlation=0.5, seed=seed)
            result = DepMiner().run(relation)
            report = validate_result(result, relation)
            assert report.ok, report.render()

    def test_shallow_mode_skips_expensive_checks(self, paper_relation):
        result = DepMiner().run(paper_relation)
        report = validate_result(result, paper_relation, deep=False)
        assert report.ok
        assert "agree-sets-oracle" not in report.checks_run

    def test_render(self, paper_relation):
        result = DepMiner().run(paper_relation)
        text = validate_result(result, paper_relation).render()
        assert text.startswith("validation: OK")


class TestCorruptedResults:
    def test_detects_bogus_fd(self, paper_relation):
        result = DepMiner().run(paper_relation)
        schema = result.schema
        result.fds.append(FD(schema.attribute_set(["A"]), "B"))
        report = validate_result(result, paper_relation)
        assert not report.ok
        assert any("does not hold" in v for v in report.violations)

    def test_detects_trivial_fd(self, paper_relation):
        result = DepMiner().run(paper_relation)
        schema = result.schema
        result.fds.append(FD(schema.attribute_set(["A", "B"]), "A"))
        report = validate_result(result, paper_relation)
        assert any("trivial" in v for v in report.violations)

    def test_detects_non_minimal_lhs(self, paper_relation):
        result = DepMiner().run(paper_relation)
        schema = result.schema
        # D -> B holds, so CD -> B is valid but not minimal.
        result.fds.append(FD(schema.attribute_set(["C", "D"]), "B"))
        report = validate_result(result, paper_relation)
        assert any("non-minimal" in v for v in report.violations)

    def test_detects_corrupted_agree_sets(self, paper_relation):
        result = DepMiner().run(paper_relation)
        result.agree_sets.add(0b11111)
        report = validate_result(result, paper_relation)
        assert any("agree sets differ" in v for v in report.violations)

    def test_detects_corrupted_max_sets(self, paper_relation):
        result = DepMiner().run(paper_relation)
        result.max_sets[0] = [0b00010]
        report = validate_result(result, paper_relation)
        assert any("maximal agree-set" in v for v in report.violations)

    def test_detects_corrupted_lhs(self, paper_relation):
        result = DepMiner().run(paper_relation)
        # Replace A's lhs family with a non-transversal.
        result.lhs_sets[0] = [0b00010]
        report = validate_result(result, paper_relation)
        assert any("minimal transversal" in v for v in report.violations)

    def test_detects_foreign_armstrong_values(self, paper_relation):
        from repro.core.relation import Relation

        result = DepMiner().run(paper_relation)
        rows = [list(row) for row in result.armstrong.rows()]
        rows[0][0] = "not-in-input"
        result.armstrong = Relation.from_rows(result.schema, rows)
        report = validate_result(result, paper_relation)
        assert any(
            "values not in the input" in v for v in report.violations
        )
