"""Differential tests: vectorized Armstrong vs the row-wise builders.

The columnar constructions in :mod:`repro.columnar.armstrong` promise
**bit-identical** output to :mod:`repro.core.armstrong` — same rows,
same column values, same Python value types, same existence errors —
across the whole oracle corpus (``tests/oracle.py``), the seeded
sweep, and the 70-attribute lane-boundary relation whose masks cross
bit 63.  ``is_armstrong_for_columnar`` must agree with the row-wise
check on accepting *and* rejecting candidates, and the relations a
columnar ``DepMiner`` emits must equal the python backend's.
"""

from __future__ import annotations

import pytest

from repro.columnar import numpy_available
from repro.core.armstrong import (
    classical_armstrong,
    is_armstrong_for,
    real_world_armstrong,
    real_world_existence_deficits,
)
from repro.core.depminer import DepMiner
from repro.datagen.synthetic import generate_relation
from repro.errors import ArmstrongExistenceError
from tests.oracle import corpus_relations, wide_lane_boundary_relation

pytestmark = pytest.mark.skipif(
    not numpy_available(),
    reason="the vectorized Armstrong constructions need NumPy",
)

if numpy_available():
    from repro.columnar.armstrong import (
        classical_armstrong_columnar,
        existence_deficits,
        is_armstrong_for_columnar,
        real_world_armstrong_columnar,
    )
    from repro.columnar.ingest import coded_from_relation


def assert_bit_identical(left, right):
    assert left.schema.names == right.schema.names
    assert len(left) == len(right)
    for attribute in range(len(left.schema)):
        a, b = left.column(attribute), right.column(attribute)
        assert a == b
        for x, y in zip(a, b):
            assert type(x) is type(y), (attribute, x, y)


def max_union_of(relation):
    return DepMiner(build_armstrong="none").run(relation).max_union


def corpus_cases():
    cases = [
        pytest.param(relation, id=label)
        for label, relation in corpus_relations()
    ]
    cases.append(pytest.param(wide_lane_boundary_relation(), id="wide-70"))
    cases.extend(
        pytest.param(
            generate_relation(attrs, rows, correlation=corr, seed=seed),
            id=f"gen-a{attrs}-r{rows}-c{corr}-s{seed}",
        )
        for attrs, rows, corr, seed in [
            (3, 12, None, 0), (5, 25, None, 1), (6, 30, 0.3, 2),
            (5, 40, 0.3, 3), (4, 20, 0.7, 4),
        ]
    )
    return cases


@pytest.mark.parametrize("relation", corpus_cases())
class TestDifferentialConstructions:
    def test_classical_is_bit_identical(self, relation):
        union = max_union_of(relation)
        legacy = classical_armstrong(relation.schema, union)
        vectorized = classical_armstrong_columnar(relation.schema, union)
        assert_bit_identical(legacy, vectorized)
        assert is_armstrong_for(vectorized, union)
        assert is_armstrong_for_columnar(vectorized, union)

    def test_real_world_is_bit_identical_or_same_error(self, relation):
        union = max_union_of(relation)
        deficits = real_world_existence_deficits(relation, union)
        assert existence_deficits(relation, union) == deficits
        coded = coded_from_relation(relation)
        assert existence_deficits(coded, union) == deficits
        if deficits:
            with pytest.raises(ArmstrongExistenceError) as legacy_err:
                real_world_armstrong(relation, union)
            with pytest.raises(ArmstrongExistenceError) as vector_err:
                real_world_armstrong_columnar(relation, union)
            assert str(legacy_err.value) == str(vector_err.value)
            assert legacy_err.value.failing_attributes == \
                vector_err.value.failing_attributes
        else:
            legacy = real_world_armstrong(relation, union)
            assert_bit_identical(
                legacy, real_world_armstrong_columnar(relation, union)
            )
            # Domains read straight off a code matrix give the same
            # relation — no materialization needed.
            assert_bit_identical(
                legacy, real_world_armstrong_columnar(coded, union)
            )
            assert is_armstrong_for_columnar(legacy, union)

    def test_is_armstrong_for_agrees(self, relation):
        union = max_union_of(relation)
        candidate = classical_armstrong(relation.schema, union)
        assert is_armstrong_for(candidate, union) == \
            is_armstrong_for_columnar(candidate, union) is True
        # The input relation itself (may or may not be Armstrong).
        assert is_armstrong_for(relation, union) == \
            is_armstrong_for_columnar(relation, union)
        # Dropping a generator must flip both verdicts identically.
        if len(union) > 1:
            truncated = union[:-1]
            assert is_armstrong_for(candidate, truncated) == \
                is_armstrong_for_columnar(candidate, truncated)


class TestMinerIntegration:
    @pytest.mark.parametrize(
        "relation",
        [pytest.param(r, id=label) for label, r in corpus_relations()],
    )
    def test_columnar_miner_emits_identical_armstrong(self, relation):
        python_result = DepMiner(backend="python").run(relation)
        columnar_result = DepMiner(backend="columnar").run(relation)
        assert_bit_identical(
            python_result.classical_armstrong,
            columnar_result.classical_armstrong,
        )
        if python_result.armstrong is None:
            assert columnar_result.armstrong is None
        else:
            assert_bit_identical(
                python_result.armstrong, columnar_result.armstrong
            )

    def test_armstrong_build_child_spans(self):
        from repro.datasets import paper_example_relation
        from repro.obs import Tracer

        tracer = Tracer()
        DepMiner(backend="columnar", tracer=tracer).run(
            paper_example_relation()
        )
        builds = tracer.find("armstrong.build")
        constructions = {span.attrs["construction"] for span in builds}
        assert constructions == {"classical", "real-world"}

    def test_strict_mode_raises_identically(self):
        from repro.core.attributes import Schema
        from repro.core.relation import Relation

        deficient = Relation.from_rows(
            Schema.of_width(3), [(0, 0, 0), (1, 0, 1), (1, 1, 0)]
        )
        errors = []
        for backend in ("python", "columnar"):
            with pytest.raises(ArmstrongExistenceError) as excinfo:
                DepMiner(backend=backend,
                         build_armstrong="strict").run(deficient)
            errors.append(str(excinfo.value))
        assert errors[0] == errors[1]


class TestEdgeShapes:
    def test_empty_union_single_zero_row(self):
        from repro.core.attributes import Schema

        schema = Schema.of_width(3)
        relation = classical_armstrong_columnar(schema, [])
        assert list(relation.rows()) == [(0, 0, 0)]

    def test_single_attribute(self):
        from repro.core.attributes import Schema

        schema = Schema.of_width(1)
        relation = classical_armstrong_columnar(schema, [0])
        assert list(relation.rows()) == [(0,), (1,)]
        assert is_armstrong_for_columnar(relation, [0])

    def test_empty_candidate_and_single_row(self):
        from repro.core.attributes import Schema
        from repro.core.relation import Relation

        schema = Schema.of_width(2)
        single = Relation.from_rows(schema, [(1, 2)])
        assert is_armstrong_for(single, []) == \
            is_armstrong_for_columnar(single, [])
        assert not is_armstrong_for_columnar(single, [0b01])
