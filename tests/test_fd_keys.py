"""Unit tests for candidate-key enumeration."""

from __future__ import annotations

import pytest

from repro.core.attributes import Schema
from repro.errors import ReproError
from repro.fd.fd import parse_fd
from repro.fd.keys import (
    candidate_keys,
    is_candidate_key,
    is_superkey_for,
    minimize_superkey,
    prime_attributes,
)


@pytest.fixture
def schema():
    return Schema.of_width(4)


class TestSuperkeys:
    def test_is_superkey_for(self, schema):
        fds = [parse_fd(schema, "A -> B"), parse_fd(schema, "A -> C"),
               parse_fd(schema, "A -> D")]
        assert is_superkey_for(schema.mask_of("A"), fds, schema)
        assert is_superkey_for(schema.mask_of(["A", "B"]), fds, schema)
        assert not is_superkey_for(schema.mask_of("B"), fds, schema)

    def test_minimize_superkey(self, schema):
        fds = [parse_fd(schema, "A -> B"), parse_fd(schema, "A -> C"),
               parse_fd(schema, "A -> D")]
        minimized = minimize_superkey(schema.universe_mask, fds, schema)
        assert minimized == schema.mask_of("A")

    def test_minimize_rejects_non_superkey(self, schema):
        with pytest.raises(ReproError, match="not a superkey"):
            minimize_superkey(schema.mask_of("B"), [], schema)


class TestCandidateKeys:
    def test_single_key(self, schema):
        fds = [parse_fd(schema, "A -> B"), parse_fd(schema, "A -> C"),
               parse_fd(schema, "A -> D")]
        keys = candidate_keys(fds, schema)
        assert [k.names for k in keys] == [("A",)]

    def test_cyclic_keys(self, schema):
        # A <-> B, both extend to keys with CD absent from any rhs? Use
        # the classic: A -> B, B -> A, AB determines nothing else, so
        # keys are ACD and BCD.
        fds = [parse_fd(schema, "A -> B"), parse_fd(schema, "B -> A")]
        keys = candidate_keys(fds, schema)
        assert sorted(k.compact() for k in keys) == ["ACD", "BCD"]

    def test_all_attributes_key_when_no_fds(self, schema):
        keys = candidate_keys([], schema)
        assert [k.names for k in keys] == [("A", "B", "C", "D")]

    def test_every_key_is_minimal(self, schema):
        fds = [
            parse_fd(schema, "AB -> C"),
            parse_fd(schema, "C -> A"),
            parse_fd(schema, "D -> B"),
        ]
        for key in candidate_keys(fds, schema):
            assert is_candidate_key(key.mask, fds, schema)

    def test_limit_stops_enumeration(self, schema):
        fds = [parse_fd(schema, "A -> B"), parse_fd(schema, "B -> A")]
        assert len(candidate_keys(fds, schema, limit=1)) == 1

    def test_known_three_key_example(self):
        # R(A,B,C) with A -> B, B -> C, C -> A: keys are A, B, C.
        schema = Schema.of_width(3)
        fds = [
            parse_fd(schema, "A -> B"),
            parse_fd(schema, "B -> C"),
            parse_fd(schema, "C -> A"),
        ]
        keys = candidate_keys(fds, schema)
        assert sorted(k.compact() for k in keys) == ["A", "B", "C"]


class TestIsCandidateKey:
    def test_superkey_but_not_minimal(self, schema):
        fds = [parse_fd(schema, "A -> B"), parse_fd(schema, "A -> C"),
               parse_fd(schema, "A -> D")]
        assert not is_candidate_key(
            schema.mask_of(["A", "B"]), fds, schema
        )
        assert is_candidate_key(schema.mask_of("A"), fds, schema)

    def test_non_superkey(self, schema):
        assert not is_candidate_key(schema.mask_of("A"), [], schema)


class TestPrimeAttributes:
    def test_union_of_keys(self):
        schema = Schema.of_width(3)
        fds = [
            parse_fd(schema, "A -> B"),
            parse_fd(schema, "B -> A"),
            parse_fd(schema, "AC -> B"),
        ]
        # Keys: AC and BC -> prime attributes {A, B, C}.
        prime = prime_attributes(fds, schema)
        assert prime.names == ("A", "B", "C")

    def test_non_prime_excluded(self, schema):
        fds = [parse_fd(schema, "A -> B"), parse_fd(schema, "A -> C"),
               parse_fd(schema, "A -> D")]
        assert prime_attributes(fds, schema).names == ("A",)
