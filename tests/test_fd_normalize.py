"""Unit tests for normalization (projection, BCNF, 3NF, 2NF)."""

from __future__ import annotations

import pytest

from repro.core.attributes import Schema
from repro.errors import ReproError
from repro.fd.closure import equivalent_covers, implies
from repro.fd.fd import parse_fd
from repro.fd.normalize import (
    bcnf_violations,
    decompose_bcnf,
    is_2nf,
    is_3nf,
    is_bcnf,
    is_lossless_binary_split,
    project_fds,
    synthesize_3nf,
)


@pytest.fixture
def schema():
    return Schema.of_width(4)


@pytest.fixture
def violating_fds(schema):
    """R(A,B,C,D) with AB -> C, C -> D: C -> D violates BCNF."""
    return [parse_fd(schema, "AB -> C"), parse_fd(schema, "C -> D")]


class TestProjection:
    def test_projects_transitive_fd(self, schema):
        fds = [parse_fd(schema, "A -> B"), parse_fd(schema, "B -> C")]
        onto = schema.mask_of(["A", "C"])
        projected = project_fds(fds, onto, schema)
        assert {str(fd) for fd in projected} == {"A -> C"}

    def test_projection_of_full_schema_is_a_cover(self, schema, violating_fds):
        projected = project_fds(violating_fds, schema.universe_mask, schema)
        assert equivalent_covers(projected, violating_fds)

    def test_width_guard(self):
        wide = Schema.of_width(30)
        with pytest.raises(ReproError, match="too wide"):
            project_fds([], wide.universe_mask, wide)


class TestBcnf:
    def test_detects_violation(self, schema, violating_fds):
        violations = bcnf_violations(violating_fds, schema)
        assert {str(fd) for fd in violations} == {"C -> D"}
        assert not is_bcnf(violating_fds, schema)

    def test_accepts_bcnf_schema(self, schema):
        fds = [parse_fd(schema, "A -> B"), parse_fd(schema, "A -> C"),
               parse_fd(schema, "A -> D")]
        assert is_bcnf(fds, schema)

    def test_within_subschema(self, schema, violating_fds):
        abc = schema.mask_of(["A", "B", "C"])
        # Projected onto ABC, only AB -> C remains, whose lhs is a key of
        # the fragment.
        assert is_bcnf(violating_fds, schema, within_mask=abc)

    def test_decomposition_is_bcnf_and_lossless(self, schema, violating_fds):
        fragments = decompose_bcnf(violating_fds, schema)
        assert len(fragments) >= 2
        for fragment in fragments:
            assert is_bcnf(
                violating_fds, schema, within_mask=fragment.attributes.mask
            )
        union = 0
        for fragment in fragments:
            union |= fragment.attributes.mask
        assert union == schema.universe_mask

    def test_decomposition_of_bcnf_schema_is_identity(self, schema):
        fds = [parse_fd(schema, "A -> B"), parse_fd(schema, "A -> C"),
               parse_fd(schema, "A -> D")]
        fragments = decompose_bcnf(fds, schema)
        assert len(fragments) == 1
        assert fragments[0].attributes == schema.universe()


class Test3NF:
    def test_violating_schema_is_not_3nf(self, schema, violating_fds):
        # D is non-prime and transitively dependent via C.
        assert not is_3nf(violating_fds, schema)

    def test_synthesis_produces_3nf_fragments(self, schema, violating_fds):
        fragments = synthesize_3nf(violating_fds, schema)
        union = 0
        for fragment in fragments:
            union |= fragment.attributes.mask
        assert union == schema.universe_mask
        # Dependency preservation: the union of projected FDs covers F.
        preserved = [fd for fragment in fragments for fd in fragment.fds]
        assert equivalent_covers(preserved, violating_fds)

    def test_synthesis_adds_key_fragment_when_needed(self):
        schema = Schema.of_width(3)
        # A -> B leaves C outside every fragment; a key fragment (AC)
        # must be added.
        fds = [parse_fd(schema, "A -> B")]
        fragments = synthesize_3nf(fds, schema)
        assert any(
            "C" in fragment.attributes.names for fragment in fragments
        )

    def test_prime_rhs_is_3nf(self):
        # A -> B, B -> A: B -> A has prime rhs; schema is 3NF though not
        # BCNF-violating either here; add C to make lhs non-key.
        schema = Schema.of_width(3)
        fds = [parse_fd(schema, "A -> B"), parse_fd(schema, "B -> A")]
        assert is_3nf(fds, schema)


class Test2NF:
    def test_partial_dependency_violates(self):
        schema = Schema.of_width(3)
        # Key is AB; A -> C is a partial dependency of non-prime C.
        fds = [parse_fd(schema, "A -> C")]
        assert not is_2nf(fds, schema)

    def test_full_dependencies_pass(self):
        schema = Schema.of_width(3)
        fds = [parse_fd(schema, "AB -> C")]
        assert is_2nf(fds, schema)

    def test_bcnf_implies_2nf(self, schema):
        fds = [parse_fd(schema, "A -> B"), parse_fd(schema, "A -> C"),
               parse_fd(schema, "A -> D")]
        assert is_bcnf(fds, schema)
        assert is_2nf(fds, schema)


class TestHeath:
    def test_lossless_split(self, schema, violating_fds):
        # Split on C -> D: (C, D) and (A, B, C).
        first = schema.mask_of(["C", "D"])
        second = schema.mask_of(["A", "B", "C"])
        assert is_lossless_binary_split(
            violating_fds, schema, first, second
        )

    def test_lossy_split(self, schema, violating_fds):
        first = schema.mask_of(["A", "D"])
        second = schema.mask_of(["B", "C"])
        assert not is_lossless_binary_split(
            violating_fds, schema, first, second
        )


class TestDecompositionRendering:
    def test_str(self, schema, violating_fds):
        fragment = decompose_bcnf(violating_fds, schema)[0]
        assert str(fragment).startswith("R(")
