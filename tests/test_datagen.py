"""Unit tests for the synthetic benchmark generator and workloads."""

from __future__ import annotations

import pytest

from repro.datagen.synthetic import (
    SyntheticSpec,
    generate_columns,
    generate_relation,
)
from repro.datagen.workloads import (
    CORRELATIONS,
    SCALES,
    WorkloadGrid,
    grid_for,
)
from repro.errors import BenchmarkError, ReproError


class TestSpec:
    def test_validation(self):
        with pytest.raises(ReproError):
            SyntheticSpec(0, 10)
        with pytest.raises(ReproError):
            SyntheticSpec(5, -1)
        with pytest.raises(ReproError):
            SyntheticSpec(5, 10, correlation=1.0)
        with pytest.raises(ReproError):
            SyntheticSpec(5, 10, correlation=-0.1)

    def test_domain_size(self):
        # The paper's own example: c = 50%, 1000 tuples -> 500 values.
        assert SyntheticSpec(5, 1000, correlation=0.5).domain_size == 500
        # Higher rate of identical values -> smaller active domain.
        assert SyntheticSpec(5, 1000, correlation=0.3).domain_size == 700
        # "Without constraints" behaves as c = 0.
        assert SyntheticSpec(5, 1000).domain_size == 1000
        assert SyntheticSpec(5, 2, correlation=0.9).domain_size == 1

    def test_label(self):
        assert "c=30%" in SyntheticSpec(5, 10, correlation=0.3).label()
        assert "c=none" in SyntheticSpec(5, 10).label()


class TestGeneration:
    def test_shape(self):
        relation = generate_relation(7, 50, correlation=0.5, seed=3)
        assert len(relation.schema) == 7
        assert len(relation) == 50

    def test_determinism(self):
        first = generate_relation(4, 100, correlation=0.3, seed=9)
        second = generate_relation(4, 100, correlation=0.3, seed=9)
        assert list(first.rows()) == list(second.rows())

    def test_different_seeds_differ(self):
        first = generate_relation(4, 100, seed=1)
        second = generate_relation(4, 100, seed=2)
        assert list(first.rows()) != list(second.rows())

    def test_columns_are_independent_of_width(self):
        """Adding attributes must not reshuffle existing columns."""
        narrow = generate_columns(SyntheticSpec(3, 50, seed=5))
        wide = generate_columns(SyntheticSpec(6, 50, seed=5))
        assert wide[:3] == narrow

    def test_values_respect_domain(self):
        spec = SyntheticSpec(3, 200, correlation=0.1, seed=0)
        for column in generate_columns(spec):
            assert all(0 <= value < spec.domain_size for value in column)

    def test_correlation_controls_distinct_counts(self):
        low = generate_relation(1, 1000, correlation=0.1, seed=1)
        high = generate_relation(1, 1000, correlation=0.9, seed=1)
        # Higher rate of identical values -> fewer distinct values.
        assert len(set(high.column(0))) < len(set(low.column(0)))

    def test_zero_tuples(self):
        relation = generate_relation(3, 0)
        assert len(relation) == 0

    def test_skew_concentrates_values(self):
        import collections

        uniform = generate_relation(1, 2000, correlation=0.5, seed=1)
        skewed = generate_relation(
            1, 2000, correlation=0.5, seed=1, skew=1.2
        )
        top_uniform = collections.Counter(
            uniform.column(0)
        ).most_common(1)[0][1]
        top_skewed = collections.Counter(
            skewed.column(0)
        ).most_common(1)[0][1]
        assert top_skewed > 5 * top_uniform

    def test_skew_zero_is_the_uniform_draw(self):
        plain = generate_relation(2, 100, correlation=0.5, seed=2)
        explicit = generate_relation(
            2, 100, correlation=0.5, seed=2, skew=0.0
        )
        assert list(plain.rows()) == list(explicit.rows())

    def test_negative_skew_rejected(self):
        with pytest.raises(ReproError):
            SyntheticSpec(2, 10, skew=-1.0)

    def test_skewed_values_stay_in_domain(self):
        spec = SyntheticSpec(2, 300, correlation=0.5, skew=2.0)
        for column in generate_columns(spec):
            assert all(0 <= v < spec.domain_size for v in column)


class TestWorkloads:
    def test_grid_for_known_names(self):
        grid = grid_for("c30", scale="tiny")
        assert grid.correlation == 0.30
        assert grid.attribute_counts == SCALES["tiny"][0]

    def test_grid_for_unknown_correlation(self):
        with pytest.raises(BenchmarkError, match="unknown correlation"):
            grid_for("c99")

    def test_grid_for_unknown_scale(self):
        with pytest.raises(BenchmarkError, match="unknown scale"):
            grid_for("none", scale="galactic")

    def test_specs_cover_the_grid(self):
        grid = grid_for("none", scale="tiny")
        specs = grid.specs()
        assert len(specs) == (
            len(grid.attribute_counts) * len(grid.tuple_counts)
        )
        assert all(spec.correlation is None for spec in specs)

    def test_column_specs(self):
        grid = grid_for("c50", scale="tiny")
        narrow = grid.attribute_counts[0]
        specs = grid.column_specs(narrow)
        assert [spec.num_tuples for spec in specs] == list(grid.tuple_counts)

    def test_column_specs_rejects_foreign_width(self):
        grid = grid_for("c50", scale="tiny")
        with pytest.raises(BenchmarkError):
            grid.column_specs(999)

    def test_paper_scale_matches_the_paper(self):
        attributes, tuples = SCALES["paper"]
        assert attributes == (10, 20, 30, 40, 50, 60)
        assert tuples == (10_000, 20_000, 30_000, 50_000, 100_000)

    def test_correlations_match_the_paper(self):
        assert CORRELATIONS == {"none": None, "c30": 0.30, "c50": 0.50}
