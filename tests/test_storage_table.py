"""Unit tests for columns and tables."""

from __future__ import annotations

import pytest

from repro.core.attributes import Schema
from repro.core.relation import Relation
from repro.errors import StorageError
from repro.storage.table import Column, Table, coerce_value, infer_type


class TestInferType:
    def test_ladder(self):
        assert infer_type([True, False]) == "bool"
        assert infer_type([1, 2]) == "int"
        assert infer_type([1, 2.5]) == "float"
        assert infer_type([1, "x"]) == "str"

    def test_nulls_are_skipped(self):
        assert infer_type([None, 3, None]) == "int"

    def test_all_null_defaults_to_str(self):
        assert infer_type([None, None]) == "str"
        assert infer_type([]) == "str"


class TestCoerceValue:
    def test_int_float_str(self):
        assert coerce_value("42", "int") == 42
        assert coerce_value("2.5", "float") == 2.5
        assert coerce_value("x", "str") == "x"

    def test_bool_tokens(self):
        assert coerce_value("true", "bool") is True
        assert coerce_value("NO", "bool") is False
        assert coerce_value("1", "bool") is True

    def test_none_passthrough(self):
        assert coerce_value(None, "int") is None

    def test_bad_bool(self):
        with pytest.raises(StorageError, match="bool"):
            coerce_value("perhaps", "bool")

    def test_bad_int(self):
        with pytest.raises(StorageError, match="int"):
            coerce_value("x", "int")

    def test_unknown_type(self):
        with pytest.raises(StorageError, match="unknown type"):
            coerce_value("1", "decimal")


class TestColumn:
    def test_basic(self):
        column = Column("age", [30, 40, None])
        assert column.type_name == "int"
        assert len(column) == 3
        assert column.distinct_count() == 3
        assert column.null_count() == 1

    def test_explicit_type(self):
        assert Column("x", [], type_name="float").type_name == "float"

    def test_rejects_empty_name(self):
        with pytest.raises(StorageError):
            Column("", [1])

    def test_rejects_unknown_type(self):
        with pytest.raises(StorageError, match="unknown type"):
            Column("x", [], type_name="varchar")

    def test_not_null_enforced(self):
        with pytest.raises(StorageError, match="NOT NULL"):
            Column("x", [1, None], nullable=False)


class TestTable:
    def test_from_rows(self):
        table = Table.from_rows("t", ["a", "b"], [(1, "x"), (2, "y")])
        assert len(table) == 2
        assert table.column_names == ("a", "b")
        assert table.row(1) == (2, "y")
        assert list(table.rows()) == [(1, "x"), (2, "y")]

    def test_from_rows_with_types(self):
        table = Table.from_rows(
            "t", ["a"], [(1,)], types=["float"]
        )
        assert table.column("a").type_name == "float"

    def test_rejects_arity_mismatch(self):
        with pytest.raises(StorageError, match="arity"):
            Table.from_rows("t", ["a", "b"], [(1,)])

    def test_rejects_ragged_columns(self):
        with pytest.raises(StorageError, match="ragged"):
            Table("t", [Column("a", [1]), Column("b", [1, 2])])

    def test_rejects_duplicate_columns(self):
        with pytest.raises(StorageError, match="duplicate"):
            Table("t", [Column("a", [1]), Column("a", [2])])

    def test_rejects_empty(self):
        with pytest.raises(StorageError):
            Table("t", [])
        with pytest.raises(StorageError):
            Table("", [Column("a", [])])

    def test_unknown_column_lookup(self):
        table = Table.from_rows("t", ["a"], [(1,)])
        with pytest.raises(StorageError, match="no column"):
            table.column("b")

    def test_round_trip_with_relation(self):
        schema = Schema(["a", "b"])
        relation = Relation.from_rows(schema, [(1, "x"), (2, "y")])
        table = Table.from_relation("t", relation)
        assert table.to_relation() == relation

    def test_profile(self):
        table = Table.from_rows(
            "t", ["a", "b"], [(1, None), (1, "x"), (2, "x")]
        )
        profile = table.profile()
        assert profile["a"] == {
            "type": "int", "rows": 3, "distinct": 2, "nulls": 0,
        }
        assert profile["b"]["nulls"] == 1
