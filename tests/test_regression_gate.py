"""Hermetic end-to-end test of ``scripts/check_regression.py``.

Runs the gate in subprocesses against a deliberately tiny
``REPRO_BENCH_TRANSVERSAL_*`` workload and a private baseline
directory, exercising the full loop the Makefile target promises:
``--update-baselines`` creates a workload-matched baseline, a clean run
passes, and ``--inject slow-kernel`` fails with per-phase / per-ratio
attribution.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
GATE = REPO_ROOT / "scripts" / "check_regression.py"

TINY_ENV = {
    "REPRO_BENCH_TRANSVERSAL_ATTRS": "10",
    "REPRO_BENCH_TRANSVERSAL_ROWS": "120",
    "REPRO_BENCH_TRANSVERSAL_CORRELATION": "0.6",
    "REPRO_BENCH_TRANSVERSAL_REPEATS": "1",
    "REPRO_BENCH_TRANSVERSAL_COVER_ATTRS": "6",
    "REPRO_BENCH_TRANSVERSAL_COVER_ROWS": "60",
}


def run_gate(tmp_path: Path, *extra: str) -> subprocess.CompletedProcess:
    env = dict(os.environ, **TINY_ENV)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(REPO_ROOT),
         env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    return subprocess.run(
        [sys.executable, str(GATE), "--suite", "transversal",
         "--baseline-dir", str(tmp_path / "baselines"),
         "--telemetry-dir", str(tmp_path / "telemetry"), *extra],
        capture_output=True, text=True, timeout=600, env=env,
        cwd=str(REPO_ROOT),
    )


@pytest.fixture(scope="module")
def baselined(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("gate")
    proc = run_gate(tmp_path, "--update-baselines")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    return tmp_path


class TestUpdateBaselines:
    def test_writes_baseline_with_phases(self, baselined):
        document = json.loads(
            (baselined / "baselines" / "BENCH_transversal.json").read_text()
        )
        assert document["workload"]["attrs"] == 10
        assert "phases" in document
        assert "lhs" in document["phases"]
        assert abs(sum(document["phases"].values()) - 1.0) < 0.01
        # floors were relaxed to what the tiny workload actually meets
        for name, floor in document["floors"].items():
            assert document["speedup"][name] >= floor

    def test_emits_a_valid_telemetry_manifest(self, baselined):
        sys.path.insert(0, str(REPO_ROOT / "src"))
        try:
            from repro.obs import validate_manifest
        finally:
            sys.path.remove(str(REPO_ROOT / "src"))
        manifest = json.loads(
            (baselined / "telemetry" / "regress_transversal.json")
            .read_text()
        )
        assert validate_manifest(manifest) == []
        assert manifest["command"] == "check-regression:transversal"
        assert manifest["meta"]["suite"] == "transversal"
        assert manifest["resources"]["samples"] >= 2
        assert manifest["phases"]


class TestCleanRun:
    def test_passes_against_its_own_baseline(self, baselined):
        proc = run_gate(baselined)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "bench-regress: OK" in proc.stdout
        assert "REGRESSED" not in proc.stdout

    def test_mismatched_workload_is_called_out(self, baselined, tmp_path):
        proc = run_gate(tmp_path / "elsewhere")
        assert proc.returncode != 0
        assert "missing baseline" in proc.stdout


class TestInjectedSlowdown:
    def test_fails_with_attribution(self, baselined):
        proc = run_gate(baselined, "--inject", "slow-kernel")
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "bench-regress: FAILED" in proc.stdout
        assert "REGRESSED speedup.kernel_vs_legacy" in proc.stdout
        # the injected fallback lands in the lhs phase of the probe;
        # the manifest records the injection for post-mortems
        manifest = json.loads(
            (baselined / "telemetry" / "regress_transversal.json")
            .read_text()
        )
        assert manifest["meta"]["injected"] == "slow-kernel"
        failed = [c for c in manifest["meta"]["checks"] if not c["ok"]]
        assert any(c["name"].startswith("speedup.") for c in failed)
