"""Unit tests for Armstrong-relation construction (section 4)."""

from __future__ import annotations

import pytest

from repro.core.armstrong import (
    armstrong_size,
    classical_armstrong,
    real_world_armstrong,
    real_world_armstrong_exists,
    real_world_existence_deficits,
)
from repro.core.attributes import Schema
from repro.core.depminer import DepMiner
from repro.core.relation import Relation
from repro.errors import ArmstrongExistenceError
from repro.fd.bruteforce import bruteforce_minimal_fds

from tests.conftest import masks


@pytest.fixture
def deficient_relation():
    """A relation whose attributes lack the distinct values Prop. 1 needs.

    ag(r) = {A, B, C}, so MAX(dep(r)) = {A, B, C}: every attribute misses
    two maximal sets and needs 3 distinct values, but each column only
    has {0, 1}.
    """
    schema = Schema.of_width(3)
    return Relation.from_rows(schema, [(0, 0, 0), (1, 0, 1), (1, 1, 0)])


class TestClassicalConstruction:
    def test_shape_and_values(self):
        schema = Schema.of_width(3)
        union = masks(schema, "A", "BC")
        relation = classical_armstrong(schema, union)
        assert len(relation) == 3
        rows = list(relation.rows())
        assert rows[0] == (0, 0, 0)
        # Row for A (mask sorted first): zeros on A, row index elsewhere.
        assert rows[1] == (0, 1, 1)
        assert rows[2] == (2, 0, 0)

    def test_no_maximal_sets_single_row(self):
        schema = Schema.of_width(2)
        relation = classical_armstrong(schema, [])
        assert list(relation.rows()) == [(0, 0)]

    def test_satisfies_exactly_the_source_dependencies(self, paper_relation):
        result = DepMiner().run(paper_relation)
        candidate = classical_armstrong(
            paper_relation.schema, result.max_union
        )
        assert bruteforce_minimal_fds(candidate) == \
            bruteforce_minimal_fds(paper_relation)

    def test_size_helper(self):
        assert armstrong_size([]) == 1
        assert armstrong_size([0b1, 0b10]) == 3


class TestExistenceCondition:
    def test_paper_relation_has_no_deficits(self, paper_relation):
        result = DepMiner().run(paper_relation)
        assert real_world_existence_deficits(
            paper_relation, result.max_union
        ) == {}
        assert real_world_armstrong_exists(paper_relation, result.max_union)

    def test_deficient_relation_reports_attribute_and_amount(
        self, deficient_relation
    ):
        result = DepMiner(build_armstrong="classical").run(deficient_relation)
        deficits = real_world_existence_deficits(
            deficient_relation, result.max_union
        )
        assert deficits == {"A": 1, "B": 1, "C": 1}
        assert not real_world_armstrong_exists(
            deficient_relation, result.max_union
        )

    def test_error_carries_failing_attributes(self, deficient_relation):
        result = DepMiner(build_armstrong="classical").run(deficient_relation)
        with pytest.raises(ArmstrongExistenceError) as info:
            real_world_armstrong(deficient_relation, result.max_union)
        assert info.value.failing_attributes == ("A", "B", "C")
        assert "short by 1" in str(info.value)


class TestIsArmstrongFor:
    def test_accepts_both_constructions(self, paper_relation):
        from repro.core.armstrong import is_armstrong_for

        result = DepMiner().run(paper_relation)
        assert is_armstrong_for(result.armstrong, result.max_union)
        assert is_armstrong_for(
            result.classical_armstrong, result.max_union
        )

    def test_rejects_the_original_relation_when_it_is_not_minimal(
        self, paper_relation
    ):
        """The input relation itself IS Armstrong for its own FDs
        (trivially); a relation with an extra agree set is not."""
        from repro.core.armstrong import is_armstrong_for

        result = DepMiner().run(paper_relation)
        # The paper relation's agree sets are {∅, A, BDE, CE, E} — all
        # closed, and all maximal sets appear, so it passes ...
        assert is_armstrong_for(paper_relation, result.max_union)
        # ... but dropping the rows witnessing max set A breaks GEN ⊆ ag.
        truncated = paper_relation.take([2, 3, 4])
        assert not is_armstrong_for(truncated, result.max_union)

    def test_rejects_non_closed_agree_sets(self):
        from repro.core.armstrong import is_armstrong_for

        schema = Schema.of_width(3)
        # max sets {AB}: closed sets are intersections of {AB} -> AB and
        # subsets closed? ag containing {A} alone is fine only if A is
        # an intersection of maximal sets; with MAX = {AB} the meet of
        # supersets of A is AB != A -> reject.
        candidate = Relation.from_rows(
            schema, [(0, 0, 0), (0, 1, 1), (1, 1, 2)]
        )
        # ag(candidate) = {A? ...}: rows 0,1 agree on A; rows 1,2 agree
        # on B; rows 0,2 agree on nothing.
        assert not is_armstrong_for(candidate, [schema.mask_of(["A", "B"])])


class TestRealWorldConstruction:
    def test_values_come_from_the_initial_relation(self, paper_relation):
        result = DepMiner().run(paper_relation)
        armstrong = result.armstrong
        for name in paper_relation.schema.names:
            assert set(armstrong.column(name)) <= set(
                paper_relation.column(name)
            )

    def test_size_is_max_union_plus_one(self, paper_relation):
        result = DepMiner().run(paper_relation)
        assert len(result.armstrong) == len(result.max_union) + 1

    def test_agree_structure_is_exact(self, paper_relation):
        """ag of the sample = MAX plus intersections (GEN ⊆ ag ⊆ CL)."""
        from repro.core.agree_sets import naive_agree_sets

        result = DepMiner().run(paper_relation)
        sample_agree = naive_agree_sets(result.armstrong)
        for max_mask in result.max_union:
            assert max_mask in sample_agree
        # Every agree set of the sample is an intersection of maximal
        # sets (i.e. closed under dep(r)).
        universe = paper_relation.schema.universe_mask
        for agree_mask in sample_agree:
            meet = universe
            for max_mask in result.max_union:
                if agree_mask & max_mask == agree_mask:
                    meet &= max_mask
            assert meet == agree_mask

    def test_dependencies_are_preserved_exactly(self, paper_relation):
        result = DepMiner().run(paper_relation)
        assert bruteforce_minimal_fds(result.armstrong) == \
            bruteforce_minimal_fds(paper_relation)

    def test_tight_domain_still_works(self):
        """Exactly as many distinct values as Proposition 1 requires."""
        schema = Schema.of_width(2)
        # ag = {A, B, ∅}; MAX = {A, B}; each attribute needs 2 values.
        relation = Relation.from_rows(
            schema, [(0, 0), (0, 1), (1, 0), (2, 3)]
        )
        result = DepMiner(build_armstrong="strict").run(relation)
        assert result.armstrong is not None
        assert bruteforce_minimal_fds(result.armstrong) == \
            bruteforce_minimal_fds(relation)


class TestEdgeCases:
    """Zero-FD relations, single-attribute schemas, duplicate rows."""

    @staticmethod
    def zero_fd_relation() -> Relation:
        # pairwise agree sets {A}, {B}, ∅: no non-trivial FD holds
        return Relation.from_rows(
            Schema(["A", "B"]), [(1, 1), (1, 2), (2, 1)]
        )

    def test_zero_fd_relation_mines_empty_cover(self):
        relation = self.zero_fd_relation()
        assert bruteforce_minimal_fds(relation) == []
        result = DepMiner(build_armstrong="classical").run(relation)
        assert result.fds == []
        assert sorted(result.max_union) == [1, 2]  # MAX = {{A}, {B}}

    def test_zero_fd_relation_still_has_an_armstrong_relation(self):
        from repro.core.armstrong import is_armstrong_for

        relation = self.zero_fd_relation()
        result = DepMiner(build_armstrong="classical").run(relation)
        assert is_armstrong_for(result.classical_armstrong,
                                result.max_union)
        # witnessing zero FDs exactly: the sample also mines to nothing
        assert bruteforce_minimal_fds(result.classical_armstrong) == []
        # the input happens to be its own Armstrong relation here
        assert is_armstrong_for(relation, result.max_union)

    def test_single_attribute_schema(self):
        from repro.core.armstrong import is_armstrong_for

        relation = Relation.from_rows(Schema(["A"]), [(1,), (2,)])
        result = DepMiner(build_armstrong="classical").run(relation)
        assert result.fds == []
        assert result.max_union == [0]  # MAX(dep(r), A) = {∅}
        assert list(result.classical_armstrong.rows()) == [(0,), (1,)]
        assert is_armstrong_for(result.classical_armstrong,
                                result.max_union)

    def test_single_constant_attribute(self):
        """A constant column yields the degenerate FD ∅ → A and an
        empty MAX union: the one-row classical construction."""
        relation = Relation.from_rows(Schema(["A"]), [(5,), (5,), (5,)])
        result = DepMiner(build_armstrong="classical").run(relation)
        assert [str(fd) for fd in result.fds] == ["∅ -> A"]
        assert result.max_union == []
        assert list(result.classical_armstrong.rows()) == [(0,)]

    def test_duplicate_rows_do_not_break_the_armstrong_check(self):
        """`is_armstrong_for` discards the universe agree set produced
        by duplicate rows (two equal tuples agree on R, and R is always
        closed) — a duplicated witness row must not flip the verdict."""
        from repro.core.armstrong import is_armstrong_for
        from repro.datasets import paper_example_relation

        relation = paper_example_relation()
        result = DepMiner().run(relation)
        rows = list(relation.rows())
        duplicated = Relation.from_rows(relation.schema, rows + [rows[0]])
        assert is_armstrong_for(duplicated, result.max_union)

    def test_duplicate_rows_alone_witness_nothing(self):
        """The universe-discard path must not *manufacture* generators:
        a candidate made of one row repeated has no non-trivial agree
        sets and cannot be Armstrong for a non-empty MAX."""
        from repro.core.armstrong import is_armstrong_for
        from repro.datasets import paper_example_relation

        relation = paper_example_relation()
        result = DepMiner().run(relation)
        row = next(iter(relation.rows()))
        all_dupes = Relation.from_rows(relation.schema, [row, row])
        assert result.max_union  # the paper example has generators
        assert not is_armstrong_for(all_dupes, result.max_union)
        # ... but it is (vacuously) Armstrong for an empty MAX
        assert is_armstrong_for(all_dupes, [])


class TestSizeBounds:
    """`armstrong_size` / `minimum_armstrong_size_bounds` edge cases:
    empty max-union, single-attribute schemas, the all-attributes
    union, and the C(n,2) >= |GEN| lower-bound arithmetic."""

    def test_empty_max_union(self):
        from repro.core.armstrong import minimum_armstrong_size_bounds

        # No generators: a single tuple is already Armstrong, and both
        # constructions emit exactly one row.
        assert armstrong_size([]) == 1
        assert minimum_armstrong_size_bounds([]) == (1, 1)
        schema = Schema.of_width(2)
        assert len(classical_armstrong(schema, [])) == 1

    def test_single_attribute_schema(self):
        from repro.core.armstrong import minimum_armstrong_size_bounds

        # Width 1: the only possible generator is the empty set (the
        # universe {A} is never a maximal set).  One generator needs
        # two disagreeing tuples, and the construction uses |MAX|+1 = 2.
        union = [0]
        assert armstrong_size(union) == 2
        assert minimum_armstrong_size_bounds(union) == (2, 2)
        schema = Schema.of_width(1)
        relation = classical_armstrong(schema, union)
        assert list(relation.rows()) == [(0,), (1,)]
        from repro.core.armstrong import is_armstrong_for

        assert is_armstrong_for(relation, union)

    def test_all_attributes_union(self):
        from repro.core.armstrong import minimum_armstrong_size_bounds

        # MAX containing every proper subset of width 3 that is maximal
        # under some attribute: take the three 2-subsets.  |GEN| = 3
        # needs C(3,2) = 3 >= 3 -> lower bound 3; upper bound 4.
        union = [0b011, 0b101, 0b110]
        assert armstrong_size(union) == 4
        assert minimum_armstrong_size_bounds(union) == (3, 4)

    def test_lower_bound_is_least_n_with_enough_pairs(self):
        from repro.core.armstrong import minimum_armstrong_size_bounds

        # C(n,2): 1, 3, 6, 10 ... the lower bound steps exactly there.
        assert minimum_armstrong_size_bounds([0b1])[0] == 2
        assert minimum_armstrong_size_bounds([0b1, 0b10])[0] == 3
        assert minimum_armstrong_size_bounds([0b1, 0b10, 0b100])[0] == 3
        four = [0b0001, 0b0010, 0b0100, 0b1000]
        assert minimum_armstrong_size_bounds(four) == (4, 5)
        ten = [1 << i for i in range(10)]
        lower, upper = minimum_armstrong_size_bounds(ten)
        assert lower == 5 and upper == 11  # C(5,2) = 10
        assert all(
            lower * (lower - 1) // 2 >= len(gen)
            for gen, (lower, _) in [
                (ten, minimum_armstrong_size_bounds(ten))
            ]
        )

    def test_bounds_bracket_the_constructions(self, paper_relation):
        from repro.core.armstrong import minimum_armstrong_size_bounds

        result = DepMiner().run(paper_relation)
        lower, upper = minimum_armstrong_size_bounds(result.max_union)
        assert lower <= len(result.armstrong) <= upper
        assert upper == armstrong_size(result.max_union)
