"""Unit tests for attribute closure, implication and closed-set families."""

from __future__ import annotations

import pytest

from repro.core.attributes import Schema
from repro.core.depminer import DepMiner
from repro.errors import SchemaMismatchError
from repro.fd.closure import (
    attribute_closure,
    closed_sets,
    closure_set,
    equivalent_covers,
    generators,
    implies,
    implies_all,
    is_closed,
)
from repro.fd.fd import FD, parse_fd


@pytest.fixture
def schema():
    return Schema.of_width(5)


@pytest.fixture
def textbook_fds(schema):
    """A -> B, B -> C, CD -> E."""
    return [
        parse_fd(schema, "A -> B"),
        parse_fd(schema, "B -> C"),
        parse_fd(schema, "CD -> E"),
    ]


class TestClosure:
    def test_transitive_chain(self, schema, textbook_fds):
        closure = attribute_closure(
            schema.mask_of(["A"]), textbook_fds, schema
        )
        assert schema.from_mask(closure).names == ("A", "B", "C")

    def test_compound_lhs(self, schema, textbook_fds):
        closure = attribute_closure(
            schema.mask_of(["A", "D"]), textbook_fds, schema
        )
        assert closure == schema.universe_mask

    def test_empty_fd_set(self, schema):
        closure = attribute_closure(schema.mask_of(["B"]), [], schema)
        assert closure == schema.mask_of(["B"])

    def test_empty_lhs_fd(self, schema):
        fds = [parse_fd(schema, "∅ -> C")]
        assert attribute_closure(0, fds, schema) == schema.mask_of(["C"])

    def test_closure_set_wrapper(self, schema, textbook_fds):
        result = closure_set(schema.attribute_set(["A"]), textbook_fds)
        assert result.names == ("A", "B", "C")

    def test_rejects_foreign_schema(self, schema, textbook_fds):
        other = Schema(["v", "w", "x", "y", "z"])
        with pytest.raises(SchemaMismatchError):
            attribute_closure(0, textbook_fds, other)

    def test_closure_is_idempotent(self, schema, textbook_fds):
        first = attribute_closure(schema.mask_of("A"), textbook_fds, schema)
        assert attribute_closure(first, textbook_fds, schema) == first

    def test_closure_is_monotone(self, schema, textbook_fds):
        small = attribute_closure(schema.mask_of("A"), textbook_fds, schema)
        big = attribute_closure(
            schema.mask_of(["A", "D"]), textbook_fds, schema
        )
        assert small & ~big == 0


class TestImplication:
    def test_implied_fd(self, schema, textbook_fds):
        assert implies(textbook_fds, parse_fd(schema, "A -> C"))

    def test_not_implied(self, schema, textbook_fds):
        assert not implies(textbook_fds, parse_fd(schema, "C -> A"))

    def test_trivial_always_implied(self, schema):
        assert implies([], parse_fd(schema, "AB -> A"))

    def test_implies_all(self, schema, textbook_fds):
        targets = [parse_fd(schema, "A -> C"), parse_fd(schema, "AB -> B")]
        assert implies_all(textbook_fds, targets)
        targets.append(parse_fd(schema, "E -> A"))
        assert not implies_all(textbook_fds, targets)

    def test_equivalent_covers(self, schema):
        first = [parse_fd(schema, "A -> B"), parse_fd(schema, "B -> C")]
        second = [
            parse_fd(schema, "A -> B"),
            parse_fd(schema, "B -> C"),
            parse_fd(schema, "A -> C"),  # redundant
        ]
        assert equivalent_covers(first, second)
        assert not equivalent_covers(first, [parse_fd(schema, "C -> A")])


class TestClosedSets:
    def test_is_closed(self, schema, textbook_fds):
        assert is_closed(schema.mask_of(["A", "B", "C"]), textbook_fds, schema)
        assert not is_closed(schema.mask_of(["A"]), textbook_fds, schema)

    def test_closed_sets_contains_universe(self, schema, textbook_fds):
        family = closed_sets(textbook_fds, schema)
        assert schema.universe_mask in family
        # Closed sets are closed under intersection.
        for x in family:
            for y in family:
                assert (x & y) in family

    def test_generators_equal_max_sets(self, paper_relation):
        """GEN(dep(r)) = MAX(dep(r)) [MR86] — ties the FD-theory module
        to the mining pipeline."""
        result = DepMiner().run(paper_relation)
        gen = generators(result.fds, paper_relation.schema)
        assert gen == result.max_union

    def test_generators_regenerate_closed_family(self, schema, textbook_fds):
        """Every closed set is an intersection of generators (with R as
        the empty intersection)."""
        family = set(closed_sets(textbook_fds, schema))
        gen = generators(textbook_fds, schema)
        regenerated = {schema.universe_mask}
        frontier = [schema.universe_mask]
        for mask in gen:
            regenerated.add(mask)
        # close under pairwise intersection
        changed = True
        while changed:
            changed = False
            for x in list(regenerated):
                for y in list(regenerated):
                    if (x & y) not in regenerated:
                        regenerated.add(x & y)
                        changed = True
        assert regenerated == family
