"""The layered transversal kernel: property suite, edge cases, wiring.

The central contract: the kernel (with or without the vectorized
backend, with or without the reduction pass) is extensionally identical
to the paper's levelwise Algorithm 5, Berge's sequential method and the
FastFDs-style DFS — on arbitrary simple hypergraphs, under ``max_size``
truncation, and end-to-end through ``DepMiner`` at any ``jobs`` value.
"""

from __future__ import annotations

import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.depminer import DepMiner
from repro.datagen.synthetic import generate_relation
from repro.errors import ReproError
from repro.hypergraph.dfs import minimal_transversals_dfs
from repro.hypergraph.hypergraph import minimize_sets
from repro.hypergraph import kernel as kernel_module
from repro.hypergraph.kernel import (
    minimal_transversals_kernel,
    reduce_hypergraph,
)
from repro.hypergraph.transversals import (
    minimal_transversals,
    minimal_transversals_berge,
    minimal_transversals_levelwise,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


@st.composite
def simple_hypergraphs(draw, max_vertices=7, max_edges=8):
    """A random simple hypergraph as ``(edges, num_vertices)``."""
    num_vertices = draw(st.integers(min_value=1, max_value=max_vertices))
    universe = (1 << num_vertices) - 1
    raw = draw(st.lists(
        st.integers(min_value=1, max_value=universe), max_size=max_edges
    ))
    return minimize_sets(raw), num_vertices


class TestAlgorithmEquivalence:
    @given(simple_hypergraphs())
    @settings(max_examples=80, deadline=None)
    def test_all_algorithms_agree(self, hypergraph):
        edges, num_vertices = hypergraph
        expected = minimal_transversals_levelwise(edges, num_vertices)
        assert minimal_transversals_kernel(edges, num_vertices) == expected
        assert minimal_transversals_kernel(
            edges, num_vertices, backend="vectorized"
        ) == expected
        assert minimal_transversals_berge(edges, num_vertices) == expected
        assert minimal_transversals_dfs(edges, num_vertices) == expected

    @given(simple_hypergraphs(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=80, deadline=None)
    def test_max_size_matches_levelwise_truncation(self, hypergraph, cap):
        edges, num_vertices = hypergraph
        expected = minimal_transversals_levelwise(
            edges, num_vertices, max_size=cap
        )
        for backend in ("python", "vectorized"):
            assert minimal_transversals_kernel(
                edges, num_vertices, max_size=cap, backend=backend
            ) == expected

    @given(simple_hypergraphs())
    @settings(max_examples=60, deadline=None)
    def test_reduction_pass_is_an_optimization_not_a_semantic(self, hypergraph):
        edges, num_vertices = hypergraph
        assert minimal_transversals_kernel(
            edges, num_vertices, reductions=False
        ) == minimal_transversals_kernel(edges, num_vertices)

    @given(simple_hypergraphs())
    @settings(max_examples=60, deadline=None)
    def test_dispatcher_names(self, hypergraph):
        edges, num_vertices = hypergraph
        expected = minimal_transversals(edges, num_vertices,
                                        method="levelwise")
        assert minimal_transversals(
            edges, num_vertices, method="kernel"
        ) == expected
        assert minimal_transversals(
            edges, num_vertices, method="vectorized"
        ) == expected


class TestDirectedEdgeCases:
    @pytest.mark.parametrize("backend", ["python", "vectorized"])
    def test_empty_hypergraph(self, backend):
        assert minimal_transversals_kernel([], 4, backend=backend) == [0]

    @pytest.mark.parametrize("backend", ["python", "vectorized"])
    def test_singleton_edges_are_committed_as_essential(self, backend):
        # {0} and {1} force both vertices; {2,3} branches.
        edges = [0b0001, 0b0010, 0b1100]
        assert minimal_transversals_kernel(edges, 4, backend=backend) == \
            sorted([0b0111, 0b1011])

    @pytest.mark.parametrize("backend", ["python", "vectorized"])
    def test_only_singleton_edges(self, backend):
        assert minimal_transversals_kernel(
            [0b01, 0b10], 2, backend=backend
        ) == [0b11]

    @pytest.mark.parametrize("backend", ["python", "vectorized"])
    def test_duplicated_incidence_vertices_expand_by_substitution(
        self, backend
    ):
        # Vertices 0,1 share all edges, as do 2,3: one search over the
        # two representatives, four expanded transversals.
        edges = [0b0011, 0b1100]
        assert minimal_transversals_kernel(edges, 4, backend=backend) == \
            minimal_transversals_levelwise(edges, 4)

    @pytest.mark.parametrize("backend", ["python", "vectorized"])
    def test_disconnected_components_cross_product(self, backend):
        # {0,1} and {2,3} are independent: 2 x 2 transversals.
        edges = [0b0011, 0b1100]
        result = minimal_transversals_kernel(edges, 4, backend=backend)
        assert len(result) == 4
        # Three components, sizes 2/2/1.
        edges = [0b000011, 0b001100, 0b010000]
        result = minimal_transversals_kernel(edges, 6, backend=backend)
        assert result == minimal_transversals_levelwise(edges, 6)
        assert len(result) == 4

    def test_max_size_below_the_essential_commit_is_empty(self):
        # Both vertices are essential, so no transversal has size <= 1.
        assert minimal_transversals_kernel(
            [0b01, 0b10], 2, max_size=1
        ) == []
        assert minimal_transversals_kernel(
            [0b01, 0b10], 2, max_size=2
        ) == [0b11]

    def test_max_size_exhausted_by_essentials_with_edges_left(self):
        # Essential vertex 0 uses the whole budget; edge {1,2} unmet.
        assert minimal_transversals_kernel(
            [0b001, 0b110], 3, max_size=1
        ) == []

    def test_max_size_truncates_a_component(self):
        # Component {2,3},{2,4},{3,4} needs 2 vertices; with the {0,1}
        # component's 1 the minimum is 3, so max_size=2 finds nothing.
        edges = [0b00011, 0b01100, 0b10100, 0b11000]
        assert minimal_transversals_kernel(edges, 5, max_size=2) == []
        assert minimal_transversals_kernel(edges, 5, max_size=3) == \
            minimal_transversals_levelwise(edges, 5, max_size=3)

    def test_rejects_empty_edge(self):
        with pytest.raises(ReproError, match="non-empty"):
            minimal_transversals_kernel([0b01, 0], 2)

    def test_rejects_invalid_max_size(self):
        with pytest.raises(ReproError, match="max_size"):
            minimal_transversals_kernel([0b1], 1, max_size=0)

    def test_rejects_unknown_backend(self):
        with pytest.raises(ReproError, match="unknown kernel backend"):
            minimal_transversals_kernel([0b1], 1, backend="gpu")

    def test_superset_edges_are_dropped(self):
        reduction = reduce_hypergraph([0b001, 0b011, 0b101])
        assert reduction.edges_dropped == 2
        assert reduction.essential == 0b001
        assert reduction.components == []


class TestReductionObservability:
    #: One singleton (essential), one merged pair per component, two
    #: components — every reduction fires.
    EDGES = [0b00001, 0b00110, 0b11000]
    WIDTH = 5

    def test_counters_fire(self):
        metrics = MetricsRegistry()
        result = minimal_transversals_kernel(
            self.EDGES, self.WIDTH, metrics=metrics
        )
        assert result == minimal_transversals_levelwise(
            self.EDGES, self.WIDTH
        )
        snapshot = metrics.snapshot()
        counters = snapshot["counters"]
        assert counters["transversal.essential_committed"] == 1
        assert counters["transversal.vertices_merged"] == 2
        assert counters["transversal.components"] == 2
        assert counters["lhs.candidates_generated"] >= 2
        assert "transversal.level_size" in snapshot["histograms"]

    def test_reduce_span_records_the_outcome(self):
        tracer = Tracer()
        minimal_transversals_kernel(self.EDGES, self.WIDTH, tracer=tracer)
        spans = tracer.find("transversal.reduce")
        assert len(spans) == 1
        attrs = spans[0].attrs
        assert attrs["essential"] == 1
        assert attrs["merged"] == 2
        assert attrs["components"] == 2

    def test_disabled_tracer_is_inert(self):
        tracer = Tracer(enabled=False)
        minimal_transversals_kernel(self.EDGES, self.WIDTH, tracer=tracer)
        assert tracer.find("transversal.reduce") == []
        # The shared null-span attrs dict must stay empty.
        from repro.obs.tracer import _NULL_SPAN

        assert _NULL_SPAN.attrs == {}


class TestDepMinerWiring:
    ALGORITHMS = ("kernel", "vectorized", "levelwise", "berge", "dfs")

    @pytest.fixture(scope="class")
    def relation(self):
        return generate_relation(8, 150, correlation=0.6, seed=3)

    def _cover(self, result):
        return [(fd.lhs.mask, fd.rhs_index) for fd in result.fds]

    def test_default_algorithm_is_the_kernel(self):
        assert DepMiner().transversal_algorithm == "kernel"
        assert DepMiner().transversal_method == "kernel"

    def test_alias_and_conflict(self):
        assert DepMiner(
            transversal_method="berge"
        ).transversal_algorithm == "berge"
        assert DepMiner(
            transversal_algorithm="dfs"
        ).transversal_method == "dfs"
        with pytest.raises(ReproError, match="conflict"):
            DepMiner(transversal_method="berge",
                     transversal_algorithm="dfs")
        # Agreeing values are accepted.
        assert DepMiner(
            transversal_method="kernel", transversal_algorithm="kernel"
        ).transversal_method == "kernel"

    def test_identical_covers_across_all_algorithms(self, relation):
        covers = {
            name: self._cover(
                DepMiner(build_armstrong="none",
                         transversal_algorithm=name, jobs=1).run(relation)
            )
            for name in self.ALGORITHMS
        }
        reference = covers["levelwise"]
        assert reference  # non-trivial workload
        for name, cover in covers.items():
            assert cover == reference, f"{name} diverged"

    @pytest.mark.parametrize("algorithm", ["kernel", "vectorized"])
    def test_jobs_differential_with_the_kernel(self, relation, algorithm):
        serial = DepMiner(build_armstrong="none",
                          transversal_algorithm=algorithm, jobs=1)
        sharded = DepMiner(build_armstrong="none",
                           transversal_algorithm=algorithm, jobs=2)
        assert self._cover(serial.run(relation)) == \
            self._cover(sharded.run(relation))

    def test_max_lhs_size_through_the_kernel(self, relation):
        full = DepMiner(build_armstrong="none",
                        transversal_algorithm="kernel", jobs=1).run(relation)
        capped = DepMiner(build_armstrong="none",
                          transversal_algorithm="kernel",
                          max_lhs_size=2, jobs=1).run(relation)
        expected = [fd for fd in full.fds if len(fd.lhs) <= 2]
        assert capped.fds == expected

    def test_reduction_counters_reach_the_miner_metrics(self, relation):
        metrics = MetricsRegistry()
        DepMiner(build_armstrong="none", transversal_algorithm="kernel",
                 metrics=metrics, jobs=1).run(relation)
        counters = metrics.snapshot()["counters"]
        assert counters.get("transversal.components", 0) >= 1


class TestNumpyAbsence:
    def test_vectorized_kernel_falls_back_to_pure_python(self, monkeypatch):
        edges = [0b0011, 0b0101, 0b1110]
        expected = minimal_transversals_kernel(edges, 4)
        monkeypatch.setattr(kernel_module, "np", None)
        monkeypatch.setattr(kernel_module, "_warned_numpy_missing", False)
        assert minimal_transversals_kernel(
            edges, 4, backend="vectorized"
        ) == expected
        assert kernel_module._warned_numpy_missing

    def test_vectorized_agree_raises_a_typed_error(self, monkeypatch,
                                                   paper_relation):
        from repro.core.agree_sets import agree_sets
        from repro.partitions.database import StrippedPartitionDatabase

        spdb = StrippedPartitionDatabase.from_relation(paper_relation)
        monkeypatch.setitem(sys.modules, "numpy", None)
        monkeypatch.delitem(sys.modules, "repro.core.agree_fast",
                            raising=False)
        with pytest.raises(ReproError, match="NumPy"):
            agree_sets(spdb, algorithm="vectorized")
