"""Integration tests: every example script runs and prints what it
promises."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_quickstart_prints_the_paper_artefacts():
    proc = run_example("quickstart.py")
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.count("->") == 14
    assert "Armstrong relation" in proc.stdout
    assert "Agree sets (5)" in proc.stdout


def test_logical_tuning_walks_the_dba_workflow():
    proc = run_example("logical_tuning.py")
    assert proc.returncode == 0, proc.stderr
    assert "Candidate keys" in proc.stdout
    assert "3NF synthesis" in proc.stdout
    assert "BCNF decomposition" in proc.stdout
    assert "Proof of" in proc.stdout


def test_benchmark_shootout_prints_paper_layout_tables():
    proc = run_example(
        "benchmark_shootout.py", "--rows", "200", "--attrs", "5",
    )
    assert proc.returncode == 0, proc.stderr
    assert "Execution times" in proc.stdout
    assert "Armstrong relations" in proc.stdout
    assert "Speedup" in proc.stdout


def test_warehouse_audit_profiles_every_table(tmp_path):
    proc = run_example("warehouse_audit.py", str(tmp_path))
    assert proc.returncode == 0, proc.stderr
    assert "Warehouse summary" in proc.stdout
    for name in ("flights", "hospital", "orders"):
        assert (tmp_path / f"{name}_profile.md").exists()


def test_large_table_sampling_verifies_exactness(tmp_path):
    proc = run_example(
        "large_table_sampling.py",
        "--rows", "3000", "--attrs", "6", "--correlation", "0.8",
    )
    assert proc.returncode == 0, proc.stderr
    assert "covers are identical" in proc.stdout


def test_theory_tour_ties_lattice_to_mining():
    proc = run_example("theory_tour.py")
    assert proc.returncode == 0, proc.stderr
    assert "Meet-irreducible closed sets == the mined maximal sets" \
        in proc.stdout
    assert "Proof of BC -> A" in proc.stdout
    assert "A -/-> B" in proc.stdout


def test_csv_profiling_round_trips_through_storage(tmp_path):
    proc = run_example("csv_profiling.py", str(tmp_path))
    assert proc.returncode == 0, proc.stderr
    assert "Column profile" in proc.stdout
    assert "Minimal FDs of the full table" in proc.stdout
    assert (tmp_path / "supplier_parts.csv").exists()
    assert (tmp_path / "supplier_parts_armstrong.csv").exists()
