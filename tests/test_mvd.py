"""Unit tests for multivalued dependencies and 4NF."""

from __future__ import annotations

import pytest

from repro.core.attributes import Schema
from repro.core.relation import Relation
from repro.errors import ReproError
from repro.fd.fd import parse_fd
from repro.fd.mvd import (
    MVD,
    decompose_4nf,
    dependency_basis,
    fourth_nf_violations,
    implies_mvd,
    is_4nf,
)


def mvd(schema, lhs, rhs):
    return MVD(
        schema.attribute_set(list(lhs)), schema.attribute_set(list(rhs))
    )


@pytest.fixture
def schema():
    return Schema.of_width(4)  # A B C D


@pytest.fixture
def course_relation():
    """The textbook course/teacher/book relation: course ↠ teacher."""
    schema = Schema(["course", "teacher", "book"])
    rows = [
        ("db", "smith", "ullman"),
        ("db", "smith", "date"),
        ("db", "jones", "ullman"),
        ("db", "jones", "date"),
        ("ai", "wong", "russell"),
    ]
    return Relation.from_rows(schema, rows)


class TestMvdObject:
    def test_normalised_rhs_excludes_lhs(self, schema):
        dependency = mvd(schema, "AB", "BC")
        assert dependency.rhs.names == ("C",)

    def test_complement(self, schema):
        dependency = mvd(schema, "A", "B")
        assert dependency.complement().rhs.names == ("C", "D")

    def test_trivial_forms(self, schema):
        assert mvd(schema, "AB", "B").is_trivial()       # rhs ⊆ lhs
        assert mvd(schema, "A", "BCD").is_trivial()      # lhs ∪ rhs = R
        assert not mvd(schema, "A", "B").is_trivial()

    def test_str(self, schema):
        assert str(mvd(schema, "A", "BC")) == "A ->> BC"


class TestHoldsIn:
    def test_cross_product_group_satisfies(self, course_relation):
        schema = course_relation.schema
        dependency = MVD(
            schema.attribute_set(["course"]),
            schema.attribute_set(["teacher"]),
        )
        assert dependency.holds_in(course_relation)
        # Complementation: course ->> book holds too.
        assert dependency.complement().holds_in(course_relation)

    def test_missing_combination_fails(self, course_relation):
        schema = course_relation.schema
        # Dropping (db, jones, date) leaves the db group short of the
        # full teacher × book cross product.
        dependency = MVD(
            schema.attribute_set(["course"]),
            schema.attribute_set(["teacher"]),
        )
        rows = [
            ("db", "smith", "ullman"),
            ("db", "smith", "date"),
            ("db", "jones", "ullman"),
            ("ai", "wong", "russell"),
        ]
        partial = Relation.from_rows(schema, rows)
        assert not dependency.holds_in(partial)

    def test_every_fd_is_an_mvd(self, paper_relation):
        """X → A implies X ↠ A on instances."""
        from repro.core.depminer import discover_fds

        schema = paper_relation.schema
        for fd in discover_fds(paper_relation):
            dependency = MVD(
                fd.lhs, schema.from_mask(fd.rhs_mask)
            )
            assert dependency.holds_in(paper_relation), str(fd)

    def test_schema_mismatch(self, schema, course_relation):
        with pytest.raises(ReproError):
            mvd(schema, "A", "B").holds_in(course_relation)


class TestDependencyBasis:
    def test_partitions_the_complement(self, schema):
        fds = [parse_fd(schema, "A -> B")]
        mvds = [mvd(schema, "A", "C")]
        basis = dependency_basis(
            schema.mask_of("A"), fds, mvds, schema
        )
        union = 0
        for block in basis:
            union |= block
        assert union == schema.universe_mask & ~schema.mask_of("A")
        # Blocks are pairwise disjoint.
        total = sum(bin(block).count("1") for block in basis)
        assert total == bin(union).count("1")

    def test_fd_splits_to_singletons(self, schema):
        fds = [parse_fd(schema, "A -> B")]
        basis = dependency_basis(schema.mask_of("A"), fds, [], schema)
        assert schema.mask_of("B") in basis

    def test_no_dependencies_one_block(self, schema):
        basis = dependency_basis(schema.mask_of("A"), [], [], schema)
        assert basis == [schema.universe_mask & ~schema.mask_of("A")]


class TestImplication:
    def test_given_mvd_is_implied(self, schema):
        mvds = [mvd(schema, "A", "BC")]
        assert implies_mvd([], mvds, mvd(schema, "A", "BC"))

    def test_complement_is_implied(self, schema):
        mvds = [mvd(schema, "A", "B")]
        assert implies_mvd([], mvds, mvd(schema, "A", "CD"))

    def test_fd_conversion(self, schema):
        fds = [parse_fd(schema, "A -> B")]
        assert implies_mvd(fds, [], mvd(schema, "A", "B"))

    def test_union_of_blocks(self, schema):
        mvds = [mvd(schema, "A", "B"), mvd(schema, "A", "C")]
        assert implies_mvd([], mvds, mvd(schema, "A", "BC"))

    def test_non_implied(self, schema):
        mvds = [mvd(schema, "A", "BC")]
        assert not implies_mvd([], mvds, mvd(schema, "A", "B"))

    def test_implied_mvds_hold_on_instances(self, course_relation):
        """Soundness spot check: implied MVDs hold wherever the givens
        hold."""
        schema = course_relation.schema
        given = MVD(
            schema.attribute_set(["course"]),
            schema.attribute_set(["teacher"]),
        )
        target = given.complement()
        assert implies_mvd([], [given], target)
        assert target.holds_in(course_relation)


class Test4NF:
    def test_violation_detection(self, schema):
        fds = []
        mvds = [mvd(schema, "A", "B")]
        violations = fourth_nf_violations(fds, mvds, schema)
        assert violations == mvds
        assert not is_4nf(fds, mvds, schema)

    def test_superkey_lhs_is_fine(self, schema):
        fds = [parse_fd(schema, "A -> B"), parse_fd(schema, "A -> C"),
               parse_fd(schema, "A -> D")]
        mvds = [mvd(schema, "A", "B")]
        assert is_4nf(fds, mvds, schema)

    def test_decomposition_splits_on_the_mvd(self):
        schema = Schema(["course", "teacher", "book"])
        dependency = MVD(
            schema.attribute_set(["course"]),
            schema.attribute_set(["teacher"]),
        )
        fragments = decompose_4nf([], [dependency], schema)
        names = {
            tuple(fragment.attributes.names) for fragment in fragments
        }
        assert names == {("course", "teacher"), ("course", "book")}

    def test_decomposition_is_lossless_on_instances(self, course_relation):
        schema = course_relation.schema
        dependency = MVD(
            schema.attribute_set(["course"]),
            schema.attribute_set(["teacher"]),
        )
        fragments = decompose_4nf([], [dependency], schema)
        assert len(fragments) == 2
        projections = [
            course_relation.project(fragment.attributes.names)
            for fragment in fragments
        ]
        joined = projections[0].natural_join(projections[1])
        assert joined.project(schema.names) == course_relation.distinct()

    def test_4nf_schema_is_untouched(self, schema):
        fds = [parse_fd(schema, "A -> B"), parse_fd(schema, "A -> C"),
               parse_fd(schema, "A -> D")]
        fragments = decompose_4nf(fds, [mvd(schema, "A", "B")], schema)
        assert len(fragments) == 1
        assert fragments[0].attributes == schema.universe()


class TestNaturalJoin:
    def test_joins_on_common_attribute(self):
        left = Relation.from_rows(
            Schema(["a", "b"]), [(1, "x"), (2, "y")]
        )
        right = Relation.from_rows(
            Schema(["b", "c"]), [("x", 10), ("x", 20), ("z", 30)]
        )
        joined = left.natural_join(right)
        assert joined.schema.names == ("a", "b", "c")
        assert sorted(joined.rows()) == [(1, "x", 10), (1, "x", 20)]

    def test_cross_product_without_common_attributes(self):
        left = Relation.from_rows(Schema(["a"]), [(1,), (2,)])
        right = Relation.from_rows(Schema(["b"]), [("x",), ("y",)])
        joined = left.natural_join(right)
        assert len(joined) == 4

    def test_lossless_binary_split_verified_on_instance(self, paper_relation):
        """Heath's theorem in action: splitting on B -> D E gives a
        lossless decomposition of the worked example."""
        schema = paper_relation.schema
        left = paper_relation.project(["B", "D", "E"])
        right = paper_relation.project(["A", "B", "C"])
        joined = right.natural_join(left)
        assert joined.project(schema.names) == paper_relation.distinct()
