"""Unit tests for the experiment index (tables 3-5, figures 2-7)."""

from __future__ import annotations

import pytest

from repro.bench.experiments import (
    EXPERIMENTS,
    experiment_report,
    run_experiment,
)
from repro.errors import BenchmarkError


class TestIndex:
    def test_every_paper_artifact_is_indexed(self):
        assert set(EXPERIMENTS) == {
            "table3", "table4", "table5",
            "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
        }

    def test_correlations_match_the_paper(self):
        assert EXPERIMENTS["table3"].correlation_name == "none"
        assert EXPERIMENTS["table4"].correlation_name == "c30"
        assert EXPERIMENTS["table5"].correlation_name == "c50"
        assert EXPERIMENTS["fig4"].correlation_name == "c30"
        assert EXPERIMENTS["fig7"].correlation_name == "c50"

    def test_kinds(self):
        assert EXPERIMENTS["table3"].kind == "tables"
        assert EXPERIMENTS["fig2"].kind == "times_figure"
        assert EXPERIMENTS["fig3"].kind == "sizes_figure"


class TestRun:
    def test_unknown_experiment(self):
        with pytest.raises(BenchmarkError, match="unknown experiment"):
            run_experiment("table9", scale="tiny")

    def test_table_experiment_report(self):
        experiment, result = run_experiment(
            "table5", scale="tiny", algorithms=("depminer", "tane")
        )
        report = experiment_report(experiment, result)
        assert "Table 5" in report
        assert "Execution times" in report
        assert "Armstrong" in report
        assert "Speedup" in report

    def test_times_figure_report(self):
        experiment, result = run_experiment(
            "fig2", scale="tiny", algorithms=("depminer", "depminer2")
        )
        report = experiment_report(experiment, result)
        assert "Figure 2" in report
        assert "|R| =" in report
        assert "Dep-Miner" in report

    def test_sizes_figure_report(self):
        experiment, result = run_experiment(
            "fig3", scale="tiny", algorithms=("depminer",)
        )
        report = experiment_report(experiment, result)
        assert "Figure 3" in report
        assert "Armstrong size" in report

    def test_seed_is_forwarded(self):
        _exp, first = run_experiment(
            "fig3", scale="tiny", algorithms=("depminer",), seed=1
        )
        _exp, second = run_experiment(
            "fig3", scale="tiny", algorithms=("depminer",), seed=2
        )
        sizes_first = [c.armstrong_size for c in first.cells]
        sizes_second = [c.armstrong_size for c in second.cells]
        assert sizes_first != sizes_second


class TestShapes:
    """The paper's qualitative claims, checked at tiny scale."""

    def test_armstrong_relations_are_much_smaller_than_input(self):
        _exp, result = run_experiment(
            "table5", scale="tiny", algorithms=("depminer",)
        )
        for cell in result.cells:
            assert cell.armstrong_size is not None
            assert cell.armstrong_size < cell.spec.num_tuples / 2

    def test_correlated_data_grows_armstrong_sizes(self):
        """Sizes ordering: none < c = 30% < c = 50% (Tables 3b/4/5)."""
        sizes = {}
        for name in ("table3", "table4", "table5"):
            _exp, result = run_experiment(
                name, scale="tiny", algorithms=("depminer",)
            )
            widest = max(result.grid.attribute_counts)
            most = max(result.grid.tuple_counts)
            sizes[name] = result.cell(widest, most, "depminer").armstrong_size
        assert sizes["table3"] < sizes["table4"] < sizes["table5"]
