"""Unit tests for assorted late additions: rename, Database persistence,
Armstrong size bounds."""

from __future__ import annotations

import pytest

from repro.core.armstrong import minimum_armstrong_size_bounds
from repro.core.attributes import Schema
from repro.core.depminer import DepMiner
from repro.core.relation import Relation
from repro.errors import RelationError
from repro.storage.database import Database
from repro.storage.table import Table


class TestRename:
    def test_rename_some_columns(self):
        relation = Relation.from_rows(
            Schema(["a", "b"]), [(1, "x"), (2, "y")]
        )
        renamed = relation.rename({"a": "id"})
        assert renamed.schema.names == ("id", "b")
        assert list(renamed.rows()) == list(relation.rows())

    def test_rename_enables_joins(self):
        employees = Relation.from_rows(
            Schema(["emp", "dept_id"]), [("ann", 1), ("bob", 2)]
        )
        departments = Relation.from_rows(
            Schema(["id", "dept"]), [(1, "cs"), (2, "math")]
        )
        joined = employees.natural_join(
            departments.rename({"id": "dept_id"})
        )
        assert sorted(joined.rows()) == [
            ("ann", 1, "cs"), ("bob", 2, "math"),
        ]

    def test_rename_unknown_attribute(self):
        relation = Relation.from_rows(Schema(["a"]), [(1,)])
        with pytest.raises(RelationError, match="unknown"):
            relation.rename({"z": "y"})

    def test_rename_collision_is_a_schema_error(self):
        relation = Relation.from_rows(Schema(["a", "b"]), [(1, 2)])
        with pytest.raises(Exception, match="duplicate"):
            relation.rename({"a": "b"})


class TestDatabasePersistence:
    def test_save_load_round_trip(self, tmp_path):
        db = Database("wh")
        db.create_table(
            Table.from_rows("emp", ["id", "dept"], [(1, "cs"), (2, "ee")])
        )
        db.create_table(Table.from_rows("dept", ["code"], [("cs",)]))
        written = db.save(tmp_path)
        assert sorted(p.name for p in written) == ["dept.csv", "emp.csv"]
        restored = Database.load(tmp_path)
        assert restored.table_names() == ["dept", "emp"]
        assert list(restored.table("emp").rows()) == [(1, "cs"), (2, "ee")]

    def test_load_names_after_directory(self, tmp_path):
        (tmp_path / "t.csv").write_text("a\n1\n")
        assert Database.load(tmp_path).name == tmp_path.name


class TestArmstrongSizeBounds:
    def test_degenerate(self):
        assert minimum_armstrong_size_bounds([]) == (1, 1)

    def test_small_cases(self):
        assert minimum_armstrong_size_bounds([0b1]) == (2, 2)
        assert minimum_armstrong_size_bounds([1, 2, 3]) == (3, 4)

    def test_lower_bound_is_the_pair_coverage_threshold(self):
        lower, upper = minimum_armstrong_size_bounds(list(range(1, 11)))
        assert lower == 5            # C(5,2) = 10 >= 10
        assert upper == 11

    def test_bounds_bracket_the_construction(self, paper_relation):
        result = DepMiner().run(paper_relation)
        lower, upper = minimum_armstrong_size_bounds(result.max_union)
        assert lower <= len(result.armstrong) <= upper
