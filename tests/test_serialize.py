"""Unit tests for JSON (de)serialization."""

from __future__ import annotations

import json

import pytest

from repro.core.attributes import Schema
from repro.core.depminer import DepMiner
from repro.errors import ReproError
from repro.fd.fd import parse_fd
from repro.serialize import (
    fd_from_dict,
    fd_to_dict,
    fds_from_json,
    fds_to_json,
    result_to_dict,
    result_to_json,
    schema_from_dict,
    schema_to_dict,
)


@pytest.fixture
def schema():
    return Schema.of_width(4)


class TestSchemaRoundTrip:
    def test_round_trip(self, schema):
        assert schema_from_dict(schema_to_dict(schema)) == schema

    def test_malformed(self):
        with pytest.raises(ReproError, match="malformed schema"):
            schema_from_dict({})


class TestFdRoundTrip:
    def test_round_trip(self, schema):
        fd = parse_fd(schema, "BC -> A")
        assert fd_from_dict(fd_to_dict(fd), schema) == fd

    def test_empty_lhs(self, schema):
        fd = parse_fd(schema, "∅ -> B")
        assert fd_from_dict(fd_to_dict(fd), schema) == fd

    def test_malformed(self, schema):
        with pytest.raises(ReproError, match="malformed FD"):
            fd_from_dict({"lhs": ["A"]}, schema)


class TestFdListRoundTrip:
    def test_round_trip(self, schema):
        fds = [parse_fd(schema, "BC -> A"), parse_fd(schema, "D -> B")]
        assert fds_from_json(fds_to_json(fds)) == fds

    def test_rejects_empty_list(self):
        with pytest.raises(ReproError, match="empty FD list"):
            fds_to_json([])

    def test_rejects_bad_json(self):
        with pytest.raises(ReproError, match="invalid JSON"):
            fds_from_json("{not json")

    def test_rejects_unknown_version(self, schema):
        fds = [parse_fd(schema, "A -> B")]
        document = json.loads(fds_to_json(fds))
        document["version"] = 99
        with pytest.raises(ReproError, match="version"):
            fds_from_json(json.dumps(document))

    def test_mined_cover_round_trips(self, paper_relation):
        fds = DepMiner(build_armstrong="none").run(paper_relation).fds
        restored = fds_from_json(fds_to_json(fds))
        assert restored == fds


class TestResultDocument:
    def test_contains_all_artifacts(self, paper_relation):
        result = DepMiner().run(paper_relation)
        document = result_to_dict(result)
        assert document["num_rows"] == 7
        assert len(document["fds"]) == 14
        assert document["armstrong_size"] == 4
        assert ["B", "D", "E"] in document["agree_sets"]
        assert set(document["max_sets"]) == set("ABCDE")

    def test_json_is_valid_and_loadable(self, paper_relation):
        result = DepMiner().run(paper_relation)
        document = json.loads(result_to_json(result))
        assert document["version"] == 1
        # The fds block is itself loadable as an FD list.
        fds_block = json.dumps(
            {
                "version": 1,
                "schema": document["schema"],
                "fds": document["fds"],
            }
        )
        assert len(fds_from_json(fds_block)) == 14
