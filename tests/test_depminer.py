"""Unit tests for the Dep-Miner orchestrator."""

from __future__ import annotations

import pytest

from repro.core.attributes import Schema
from repro.core.depminer import DepMiner, discover, discover_fds
from repro.core.relation import Relation
from repro.errors import ArmstrongExistenceError, ReproError
from repro.partitions.database import StrippedPartitionDatabase


class TestConfiguration:
    def test_rejects_unknown_armstrong_mode(self):
        with pytest.raises(ReproError, match="build_armstrong"):
            DepMiner(build_armstrong="maybe")

    def test_rejects_unknown_agree_algorithm_at_run_time(self, paper_relation):
        miner = DepMiner(agree_algorithm="wrong")
        with pytest.raises(ReproError, match="unknown agree-set algorithm"):
            miner.run(paper_relation)

    def test_rejects_unknown_transversal_method(self, paper_relation):
        miner = DepMiner(transversal_method="wrong")
        with pytest.raises(ReproError, match="unknown transversal method"):
            miner.run(paper_relation)


class TestResultContents:
    def test_phase_timings_cover_the_pipeline(self, paper_relation):
        result = DepMiner().run(paper_relation)
        assert set(result.phase_seconds) == {
            "strip", "agree_sets", "cmax", "lhs", "fd_output", "armstrong",
        }
        assert result.total_seconds >= 0
        assert result.num_rows == 7

    def test_views_are_keyed_by_attribute_name(self, paper_relation):
        result = DepMiner().run(paper_relation)
        assert set(result.max_sets_view()) == set("ABCDE")
        assert set(result.cmax_sets_view()) == set("ABCDE")
        assert set(result.lhs_view()) == set("ABCDE")
        compacts = [s.compact() for s in result.agree_sets_view()]
        assert "BDE" in compacts

    def test_summary_mentions_key_counts(self, paper_relation):
        result = DepMiner().run(paper_relation)
        summary = result.summary()
        assert "minimal FDs: 14" in summary
        assert "Armstrong relation: 4 tuples" in summary


class TestArmstrongModes:
    def test_none_skips_both_constructions(self, paper_relation):
        result = DepMiner(build_armstrong="none").run(paper_relation)
        assert result.armstrong is None
        assert result.classical_armstrong is None
        assert result.armstrong_size is None

    def test_classical_only(self, paper_relation):
        result = DepMiner(build_armstrong="classical").run(paper_relation)
        assert result.armstrong is None
        assert result.classical_armstrong is not None
        assert len(result.classical_armstrong) == len(result.max_union) + 1

    def test_real_world_falls_back_silently(self):
        # A has too few distinct values; default mode keeps classical only.
        schema = Schema.of_width(3)
        relation = Relation.from_rows(
            schema, [(0, 0, 0), (1, 0, 1), (1, 1, 0)]
        )
        result = DepMiner().run(relation)
        assert result.armstrong is None
        assert result.classical_armstrong is not None

    def test_strict_raises_when_no_real_world_exists(self):
        schema = Schema.of_width(3)
        relation = Relation.from_rows(
            schema, [(0, 0, 0), (1, 0, 1), (1, 1, 0)]
        )
        with pytest.raises(ArmstrongExistenceError) as info:
            DepMiner(build_armstrong="strict").run(relation)
        assert info.value.failing_attributes

    def test_strict_succeeds_when_possible(self, paper_relation):
        result = DepMiner(build_armstrong="strict").run(paper_relation)
        assert result.armstrong is not None


class TestRunOnPartitions:
    def test_without_relation_degrades_to_classical(self, paper_relation):
        spdb = StrippedPartitionDatabase.from_relation(paper_relation)
        result = DepMiner().run_on_partitions(spdb)
        assert result.armstrong is None
        assert result.classical_armstrong is not None
        assert len(result.fds) == 14

    def test_strict_without_relation_raises(self, paper_relation):
        spdb = StrippedPartitionDatabase.from_relation(paper_relation)
        miner = DepMiner(build_armstrong="strict")
        with pytest.raises(ReproError, match="initial relation"):
            miner.run_on_partitions(spdb)

    def test_with_relation_matches_run(self, paper_relation):
        spdb = StrippedPartitionDatabase.from_relation(paper_relation)
        via_partitions = DepMiner().run_on_partitions(
            spdb, relation=paper_relation
        )
        via_run = DepMiner().run(paper_relation)
        assert via_partitions.fds == via_run.fds
        assert via_partitions.armstrong == via_run.armstrong


class TestConvenienceWrappers:
    def test_discover_forwards_options(self, paper_relation):
        result = discover(paper_relation, agree_algorithm="identifiers")
        assert len(result.fds) == 14

    def test_discover_fds_skips_armstrong(self, paper_relation):
        fds = discover_fds(paper_relation)
        assert len(fds) == 14

    def test_discover_fds_honours_explicit_armstrong(self, paper_relation):
        fds = discover_fds(paper_relation, build_armstrong="classical")
        assert len(fds) == 14


class TestDegenerateRelations:
    def test_empty_relation_all_constant_fds(self):
        schema = Schema.of_width(3)
        relation = Relation.from_rows(schema, [])
        result = DepMiner().run(relation)
        assert {str(fd) for fd in result.fds} == {
            "∅ -> A", "∅ -> B", "∅ -> C",
        }
        assert result.max_union == []
        assert len(result.classical_armstrong) == 1

    def test_single_tuple_relation(self):
        schema = Schema.of_width(2)
        relation = Relation.from_rows(schema, [(1, 2)])
        result = DepMiner().run(relation)
        assert {str(fd) for fd in result.fds} == {"∅ -> A", "∅ -> B"}

    def test_single_attribute_relation(self):
        schema = Schema.of_width(1)
        relation = Relation.from_rows(schema, [(1,), (2,), (1,)])
        result = DepMiner().run(relation)
        # Only trivial A -> A exists, which is filtered: no FDs.
        assert result.fds == []

    def test_two_fully_disagreeing_tuples(self):
        schema = Schema.of_width(2)
        relation = Relation.from_rows(schema, [(1, "x"), (2, "y")])
        result = DepMiner().run(relation)
        # Every singleton determines everything (each column is a key).
        assert {str(fd) for fd in result.fds} == {
            "B -> A", "A -> B",
        }

    def test_duplicate_rows_only(self):
        schema = Schema.of_width(2)
        relation = Relation.from_rows(schema, [(1, "x"), (1, "x")])
        result = DepMiner().run(relation)
        # Both columns constant.
        assert {str(fd) for fd in result.fds} == {"∅ -> A", "∅ -> B"}
