"""Unit tests for LEFT_HAND_SIDE and FD_OUTPUT."""

from __future__ import annotations

from repro.core.attributes import Schema
from repro.core.lhs import fd_output, left_hand_sides

from tests.conftest import masks


class TestLeftHandSides:
    def test_constant_attribute_yields_empty_lhs(self):
        schema = Schema.of_width(2)
        lhs = left_hand_sides({0: [], 1: [0b11]}, schema)
        assert lhs[0] == [0]  # cmax empty -> only the empty transversal
        assert sorted(lhs[1]) == [0b01, 0b10]

    def test_matches_paper_families(self, paper_relation):
        from repro.core.agree_sets import naive_agree_sets
        from repro.core.maximal_sets import (
            complement_maximal_sets,
            maximal_sets,
        )

        schema = paper_relation.schema
        cmax = complement_maximal_sets(
            maximal_sets(naive_agree_sets(paper_relation), schema), schema
        )
        lhs = left_hand_sides(cmax, schema)
        assert sorted(lhs[schema.index_of("E")]) == masks(
            schema, "B", "C", "D", "E"
        )

    def test_methods_agree(self, paper_relation):
        from repro.core.agree_sets import naive_agree_sets
        from repro.core.maximal_sets import (
            complement_maximal_sets,
            maximal_sets,
        )

        schema = paper_relation.schema
        cmax = complement_maximal_sets(
            maximal_sets(naive_agree_sets(paper_relation), schema), schema
        )
        levelwise = left_hand_sides(cmax, schema, method="levelwise")
        berge = left_hand_sides(cmax, schema, method="berge")
        assert levelwise == berge


class TestFdOutput:
    def test_filters_trivial_lhs(self):
        schema = Schema.of_width(3)
        lhs = {
            0: [0b001, 0b110],  # {A} (trivial) and {B, C}
            1: [0b010],         # {B} (trivial)
            2: [0],             # empty lhs -> constant column
        }
        fds = fd_output(lhs, schema)
        rendered = {str(fd) for fd in fds}
        assert rendered == {"BC -> A", "∅ -> C"}

    def test_empty_input(self):
        schema = Schema.of_width(2)
        assert fd_output({0: [], 1: []}, schema) == []

    def test_output_is_sorted(self, paper_relation):
        from repro.core.depminer import discover_fds

        fds = discover_fds(paper_relation)
        keys = [(fd.rhs_index, len(fd.lhs), fd.lhs.mask) for fd in fds]
        assert keys == sorted(keys)
