"""Unit tests for partitions, stripped partitions and their product."""

from __future__ import annotations

import pytest

from repro.errors import RelationError
from repro.partitions.partition import (
    StrippedPartition,
    full_partition,
    partition_product,
    stripped_partition_of_column,
)


class TestFullPartition:
    def test_groups_by_value(self):
        assert full_partition(["x", "y", "x", "z", "y"]) == [
            (0, 2), (1, 4), (3,)
        ]

    def test_empty_column(self):
        assert full_partition([]) == []

    def test_all_equal(self):
        assert full_partition([7, 7, 7]) == [(0, 1, 2)]

    def test_none_values_group_together(self):
        assert full_partition([None, 1, None]) == [(0, 2), (1,)]


class TestStrippedPartition:
    def test_strips_singletons(self):
        partition = stripped_partition_of_column(["x", "y", "x", "z"])
        assert partition.classes == [(0, 2)]
        assert partition.num_rows == 4

    def test_counts(self):
        partition = StrippedPartition([(0, 1), (2, 3, 4)], num_rows=7)
        assert partition.num_classes == 2
        assert partition.num_rows_in_classes == 5
        assert partition.num_full_classes == 4  # 2 stripped + 2 singletons
        assert partition.rank() == 3
        assert partition.error == pytest.approx(3 / 7)

    def test_error_of_empty_relation_is_zero(self):
        assert StrippedPartition([], num_rows=0).error == 0.0

    def test_is_superkey(self):
        assert StrippedPartition([], num_rows=5).is_superkey()
        assert not StrippedPartition([(0, 1)], num_rows=5).is_superkey()

    def test_rejects_singleton_classes(self):
        with pytest.raises(RelationError, match="singleton"):
            StrippedPartition([(0,)], num_rows=3)

    def test_rejects_out_of_range_rows(self):
        with pytest.raises(RelationError, match="outside"):
            StrippedPartition([(0, 5)], num_rows=3)

    def test_rejects_negative_num_rows(self):
        with pytest.raises(RelationError):
            StrippedPartition([], num_rows=-1)

    def test_canonical_ordering(self):
        partition = StrippedPartition([(4, 3), (1, 0)], num_rows=5)
        assert partition.classes == [(0, 1), (3, 4)]

    def test_equality_and_hash(self):
        first = StrippedPartition([(0, 1)], num_rows=3)
        second = StrippedPartition([(1, 0)], num_rows=3)
        assert first == second
        assert hash(first) == hash(second)
        assert first != StrippedPartition([(0, 1)], num_rows=4)

    def test_iteration_and_len(self):
        partition = StrippedPartition([(0, 1), (2, 3)], num_rows=4)
        assert len(partition) == 2
        assert list(partition) == [(0, 1), (2, 3)]


class TestRefines:
    def test_refinement_holds(self):
        finer = StrippedPartition([(0, 1)], num_rows=4)
        coarser = StrippedPartition([(0, 1, 2)], num_rows=4)
        assert finer.refines(coarser)
        assert not coarser.refines(finer)

    def test_refinement_fails_across_classes(self):
        left = StrippedPartition([(0, 1), (2, 3)], num_rows=4)
        right = StrippedPartition([(0, 2), (1, 3)], num_rows=4)
        assert not left.refines(right)

    def test_refines_requires_same_relation(self):
        with pytest.raises(RelationError):
            StrippedPartition([], 3).refines(StrippedPartition([], 4))


class TestProduct:
    def direct(self, left_column, right_column):
        """Oracle: stripped partition of the zipped pair column."""
        return stripped_partition_of_column(
            list(zip(left_column, right_column))
        )

    def test_product_matches_direct_grouping(self):
        left_column = ["x", "x", "y", "y", "x", "z"]
        right_column = [1, 1, 1, 2, 2, 3]
        left = stripped_partition_of_column(left_column)
        right = stripped_partition_of_column(right_column)
        assert partition_product(left, right) == self.direct(
            left_column, right_column
        )

    def test_product_is_commutative(self):
        left = stripped_partition_of_column([1, 1, 2, 2, 1])
        right = stripped_partition_of_column(["a", "b", "a", "a", "a"])
        assert partition_product(left, right) == partition_product(
            right, left
        )

    def test_product_with_superkey_is_superkey(self):
        key = stripped_partition_of_column([1, 2, 3, 4])
        other = stripped_partition_of_column([1, 1, 1, 1])
        assert partition_product(key, other).is_superkey()

    def test_product_with_self_is_identity(self):
        partition = stripped_partition_of_column([1, 1, 2, 2, 3])
        assert partition_product(partition, partition) == partition

    def test_product_requires_same_relation(self):
        with pytest.raises(RelationError):
            partition_product(
                StrippedPartition([], 3), StrippedPartition([], 4)
            )

    def test_method_form(self):
        left = stripped_partition_of_column([1, 1, 2])
        right = stripped_partition_of_column([5, 5, 5])
        assert left.product(right) == partition_product(left, right)
