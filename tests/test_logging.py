"""Unit tests for the miners' logging instrumentation."""

from __future__ import annotations

import logging

from repro.core.depminer import DepMiner
from repro.tane.tane import Tane


class TestDepMinerLogging:
    def test_debug_messages_cover_the_phases(self, paper_relation, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro.depminer"):
            DepMiner().run(paper_relation)
        text = caplog.text
        assert "stripped 5 attributes" in text
        assert "agree sets: 5" in text
        assert "lhs families computed" in text

    def test_info_summary(self, paper_relation, caplog):
        with caplog.at_level(logging.INFO, logger="repro.depminer"):
            DepMiner().run(paper_relation)
        assert "mined 14 minimal FDs" in caplog.text

    def test_silent_by_default(self, paper_relation, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.depminer"):
            DepMiner().run(paper_relation)
        assert caplog.text == ""


class TestTaneLogging:
    def test_level_progress(self, paper_relation, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro.tane"):
            Tane().run(paper_relation)
        assert "TANE level 1: 5 nodes" in caplog.text
        assert "TANE level 2" in caplog.text
