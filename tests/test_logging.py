"""Unit tests for the miners' logging instrumentation."""

from __future__ import annotations

import io
import logging

from repro.core.depminer import DepMiner
from repro.fdep import Fdep
from repro.obs import configure_logging, get_logger, verbosity_to_level
from repro.partitions.database import StrippedPartitionDatabase
from repro.tane.tane import Tane


class TestDepMinerLogging:
    def test_debug_messages_cover_the_phases(self, paper_relation, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro.depminer"):
            DepMiner().run(paper_relation)
        text = caplog.text
        assert "stripped 5 attributes" in text
        assert "agree sets: 5" in text
        assert "lhs families computed" in text

    def test_info_summary(self, paper_relation, caplog):
        with caplog.at_level(logging.INFO, logger="repro.depminer"):
            DepMiner().run(paper_relation)
        assert "mined 14 minimal FDs" in caplog.text

    def test_silent_by_default(self, paper_relation, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.depminer"):
            DepMiner().run(paper_relation)
        assert caplog.text == ""


class TestTaneLogging:
    def test_level_progress(self, paper_relation, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro.tane"):
            Tane().run(paper_relation)
        assert "TANE level 1: 5 nodes" in caplog.text
        assert "TANE level 2" in caplog.text


class TestLoggerNaming:
    def test_subpackage_modules_log_under_the_subpackage(self):
        assert get_logger("repro.tane.tane").name == "repro.tane"
        assert get_logger("repro.partitions.database").name == \
            "repro.partitions"
        assert get_logger("repro.fdep.fdep").name == "repro.fdep"
        assert get_logger("repro.bench.harness").name == "repro.bench"

    def test_core_modules_keep_their_module_name(self):
        assert get_logger("repro.core.depminer").name == "repro.depminer"
        assert get_logger("repro.core.agree_sets").name == \
            "repro.agree_sets"

    def test_foreign_names_pass_through(self):
        assert get_logger("otherpkg.module").name == "otherpkg.module"

    def test_fdep_logs_under_repro_fdep(self, paper_relation, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro.fdep"):
            Fdep().run(paper_relation)
        assert "FDEP mined 14 minimal FDs" in caplog.text

    def test_partitions_log_under_repro_partitions(self, paper_relation,
                                                   caplog):
        with caplog.at_level(logging.DEBUG, logger="repro.partitions"):
            StrippedPartitionDatabase.from_relation(paper_relation)
        assert "built stripped partition database" in caplog.text


class TestConfigureLogging:
    def test_verbosity_mapping(self):
        assert verbosity_to_level(0) == logging.WARNING
        assert verbosity_to_level(1) == logging.INFO
        assert verbosity_to_level(2) == logging.DEBUG
        assert verbosity_to_level(5) == logging.DEBUG

    def test_configures_and_is_idempotent(self, paper_relation):
        root = logging.getLogger("repro")
        previous = (root.level, list(root.handlers))
        try:
            stream = io.StringIO()
            configure_logging(1, stream=stream)
            configure_logging(2, stream=stream)  # replaces, not stacks
            ours = [
                h for h in root.handlers
                if getattr(h, "_repro_obs_handler", False)
            ]
            assert len(ours) == 1
            assert root.level == logging.DEBUG
            DepMiner().run(paper_relation)
            text = stream.getvalue()
            assert "repro.depminer" in text
            assert "mined 14 minimal FDs" in text
        finally:
            root.setLevel(previous[0])
            root.handlers[:] = previous[1]

    def test_does_not_break_propagation(self, paper_relation, caplog):
        # pytest's caplog relies on records propagating to the root
        # logger; configure_logging must leave propagation alone.
        root = logging.getLogger("repro")
        previous = (root.level, list(root.handlers))
        try:
            configure_logging(1, stream=io.StringIO())
            assert root.propagate
            with caplog.at_level(logging.INFO, logger="repro.depminer"):
                DepMiner().run(paper_relation)
            assert "mined 14 minimal FDs" in caplog.text
        finally:
            root.setLevel(previous[0])
            root.handlers[:] = previous[1]
