"""Unit tests for the minimal query interface."""

from __future__ import annotations

import pytest

from repro.errors import QueryError
from repro.storage.query import Query
from repro.storage.table import Table


@pytest.fixture
def table():
    return Table.from_rows(
        "emp",
        ["id", "dept", "salary"],
        [
            (1, "cs", 100),
            (2, "cs", 120),
            (3, "math", 90),
            (4, "math", 90),
            (5, "cs", 100),
        ],
    )


class TestOperators:
    def test_select(self, table):
        rows = Query(table).select("dept").rows()
        assert rows == [("cs",), ("cs",), ("math",), ("math",), ("cs",)]

    def test_select_unknown_column(self, table):
        with pytest.raises(QueryError, match="unknown column"):
            Query(table).select("ghost")

    def test_select_requires_columns(self, table):
        with pytest.raises(QueryError):
            Query(table).select()

    def test_where(self, table):
        rows = Query(table).where(lambda row: row["salary"] > 95).rows()
        assert len(rows) == 3

    def test_distinct(self, table):
        rows = Query(table).select("dept").distinct().rows()
        assert rows == [("cs",), ("math",)]

    def test_order_by(self, table):
        rows = Query(table).order_by("salary", "id").rows()
        assert [row[0] for row in rows] == [3, 4, 1, 5, 2]

    def test_order_by_descending(self, table):
        rows = Query(table).order_by("salary", descending=True).rows()
        assert rows[0][2] == 120

    def test_order_by_requires_columns(self, table):
        with pytest.raises(QueryError):
            Query(table).order_by()

    def test_limit(self, table):
        assert len(Query(table).limit(2).rows()) == 2
        assert Query(table).limit(0).rows() == []

    def test_limit_rejects_negative(self, table):
        with pytest.raises(QueryError):
            Query(table).limit(-1)

    def test_chaining(self, table):
        rows = (
            Query(table)
            .where(lambda row: row["dept"] == "cs")
            .select("salary")
            .distinct()
            .order_by("salary")
            .limit(1)
            .rows()
        )
        assert rows == [(100,)]


class TestEvaluation:
    def test_count(self, table):
        assert Query(table).where(lambda r: r["dept"] == "cs").count() == 3

    def test_to_table(self, table):
        result = Query(table).select("id").limit(2).to_table("ids")
        assert result.name == "ids"
        assert result.column_names == ("id",)
        assert len(result) == 2

    def test_to_relation_feeds_mining(self, table):
        from repro.core.depminer import discover_fds

        relation = Query(table).select("dept", "salary").to_relation()
        fds = {str(fd) for fd in discover_fds(relation)}
        assert "salary -> dept" in fds

    def test_query_is_reusable_pipeline_not_stateful_source(self, table):
        query = Query(table).select("id")
        first = query.rows()
        second = query.rows()
        assert first == second
