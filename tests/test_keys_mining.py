"""Unit tests for instance-level candidate-key discovery."""

from __future__ import annotations

import random
from itertools import combinations

import pytest

from repro.core.attributes import Schema
from repro.core.depminer import discover_fds
from repro.core.keys_mining import discover_keys
from repro.core.relation import Relation
from repro.fd.keys import candidate_keys


def brute_force_keys(relation):
    """Oracle: minimal attribute sets that are instance superkeys."""
    schema = relation.schema
    width = len(schema)
    found = []
    for size in range(width + 1):
        for subset in combinations(range(width), size):
            mask = 0
            for attribute in subset:
                mask |= 1 << attribute
            if any(mask & kept == kept for kept in found):
                continue
            if relation.is_superkey(schema.from_mask(mask)):
                found.append(mask)
    return sorted(found)


class TestDiscoverKeys:
    def test_paper_relation(self, paper_relation):
        keys = discover_keys(paper_relation)
        assert [k.mask for k in keys] == brute_force_keys(paper_relation)

    def test_simple_key_column(self):
        schema = Schema.of_width(3)
        relation = Relation.from_rows(
            schema, [(1, "x", 0), (2, "x", 0), (3, "y", 1)]
        )
        keys = discover_keys(relation)
        assert [k.compact() for k in keys] == ["A"]

    def test_composite_keys(self):
        schema = Schema.of_width(2)
        relation = Relation.from_rows(
            schema, [(1, "x"), (1, "y"), (2, "x"), (2, "y")]
        )
        keys = discover_keys(relation)
        assert [k.compact() for k in keys] == ["AB"]

    def test_duplicate_rows_mean_no_keys(self):
        schema = Schema.of_width(2)
        relation = Relation.from_rows(schema, [(1, "x"), (1, "x")])
        assert discover_keys(relation) == []

    def test_empty_relation_keyed_by_empty_set(self):
        schema = Schema.of_width(2)
        keys = discover_keys(Relation.from_rows(schema, []))
        assert [k.mask for k in keys] == [0]

    def test_single_tuple_keyed_by_empty_set(self):
        schema = Schema.of_width(2)
        keys = discover_keys(Relation.from_rows(schema, [(1, 2)]))
        assert [k.mask for k in keys] == [0]

    @pytest.mark.parametrize("seed", range(15))
    def test_matches_brute_force_on_random_relations(self, seed):
        rng = random.Random(seed)
        width = rng.randint(1, 5)
        schema = Schema.of_width(width)
        relation = Relation.from_rows(
            schema,
            [
                tuple(rng.randint(0, 3) for _ in range(width))
                for _ in range(rng.randint(0, 12))
            ],
        )
        assert [k.mask for k in discover_keys(relation)] == \
            brute_force_keys(relation)

    def test_agrees_with_fd_theoretic_keys(self, paper_relation):
        """Instance keys == candidate keys of the mined FD cover
        (whenever the relation has no duplicate tuples)."""
        mined = discover_fds(paper_relation)
        theoretic = candidate_keys(mined, paper_relation.schema)
        assert sorted(k.mask for k in discover_keys(paper_relation)) == \
            sorted(k.mask for k in theoretic)

    def test_method_dispatch(self, paper_relation):
        for method in ("levelwise", "berge", "dfs"):
            keys = discover_keys(paper_relation, method=method)
            assert [k.mask for k in keys] == brute_force_keys(paper_relation)

    def test_null_semantics(self):
        schema = Schema.of_width(1)
        relation = Relation.from_rows(schema, [(None,), (None,)])
        assert discover_keys(relation) == []  # duplicates by default
        sql_keys = discover_keys(relation, nulls_equal=False)
        assert [k.compact() for k in sql_keys] == ["A"]
