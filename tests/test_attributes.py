"""Unit tests for schemas and bitmask attribute sets."""

from __future__ import annotations

import pytest

from repro.core.attributes import (
    AttributeSet,
    Schema,
    iter_bits,
    mask_of_indices,
    popcount,
)
from repro.errors import SchemaError, SchemaMismatchError


class TestBitHelpers:
    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3
        assert popcount((1 << 100) | 1) == 2

    def test_iter_bits_orders_ascending(self):
        assert list(iter_bits(0b10110)) == [1, 2, 4]
        assert list(iter_bits(0)) == []

    def test_mask_of_indices(self):
        assert mask_of_indices([]) == 0
        assert mask_of_indices([0, 3]) == 0b1001
        assert mask_of_indices([2, 2]) == 0b100


class TestSchema:
    def test_basic_construction(self):
        schema = Schema(["x", "y", "z"])
        assert len(schema) == 3
        assert schema.names == ("x", "y", "z")
        assert schema.index_of("y") == 1
        assert schema.name_of(2) == "z"
        assert "x" in schema
        assert "w" not in schema
        assert list(schema) == ["x", "y", "z"]

    def test_rejects_empty_schema(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_rejects_duplicate_names(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema(["a", "b", "a"])

    def test_rejects_empty_names(self):
        with pytest.raises(SchemaError):
            Schema(["a", ""])

    def test_of_width_single_letters(self):
        assert Schema.of_width(4).names == ("A", "B", "C", "D")

    def test_of_width_wide_uses_numbered_names(self):
        schema = Schema.of_width(30)
        assert schema.names[0] == "A1"
        assert schema.names[29] == "A30"

    def test_of_width_prefix(self):
        assert Schema.of_width(2, prefix="col").names == ("col1", "col2")

    def test_of_width_rejects_nonpositive(self):
        with pytest.raises(SchemaError):
            Schema.of_width(0)

    def test_unknown_attribute_raises_with_context(self):
        schema = Schema(["a", "b"])
        with pytest.raises(SchemaError, match="unknown attribute 'c'"):
            schema.index_of("c")
        with pytest.raises(SchemaError):
            schema.name_of(5)

    def test_mask_of_accepts_many_forms(self):
        schema = Schema.of_width(4)
        assert schema.mask_of("B") == 0b10
        assert schema.mask_of(2) == 0b100
        assert schema.mask_of(["A", "C"]) == 0b101
        assert schema.mask_of([0, "D"]) == 0b1001
        assert schema.mask_of(()) == 0
        existing = schema.attribute_set(["A"])
        assert schema.mask_of(existing) == 0b1

    def test_mask_of_rejects_foreign_attribute_set(self):
        first = Schema.of_width(3)
        second = Schema(["x", "y", "z"])
        foreign = second.attribute_set(["x"])
        with pytest.raises(SchemaMismatchError):
            first.mask_of(foreign)

    def test_universe_and_empty(self):
        schema = Schema.of_width(3)
        assert schema.universe().mask == 0b111
        assert schema.empty().mask == 0
        assert [s.names for s in schema.singletons()] == [
            ("A",), ("B",), ("C",)
        ]

    def test_equality_and_hash(self):
        assert Schema(["a", "b"]) == Schema(["a", "b"])
        assert Schema(["a", "b"]) != Schema(["b", "a"])
        assert hash(Schema(["a"])) == hash(Schema(["a"]))


class TestAttributeSet:
    @pytest.fixture
    def schema(self):
        return Schema.of_width(5)

    def test_rejects_out_of_range_mask(self, schema):
        with pytest.raises(SchemaError):
            AttributeSet(schema, 1 << 5)
        with pytest.raises(SchemaError):
            AttributeSet(schema, -1)

    def test_names_and_indices(self, schema):
        x = schema.attribute_set(["B", "D"])
        assert x.names == ("B", "D")
        assert x.indices() == (1, 3)
        assert len(x) == 2
        assert list(x) == ["B", "D"]

    def test_set_algebra(self, schema):
        x = schema.attribute_set(["A", "B", "D"])
        y = schema.attribute_set(["B", "C"])
        assert (x | y).names == ("A", "B", "C", "D")
        assert (x & y).names == ("B",)
        assert (x - y).names == ("A", "D")
        assert (x ^ y).names == ("A", "C", "D")

    def test_algebra_accepts_raw_attribute_specs(self, schema):
        x = schema.attribute_set(["A"])
        assert (x | "B").names == ("A", "B")
        assert (x | ["B", "C"]).names == ("A", "B", "C")

    def test_complement(self, schema):
        x = schema.attribute_set(["A", "E"])
        assert x.complement().names == ("B", "C", "D")
        assert schema.empty().complement() == schema.universe()

    def test_subset_relations(self, schema):
        small = schema.attribute_set(["B"])
        big = schema.attribute_set(["A", "B"])
        assert small <= big
        assert small < big
        assert big >= small
        assert big > small
        assert not big <= small
        assert small.issubset(big)
        assert big.issuperset(small)
        assert not small.is_proper_subset(small)

    def test_isdisjoint(self, schema):
        assert schema.attribute_set(["A"]).isdisjoint(
            schema.attribute_set(["B"])
        )
        assert not schema.attribute_set(["A", "B"]).isdisjoint(
            schema.attribute_set(["B"])
        )

    def test_add_remove_are_persistent(self, schema):
        x = schema.attribute_set(["A"])
        y = x.add("B")
        assert x.names == ("A",)
        assert y.names == ("A", "B")
        assert y.remove("A").names == ("B",)

    def test_contains(self, schema):
        x = schema.attribute_set(["A", "C"])
        assert "A" in x
        assert "B" not in x
        assert 2 in x
        assert "unknown" not in x

    def test_equality_requires_same_schema(self, schema):
        other_schema = Schema(["A", "B", "C", "D", "E"])
        same = other_schema.attribute_set(["A"])
        assert schema.attribute_set(["A"]) == same  # equal schemas compare
        different = Schema(["v", "w", "x", "y", "z"]).attribute_set(["v"])
        assert schema.attribute_set(["A"]) != different

    def test_mixing_schemas_raises(self, schema):
        foreign = Schema(["v", "w", "x", "y", "z"]).attribute_set(["v"])
        with pytest.raises(SchemaMismatchError):
            schema.attribute_set(["A"]) | foreign

    def test_bool_and_is_empty(self, schema):
        assert not schema.empty()
        assert schema.empty().is_empty()
        assert schema.attribute_set(["A"])

    def test_repr_and_compact(self, schema):
        assert repr(schema.empty()) == "{}"
        assert repr(schema.attribute_set(["A", "C"])) == "{A, C}"
        assert schema.attribute_set(["B", "D", "E"]).compact() == "BDE"
        assert schema.empty().compact() == "∅"

    def test_compact_multichar_names_use_commas(self):
        schema = Schema(["left", "right"])
        assert schema.universe().compact() == "left,right"

    def test_hashable(self, schema):
        x = schema.attribute_set(["A"])
        y = schema.attribute_set("A")
        assert hash(x) == hash(y)
        assert len({x, y}) == 1
