"""Failure injection and degenerate inputs across the whole pipeline."""

from __future__ import annotations

import pytest

from repro.core.attributes import Schema
from repro.core.depminer import DepMiner, discover_fds
from repro.core.relation import Relation
from repro.fd.bruteforce import bruteforce_minimal_fds
from repro.tane.tane import Tane


def fd_strings(fds):
    return {str(fd) for fd in fds}


class TestDegenerateShapes:
    def test_wide_schema_beyond_64_bits(self):
        """Python int masks must keep working past machine-word width."""
        schema = Schema.of_width(70)
        rows = [
            tuple(i if a < 2 else a for a in range(70)) for i in range(3)
        ]
        relation = Relation.from_rows(schema, rows)
        result = DepMiner(build_armstrong="none").run(relation)
        # Columns 2.. are constant; columns 0 and 1 vary together.
        assert "∅ -> A3" in fd_strings(result.fds)
        assert "A1 -> A2" in fd_strings(result.fds)

    def test_all_columns_identical(self):
        schema = Schema.of_width(3)
        relation = Relation.from_rows(
            schema, [(i, i, i) for i in range(5)]
        )
        fds = fd_strings(discover_fds(relation))
        assert fds == {
            "B -> A", "C -> A", "A -> B", "C -> B", "A -> C", "B -> C",
        }

    def test_key_column_makes_singletons_determine_all(self):
        schema = Schema.of_width(3)
        relation = Relation.from_rows(
            schema, [(i, i % 2, "x") for i in range(6)]
        )
        fds = fd_strings(discover_fds(relation))
        assert "A -> B" in fds
        assert "∅ -> C" in fds
        # B cannot determine A (2 values vs 6).
        assert "B -> A" not in fds

    def test_nulls_are_just_values(self):
        schema = Schema.of_width(2)
        relation = Relation.from_rows(
            schema, [(None, 1), (None, 1), (2, 2)]
        )
        fds = fd_strings(discover_fds(relation))
        assert "A -> B" in fds
        assert "B -> A" in fds

    def test_unhashable_free_but_equal_values(self):
        """Values are compared by ==; ints and floats mix fine."""
        schema = Schema.of_width(2)
        relation = Relation.from_rows(schema, [(1, "a"), (1.0, "a")])
        # 1 == 1.0, so the two rows agree everywhere.
        fds = fd_strings(discover_fds(relation))
        assert fds == {"∅ -> A", "∅ -> B"}


class TestAlgorithmsAgreeOnEdgeCases:
    CASES = [
        [],                                  # empty
        [(0, 0)],                            # single row
        [(0, 0), (0, 0)],                    # duplicates
        [(0, 0), (1, 1)],                    # disagree everywhere
        [(0, 0), (0, 1), (1, 0), (1, 1)],    # full cross product
        [(0, 0), (0, 0), (1, 1), (2, 2)],
    ]

    @pytest.mark.parametrize("rows", CASES)
    def test_miners_match_brute_force(self, rows):
        schema = Schema.of_width(2)
        relation = Relation.from_rows(schema, rows)
        expected = bruteforce_minimal_fds(relation)
        assert discover_fds(relation) == expected
        assert discover_fds(
            relation, agree_algorithm="identifiers"
        ) == expected
        assert Tane().run(relation).fds == expected


class TestArmstrongEdgeCases:
    def test_armstrong_of_empty_relation(self):
        schema = Schema.of_width(2)
        relation = Relation.from_rows(schema, [])
        result = DepMiner().run(relation)
        # MAX is empty: classical Armstrong is the single all-zero row.
        assert len(result.classical_armstrong) == 1
        # No values exist to sample, so no real-world relation.
        assert result.armstrong is None

    def test_armstrong_of_single_row(self):
        schema = Schema.of_width(2)
        relation = Relation.from_rows(schema, [(7, "x")])
        result = DepMiner().run(relation)
        assert result.armstrong is not None
        assert list(result.armstrong.rows()) == [(7, "x")]

    def test_armstrong_round_trip_on_random_relations(self):
        import random

        rng = random.Random(5)
        for _trial in range(30):
            width = rng.randint(2, 4)
            schema = Schema.of_width(width)
            relation = Relation.from_rows(
                schema,
                [
                    tuple(rng.randint(0, 9) for _ in range(width))
                    for _ in range(rng.randint(2, 20))
                ],
            )
            result = DepMiner().run(relation)
            if result.armstrong is None:
                continue
            assert bruteforce_minimal_fds(result.armstrong) == \
                bruteforce_minimal_fds(relation)

    def test_classical_armstrong_always_round_trips(self):
        import random

        rng = random.Random(6)
        for _trial in range(30):
            width = rng.randint(2, 4)
            schema = Schema.of_width(width)
            relation = Relation.from_rows(
                schema,
                [
                    tuple(rng.randint(0, 2) for _ in range(width))
                    for _ in range(rng.randint(0, 10))
                ],
            )
            result = DepMiner(build_armstrong="classical").run(relation)
            assert bruteforce_minimal_fds(
                result.classical_armstrong
            ) == bruteforce_minimal_fds(relation)


class TestChunkingUnderStress:
    def test_tiny_chunks_on_dense_relation(self):
        schema = Schema.of_width(3)
        relation = Relation.from_rows(
            schema, [(i % 2, i % 3, i % 2) for i in range(12)]
        )
        expected = discover_fds(relation)
        chunked = discover_fds(relation, max_couples=1)
        assert chunked == expected
