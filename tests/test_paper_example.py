"""Golden end-to-end test: every artefact of the paper's worked example.

Sections 2–4 of the paper trace the employee/department relation through
the whole pipeline; this module asserts each intermediate result
verbatim (examples 2, 4, 5, 8, 9, 10, 11, 12 and 13 of the paper).
"""

from __future__ import annotations

import pytest

from repro.core.agree_sets import (
    agree_sets_from_couples,
    agree_sets_from_identifiers,
    naive_agree_sets,
)
from repro.core.armstrong import (
    classical_armstrong,
    real_world_armstrong,
    real_world_existence_deficits,
)
from repro.core.depminer import DepMiner
from repro.core.lhs import fd_output, left_hand_sides
from repro.core.maximal_sets import (
    complement_maximal_sets,
    max_set_union,
    maximal_sets,
)
from repro.fd.bruteforce import bruteforce_minimal_fds
from repro.partitions.database import StrippedPartitionDatabase

from tests.conftest import masks


def compacts(schema, mask_list):
    """Bitmasks -> sorted compact names, for readable assertions."""
    return sorted(schema.from_mask(m).compact() for m in mask_list)


# -- Example 2: stripped partitions --------------------------------------------

def test_stripped_partitions_match_example_2(paper_relation):
    spdb = StrippedPartitionDatabase.from_relation(paper_relation)
    # The paper numbers tuples 1..7; our row ids are 0..6.
    assert spdb.partition("A").classes == [(0, 1)]
    assert spdb.partition("B").classes == [(0, 5), (1, 6), (2, 3)]
    assert spdb.partition("C").classes == [(3, 4)]
    assert spdb.partition("D").classes == [(0, 5), (1, 6), (2, 3)]
    assert spdb.partition("E").classes == [(0, 5), (1, 6), (2, 3, 4)]


# -- Example 4: maximal equivalence classes ------------------------------------

def test_maximal_classes_match_example_4(paper_relation):
    spdb = StrippedPartitionDatabase.from_relation(paper_relation)
    assert spdb.maximal_classes() == [(0, 1), (0, 5), (1, 6), (2, 3, 4)]


# -- Example 8: equivalence-class identifiers ----------------------------------

def test_identifiers_match_example_8(paper_relation):
    spdb = StrippedPartitionDatabase.from_relation(paper_relation)
    schema = paper_relation.schema
    ec = spdb.equivalence_class_identifiers()
    a, b, c, d, e = (schema.index_of(x) for x in "ABCDE")
    assert ec[0] == {a: 0, b: 0, d: 0, e: 0}
    assert ec[1] == {a: 0, b: 1, d: 1, e: 1}
    assert ec[2] == {b: 2, d: 2, e: 2}
    assert ec[3] == {b: 2, c: 0, d: 2, e: 2}
    assert ec[4] == {c: 0, e: 2}
    assert ec[5] == {b: 0, d: 0, e: 0}
    assert ec[6] == {b: 1, d: 1, e: 1}


# -- Examples 5 and 8: agree sets ------------------------------------------------

EXPECTED_AGREE = ("", "A", "BDE", "CE", "E")


@pytest.mark.parametrize(
    "algorithm",
    [naive_agree_sets, None, agree_sets_from_identifiers],
    ids=["naive", "couples", "identifiers"],
)
def test_agree_sets_match_examples_5_and_8(paper_relation, algorithm):
    schema = paper_relation.schema
    if algorithm is naive_agree_sets:
        agree = algorithm(paper_relation)
    else:
        spdb = StrippedPartitionDatabase.from_relation(paper_relation)
        fn = agree_sets_from_couples if algorithm is None else algorithm
        agree = fn(spdb)
    expected = {0} | set(masks(schema, "A", "BDE", "CE", "E"))
    assert agree == expected


# -- Example 9: maximal sets and complements -------------------------------------

def test_maximal_sets_match_example_9(paper_relation):
    schema = paper_relation.schema
    spdb = StrippedPartitionDatabase.from_relation(paper_relation)
    agree = agree_sets_from_couples(spdb)
    max_sets = maximal_sets(agree, schema)
    expected_max = {
        "A": ["BDE", "CE"],
        "B": ["A", "CE"],
        "C": ["A", "BDE"],
        "D": ["A", "CE"],
        "E": ["A"],
    }
    for name, sets in expected_max.items():
        attribute = schema.index_of(name)
        assert sorted(max_sets[attribute]) == masks(schema, *sets), name

    cmax = complement_maximal_sets(max_sets, schema)
    expected_cmax = {
        "A": ["AC", "ABD"],
        "B": ["BCDE", "ABD"],
        "C": ["BCDE", "AC"],
        "D": ["BCDE", "ABD"],
        "E": ["BCDE"],
    }
    for name, sets in expected_cmax.items():
        attribute = schema.index_of(name)
        assert sorted(cmax[attribute]) == masks(schema, *sets), name


# -- Example 10: left-hand sides ----------------------------------------------------

def test_lhs_match_example_10(paper_relation):
    schema = paper_relation.schema
    spdb = StrippedPartitionDatabase.from_relation(paper_relation)
    agree = agree_sets_from_couples(spdb)
    cmax = complement_maximal_sets(maximal_sets(agree, schema), schema)
    lhs = left_hand_sides(cmax, schema)
    expected = {
        "A": ["A", "BC", "CD"],
        "B": ["AC", "AE", "B", "D"],
        "C": ["AB", "AD", "AE", "C"],
        "D": ["AC", "AE", "B", "D"],
        "E": ["B", "C", "D", "E"],
    }
    for name, sets in expected.items():
        attribute = schema.index_of(name)
        assert sorted(lhs[attribute]) == masks(schema, *sets), name


# -- Example 11: the 14 minimal FDs ---------------------------------------------------

EXPECTED_FDS = {
    "BC -> A", "CD -> A",
    "AC -> B", "AE -> B", "D -> B",
    "AB -> C", "AD -> C", "AE -> C",
    "AC -> D", "AE -> D", "B -> D",
    "B -> E", "C -> E", "D -> E",
}


def test_fd_output_matches_example_11(paper_relation):
    result = DepMiner(build_armstrong="none").run(paper_relation)
    assert {str(fd) for fd in result.fds} == EXPECTED_FDS


def test_bruteforce_agrees_with_example_11(paper_relation):
    assert {
        str(fd) for fd in bruteforce_minimal_fds(paper_relation)
    } == EXPECTED_FDS


# -- Example 12: the classical Armstrong relation ---------------------------------------

def test_classical_armstrong_matches_example_12(paper_relation):
    schema = paper_relation.schema
    result = DepMiner().run(paper_relation)
    # MAX(dep(r)) = {A, BDE, CE}; the paper orders C as R, A, BDE, CE.
    assert compacts(schema, result.max_union) == ["A", "BDE", "CE"]
    ordered = masks(schema, "A") + masks(schema, "BDE") + masks(schema, "CE")
    armstrong = classical_armstrong(schema, ordered)
    rows = set(armstrong.rows())
    assert rows == {
        (0, 0, 0, 0, 0),
        (0, 1, 1, 1, 1),
        (2, 0, 2, 0, 0),
        (3, 3, 0, 3, 0),
    }


# -- Example 13: real-world existence and construction -------------------------------------

def test_existence_condition_matches_example_13(paper_relation):
    result = DepMiner().run(paper_relation)
    union = result.max_union
    schema = paper_relation.schema
    # Example 13 prints these values next to "+1 =" but they are the raw
    # counts |{X in MAX : A not in X}| (the paper drops the +1 in the
    # printed numbers: for A the sets are {BDE, CE}, i.e. 2, needing
    # 2 + 1 = 3 <= 6 distinct values).
    counts = {"A": 2, "B": 2, "C": 2, "D": 2, "E": 1}
    for name, expected in counts.items():
        bit = 1 << schema.index_of(name)
        assert sum(1 for m in union if not m & bit) == expected, name
    # ... and |πA(r)| per attribute.  (The paper prints |πE(r)| = 4, but
    # the mgr column of example 1 holds {5, 12, 2}: another slip; the
    # existence condition holds either way.)
    available = {"A": 6, "B": 4, "C": 6, "D": 4, "E": 3}
    for name, expected in available.items():
        assert len(set(paper_relation.column(name))) == expected, name
    assert real_world_existence_deficits(paper_relation, union) == {}


def test_real_world_armstrong_properties(paper_relation):
    result = DepMiner().run(paper_relation)
    armstrong = result.armstrong
    assert armstrong is not None
    # Size = |MAX(dep(r))| + 1 = 4 (example 13 shows a 4-tuple relation).
    assert len(armstrong) == 4
    # Every value is taken from the initial relation (Definition 1.3).
    for name in paper_relation.schema.names:
        allowed = set(paper_relation.column(name))
        assert set(armstrong.column(name)) <= allowed
    # It satisfies exactly dep(r): same minimal FDs.
    assert {str(fd) for fd in bruteforce_minimal_fds(armstrong)} == EXPECTED_FDS


def test_full_pipeline_is_consistent_between_variants(paper_relation):
    one = DepMiner(agree_algorithm="couples").run(paper_relation)
    two = DepMiner(agree_algorithm="identifiers").run(paper_relation)
    assert one.agree_sets == two.agree_sets
    assert one.max_sets == two.max_sets
    assert one.fds == two.fds
    assert one.max_union == two.max_union
