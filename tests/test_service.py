"""The discovery daemon (``repro serve``) over live HTTP.

Every test here talks to a real :class:`ReproServiceServer` bound to an
ephemeral port on localhost — request threads, JSON (de)serialization,
error mapping and session locking are all exercised end-to-end, not
mocked.  The core guarantees under test:

- a session's cover after any register/append sequence is bit-identical
  to a cold :class:`~repro.core.depminer.DepMiner` run on the same
  rows, for every backend × jobs combination the daemon offers;
- N concurrent clients spread over M sessions neither corrupt any
  session nor observe another session's answers;
- re-registering a known relation is served from the shared artifact
  store (``cache.full_hit``) without re-mining;
- failures — malformed requests, unknown sessions, injected storage
  faults — come back as structured JSON error documents with typed
  names and meaningful HTTP statuses, and the daemon stays up.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.depminer import DepMiner
from repro.core.relation import Relation, Schema
from repro.service import (
    ReproServiceServer,
    ServiceClient,
    ServiceConfig,
    RemoteServiceError,
)


@pytest.fixture
def service():
    """Factory fixture: ``start(**config)`` → (server, client)."""
    running = []

    def start(**overrides):
        overrides.setdefault("port", 0)
        server = ReproServiceServer(ServiceConfig(**overrides))
        thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.02},
            name="test-serve",
        )
        thread.start()
        running.append((server, thread))
        client = ServiceClient(f"http://127.0.0.1:{server.port}",
                               timeout=60.0)
        return server, client

    yield start
    for server, thread in running:
        server.shutdown()
        thread.join(timeout=10)
        server.server_close()


ROWS = [
    [1, "x", 0, "p"],
    [1, "x", 1, "q"],
    [2, "y", 0, "p"],
    [2, "z", 1, "q"],
    [3, "z", 0, "r"],
]
ATTRIBUTES = ["a", "b", "c", "d"]


def cover_set(document):
    """A cover document as a comparable set of (lhs names, rhs)."""
    return {(tuple(fd["lhs"]), fd["rhs"]) for fd in document["fds"]}


def cold_cover(rows, attributes, **miner_options):
    relation = Relation.from_rows(Schema(attributes),
                                  [tuple(row) for row in rows])
    result = DepMiner(build_armstrong="none", **miner_options).run(relation)
    return {(tuple(fd.lhs.names), fd.rhs) for fd in result.fds}


class TestLifecycle:
    def test_register_append_query_close(self, service, tmp_path):
        _, client = service()
        health = client.health()
        assert health["status"] == "ok"
        assert health["protocol"] == 1

        csv_text = "a,b,c,d\n" + "\n".join(
            ",".join(str(v) for v in row) for row in ROWS
        )
        doc = client.register("people", csv_text=csv_text)
        sid = doc["session"]["id"]
        assert doc["session"]["num_rows"] == 5
        # CSV values arrive as strings; cover shape matches the typed run
        assert cover_set(doc["cover"]) == cold_cover(
            [[str(v) for v in row] for row in ROWS], ATTRIBUTES
        )

        appended = client.append(sid, [["4", "w", "0", "s"],
                                       ["4", "w", "1", "s"]])
        assert appended["session"]["num_rows"] == 7
        assert appended["session"]["appends"] == 1
        assert cover_set(appended["cover"]) == cold_cover(
            [[str(v) for v in row] for row in ROWS]
            + [["4", "w", "0", "s"], ["4", "w", "1", "s"]],
            ATTRIBUTES,
        )

        keys = client.keys(sid)
        assert keys["count"] == len(keys["keys"]) >= 1

        armstrong = client.armstrong(sid)
        assert armstrong["construction"] in ("real-world", "classical")
        assert armstrong["armstrong"]["num_rows"] >= 1
        assert armstrong["armstrong"]["attributes"] == ATTRIBUTES

        listed = client.sessions()
        assert [s["id"] for s in listed] == [sid]

        closed = client.close(sid)
        assert closed["closed"]["id"] == sid
        with pytest.raises(RemoteServiceError) as excinfo:
            client.cover(sid)
        assert excinfo.value.status == 404
        assert excinfo.value.error_type == "SessionNotFoundError"

    def test_register_from_server_side_path(self, service, tmp_path):
        path = tmp_path / "rel.csv"
        path.write_text("a,b\n1,x\n1,x\n2,y\n")
        _, client = service()
        doc = client.register("file", csv_path=str(path))
        assert doc["session"]["num_rows"] == 3
        assert doc["cover"]["attributes"] == ["a", "b"]

    def test_idle_sessions_are_evicted(self, service):
        _, client = service(session_ttl=0.3)
        doc = client.register("ephemeral", attributes=ATTRIBUTES,
                              rows=ROWS)
        sid = doc["session"]["id"]
        assert client.cover(sid)["session"]["id"] == sid
        time.sleep(0.6)
        with pytest.raises(RemoteServiceError) as excinfo:
            client.cover(sid)
        assert excinfo.value.status == 404
        assert client.stats()["registry"]["evicted"] == 1

    def test_session_limit_is_typed(self, service):
        # with an infinite TTL nothing is idle-evictable
        _, client = service(max_sessions=2, session_ttl=0.0)
        for name in ("one", "two"):
            doc = client.register(name, attributes=ATTRIBUTES, rows=ROWS)
            client.cover(doc["session"]["id"])  # keep them fresh
        with pytest.raises(RemoteServiceError) as excinfo:
            client.register("three", attributes=ATTRIBUTES, rows=ROWS)
        assert excinfo.value.status == 429
        assert excinfo.value.error_type == "SessionLimitError"


class TestErrorDocuments:
    def test_unknown_route_is_404(self, service):
        _, client = service()
        with pytest.raises(RemoteServiceError) as excinfo:
            client.request("GET", "/no/such/thing")
        assert excinfo.value.status == 404
        assert excinfo.value.error_type == "ServiceError"

    def test_wrong_method_is_405(self, service):
        _, client = service()
        with pytest.raises(RemoteServiceError) as excinfo:
            client.request("POST", "/health", {})
        assert excinfo.value.status == 405

    def test_malformed_body_is_400(self, service):
        _, client = service()
        with pytest.raises(RemoteServiceError) as excinfo:
            client.register("bad", attributes=ATTRIBUTES,
                            rows=[[1, 2], [3]])  # ragged
        assert excinfo.value.status == 400

    def test_unknown_option_is_400(self, service):
        _, client = service()
        with pytest.raises(RemoteServiceError) as excinfo:
            client.register("bad", attributes=ATTRIBUTES, rows=ROWS,
                            options={"turbo": True})
        assert excinfo.value.status == 400
        assert "turbo" in str(excinfo.value)

    def test_injected_storage_fault_is_structured(self, service,
                                                  tmp_path):
        """A fault-plan run answers with typed error JSON, not a 500
        stack trace — and the daemon survives to serve the next request."""
        plan = tmp_path / "plan.json"
        plan.write_text(
            '{"name": "serve-faults", "seed": 11, "faults": ['
            '{"site": "storage.read", "kind": "error", '
            '"error": "OSError", "message": "injected: disk gone", '
            '"probability": 1.0}]}'
        )
        csv = tmp_path / "rel.csv"
        csv.write_text("a,b\n1,x\n2,y\n")
        _, client = service(fault_plan=str(plan))
        with pytest.raises(RemoteServiceError) as excinfo:
            client.register("doomed", csv_path=str(csv))
        assert excinfo.value.status == 400
        assert excinfo.value.error_type == "StorageError"
        assert "injected" in str(excinfo.value)
        # inline rows skip the faulted site; the daemon still works
        doc = client.register("survivor", attributes=["a", "b"],
                              rows=[[1, "x"], [2, "y"]])
        assert doc["session"]["num_rows"] == 2


class TestDifferential:
    @pytest.mark.parametrize("backend", ["python", "columnar"])
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_cover_matches_cold_run(self, service, backend, jobs):
        """Warm daemon answers == cold library answers, whole grid."""
        _, client = service(backend=backend, jobs=jobs)
        doc = client.register("grid", attributes=ATTRIBUTES, rows=ROWS,
                              options={"backend": backend, "jobs": jobs})
        sid = doc["session"]["id"]
        expected = cold_cover(ROWS, ATTRIBUTES, backend=backend,
                              jobs=jobs)
        assert cover_set(doc["cover"]) == expected

        extra = [[5, "w", 1, "t"], [5, "w", 0, "t"], [6, "x", 1, "p"]]
        appended = client.append(sid, extra)
        assert cover_set(appended["cover"]) == cold_cover(
            ROWS + extra, ATTRIBUTES, backend=backend, jobs=jobs
        )

    def test_repeat_registration_hits_shared_store(self, service):
        """Second registration of the same relation is a cache hit."""
        _, client = service()
        first = client.register("one", attributes=ATTRIBUTES, rows=ROWS)
        assert first["counters"].get("cache.full_hit", 0) == 0
        second = client.register("two", attributes=ATTRIBUTES, rows=ROWS)
        assert second["counters"]["cache.full_hit"] == 1
        # no agree-set enumeration happened on the warm path
        assert "agree.couples_enumerated" not in second["counters"]
        assert cover_set(first["cover"]) == cover_set(second["cover"])
        # process-wide totals aggregate per-request counters
        assert client.stats()["counters"]["cache.full_hit"] == 1


class TestConcurrentSessions:
    def test_many_clients_many_sessions(self, service):
        """8 client threads across 4 sessions: every cover exact."""
        _, client = service()
        datasets = {}
        sessions = {}
        for m in range(4):
            rows = [[(i * (m + 2)) % 5, f"v{(i + m) % 3}", i % 2]
                    for i in range(10)]
            doc = client.register(f"m{m}", attributes=["a", "b", "c"],
                                  rows=rows)
            datasets[m] = rows
            sessions[m] = doc["session"]["id"]

        batches = {
            m: [[[100 + m * 10 + j, f"w{j % 4}", j % 3]]
                for j in range(6)]
            for m in range(4)
        }
        errors = []
        barrier = threading.Barrier(8)

        def worker(m, do_appends):
            own = ServiceClient(client.base_url, timeout=60.0)
            barrier.wait()
            try:
                if do_appends:
                    for batch in batches[m]:
                        own.append(sessions[m], batch)
                else:
                    for _ in range(6):
                        own.cover(sessions[m])
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(m, which))
                   for m in range(4) for which in (True, False)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors[0]

        for m in range(4):
            final = client.cover(sessions[m])
            all_rows = datasets[m] + [row for batch in batches[m]
                                      for row in batch]
            assert final["session"]["num_rows"] == len(all_rows)
            assert cover_set(final["cover"]) == cold_cover(
                all_rows, ["a", "b", "c"]
            )


class TestShutdown:
    def test_shutdown_endpoint_drains(self, service):
        server, client = service()
        doc = client.register("last", attributes=ATTRIBUTES, rows=ROWS)
        reply = client.shutdown()
        assert reply["status"] == "shutting down"
        assert reply["sessions_closed"] == 1
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            try:
                client.health()
            except RemoteServiceError:
                break
            time.sleep(0.05)
        else:
            pytest.fail("server still answering after /shutdown")


class TestTelemetry:
    def test_per_request_manifests(self, service, tmp_path):
        from repro.obs.manifest import RunManifest, validate_manifest

        telemetry = tmp_path / "manifests"
        _, client = service(telemetry_dir=str(telemetry))
        doc = client.register("traced", attributes=ATTRIBUTES, rows=ROWS)
        client.cover(doc["session"]["id"])
        manifests = sorted(telemetry.glob("request-*.json"))
        assert len(manifests) == 2
        for path in manifests:
            manifest = RunManifest.load(path)
            assert validate_manifest(manifest.to_dict()) == []
            names = [span["name"] for span in manifest.spans]
            assert "service.request" in names
