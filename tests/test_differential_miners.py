"""Cross-miner oracle sweep: every miner agrees on the minimal cover.

Four independent implementations mine the same seeded random relations:

* **DepMiner** — all three agree-set algorithms, chunked and unchunked,
  serial and sharded (``jobs=2``), plus the full backend ∈ {python,
  columnar} × jobs × cache on/off conformance grid;
* **TANE** — levelwise partition refinement (a completely different
  search strategy);
* **FDEP** — negative-cover specialisation;
* **brute force** — exhaustive subset enumeration, the ground truth.

If any algorithm, chunk boundary, shard boundary, backend stage, or
cache replay mishandled a single couple or candidate, its canonical
cover would diverge from the oracle on at least one of the ~50
relations below.  The corpus, grids and assertions live in
``tests/oracle.py`` so other suites (backend conformance, property
tests) reuse them.
"""

from __future__ import annotations

import pytest

from repro.datagen.synthetic import generate_relation
from tests.oracle import (
    SWEEP,
    assert_all_miners_agree,
    assert_backend_grid_agrees,
    corpus_relations,
)

CORPUS = list(corpus_relations())


class TestSeededRandomSweep:
    @pytest.mark.parametrize("attrs,rows,corr,seed", SWEEP)
    def test_all_miners_agree(self, attrs, rows, corr, seed):
        relation = generate_relation(attrs, rows, correlation=corr,
                                     seed=seed)
        oracle = assert_all_miners_agree(relation)
        assert_backend_grid_agrees(relation, oracle=oracle)


class TestCorpusRelations:
    """Bundled datasets and degenerate shapes, same oracle check."""

    @pytest.mark.parametrize(
        "label,relation", CORPUS, ids=[label for label, _ in CORPUS]
    )
    def test_all_miners_agree(self, label, relation):
        oracle = assert_all_miners_agree(relation)
        assert_backend_grid_agrees(relation, oracle=oracle)
