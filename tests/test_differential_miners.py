"""Cross-miner oracle sweep: every miner agrees on the minimal cover.

Four independent implementations mine the same seeded random relations:

* **DepMiner** — all three agree-set algorithms, chunked and unchunked,
  serial and sharded (``jobs=2``);
* **TANE** — levelwise partition refinement (a completely different
  search strategy);
* **FDEP** — negative-cover specialisation;
* **brute force** — exhaustive subset enumeration, the ground truth.

If any algorithm, chunk boundary, or shard boundary mishandled a single
couple or candidate, its canonical cover would diverge from the oracle
on at least one of the ~50 relations below.
"""

from __future__ import annotations

import pytest

from repro.core.depminer import DepMiner
from repro.datagen.synthetic import generate_relation
from repro.datasets import (
    course_schedule_relation,
    paper_example_relation,
    supplier_parts_relation,
)
from repro.fd.bruteforce import bruteforce_minimal_fds
from repro.fdep import Fdep
from repro.tane.armstrong_ext import tane_with_armstrong

# (num_attributes, num_tuples, correlation) — kept narrow enough for the
# brute-force oracle and small enough that the whole sweep stays fast.
WORKLOADS = [
    (3, 12, None),
    (4, 20, None),
    (4, 30, 0.5),
    (5, 25, None),
    (5, 40, 0.3),
    (5, 15, 0.7),
    (6, 30, 0.3),
    (6, 20, None),
]
SEEDS = range(6)
SWEEP = [
    pytest.param(attrs, rows, corr, seed,
                 id=f"a{attrs}-r{rows}-c{corr}-s{seed}")
    for attrs, rows, corr in WORKLOADS
    for seed in SEEDS
]


def canonical_cover(fds):
    return sorted((fd.lhs.mask, fd.rhs_index) for fd in fds)


def depminer_variants(relation):
    """Every DepMiner configuration that must reproduce the oracle."""
    yield "couples", DepMiner(agree_algorithm="couples",
                              build_armstrong="none")
    yield "couples-chunked", DepMiner(agree_algorithm="couples",
                                      max_couples=3,
                                      build_armstrong="none")
    yield "identifiers", DepMiner(agree_algorithm="identifiers",
                                  build_armstrong="none")
    yield "vectorized", DepMiner(agree_algorithm="vectorized",
                                 build_armstrong="none")
    yield "couples-jobs2", DepMiner(agree_algorithm="couples", jobs=2,
                                    build_armstrong="none")
    yield "identifiers-jobs2", DepMiner(agree_algorithm="identifiers",
                                        jobs=2, build_armstrong="none")


def assert_all_miners_agree(relation):
    oracle = canonical_cover(bruteforce_minimal_fds(relation))
    assert canonical_cover(tane_with_armstrong(relation).fds) == oracle, (
        "TANE diverged from the brute-force oracle"
    )
    assert canonical_cover(Fdep().run(relation).fds) == oracle, (
        "FDEP diverged from the brute-force oracle"
    )
    for label, miner in depminer_variants(relation):
        cover = canonical_cover(miner.run(relation).fds)
        assert cover == oracle, (
            f"DepMiner[{label}] diverged from the brute-force oracle"
        )


class TestSeededRandomSweep:
    @pytest.mark.parametrize("attrs,rows,corr,seed", SWEEP)
    def test_all_miners_agree(self, attrs, rows, corr, seed):
        relation = generate_relation(attrs, rows, correlation=corr,
                                     seed=seed)
        assert_all_miners_agree(relation)


class TestBundledDatasets:
    def test_paper_example(self):
        assert_all_miners_agree(paper_example_relation())

    def test_course_schedule(self):
        assert_all_miners_agree(course_schedule_relation())

    def test_supplier_parts(self):
        assert_all_miners_agree(supplier_parts_relation())


class TestDegenerateRelations:
    def test_constant_relation(self):
        from repro.core.attributes import Schema
        from repro.core.relation import Relation

        relation = Relation.from_rows(
            Schema(["A", "B", "C"]), [(1, 1, 1)] * 5
        )
        assert_all_miners_agree(relation)

    def test_key_only_relation(self):
        from repro.core.attributes import Schema
        from repro.core.relation import Relation

        relation = Relation.from_rows(
            Schema(["A", "B", "C"]),
            [(i, i % 2, i % 3) for i in range(9)],
        )
        assert_all_miners_agree(relation)
