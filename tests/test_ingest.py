"""Differential tests for the streaming columnar ingest path.

The contract of :mod:`repro.columnar.ingest` is *pinned equality* with
the two-step legacy path — ``read_csv`` (null mapping, unescaping,
typed column inference, error reporting) followed by ``encode_column``
(first-occurrence code order, fresh codes per ``None`` under SQL null
semantics).  Every test here compares the streaming reader against
that composition on the same bytes:

* code matrices, uniques *and the Python types of the decoded values*
  are equal, across chunk sizes (including ``chunk_rows=1``, so every
  chunk boundary is exercised) and both null semantics;
* ``StorageError`` messages are byte-identical — ragged rows (with the
  blank-line line-numbering quirk), duplicate headers (validated from
  the first chunk), empty and missing files;
* the single-pass fingerprint equals ``fingerprint_relation`` of the
  materialized relation;
* laziness: mining through ``DepMiner(backend="columnar")`` — cold and
  warm-cache — never materializes the ``Relation``, and warm cover
  hits are served straight from the fingerprint.
"""

from __future__ import annotations

import random

import pytest

from repro.columnar import numpy_available
from repro.errors import StorageError
from repro.storage.csv_io import DEFAULT_NULL_TOKENS, read_csv

pytestmark = pytest.mark.skipif(
    not numpy_available(),
    reason="the streaming ingest path needs NumPy",
)

if numpy_available():
    from repro.columnar.encode import encode_column
    from repro.columnar.ingest import (
        CodedRelation,
        coded_from_relation,
        ingest_csv,
    )

#: Tokens chosen to stress every semantic corner: null tokens, escaped
#: null lookalikes, canonical vs non-canonical numerics, zero-padded
#: ints that merge after typing, floats that stay distinct as text,
#: >18-digit ints (past the vectorized-parse window), non-ASCII digits,
#: and the nan/inf family that must stay textual.
ADVERSARIAL_TOKENS = [
    "", "NULL", "null", "NA", "N/A", "\\NULL", "\\x", "\\\\y",
    "0", "1", "01", "007", "-3", "+4", "12", "100",
    "1.0", "1.00", ".5", "5.", "1e3", "1E3", "-0", "+0",
    "999999999999999999999", "²3", "nan", "inf", "1_0", " 7 ",
    "abc", "a,b", 'he said "hi"', "x\\ny",
]


def write_csv_text(tmp_path, text, name="data.csv"):
    path = tmp_path / name
    path.write_text(text, newline="")
    return path


def random_csv(rng, width, rows):
    header = ",".join(f"c{i}" for i in range(width))
    body = "\n".join(
        ",".join(
            '"%s"' % rng.choice(ADVERSARIAL_TOKENS).replace('"', '""')
            for _ in range(width)
        )
        for _ in range(rows)
    )
    return header + "\n" + body + "\n"


def legacy_coded(path, nulls_equal=True, **options):
    """The pinned two-step path: read_csv + encode_column per column."""
    table = read_csv(path, **options)
    relation = table.to_relation()
    width = len(relation.schema)
    per_column = [
        encode_column(relation.column(a), nulls_equal=nulls_equal)
        for a in range(width)
    ]
    return relation, per_column


def assert_matches_legacy(path, nulls_equal=True, chunk_rows=None,
                          **options):
    relation, per_column = legacy_coded(
        path, nulls_equal=nulls_equal, **options
    )
    kwargs = dict(options)
    if chunk_rows is not None:
        kwargs["chunk_rows"] = chunk_rows
    coded = ingest_csv(path, nulls_equal=nulls_equal, **kwargs)
    assert coded.schema.names == relation.schema.names
    assert len(coded) == len(relation)
    for attribute, (codes, uniques) in enumerate(per_column):
        assert coded.codes[attribute].tolist() == list(codes)
        got = coded.uniques(attribute)
        assert got == list(uniques)
        for mine, theirs in zip(got, uniques):
            assert type(mine) is type(theirs), (attribute, mine, theirs)
    materialized = coded.to_relation()
    for attribute in range(len(relation.schema)):
        assert materialized.column(attribute) == relation.column(attribute)
    return coded, relation


class TestDifferentialFactorization:
    @pytest.mark.parametrize("nulls_equal", [True, False])
    @pytest.mark.parametrize("chunk_rows", [None, 1, 3])
    def test_adversarial_grid(self, tmp_path, nulls_equal, chunk_rows):
        rng = random.Random(20260809)
        path = write_csv_text(tmp_path, random_csv(rng, 5, 37))
        assert_matches_legacy(
            path, nulls_equal=nulls_equal, chunk_rows=chunk_rows
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_fuzz_sweep(self, tmp_path, seed):
        rng = random.Random(seed)
        width = rng.randint(1, 6)
        rows = rng.randint(0, 40)
        path = write_csv_text(tmp_path, random_csv(rng, width, rows))
        for nulls_equal in (True, False):
            assert_matches_legacy(
                path, nulls_equal=nulls_equal,
                chunk_rows=rng.choice([1, 2, 7, None]),
            )

    def test_pure_integer_columns_fast_path(self, tmp_path):
        # All-digit columns take the vectorized UCS4 parse; values must
        # come back as Python ints in first-occurrence order.
        path = write_csv_text(
            tmp_path, "a,b\n10,01\n7,1\n10,007\n0,-2\n"
        )
        coded, _ = assert_matches_legacy(path)
        assert coded.uniques(0) == [10, 7, 0]
        assert all(type(u) is int for u in coded.uniques(0))
        # "01" and "1" are one integer after inference; "007" is 7.
        assert coded.uniques(1) == [1, 7, -2]

    def test_no_header_and_no_inference(self, tmp_path):
        path = write_csv_text(tmp_path, "1,x\n\n2,y\n1,x\n")
        assert_matches_legacy(path, has_header=False)
        assert_matches_legacy(path, has_header=False, infer_types=False)
        coded = ingest_csv(path, has_header=False, infer_types=False)
        assert coded.schema.names == ("col1", "col2")
        assert coded.uniques(0) == ["1", "2"]

    def test_custom_null_tokens_and_delimiter(self, tmp_path):
        path = write_csv_text(tmp_path, "a;b\n-;1\nx;-\n")
        assert_matches_legacy(
            path, delimiter=";", null_tokens=("-",)
        )
        coded = ingest_csv(path, delimiter=";", null_tokens=("-",))
        assert coded.uniques(0) == [None, "x"]

    def test_escaped_null_lookalikes_round_trip(self, tmp_path):
        from repro.storage.csv_io import write_csv
        from repro.storage.table import Table

        table = Table.from_rows(
            "t", ["a", "b"],
            [(None, "NULL"), ("\\x", "x"), ("NA", None)],
        )
        path = tmp_path / "escaped.csv"
        write_csv(table, path)
        coded, relation = assert_matches_legacy(path)
        assert list(coded.to_relation().rows()) == list(
            table.to_relation().rows()
        )


class TestErrorParity:
    def both_errors(self, path, **options):
        messages = []
        for loader in (read_csv, ingest_csv):
            with pytest.raises(StorageError) as excinfo:
                loader(path, **options)
            messages.append(str(excinfo.value))
        assert messages[0] == messages[1]
        return messages[0]

    def test_ragged_row(self, tmp_path):
        path = write_csv_text(tmp_path, "a,b\n1,2\n3\n")
        assert self.both_errors(path) == \
            f"{path}:3: expected 2 fields, got 1"

    def test_ragged_row_line_numbers_skip_blanks(self, tmp_path):
        # Blank lines vanish without advancing the reported line number
        # — a long-standing quirk both readers must share.
        path = write_csv_text(tmp_path, "a,b\n1,2\n\n\n3,4,5\n")
        assert self.both_errors(path) == \
            f"{path}:3: expected 2 fields, got 3"

    def test_duplicate_headers_listed_sorted(self, tmp_path):
        path = write_csv_text(tmp_path, "b,a,b,a,c\n1,2,3,4,5\n")
        assert self.both_errors(path) == \
            f"{path}: duplicate column name(s): a, b"

    def test_duplicate_header_raises_before_body_is_read(self, tmp_path):
        # Streaming readers validate the header from the first chunk:
        # a ragged body row must not mask the duplicate-header error.
        path = write_csv_text(tmp_path, "a,a\n1\n")
        assert "duplicate column name(s): a" in self.both_errors(path)

    def test_empty_and_blank_only_files(self, tmp_path):
        for text in ("", "\n\n\n"):
            path = write_csv_text(tmp_path, text, name="e.csv")
            assert self.both_errors(path) == f"CSV file {path} is empty"

    def test_missing_file(self, tmp_path):
        path = tmp_path / "nope.csv"
        assert self.both_errors(path) == f"CSV file not found: {path}"

    def test_bad_chunk_rows(self, tmp_path):
        path = write_csv_text(tmp_path, "a\n1\n")
        with pytest.raises(StorageError):
            ingest_csv(path, chunk_rows=0)


class TestLaziness:
    def test_relation_is_not_built_until_asked(self, tmp_path):
        path = write_csv_text(tmp_path, "a,b\n1,2\n3,4\n")
        coded = ingest_csv(path)
        assert not coded.materialized
        first = coded.to_relation()
        assert coded.materialized
        assert coded.to_relation() is first  # memoized

    def test_fingerprint_without_materialization(self, tmp_path):
        from repro.cache.fingerprint import fingerprint_relation

        path = write_csv_text(tmp_path, "a,b\n1,x\n1,y\n2,x\n")
        for nulls_equal in (True, False):
            coded = ingest_csv(path, nulls_equal=nulls_equal,
                               fingerprint=True)
            key = coded.fingerprint_key()
            assert not coded.materialized
            assert key == fingerprint_relation(
                coded.to_relation(), nulls_equal
            )

    def test_cold_columnar_mine_never_materializes(self, tmp_path):
        from repro.core.depminer import DepMiner

        path = write_csv_text(tmp_path, "a,b,c\n1,x,0\n2,x,0\n1,y,1\n")
        coded = ingest_csv(path)
        result = DepMiner(backend="columnar").run(coded)
        assert not coded.materialized
        assert result.fds

    def test_warm_cover_hit_served_before_materialization(self, tmp_path):
        from repro.cache import ArtifactStore
        from repro.core.depminer import DepMiner
        from repro.obs import MetricsRegistry

        path = write_csv_text(
            tmp_path, "a,b,c\n1,x,0\n2,x,0\n1,y,1\n2,y,1\n"
        )
        store = ArtifactStore(tmp_path / "cache")
        cold = DepMiner(backend="columnar", cache=store).run(
            ingest_csv(path, fingerprint=True)
        )
        warm_input = ingest_csv(path, fingerprint=True)
        metrics = MetricsRegistry()
        warm = DepMiner(
            backend="columnar", cache=store, metrics=metrics
        ).run(warm_input)
        assert metrics.counters.get("cache.full_hit") == 1
        assert not warm_input.materialized
        assert [(fd.lhs.mask, fd.rhs_index) for fd in warm.fds] == \
            [(fd.lhs.mask, fd.rhs_index) for fd in cold.fds]
        assert list(warm.armstrong.rows()) == list(cold.armstrong.rows())

    def test_ingest_spans_are_emitted(self, tmp_path):
        from repro.obs import Tracer

        path = write_csv_text(tmp_path, "a,b\n1,2\n")
        tracer = Tracer()
        ingest_csv(path, fingerprint=True, tracer=tracer)
        names = [span.name for span in tracer.finished_spans()]
        assert "ingest.read" in names
        assert "ingest.factorize" in names
        assert "ingest.fingerprint" in names


class TestCodedRelation:
    def test_coded_from_relation_round_trips(self):
        from repro.core.attributes import Schema
        from repro.core.relation import Relation

        relation = Relation.from_rows(
            Schema(["a", "b"]), [(1, None), (1, "x"), (2, None)]
        )
        for nulls_equal in (True, False):
            coded = coded_from_relation(relation, nulls_equal=nulls_equal)
            assert isinstance(coded, CodedRelation)
            assert coded.to_relation() is relation
            codes, uniques = encode_column(
                relation.column(1), nulls_equal=nulls_equal
            )
            assert coded.codes[1].tolist() == list(codes)
            assert coded.uniques(1) == list(uniques)

    def test_distinct_values_match_relation(self, tmp_path):
        path = write_csv_text(tmp_path, "a,b\n2,x\n1,x\n2,y\n")
        coded = ingest_csv(path)
        relation = read_csv(path).to_relation()
        for attribute in range(2):
            assert coded.distinct_values(attribute) == \
                relation.distinct_values(attribute)
            assert coded.distinct_count(attribute) == \
                len(set(relation.column(attribute)))
