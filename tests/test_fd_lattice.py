"""Unit tests for the closed-set lattice."""

from __future__ import annotations

import pytest

from repro.core.attributes import Schema, popcount
from repro.core.depminer import DepMiner
from repro.errors import ReproError
from repro.fd.fd import parse_fd
from repro.fd.lattice import ClosedSetLattice, build_lattice


@pytest.fixture
def schema():
    return Schema.of_width(4)


@pytest.fixture
def lattice(schema):
    fds = [parse_fd(schema, "A -> B"), parse_fd(schema, "CD -> A")]
    return build_lattice(schema, fds)


class TestStructure:
    def test_contains_universe_and_closed_sets_only(self, lattice, schema):
        assert schema.universe_mask in lattice
        for mask in lattice.elements:
            assert lattice.closure(mask) == mask

    def test_width_guard(self):
        wide = Schema.of_width(20)
        with pytest.raises(ReproError, match="width"):
            ClosedSetLattice(wide, [])

    def test_no_fds_gives_full_powerset(self, schema):
        lattice = build_lattice(schema, [])
        assert len(lattice) == 2 ** len(schema)


class TestHasse:
    def test_covers_are_strict_supersets(self, lattice):
        for low in lattice.elements:
            for high in lattice.upper_covers(low):
                assert low & high == low and low != high

    def test_covers_are_immediate(self, lattice):
        for low in lattice.elements:
            for high in lattice.upper_covers(low):
                for mid in lattice.elements:
                    if mid in (low, high):
                        continue
                    between = (
                        low & mid == low and mid & high == mid
                    )
                    assert not between, (
                        f"{bin(mid)} sits between {bin(low)}, {bin(high)}"
                    )

    def test_universe_has_no_covers(self, lattice, schema):
        assert lattice.upper_covers(schema.universe_mask) == []

    def test_unknown_element_rejected(self, lattice):
        # {B} is not closed here? B's closure is B... actually with
        # A -> B only, {B} IS closed.  Use a set that is not closed:
        # {A} closes to {A, B}.
        with pytest.raises(ReproError, match="not a closed set"):
            lattice.upper_covers(0b0001)


class TestOperations:
    def test_meet_is_intersection(self, lattice):
        elements = lattice.elements
        for x in elements[:8]:
            for y in elements[:8]:
                meet = lattice.meet(x, y)
                assert meet in lattice

    def test_join_is_closure_of_union(self, lattice, schema):
        a_b = lattice.closure(schema.mask_of("A"))
        cd = schema.mask_of(["C", "D"])
        join = lattice.join(a_b, cd)
        assert join == schema.universe_mask  # CD -> A, A -> B

    def test_lattice_absorption_laws(self, lattice):
        elements = lattice.elements[:6]
        for x in elements:
            for y in elements:
                assert lattice.meet(x, lattice.join(x, y)) == x
                assert lattice.join(x, lattice.meet(x, y)) == x


class TestGenerators:
    def test_meet_irreducible_matches_mined_max_sets(self, paper_relation):
        result = DepMiner().run(paper_relation)
        lattice = build_lattice(paper_relation.schema, result.fds)
        assert lattice.meet_irreducible() == result.max_union

    def test_every_closed_set_is_a_meet_of_generators(self, lattice, schema):
        generators = lattice.meet_irreducible()
        universe = schema.universe_mask
        for mask in lattice.elements:
            meet = universe
            for generator in generators:
                if mask & generator == mask:
                    meet &= generator
            assert meet == mask


class TestRendering:
    def test_render_mentions_generators(self, paper_relation):
        result = DepMiner().run(paper_relation)
        lattice = build_lattice(paper_relation.schema, result.fds)
        text = lattice.render()
        assert "closed sets" in text
        assert "*" in text
        assert "BDE*" in text  # a maximal set of the worked example
