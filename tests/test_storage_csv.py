"""Unit tests for CSV I/O."""

from __future__ import annotations

import pytest

from repro.core.attributes import Schema
from repro.core.relation import Relation
from repro.errors import StorageError
from repro.storage.csv_io import (
    read_csv,
    relation_from_csv,
    relation_to_csv,
    write_csv,
)
from repro.storage.table import Table


def write(tmp_path, text, name="data.csv"):
    path = tmp_path / name
    path.write_text(text)
    return path


class TestReadCsv:
    def test_basic_with_type_inference(self, tmp_path):
        path = write(tmp_path, "a,b,c\n1,2.5,x\n2,3.5,y\n")
        table = read_csv(path)
        assert table.name == "data"
        assert table.column("a").values == [1, 2]
        assert table.column("b").values == [2.5, 3.5]
        assert table.column("c").values == ["x", "y"]

    def test_mixed_column_stays_text(self, tmp_path):
        path = write(tmp_path, "a\n1\nx\n")
        assert read_csv(path).column("a").values == ["1", "x"]

    def test_infer_types_disabled(self, tmp_path):
        path = write(tmp_path, "a\n1\n2\n")
        assert read_csv(path, infer_types=False).column("a").values == [
            "1", "2",
        ]

    def test_null_tokens(self, tmp_path):
        path = write(tmp_path, "a,b\n1,NULL\n,x\n")
        table = read_csv(path)
        assert table.column("a").values == [1, None]
        assert table.column("b").values == [None, "x"]

    def test_custom_null_tokens(self, tmp_path):
        path = write(tmp_path, "a\n-\n1\n")
        table = read_csv(path, null_tokens=("-",))
        assert table.column("a").values == [None, 1]

    def test_no_header(self, tmp_path):
        path = write(tmp_path, "1,2\n3,4\n")
        table = read_csv(path, has_header=False)
        assert table.column_names == ("col1", "col2")
        assert len(table) == 2

    def test_custom_delimiter(self, tmp_path):
        path = write(tmp_path, "a;b\n1;2\n")
        assert len(read_csv(path, delimiter=";")) == 1

    def test_explicit_name(self, tmp_path):
        path = write(tmp_path, "a\n1\n")
        assert read_csv(path, name="custom").name == "custom"

    def test_header_only_file(self, tmp_path):
        path = write(tmp_path, "a,b\n")
        table = read_csv(path)
        assert len(table) == 0
        assert table.column_names == ("a", "b")

    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError, match="not found"):
            read_csv(tmp_path / "absent.csv")

    def test_empty_file(self, tmp_path):
        path = write(tmp_path, "")
        with pytest.raises(StorageError, match="empty"):
            read_csv(path)

    def test_ragged_row_reports_line_number(self, tmp_path):
        path = write(tmp_path, "a,b\n1,2\n3\n")
        with pytest.raises(StorageError, match=":3"):
            read_csv(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = write(tmp_path, "a\n1\n\n2\n")
        assert len(read_csv(path)) == 2


class TestWriteCsv:
    def test_round_trip(self, tmp_path):
        table = Table.from_rows(
            "t", ["a", "b"], [(1, "x"), (2, None)]
        )
        path = tmp_path / "out.csv"
        write_csv(table, path)
        back = read_csv(path, name="t")
        assert back.column("a").values == [1, 2]
        assert back.column("b").values == ["x", None]

    def test_relation_round_trip(self, tmp_path):
        schema = Schema(["a", "b"])
        relation = Relation.from_rows(schema, [(1, "x"), (2, "y")])
        path = tmp_path / "rel.csv"
        relation_to_csv(relation, path)
        assert relation_from_csv(path) == relation


class TestCanonicalNumerics:
    """Only canonical numeric text may become a number.

    Python's ``int``/``float`` accept underscores, whitespace and the
    nan/inf family; letting any of those through corrupts the
    equality-based partition grouping the miner is built on.
    """

    def test_nan_and_inf_tokens_stay_text(self, tmp_path):
        path = write(tmp_path, "a\nnan\nnan\ninf\n-inf\nInfinity\n")
        assert read_csv(path).column("a").values == [
            "nan", "nan", "inf", "-inf", "Infinity",
        ]

    def test_underscored_literals_stay_text(self, tmp_path):
        # "1_000" and "1000" are distinct source strings; int() would
        # silently merge them into one partition class.
        path = write(tmp_path, "a\n1_000\n1000\n")
        assert read_csv(path).column("a").values == ["1_000", "1000"]

    def test_whitespace_padded_numbers_stay_text(self, tmp_path):
        path = write(tmp_path, 'a\n" 7"\n7\n')
        assert read_csv(path).column("a").values == [" 7", "7"]

    def test_overflowing_float_literals_stay_text(self, tmp_path):
        # float("1e999") == float("2e999") == inf: every overflowing
        # literal would collapse onto one value.
        path = write(tmp_path, "a\n1e999\n2e999\n")
        assert read_csv(path).column("a").values == ["1e999", "2e999"]

    def test_canonical_forms_still_parse(self, tmp_path):
        path = write(tmp_path, "a,b\n+5,.5\n-3,5.\n01,1e3\n7,1E-2\n")
        table = read_csv(path)
        assert table.column("a").values == [5, -3, 1, 7]
        assert table.column("b").values == [0.5, 5.0, 1000.0, 0.01]

    def test_nan_relation_has_stable_agree_sets(self, tmp_path):
        """The regression that motivated the caster change: with "nan"
        parsed as float, the naive pairwise agree sets (== comparison,
        nan != nan) and the partition-derived ones (dict grouping)
        disagree — the cover depends on the code path.  As text the two
        are identical."""
        from repro.core.agree_sets import (
            agree_sets_from_couples,
            naive_agree_sets,
        )
        from repro.partitions.database import StrippedPartitionDatabase

        path = write(tmp_path, "a,b\nnan,1\nnan,2\nnan,2\n1.5,1\n")
        relation = relation_from_csv(path)
        assert relation.column(0) == ["nan", "nan", "nan", "1.5"]
        spdb = StrippedPartitionDatabase.from_relation(relation)
        assert naive_agree_sets(relation) == agree_sets_from_couples(spdb)


class TestNullTokenRoundTrip:
    def test_null_lookalike_strings_survive(self, tmp_path):
        table = Table.from_rows("t", ["a"], [
            ("NULL",), (None,), ("NA",), ("null",), ("",), ("N/A",),
        ])
        path = tmp_path / "out.csv"
        write_csv(table, path)
        back = read_csv(path, name="t")
        assert back.column("a").values == [
            "NULL", None, "NA", "null", "", "N/A",
        ]

    def test_backslash_prefixed_strings_survive(self, tmp_path):
        table = Table.from_rows("t", ["a"], [
            ("\\NULL",), ("\\",), ("\\\\x",), ("plain",),
        ])
        path = tmp_path / "out.csv"
        write_csv(table, path)
        back = read_csv(path, name="t")
        assert back.column("a").values == ["\\NULL", "\\", "\\\\x", "plain"]

    def test_custom_null_tokens_escape_consistently(self, tmp_path):
        table = Table.from_rows("t", ["a"], [("-",), (None,), ("x",)])
        path = tmp_path / "out.csv"
        write_csv(table, path, null_tokens=("", "-"))
        back = read_csv(path, name="t", null_tokens=("", "-"))
        assert back.column("a").values == ["-", None, "x"]

    def test_single_column_null_round_trips(self, tmp_path):
        # a lone None row serialises as a quoted empty field, not a
        # blank (skipped) line
        table = Table.from_rows("t", ["a"], [(None,), ("x",)])
        path = tmp_path / "out.csv"
        write_csv(table, path)
        assert read_csv(path, name="t").column("a").values == [None, "x"]


class TestDuplicateHeaders:
    def test_read_csv_names_every_duplicate(self, tmp_path):
        path = write(tmp_path, "a,b,a,b,c\n1,2,3,4,5\n")
        with pytest.raises(StorageError, match="duplicate column"):
            read_csv(path)
        with pytest.raises(StorageError, match="a, b"):
            read_csv(path)

    def test_streaming_rejects_duplicates_too(self, tmp_path):
        from repro.partitions.streaming import stream_partition_database

        path = write(tmp_path, "x,x\n1,2\n")
        with pytest.raises(StorageError, match="duplicate column.*x"):
            stream_partition_database(path)


# ---------------------------------------------------------------------------
# property: write_csv ∘ read_csv is the identity


from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.storage.csv_io import _cast_float, _cast_int  # noqa: E402


def _numeric_looking(text: str) -> bool:
    for caster in (_cast_int, _cast_float):
        try:
            caster(text)
            return True
        except ValueError:
            continue
    return False


# Inference types per column, so a written table re-infers to the same
# values: ints, finite floats, or text that cannot be mistaken for a
# canonical number.  Nulls (None) may appear in any column; null-token
# lookalikes and backslash openers are deliberately *not* filtered out —
# surviving them is the point of the escape scheme.
_TEXT = st.text(max_size=8).filter(lambda s: not _numeric_looking(s))
_COLUMN_KINDS = (
    st.integers(min_value=-10 ** 12, max_value=10 ** 12),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    _TEXT,
)


@st.composite
def tables(draw):
    width = draw(st.integers(min_value=1, max_value=4))
    height = draw(st.integers(min_value=0, max_value=6))
    columns = []
    for _ in range(width):
        kind = draw(st.sampled_from(_COLUMN_KINDS))
        columns.append(draw(st.lists(
            st.one_of(st.none(), kind), min_size=height, max_size=height,
        )))
    names = [f"c{i}" for i in range(width)]
    return Table.from_rows("t", names, zip(*columns) if height else [])


class TestRoundTripProperty:
    @settings(max_examples=60, deadline=None)
    @given(table=tables())
    def test_write_then_read_is_identity(self, table):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "rt.csv"
            write_csv(table, path)
            back = read_csv(path, name="t")
        assert back.column_names == table.column_names
        for name in table.column_names:
            assert back.column(name).values == table.column(name).values
