"""Unit tests for CSV I/O."""

from __future__ import annotations

import pytest

from repro.core.attributes import Schema
from repro.core.relation import Relation
from repro.errors import StorageError
from repro.storage.csv_io import (
    read_csv,
    relation_from_csv,
    relation_to_csv,
    write_csv,
)
from repro.storage.table import Table


def write(tmp_path, text, name="data.csv"):
    path = tmp_path / name
    path.write_text(text)
    return path


class TestReadCsv:
    def test_basic_with_type_inference(self, tmp_path):
        path = write(tmp_path, "a,b,c\n1,2.5,x\n2,3.5,y\n")
        table = read_csv(path)
        assert table.name == "data"
        assert table.column("a").values == [1, 2]
        assert table.column("b").values == [2.5, 3.5]
        assert table.column("c").values == ["x", "y"]

    def test_mixed_column_stays_text(self, tmp_path):
        path = write(tmp_path, "a\n1\nx\n")
        assert read_csv(path).column("a").values == ["1", "x"]

    def test_infer_types_disabled(self, tmp_path):
        path = write(tmp_path, "a\n1\n2\n")
        assert read_csv(path, infer_types=False).column("a").values == [
            "1", "2",
        ]

    def test_null_tokens(self, tmp_path):
        path = write(tmp_path, "a,b\n1,NULL\n,x\n")
        table = read_csv(path)
        assert table.column("a").values == [1, None]
        assert table.column("b").values == [None, "x"]

    def test_custom_null_tokens(self, tmp_path):
        path = write(tmp_path, "a\n-\n1\n")
        table = read_csv(path, null_tokens=("-",))
        assert table.column("a").values == [None, 1]

    def test_no_header(self, tmp_path):
        path = write(tmp_path, "1,2\n3,4\n")
        table = read_csv(path, has_header=False)
        assert table.column_names == ("col1", "col2")
        assert len(table) == 2

    def test_custom_delimiter(self, tmp_path):
        path = write(tmp_path, "a;b\n1;2\n")
        assert len(read_csv(path, delimiter=";")) == 1

    def test_explicit_name(self, tmp_path):
        path = write(tmp_path, "a\n1\n")
        assert read_csv(path, name="custom").name == "custom"

    def test_header_only_file(self, tmp_path):
        path = write(tmp_path, "a,b\n")
        table = read_csv(path)
        assert len(table) == 0
        assert table.column_names == ("a", "b")

    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError, match="not found"):
            read_csv(tmp_path / "absent.csv")

    def test_empty_file(self, tmp_path):
        path = write(tmp_path, "")
        with pytest.raises(StorageError, match="empty"):
            read_csv(path)

    def test_ragged_row_reports_line_number(self, tmp_path):
        path = write(tmp_path, "a,b\n1,2\n3\n")
        with pytest.raises(StorageError, match=":3"):
            read_csv(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = write(tmp_path, "a\n1\n\n2\n")
        assert len(read_csv(path)) == 2


class TestWriteCsv:
    def test_round_trip(self, tmp_path):
        table = Table.from_rows(
            "t", ["a", "b"], [(1, "x"), (2, None)]
        )
        path = tmp_path / "out.csv"
        write_csv(table, path)
        back = read_csv(path, name="t")
        assert back.column("a").values == [1, 2]
        assert back.column("b").values == ["x", None]

    def test_relation_round_trip(self, tmp_path):
        schema = Schema(["a", "b"])
        relation = Relation.from_rows(schema, [(1, "x"), (2, "y")])
        path = tmp_path / "rel.csv"
        relation_to_csv(relation, path)
        assert relation_from_csv(path) == relation
