"""Unit tests for the bundled example datasets."""

from __future__ import annotations

from repro.core.depminer import discover_fds
from repro.datasets import (
    course_schedule_relation,
    paper_example_relation,
    paper_example_schema,
    supplier_parts_relation,
)


class TestPaperExample:
    def test_long_and_short_names(self):
        assert paper_example_schema().names == (
            "empnum", "depnum", "year", "depname", "mgr",
        )
        assert paper_example_schema(short_names=True).names == (
            "A", "B", "C", "D", "E",
        )

    def test_shape(self):
        relation = paper_example_relation()
        assert len(relation) == 7
        assert len(relation.schema) == 5

    def test_both_namings_have_identical_fd_structure(self):
        long_fds = discover_fds(paper_example_relation())
        short_fds = discover_fds(paper_example_relation(short_names=True))
        assert len(long_fds) == len(short_fds) == 14


class TestCourseSchedule:
    def test_expected_dependencies_hold(self):
        relation = course_schedule_relation()
        assert relation.satisfies(["course"], ["teacher"])
        assert relation.satisfies(["teacher"], ["dept"])
        assert relation.satisfies(["room", "slot"], ["course"])
        assert not relation.satisfies(["teacher"], ["course"])

    def test_mining_finds_the_layered_structure(self):
        fds = {str(fd) for fd in discover_fds(course_schedule_relation())}
        assert "course -> teacher" in fds
        assert "teacher -> dept" in fds


class TestSupplierParts:
    def test_expected_dependencies_hold(self):
        relation = supplier_parts_relation()
        assert relation.satisfies(["sno"], ["sname"])
        assert relation.satisfies(["sno"], ["city"])
        assert relation.satisfies(["city"], ["status"])
        assert not relation.satisfies(["pno"], ["qty"])

    def test_key_structure(self):
        relation = supplier_parts_relation()
        assert relation.is_superkey(["sno", "pno"])
        assert not relation.is_superkey(["sno"])
