"""Unit tests for the lhs-size cap (wide-schema mitigation)."""

from __future__ import annotations

import time

import pytest

from repro.core.depminer import DepMiner, discover_fds
from repro.datagen.synthetic import generate_relation
from repro.errors import ReproError
from repro.hypergraph.transversals import minimal_transversals_levelwise


class TestTransversalCap:
    def test_cap_returns_the_small_transversals_only(self):
        # Edges over 4 vertices with transversals of sizes 1 and 2.
        edges = [0b0011, 0b0101, 0b1001]
        full = minimal_transversals_levelwise(edges, 4)
        capped = minimal_transversals_levelwise(edges, 4, max_size=1)
        assert capped == [t for t in full if bin(t).count("1") <= 1]
        assert capped == [0b0001]

    def test_cap_equal_to_max_size_is_complete(self):
        edges = [0b0011, 0b1100]
        full = minimal_transversals_levelwise(edges, 4)
        assert minimal_transversals_levelwise(edges, 4, max_size=2) == full

    def test_invalid_cap(self):
        with pytest.raises(ReproError):
            minimal_transversals_levelwise([0b1], 1, max_size=0)


class TestDepMinerCap:
    def test_capped_fds_are_a_subset_and_all_small(self, paper_relation):
        full = discover_fds(paper_relation)
        capped = DepMiner(
            build_armstrong="none", max_lhs_size=1
        ).run(paper_relation).fds
        assert set(capped) <= set(full)
        assert all(len(fd.lhs) <= 1 for fd in capped)
        # Exactly the full cover's single-attribute FDs (5 of the 14).
        assert capped == [fd for fd in full if len(fd.lhs) <= 1]
        assert len(capped) == 5

    def test_cap_two_recovers_everything_here(self, paper_relation):
        # Every minimal FD of the worked example has |lhs| <= 2.
        full = discover_fds(paper_relation)
        capped = DepMiner(
            build_armstrong="none", max_lhs_size=2
        ).run(paper_relation).fds
        assert capped == full

    def test_cap_requires_levelwise(self, paper_relation):
        miner = DepMiner(
            build_armstrong="none", transversal_method="dfs",
            max_lhs_size=2,
        )
        with pytest.raises(ReproError, match="levelwise"):
            miner.run(paper_relation)

    def test_wide_schema_completes_quickly_with_cap(self):
        """The uncapped 70-attribute correlated case explodes at deep
        levels; a cap of 2 keeps it interactive."""
        relation = generate_relation(70, 40, correlation=0.5, seed=0)
        start = time.perf_counter()
        result = DepMiner(
            build_armstrong="none", max_lhs_size=2
        ).run(relation)
        elapsed = time.perf_counter() - start
        assert elapsed < 30
        assert all(len(fd.lhs) <= 2 for fd in result.fds)
        for fd in result.fds:
            assert fd.holds_in(relation)
