"""Unit tests for the three agree-set algorithms."""

from __future__ import annotations

import pytest

from repro.core.agree_sets import (
    agree_sets,
    agree_sets_from_couples,
    agree_sets_from_identifiers,
    naive_agree_sets,
)
from repro.core.attributes import Schema
from repro.core.relation import Relation
from repro.errors import ReproError
from repro.partitions.database import StrippedPartitionDatabase


def spdb_of(relation):
    return StrippedPartitionDatabase.from_relation(relation)


def all_three(relation):
    spdb = spdb_of(relation)
    return (
        naive_agree_sets(relation),
        agree_sets_from_couples(spdb),
        agree_sets_from_identifiers(spdb),
    )


class TestEquivalenceOfAlgorithms:
    def test_pairwise_distinct_rows(self):
        schema = Schema.of_width(3)
        relation = Relation.from_rows(
            schema, [(1, 2, 3), (4, 5, 6), (7, 8, 9)]
        )
        naive, couples, identifiers = all_three(relation)
        assert naive == couples == identifiers == {0}

    def test_mixed_structure(self):
        schema = Schema.of_width(3)
        relation = Relation.from_rows(
            schema,
            [(1, "x", 0), (1, "y", 0), (2, "x", 0), (2, "y", 1)],
        )
        naive, couples, identifiers = all_three(relation)
        assert naive == couples == identifiers
        # Pair-by-pair: (0,1)->AC, (0,2)->BC, (0,3)->∅, (1,2)->C,
        # (1,3)->B, (2,3)->A.
        assert naive == {0b101, 0b110, 0, 0b100, 0b010, 0b001}

    def test_duplicate_rows_full_agree_set(self):
        schema = Schema.of_width(2)
        relation = Relation.from_rows(schema, [(1, 2), (1, 2)])
        naive, couples, identifiers = all_three(relation)
        assert naive == couples == identifiers == {0b11}


class TestEmptyAgreeSetDetection:
    def test_empty_present_when_some_pair_disagrees_everywhere(self):
        schema = Schema.of_width(2)
        relation = Relation.from_rows(schema, [(1, 1), (1, 2), (9, 9)])
        for result in all_three(relation):
            assert 0 in result

    def test_empty_absent_when_every_pair_agrees_somewhere(self):
        schema = Schema.of_width(2)
        relation = Relation.from_rows(schema, [(1, 1), (1, 2), (1, 3)])
        # Every pair agrees on A, so no pair disagrees everywhere.
        for result in all_three(relation):
            assert 0 not in result

    def test_single_row_relation_has_no_agree_sets(self):
        schema = Schema.of_width(2)
        relation = Relation.from_rows(schema, [(1, 2)])
        for result in all_three(relation):
            assert result == set()

    def test_empty_relation(self):
        schema = Schema.of_width(2)
        relation = Relation.from_rows(schema, [])
        for result in all_three(relation):
            assert result == set()


class TestChunking:
    @pytest.mark.parametrize("max_couples", [1, 2, 3, 7, 1000])
    def test_chunked_runs_match_unchunked(self, max_couples, paper_relation):
        spdb = spdb_of(paper_relation)
        full = agree_sets_from_couples(spdb)
        chunked = agree_sets_from_couples(spdb, max_couples=max_couples)
        assert chunked == full

    def test_rejects_nonpositive_threshold(self, paper_relation):
        spdb = spdb_of(paper_relation)
        with pytest.raises(ReproError, match="positive"):
            agree_sets_from_couples(spdb, max_couples=0)


class TestDispatcher:
    def test_named_algorithms(self, paper_relation):
        spdb = spdb_of(paper_relation)
        assert agree_sets(spdb, "couples") == agree_sets(spdb, "identifiers")

    def test_unknown_name(self, paper_relation):
        spdb = spdb_of(paper_relation)
        with pytest.raises(ReproError, match="unknown agree-set algorithm"):
            agree_sets(spdb, "nope")

    def test_max_couples_rejected_for_identifiers(self, paper_relation):
        spdb = spdb_of(paper_relation)
        with pytest.raises(ReproError, match="max_couples"):
            agree_sets(spdb, "identifiers", max_couples=10)

    def test_max_couples_forwarded_for_couples(self, paper_relation):
        spdb = spdb_of(paper_relation)
        assert agree_sets(spdb, "couples", max_couples=2) == agree_sets(
            spdb, "couples"
        )


class TestOverlappingMaximalClasses:
    def test_couple_deduplication_across_classes(self):
        # Two attributes produce overlapping maximal classes sharing a
        # couple; the couple must be resolved exactly once and the agree
        # sets stay correct.
        schema = Schema.of_width(3)
        relation = Relation.from_rows(
            schema,
            [
                (1, "p", 0),
                (1, "p", 1),
                (1, "q", 0),
                (2, "q", 1),
            ],
        )
        naive, couples, identifiers = all_three(relation)
        assert naive == couples == identifiers

    def test_empty_detection_counts_distinct_couples_across_chunks(self):
        # Regression: the couple (0, 1) lives in two overlapping maximal
        # classes (A's {0,1,2} and B's {0,1,3}).  Counting per-chunk
        # visits instead of distinct couples would tally 6 = C(4,2) and
        # mask the empty agree set of the fully-disagreeing pair (2, 3).
        schema = Schema(["A", "B", "C"])
        relation = Relation.from_rows(
            schema,
            [
                ("x", "u", "p"),
                ("x", "u", "q"),
                ("x", "v", "r"),
                ("y", "u", "s"),
            ],
        )
        spdb = spdb_of(relation)
        expected = naive_agree_sets(relation)
        assert 0 in expected
        # One couple per chunk: every chunk boundary is exercised.
        for max_couples in (1, 2, 3, None):
            stats = {}
            result = agree_sets_from_couples(
                spdb, max_couples=max_couples, stats=stats
            )
            assert result == expected
            assert stats["num_couples"] == 5

    def test_distinct_couple_enumeration_is_deduplicated(self):
        from repro.core.agree_sets import iter_distinct_couples

        schema = Schema(["A", "B", "C"])
        relation = Relation.from_rows(
            schema,
            [
                ("x", "u", "p"),
                ("x", "u", "q"),
                ("x", "v", "r"),
                ("y", "u", "s"),
            ],
        )
        couples = list(iter_distinct_couples(spdb_of(relation)))
        assert len(couples) == len(set(couples)) == 5


class TestVectorized:
    def test_dispatcher_accepts_vectorized(self, paper_relation):
        spdb = spdb_of(paper_relation)
        assert agree_sets(spdb, "vectorized") == agree_sets(spdb, "couples")

    def test_matches_naive_on_structured_data(self):
        schema = Schema.of_width(3)
        relation = Relation.from_rows(
            schema,
            [(1, "p", 0), (1, "p", 1), (1, "q", 0), (2, "q", 1)],
        )
        spdb = spdb_of(relation)
        assert agree_sets(spdb, "vectorized") == naive_agree_sets(relation)

    def test_wide_schema_multi_lane(self):
        import random

        rng = random.Random(0)
        schema = Schema.of_width(70)
        relation = Relation.from_rows(
            schema,
            [
                tuple(rng.randint(0, 1) for _ in range(70))
                for _ in range(10)
            ],
        )
        spdb = spdb_of(relation)
        assert agree_sets(spdb, "vectorized") == naive_agree_sets(relation)

    def test_empty_and_single_row(self):
        schema = Schema.of_width(2)
        for rows in ([], [(1, 2)]):
            spdb = spdb_of(Relation.from_rows(schema, rows))
            assert agree_sets(spdb, "vectorized") == set()

    def test_empty_agree_set_detected(self):
        schema = Schema.of_width(2)
        relation = Relation.from_rows(schema, [(1, 1), (1, 2), (9, 9)])
        spdb = spdb_of(relation)
        assert 0 in agree_sets(spdb, "vectorized")

    def test_max_couples_rejected(self, paper_relation):
        spdb = spdb_of(paper_relation)
        with pytest.raises(ReproError, match="max_couples"):
            agree_sets(spdb, "vectorized", max_couples=5)

    def test_depminer_option(self, paper_relation):
        from repro.core.depminer import DepMiner, discover_fds

        fast = DepMiner(
            build_armstrong="none", agree_algorithm="vectorized"
        ).run(paper_relation)
        assert fast.fds == discover_fds(paper_relation)
        assert fast.stats["num_couples"] == 6
