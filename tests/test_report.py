"""Unit tests for the profiling report."""

from __future__ import annotations

import pytest

from repro.core.depminer import DepMiner
from repro.datasets import (
    course_schedule_relation,
    paper_example_relation,
    supplier_parts_relation,
)
from repro.report import profile_relation


class TestProfileRelation:
    def test_paper_relation_profile(self):
        report = profile_relation(
            paper_example_relation(), name="employees"
        )
        assert report.name == "employees"
        assert len(report.mining.fds) == 14
        assert len(report.cover) <= 14
        assert report.keys
        assert set(report.normal_forms) == {"2NF", "3NF", "BCNF"}

    def test_denormalized_schema_gets_a_decomposition(self):
        report = profile_relation(course_schedule_relation())
        assert not report.normal_forms["BCNF"]
        assert report.decomposition
        union = 0
        for fragment in report.decomposition:
            union |= fragment.attributes.mask
        assert union == course_schedule_relation().schema.universe_mask

    def test_custom_miner_is_honoured(self):
        miner = DepMiner(build_armstrong="none")
        report = profile_relation(paper_example_relation(), miner=miner)
        assert report.mining.armstrong is None


class TestMarkdownRendering:
    def test_contains_all_sections(self):
        report = profile_relation(supplier_parts_relation(), name="sp")
        markdown = report.to_markdown()
        assert markdown.startswith("# Profile of `sp`")
        assert "## Columns" in markdown
        assert "## Minimal functional dependencies" in markdown
        assert "## Candidate keys" in markdown
        assert "## Normal forms" in markdown

    def test_armstrong_section_present_or_explained(self):
        with_sample = profile_relation(paper_example_relation())
        assert "Armstrong sample" in with_sample.to_markdown()
        without = profile_relation(course_schedule_relation())
        markdown = without.to_markdown()
        assert (
            "No real-world Armstrong relation exists" in markdown
            or "Armstrong sample (" in markdown
        )

    def test_decomposition_section_only_when_not_bcnf(self):
        denormalized = profile_relation(course_schedule_relation())
        assert "Suggested 3NF decomposition" in denormalized.to_markdown()

    def test_summary_line(self):
        report = profile_relation(paper_example_relation(), name="emp")
        line = report.summary_line()
        assert line.startswith("emp:")
        assert "14 FDs" in line
