"""Unit tests for cover computations."""

from __future__ import annotations

import pytest

from repro.core.attributes import Schema
from repro.core.depminer import discover_fds
from repro.fd.closure import equivalent_covers, implies
from repro.fd.cover import (
    is_minimal_cover,
    left_reduce,
    minimal_cover,
    remove_redundant,
)
from repro.fd.fd import parse_fd


@pytest.fixture
def schema():
    return Schema.of_width(4)


class TestLeftReduce:
    def test_removes_extraneous_attribute(self, schema):
        fds = [
            parse_fd(schema, "A -> B"),
            parse_fd(schema, "AB -> C"),  # B is extraneous given A -> B
        ]
        reduced = left_reduce(fds)
        assert {str(fd) for fd in reduced} == {"A -> B", "A -> C"}

    def test_keeps_needed_attributes(self, schema):
        fds = [parse_fd(schema, "AB -> C")]
        assert left_reduce(fds) == fds

    def test_preserves_equivalence(self, schema):
        fds = [
            parse_fd(schema, "A -> B"),
            parse_fd(schema, "ABD -> C"),
            parse_fd(schema, "D -> A"),
        ]
        assert equivalent_covers(left_reduce(fds), fds)


class TestRemoveRedundant:
    def test_drops_transitively_implied(self, schema):
        fds = [
            parse_fd(schema, "A -> B"),
            parse_fd(schema, "B -> C"),
            parse_fd(schema, "A -> C"),
        ]
        kept = remove_redundant(fds)
        assert {str(fd) for fd in kept} == {"A -> B", "B -> C"}

    def test_input_order_does_not_matter(self, schema):
        fds = [
            parse_fd(schema, "A -> C"),
            parse_fd(schema, "B -> C"),
            parse_fd(schema, "A -> B"),
        ]
        assert remove_redundant(fds) == remove_redundant(list(reversed(fds)))

    def test_deduplicates(self, schema):
        fds = [parse_fd(schema, "A -> B"), parse_fd(schema, "A -> B")]
        assert len(remove_redundant(fds)) == 1


class TestMinimalCover:
    def test_is_minimal_and_equivalent(self, schema):
        fds = [
            parse_fd(schema, "A -> B"),
            parse_fd(schema, "AB -> C"),
            parse_fd(schema, "A -> C"),
            parse_fd(schema, "BC -> D"),
        ]
        cover = minimal_cover(fds)
        assert equivalent_covers(cover, fds)
        assert is_minimal_cover(cover)

    def test_empty_input(self):
        assert minimal_cover([]) == []

    def test_depminer_output_is_left_reduced_cover(self, paper_relation):
        """The paper states {X -> A : X in lhs(dep(r), A)} is a *cover*
        of dep(r): every lhs is minimal (left-reduced w.r.t. the
        relation), but individual FDs may still be implied by the rest,
        so it need not be a non-redundant canonical cover."""
        fds = discover_fds(paper_relation)
        assert left_reduce(fds) == fds  # already left-reduced
        cover = minimal_cover(fds)
        assert equivalent_covers(cover, fds)
        assert is_minimal_cover(cover, of=fds)


class TestIsMinimalCover:
    def test_detects_redundancy(self, schema):
        fds = [
            parse_fd(schema, "A -> B"),
            parse_fd(schema, "B -> C"),
            parse_fd(schema, "A -> C"),
        ]
        assert not is_minimal_cover(fds)

    def test_detects_non_reduced_lhs(self, schema):
        fds = [parse_fd(schema, "A -> B"), parse_fd(schema, "AB -> C")]
        assert not is_minimal_cover(fds)

    def test_checks_equivalence_with_reference(self, schema):
        cover = [parse_fd(schema, "A -> B")]
        reference = [parse_fd(schema, "A -> B"), parse_fd(schema, "B -> C")]
        assert not is_minimal_cover(cover, of=reference)
        assert is_minimal_cover(
            minimal_cover(reference), of=reference
        )

    def test_detects_duplicates(self, schema):
        fds = [parse_fd(schema, "A -> B"), parse_fd(schema, "A -> B")]
        assert not is_minimal_cover(fds)
