"""Unit tests for evidence-based FD ranking."""

from __future__ import annotations

import pytest

from repro.core.attributes import Schema
from repro.core.depminer import discover_fds
from repro.core.ranking import fd_evidence, rank_fds, witness_pairs
from repro.core.relation import Relation
from repro.fd.fd import parse_fd
from repro.partitions.partition import stripped_partition_of_column


class TestWitnessPairs:
    def test_counts_pairs_within_classes(self):
        partition = stripped_partition_of_column([1, 1, 1, 2, 2, 3])
        # {0,1,2} -> 3 pairs, {3,4} -> 1 pair.
        assert witness_pairs(partition) == 4

    def test_empty_partition(self):
        assert witness_pairs(stripped_partition_of_column([1, 2, 3])) == 0


class TestFdEvidence:
    @pytest.fixture
    def relation(self):
        schema = Schema.of_width(3)
        # A is a key (so A -> * is vacuous); B -> C has real support.
        return Relation.from_rows(
            schema,
            [(1, "x", 0), (2, "x", 0), (3, "y", 1), (4, "y", 1),
             (5, "y", 1)],
        )

    def test_vacuous_fd_detected(self, relation):
        schema = relation.schema
        evidence = fd_evidence(relation, [parse_fd(schema, "A -> B")])
        assert evidence[0].is_vacuous
        assert "VACUOUS" in evidence[0].render()

    def test_supported_fd_counts_pairs(self, relation):
        schema = relation.schema
        evidence = fd_evidence(relation, [parse_fd(schema, "B -> C")])
        # B groups: {x: 2 rows} -> 1 pair, {y: 3 rows} -> 3 pairs.
        assert evidence[0].witness_pairs == 4
        assert evidence[0].witness_fraction == pytest.approx(4 / 10)
        assert not evidence[0].is_vacuous

    def test_empty_lhs_counts_all_pairs(self, relation):
        schema = relation.schema
        evidence = fd_evidence(relation, [parse_fd(schema, "∅ -> A")])
        assert evidence[0].witness_pairs == 10  # C(5,2)

    def test_compound_lhs_uses_partition_product(self, relation):
        schema = relation.schema
        evidence = fd_evidence(relation, [parse_fd(schema, "BC -> A")])
        # (B, C) groups equal B's groups here.
        assert evidence[0].witness_pairs == 4

    def test_witness_count_matches_naive_pair_count(self, paper_relation):
        """Cross-check against direct pair enumeration."""
        fds = discover_fds(paper_relation)
        schema = paper_relation.schema
        for evidence in fd_evidence(paper_relation, fds):
            direct = sum(
                1
                for i in range(len(paper_relation))
                for j in range(i + 1, len(paper_relation))
                if paper_relation.tuples_agree(i, j, evidence.fd.lhs)
            )
            assert evidence.witness_pairs == direct, str(evidence.fd)


class TestRankFds:
    def test_strongest_first_vacuous_last(self, paper_relation):
        fds = discover_fds(paper_relation)
        ranked = rank_fds(paper_relation, fds)
        counts = [e.witness_pairs for e in ranked]
        assert counts == sorted(counts, reverse=True)
        assert len(ranked) == len(fds)

    def test_accidental_fd_ranks_below_genuine_one(self):
        schema = Schema.of_width(3)
        # C -> B is heavily exercised; A is unique so A -> B is vacuous.
        relation = Relation.from_rows(
            schema,
            [(i, i % 2, i % 2) for i in range(10)],
        )
        fds = discover_fds(relation)
        ranked = rank_fds(relation, fds)
        by_fd = {str(e.fd): e for e in ranked}
        assert by_fd["C -> B"].witness_pairs > 0
        assert by_fd["A -> B"].is_vacuous
        assert ranked.index(by_fd["C -> B"]) < ranked.index(by_fd["A -> B"])
