"""The content-addressed artifact cache and the incremental delta path.

Four layers of coverage:

- the binary codec: round-trips, determinism, and rejection of every
  corruption mode (truncation, bit flips, foreign magic/version/kind);
- the store: tier behaviour (memory LRU, disk promotion, eviction),
  corruption-safe load-or-recompute, and the fingerprint-collision
  guard;
- the relation fingerprint: row-permutation invariance, incremental
  update equivalence, and sensitivity to everything that must
  invalidate (values, alignment, schema names, null semantics);
- the differential properties: a cached ``DepMiner.run`` is
  extensionally identical to an uncached one, and ``IncrementalMiner``
  over *any* append sequence equals a cold run on the concatenated
  relation, for every agree algorithm at ``jobs`` 1 and 2.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import (
    ArtifactStore,
    IncrementalMiner,
    PipelineKeys,
    RelationFingerprint,
    fingerprint_relation,
    guard_digest,
    stage_key,
)
from repro.cache.codec import (
    CacheCodecError,
    decode_artifact,
    decode_value,
    encode_artifact,
    encode_value,
)
from repro.core.attributes import Schema
from repro.core.depminer import DepMiner
from repro.core.relation import Relation
from repro.errors import CacheError, ReproError
from repro.obs import MetricsRegistry


def fd_tuples(result):
    return sorted((fd.lhs.mask, fd.rhs_index) for fd in result.fds)


def assert_same_mining(left, right):
    """The artefacts the cache must preserve exactly."""
    assert left.agree_sets == right.agree_sets
    assert left.max_sets == right.max_sets
    assert left.cmax_sets == right.cmax_sets
    assert left.lhs_sets == right.lhs_sets
    assert fd_tuples(left) == fd_tuples(right)


# ---------------------------------------------------------------------------
# codec


class TestCodec:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, 1, -1, 2 ** 200, -(2 ** 200), 3.25, "",
        "héllo", b"\x00\xff", [], [1, [2, "x"]], (1, 2), set(), {1, 2, 3},
        {"a": 1, "b": [True, None]}, {1: "x", "y": 2},
        {"classes": [[0, 1], [2, 5]], "agree": {0b101, 0b011}},
    ])
    def test_round_trip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_round_trip_preserves_container_types(self):
        assert decode_value(encode_value((1, 2))) == (1, 2)
        assert isinstance(decode_value(encode_value((1, 2))), tuple)
        assert isinstance(decode_value(encode_value([1, 2])), list)
        assert isinstance(decode_value(encode_value({1, 2})), set)

    def test_deterministic_bytes(self):
        # Sets and dicts encode sorted, so equal values → equal bytes.
        assert encode_value({3, 1, 2}) == encode_value({2, 3, 1})
        assert encode_value({"b": 1, "a": 2}) == encode_value({"a": 2, "b": 1})

    def test_rejects_unrepresentable(self):
        with pytest.raises(CacheCodecError):
            encode_value(object())

    def test_rejects_trailing_bytes(self):
        with pytest.raises(CacheCodecError):
            decode_value(encode_value(1) + b"\x00")

    def test_artifact_round_trip(self):
        guard = guard_digest(("a", "b"), 10)
        data = encode_artifact("agree", guard, {"agree": {1, 2}})
        assert decode_artifact(data, "agree", guard) == {"agree": {1, 2}}

    @pytest.mark.parametrize("mutate", [
        lambda data: data[:-1],                      # truncated
        lambda data: data[: len(data) // 2],         # heavily truncated
        lambda data: b"NOTMAGIC" + data[8:],         # foreign magic
        lambda data: data[:8] + b"\xff\xff" + data[10:],  # future version
        lambda data: data[:-5] + bytes([data[-5] ^ 0xFF]) + data[-4:],
        lambda data: b"",                            # empty file
    ])
    def test_corruption_raises(self, mutate):
        guard = guard_digest(("a",), 3)
        data = encode_artifact("cover", guard, [1, 2, 3])
        with pytest.raises(CacheCodecError):
            decode_artifact(mutate(data), "cover", guard)

    def test_payload_bitflip_fails_checksum(self):
        guard = guard_digest(("a",), 3)
        data = bytearray(encode_artifact("cover", guard, [7, 8, 9]))
        data[-20] ^= 0x01  # inside the payload, before the checksum
        with pytest.raises(CacheCodecError):
            decode_artifact(bytes(data), "cover", guard)

    def test_kind_mismatch_raises(self):
        guard = guard_digest(("a",), 3)
        data = encode_artifact("agree", guard, [1])
        with pytest.raises(CacheCodecError, match="kind mismatch"):
            decode_artifact(data, "cover", guard)

    def test_guard_mismatch_raises(self):
        data = encode_artifact("agree", guard_digest(("a",), 3), [1])
        with pytest.raises(CacheCodecError, match="guard mismatch"):
            decode_artifact(data, "agree", guard_digest(("a",), 4))


# ---------------------------------------------------------------------------
# store


class TestArtifactStore:
    def test_memory_round_trip_and_counters(self):
        store = ArtifactStore()
        guard = guard_digest(("a",), 2)
        assert store.get("agree", "k1", guard) is None
        store.put("agree", "k1", guard, {"agree": {1}})
        assert store.get("agree", "k1", guard) == {"agree": {1}}
        assert store.stats["cache.miss"] == 1
        assert store.stats["cache.memory_hit"] == 1
        assert store.stats["cache.put"] == 1

    def test_metrics_registry_mirrors_counters(self):
        store = ArtifactStore()
        metrics = MetricsRegistry()
        guard = guard_digest(("a",), 2)
        store.get("agree", "k", guard, metrics=metrics)
        store.put("agree", "k", guard, [1], metrics=metrics)
        store.get("agree", "k", guard, metrics=metrics)
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["cache.miss"] == 1
        assert snapshot["counters"]["cache.hit"] == 1
        assert snapshot["counters"]["cache.put"] == 1

    def test_lru_eviction(self):
        store = ArtifactStore(max_memory_entries=2)
        guard = guard_digest(("a",), 2)
        store.put("agree", "k1", guard, [1])
        store.put("agree", "k2", guard, [2])
        store.get("agree", "k1", guard)      # k1 becomes most recent
        store.put("agree", "k3", guard, [3])  # evicts k2
        assert store.get("agree", "k2", guard) is None
        assert store.get("agree", "k1", guard) == [1]
        assert store.get("agree", "k3", guard) == [3]
        assert store.stats["cache.evict"] == 1

    def test_disk_tier_survives_new_store(self, tmp_path):
        guard = guard_digest(("a", "b"), 5)
        ArtifactStore(cache_dir=tmp_path).put("cover", "kk", guard, {"x": 1})
        fresh = ArtifactStore(cache_dir=tmp_path)
        assert fresh.get("cover", "kk", guard) == {"x": 1}
        assert fresh.stats["cache.disk_hit"] == 1
        # The payload was promoted into memory: second hit skips disk.
        assert fresh.get("cover", "kk", guard) == {"x": 1}
        assert fresh.stats["cache.disk_hit"] == 1
        assert fresh.stats["cache.memory_hit"] == 1

    def test_corrupted_disk_entry_is_a_miss_and_deleted(self, tmp_path):
        guard = guard_digest(("a",), 2)
        store = ArtifactStore(cache_dir=tmp_path)
        store.put("agree", "kk", guard, [1, 2])
        (path,) = tmp_path.glob("*.rpc")
        path.write_bytes(path.read_bytes()[:-7])  # truncate
        fresh = ArtifactStore(cache_dir=tmp_path)
        assert fresh.get("agree", "kk", guard) is None
        assert fresh.stats["cache.disk_corrupt"] == 1
        assert not path.exists()

    def test_garbage_disk_file_is_a_miss(self, tmp_path):
        guard = guard_digest(("a",), 2)
        (tmp_path / "agree-kk.rpc").write_bytes(b"not an artefact at all")
        store = ArtifactStore(cache_dir=tmp_path)
        assert store.get("agree", "kk", guard) is None
        assert store.stats["cache.disk_corrupt"] == 1

    def test_collision_guard_memory_tier(self):
        # Same (kind, key) but a different relation shape: the guard
        # refuses to surface the foreign artefact.
        store = ArtifactStore()
        store.put("agree", "same-key", guard_digest(("a", "b"), 10), [1])
        other = guard_digest(("a", "b"), 11)
        assert store.get("agree", "same-key", other) is None
        assert store.stats["cache.guard_reject"] == 1

    def test_collision_guard_disk_tier(self, tmp_path):
        store = ArtifactStore(cache_dir=tmp_path)
        store.put("agree", "same-key", guard_digest(("a",), 10), [1])
        fresh = ArtifactStore(cache_dir=tmp_path)
        assert fresh.get("agree", "same-key", guard_digest(("b",), 10)) is None
        assert fresh.stats["cache.guard_reject"] == 1

    def test_invalidate_and_clear(self, tmp_path):
        guard = guard_digest(("a",), 2)
        store = ArtifactStore(cache_dir=tmp_path)
        store.put("agree", "k1", guard, [1])
        store.put("cover", "k2", guard, [2])
        store.invalidate("agree", "k1")
        assert store.get("agree", "k1", guard) is None
        assert store.get("cover", "k2", guard) == [2]
        store.clear()
        assert store.get("cover", "k2", guard) is None
        assert not list(tmp_path.glob("*.rpc"))

    def test_negative_capacity_rejected(self):
        with pytest.raises(CacheError):
            ArtifactStore(max_memory_entries=-1)

    def test_memory_only_put_validates_payload(self):
        store = ArtifactStore()
        with pytest.raises(CacheCodecError):
            store.put("agree", "k", guard_digest(("a",), 1), object())


# ---------------------------------------------------------------------------
# fingerprint


class TestFingerprint:
    def relation(self, rows, names=("a", "b", "c")):
        return Relation.from_rows(Schema(list(names)), rows)

    def test_row_permutation_invariance(self):
        rows = [(1, 2, 3), (4, 5, 6), (1, 5, 3), (7, 7, 7)]
        key = fingerprint_relation(self.relation(rows))
        assert fingerprint_relation(self.relation(rows[::-1])) == key
        assert fingerprint_relation(
            self.relation([rows[2], rows[0], rows[3], rows[1]])
        ) == key

    def test_multiplicity_matters(self):
        once = self.relation([(1, 2, 3), (4, 5, 6)])
        twice = self.relation([(1, 2, 3), (1, 2, 3), (4, 5, 6)])
        assert fingerprint_relation(once) != fingerprint_relation(twice)

    def test_column_alignment_matters(self):
        # Same column multisets, different row alignment → different FDs
        # → must be a different key.
        left = self.relation([(1, 10, 0), (2, 20, 0)])
        right = self.relation([(1, 20, 0), (2, 10, 0)])
        assert fingerprint_relation(left) != fingerprint_relation(right)

    def test_schema_names_matter(self):
        rows = [(1, 2, 3)]
        assert fingerprint_relation(self.relation(rows)) != \
            fingerprint_relation(self.relation(rows, names=("x", "y", "z")))

    def test_value_types_matter(self):
        assert fingerprint_relation(self.relation([(1, 2, 3)])) != \
            fingerprint_relation(self.relation([("1", 2, 3)]))

    def test_null_semantics_matter(self):
        relation = self.relation([(1, None, 3)])
        assert fingerprint_relation(relation, nulls_equal=True) != \
            fingerprint_relation(relation, nulls_equal=False)

    def test_incremental_equals_batch(self):
        schema = Schema(["a", "b"])
        rows = [(i % 3, i % 2) for i in range(10)]
        batch = RelationFingerprint(schema)
        batch.update_rows(rows)
        piecewise = RelationFingerprint(schema)
        piecewise.update_rows(rows[:4])
        piecewise.update_rows(rows[4:7])
        piecewise.update_rows(rows[7:])
        assert batch.key == piecewise.key
        assert batch.num_rows == piecewise.num_rows == 10

    def test_copy_is_independent(self):
        schema = Schema(["a"])
        fingerprint = RelationFingerprint(schema)
        fingerprint.update_rows([(1,)])
        clone = fingerprint.copy()
        clone.update_rows([(2,)])
        assert clone.key != fingerprint.key

    def test_arity_checked(self):
        fingerprint = RelationFingerprint(Schema(["a", "b"]))
        with pytest.raises(ValueError):
            fingerprint.update_rows([(1,)])

    def test_codes_path_no_numpy_needed(self):
        # fingerprint_from_codes is pure Python: plain list codes work.
        from repro.cache.fingerprint import fingerprint_from_codes

        schema = Schema(["a", "b"])
        relation = self.relation([(1, "x"), (2, "x"), (1, "y")],
                                 names=("a", "b"))
        codes = [[0, 1, 0], [0, 0, 1]]
        uniques = [[1, 2], ["x", "y"]]
        assert fingerprint_from_codes(codes, uniques, schema) == \
            fingerprint_relation(relation)

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_fingerprint_from_codes_equals_row_fingerprint(self, data):
        """The satellite property: hashing through a factorized
        (codes, uniques) view equals the row-level fingerprint, and
        stays row-permutation invariant, under both null semantics."""
        from repro.cache.fingerprint import fingerprint_from_codes

        width = data.draw(st.integers(1, 4), label="width")
        num_rows = data.draw(st.integers(0, 12), label="rows")
        value_pool = [None, "x", "y", "01", "1", 1, 2, 1.5, ""]
        rows = data.draw(
            st.lists(
                st.tuples(*[st.sampled_from(value_pool)] * width),
                min_size=num_rows, max_size=num_rows,
            ),
            label="rows_data",
        )
        nulls_equal = data.draw(st.booleans(), label="nulls_equal")
        schema = Schema.of_width(width)
        relation = Relation.from_rows(schema, rows)
        codes, uniques = [], []
        for attribute in range(width):
            encoder, column_codes, column_uniques = {}, [], []
            for value in relation.column(attribute):
                if value is None and not nulls_equal:
                    code = len(column_uniques)  # fresh per null cell
                    column_uniques.append(None)
                else:
                    code = encoder.get(value)
                    if code is None:
                        code = len(column_uniques)
                        encoder[value] = code
                        column_uniques.append(value)
                column_codes.append(code)
            codes.append(column_codes)
            uniques.append(column_uniques)
        expected = fingerprint_relation(relation, nulls_equal)
        assert fingerprint_from_codes(
            codes, uniques, schema, nulls_equal=nulls_equal
        ) == expected
        # Row-permutation invariance carries over to the codes path.
        permutation = data.draw(
            st.permutations(range(num_rows)), label="perm"
        )
        shuffled = [
            [column[row] for row in permutation] for column in codes
        ]
        assert fingerprint_from_codes(
            shuffled, uniques, schema, nulls_equal=nulls_equal
        ) == expected

    def test_stage_keys_depend_on_config(self):
        key = "deadbeef" * 4
        assert stage_key(key, "agree", algorithm="couples") != \
            stage_key(key, "agree", algorithm="identifiers")
        assert stage_key(key, "agree", algorithm="couples") != \
            stage_key(key, "cover", algorithm="couples")
        # keyword order never matters
        assert stage_key(key, "agree", a=1, b=2) == stage_key(key, "agree",
                                                              b=2, a=1)

    def test_pipeline_keys_for_miner(self):
        key = "deadbeef" * 4
        couples = PipelineKeys.for_miner(key, DepMiner())
        identifiers = PipelineKeys.for_miner(
            key, DepMiner(agree_algorithm="identifiers")
        )
        assert couples.partitions == identifiers.partitions
        assert couples.agree != identifiers.agree
        assert couples.cover != identifiers.cover


# ---------------------------------------------------------------------------
# cached DepMiner runs


class TestCachedDepMiner:
    def rows(self, seed, count, width=5, values=4):
        import random

        rng = random.Random(seed)
        return [
            tuple(rng.randrange(values) for _ in range(width))
            for _ in range(count)
        ]

    def test_cold_warm_uncached_identical(self, tmp_path):
        schema = Schema.of_width(5)
        relation = Relation.from_rows(schema, self.rows(0, 40))
        plain = DepMiner(build_armstrong="none").run(relation)
        store = ArtifactStore(cache_dir=tmp_path)
        miner = DepMiner(build_armstrong="none", cache=store)
        cold = miner.run(relation)
        warm = miner.run(relation)
        assert_same_mining(plain, cold)
        assert_same_mining(plain, warm)
        assert store.stats["cache.hit"] == 1        # the cover bundle
        assert store.stats["cache.put"] == 3        # partitions/agree/cover

    def test_full_hit_counter_emitted(self):
        relation = Relation.from_rows(Schema.of_width(4), self.rows(1, 30, width=4))
        store = ArtifactStore()
        metrics = MetricsRegistry()
        miner = DepMiner(build_armstrong="none", cache=store,
                         metrics=metrics)
        miner.run(relation)
        assert "cache.full_hit" not in metrics.snapshot()["counters"]
        miner.run(relation)
        assert metrics.snapshot()["counters"]["cache.full_hit"] == 1

    def test_row_permutation_is_a_full_hit(self, tmp_path):
        rows = self.rows(2, 35)
        schema = Schema.of_width(5)
        store = ArtifactStore(cache_dir=tmp_path)
        first = DepMiner(build_armstrong="none", cache=store).run(
            Relation.from_rows(schema, rows)
        )
        shuffled = DepMiner(build_armstrong="none", cache=store).run(
            Relation.from_rows(schema, rows[::-1])
        )
        assert_same_mining(first, shuffled)
        assert store.stats["cache.hit"] == 1

    def test_agree_tier_reused_across_transversal_methods(self):
        relation = Relation.from_rows(Schema.of_width(4), self.rows(3, 30, width=4))
        store = ArtifactStore()
        DepMiner(build_armstrong="none", cache=store).run(relation)
        berge = DepMiner(build_armstrong="none", cache=store,
                         transversal_method="berge")
        result = berge.run(relation)
        # cover key differs (method folded in) but ag(r) is shared.
        plain = DepMiner(build_armstrong="none",
                         transversal_method="berge").run(relation)
        assert_same_mining(plain, result)
        assert store.stats["cache.hit"] == 1   # the shared ag(r)
        assert store.stats["cache.miss"] == 4  # 3 cold + berge's cover

    def test_armstrong_rebuilt_on_full_hit(self):
        relation = Relation.from_rows(Schema.of_width(4), self.rows(4, 25, width=4))
        store = ArtifactStore()
        miner = DepMiner(cache=store)
        first = miner.run(relation)
        second = miner.run(relation)
        assert (first.armstrong is None) == (second.armstrong is None)
        if first.armstrong is not None:
            assert first.armstrong_size == second.armstrong_size
        assert_same_mining(first, second)

    def test_corrupted_cache_recomputes_correctly(self, tmp_path):
        relation = Relation.from_rows(Schema.of_width(5), self.rows(5, 40))
        plain = DepMiner(build_armstrong="none").run(relation)
        store = ArtifactStore(cache_dir=tmp_path)
        DepMiner(build_armstrong="none", cache=store).run(relation)
        for path in tmp_path.glob("*.rpc"):
            data = bytearray(path.read_bytes())
            data[len(data) // 2] ^= 0xFF
            path.write_bytes(bytes(data))
        fresh = ArtifactStore(cache_dir=tmp_path)
        result = DepMiner(build_armstrong="none", cache=fresh).run(relation)
        assert_same_mining(plain, result)
        assert fresh.stats["cache.disk_corrupt"] >= 1
        assert fresh.stats["cache.hit"] == 0

    def test_run_on_partitions_never_consults_cache(self):
        from repro.partitions.database import StrippedPartitionDatabase

        relation = Relation.from_rows(Schema.of_width(4), self.rows(6, 20, width=4))
        store = ArtifactStore()
        miner = DepMiner(build_armstrong="none", cache=store)
        spdb = StrippedPartitionDatabase.from_relation(relation)
        miner.run_on_partitions(spdb, relation=relation)
        assert store.stats["cache.hit"] == store.stats["cache.miss"] == 0


# ---------------------------------------------------------------------------
# incremental mining


MINER_CONFIGS = [
    pytest.param("couples", 1, id="couples-serial"),
    pytest.param("identifiers", 1, id="identifiers-serial"),
    pytest.param("vectorized", 1, id="vectorized-serial"),
    pytest.param("couples", 2, id="couples-sharded"),
    pytest.param("identifiers", 2, id="identifiers-sharded"),
    pytest.param("vectorized", 2, id="vectorized-sharded"),
]

small_rows = st.lists(
    st.tuples(*[st.integers(min_value=0, max_value=2)] * 4),
    min_size=0, max_size=10,
)


class TestIncrementalMiner:
    @pytest.mark.parametrize("algorithm,jobs", MINER_CONFIGS)
    @settings(max_examples=12, deadline=None)
    @given(base=small_rows, batches=st.lists(small_rows, min_size=1,
                                             max_size=3), data=st.data())
    def test_append_equals_cold_run(self, algorithm, jobs, base, batches,
                                    data):
        schema = Schema.of_width(4)
        incremental = IncrementalMiner(
            Relation.from_rows(schema, base), build_armstrong="none",
            agree_algorithm=algorithm, jobs=jobs,
        )
        rows = list(base)
        for batch in batches:
            result = incremental.append(batch)
            rows += batch
            cold = DepMiner(
                build_armstrong="none", agree_algorithm=algorithm,
            ).run(Relation.from_rows(schema, rows))
            assert_same_mining(cold, result)
            assert incremental.num_rows == len(rows)

    @settings(max_examples=10, deadline=None)
    @given(base=small_rows, batch=small_rows)
    def test_append_with_nulls_sql_semantics(self, base, batch):
        # Mix in None values and run under NULL <> NULL semantics.
        def with_nulls(rows):
            return [
                tuple(None if v == 2 else v for v in row) for row in rows
            ]

        schema = Schema.of_width(4)
        base, batch = with_nulls(base), with_nulls(batch)
        incremental = IncrementalMiner(
            Relation.from_rows(schema, base), build_armstrong="none",
            nulls_equal=False,
        )
        result = incremental.append(batch)
        cold = DepMiner(build_armstrong="none", nulls_equal=False).run(
            Relation.from_rows(schema, base + batch)
        )
        assert_same_mining(cold, result)

    def test_empty_append_is_a_no_op(self):
        relation = Relation.from_rows(
            Schema.of_width(3), [(0, 1, 2), (0, 1, 0)]
        )
        incremental = IncrementalMiner(relation, build_armstrong="none")
        before = incremental.result
        assert incremental.append([]) is before

    def test_bad_arity_rejected(self):
        incremental = IncrementalMiner(
            Relation.from_rows(Schema.of_width(3), [(0, 1, 2)]),
            build_armstrong="none",
        )
        with pytest.raises(ReproError):
            incremental.append([(1, 2)])

    def test_miner_and_options_are_exclusive(self):
        relation = Relation.from_rows(Schema.of_width(2), [(0, 1)])
        with pytest.raises(ReproError):
            IncrementalMiner(relation, miner=DepMiner(), jobs=2)

    def test_delta_couples_metric(self):
        metrics = MetricsRegistry()
        relation = Relation.from_rows(
            Schema.of_width(3), [(0, 1, 2), (0, 1, 0), (1, 0, 2)]
        )
        incremental = IncrementalMiner(
            relation, build_armstrong="none", metrics=metrics
        )
        incremental.append([(0, 0, 0)])
        counters = metrics.snapshot()["counters"]
        assert counters["incremental.rows_appended"] == 1
        assert "incremental.delta_couples" in counters

    def test_appends_publish_for_future_cold_runs(self, tmp_path):
        store = ArtifactStore(cache_dir=tmp_path)
        base = [(0, 1, 2), (0, 1, 0), (1, 2, 2)]
        extra = [(2, 2, 2), (0, 1, 2)]
        schema = Schema.of_width(3)
        incremental = IncrementalMiner(
            Relation.from_rows(schema, base),
            miner=DepMiner(build_armstrong="none", cache=store),
        )
        result = incremental.append(extra)
        fresh = ArtifactStore(cache_dir=tmp_path)
        cold = DepMiner(build_armstrong="none", cache=fresh).run(
            Relation.from_rows(schema, base + extra)
        )
        assert_same_mining(cold, result)
        assert fresh.stats["cache.hit"] == 1
        assert fresh.stats["cache.miss"] == 0

    def test_armstrong_built_from_grown_relation(self):
        schema = Schema.of_width(3)
        incremental = IncrementalMiner(
            Relation.from_rows(schema, [(0, 1, 2), (1, 1, 2)])
        )
        result = incremental.append([(0, 2, 0), (2, 0, 1)])
        cold = DepMiner().run(
            Relation.from_rows(
                schema, [(0, 1, 2), (1, 1, 2), (0, 2, 0), (2, 0, 1)]
            )
        )
        assert_same_mining(cold, result)
        assert (result.armstrong is None) == (cold.armstrong is None)
