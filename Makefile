# Dep-Miner reproduction — convenience targets.

PYTHON ?= python

.PHONY: install test test-parallel bench bench-cache bench-transversal \
	bench-columnar bench-ingest bench-serve bench-parallel bench-regress \
	cache-smoke trace-smoke transversal-smoke faults-smoke \
	telemetry-smoke serve-smoke experiments experiments-paper examples \
	clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# The sharded execution layer: equivalence suites plus a traced
# --jobs 2 discover run whose worker spans are schema-validated.
test-parallel:
	$(PYTHON) -m pytest tests/test_parallel.py \
		tests/test_differential_miners.py tests/test_properties.py
	mkdir -p .trace-parallel
	$(PYTHON) -m repro generate -a 6 -t 500 -c 0.3 --seed 0 \
		-o .trace-parallel/data.csv
	$(PYTHON) -m repro discover .trace-parallel/data.csv --jobs 2 \
		--trace .trace-parallel/discover.jsonl --metrics > /dev/null
	$(PYTHON) scripts/check_trace.py .trace-parallel/discover.jsonl

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# The artifact-cache speedup guard: asserts the warm-hit and incremental
# floors, then records the cold/warm/incremental timings.
bench-cache:
	$(PYTHON) -m pytest benchmarks/bench_cache.py -q
	$(PYTHON) benchmarks/bench_cache.py BENCH_cache.json

# The transversal-kernel speedup guard: asserts the >= 3x kernel and
# vectorized floors on the wide-schema workload (with identical
# transversal families and FD covers), then records the timings.
bench-transversal:
	$(PYTHON) -m pytest benchmarks/bench_transversal_kernel.py -q
	$(PYTHON) benchmarks/bench_transversal_kernel.py BENCH_transversal.json

# The columnar-backend speedup guard: asserts the >= 5x whole-pipeline
# floor over the pure-Python path (with bit-identical FD covers across
# the backend x jobs conformance grid), then records the timings.
bench-columnar:
	$(PYTHON) -m pytest benchmarks/bench_columnar.py -q
	$(PYTHON) benchmarks/bench_columnar.py BENCH_columnar.json

# The streaming-ingest speedup guard: asserts the >= 3x end-to-end
# CSV -> cover floor over the materializing relation_from_csv path
# (with bit-identical covers and Armstrong relations across the
# ingest-path x backend x jobs grid, and warm-cache replays served
# without building the Relation), then records the timings.
bench-ingest:
	$(PYTHON) -m pytest benchmarks/bench_ingest.py -q
	$(PYTHON) benchmarks/bench_ingest.py BENCH_ingest.json

# The discovery-daemon speedup guard: asserts a warm session answers a
# cover query >= 20x faster than a cold one-shot process (and >= 2x an
# in-process cold mine), with the served cover bit-identical to
# DepMiner.run, then records the timings.
bench-serve:
	$(PYTHON) -m pytest benchmarks/bench_serve.py -q
	$(PYTHON) benchmarks/bench_serve.py BENCH_serve.json

# The persistent-pool dispatch guard: asserts a warm persistent-pool +
# shm request answers >= 3x faster than the per-call pool (and shm
# context dispatch >= 1.5x faster than pickled context), with covers
# bit-identical across dispatch modes, then records the timings.
bench-parallel:
	$(PYTHON) -m pytest benchmarks/bench_parallel_scaling.py -q
	$(PYTHON) benchmarks/bench_parallel_scaling.py BENCH_parallel.json

# End-to-end kernel smoke: mine the reduction fixture (duplicated
# columns + a near-duplicate row pair) with --transversal kernel and
# assert the reduce spans and reduction counters in the trace.
transversal-smoke:
	mkdir -p .transversal-smoke
	$(PYTHON) -m repro discover scripts/fixtures/transversal_smoke.csv \
		--transversal kernel \
		--trace .transversal-smoke/discover.jsonl > /dev/null
	$(PYTHON) scripts/check_transversal.py \
		.transversal-smoke/discover.jsonl
	$(PYTHON) scripts/check_trace.py .transversal-smoke/discover.jsonl

# End-to-end cache smoke: mine with --cache-dir (cold), rerun (warm full
# hit), append rows (incremental), then assert the cache counters in the
# three traces and schema-validate them.
cache-smoke:
	mkdir -p .cache-smoke
	$(PYTHON) -m repro generate -a 6 -t 400 -c 0.5 --seed 0 \
		-o .cache-smoke/data.csv
	$(PYTHON) -m repro generate -a 6 -t 8 -c 0.5 --seed 1 \
		-o .cache-smoke/extra.csv
	$(PYTHON) -m repro discover .cache-smoke/data.csv \
		--cache-dir .cache-smoke/store \
		--trace .cache-smoke/cold.jsonl > /dev/null
	$(PYTHON) -m repro discover .cache-smoke/data.csv \
		--cache-dir .cache-smoke/store \
		--trace .cache-smoke/warm.jsonl > /dev/null
	$(PYTHON) -m repro discover .cache-smoke/data.csv \
		--cache-dir .cache-smoke/store --append .cache-smoke/extra.csv \
		--trace .cache-smoke/append.jsonl > /dev/null
	$(PYTHON) scripts/check_cache.py .cache-smoke/cold.jsonl \
		.cache-smoke/warm.jsonl .cache-smoke/append.jsonl
	$(PYTHON) scripts/check_trace.py .cache-smoke/cold.jsonl \
		.cache-smoke/warm.jsonl .cache-smoke/append.jsonl

# End-to-end service smoke: boot a real `repro serve` process on an
# ephemeral port, drive register -> append -> cover/keys/armstrong over
# HTTP (cover checked against a cold in-process run), assert the warm
# repeat-registration cache hit, the typed 404 error document and the
# per-request manifests, then shut down gracefully.
serve-smoke:
	$(PYTHON) scripts/check_serve.py
	$(PYTHON) scripts/check_serve.py --backend columnar

# The noise-aware perf-regression gate: re-runs the obs / cache /
# transversal / columnar / ingest / serve bench suites against the
# committed BENCH_*.json baselines
# (speedup ratios, overhead budgets, per-phase fractions) and drops one
# RunManifest per suite into results/telemetry/.  Fails with REGRESSED
# lines naming the phase or ratio that moved.
bench-regress:
	$(PYTHON) scripts/check_regression.py

# End-to-end telemetry smoke: one --telemetry discover run (manifest +
# trace), then exercise every `repro trace` subcommand on the outputs
# and validate both artifacts.
telemetry-smoke:
	mkdir -p .telemetry-smoke results/telemetry
	$(PYTHON) -m repro generate -a 6 -t 300 -c 0.4 --seed 0 \
		-o .telemetry-smoke/data.csv
	$(PYTHON) -m repro discover .telemetry-smoke/data.csv \
		--telemetry results/telemetry/smoke.json \
		--trace .telemetry-smoke/discover.jsonl --metrics > /dev/null
	$(PYTHON) -m repro trace summary results/telemetry/smoke.json
	$(PYTHON) -m repro trace critical-path .telemetry-smoke/discover.jsonl
	$(PYTHON) -m repro trace diff .telemetry-smoke/discover.jsonl \
		results/telemetry/smoke.json > /dev/null
	$(PYTHON) -m repro trace export-chrome results/telemetry/smoke.json \
		-o .telemetry-smoke/chrome-trace.json
	$(PYTHON) scripts/check_trace.py .telemetry-smoke/discover.jsonl
	$(PYTHON) -c "import json, sys; \
		sys.path.insert(0, 'src'); \
		from repro.obs import validate_manifest; \
		problems = validate_manifest(json.load(open( \
			'results/telemetry/smoke.json'))); \
		sys.exit('\n'.join(problems) if problems else 0)"

# End-to-end observability smoke: trace a discover run and a tiny bench
# grid, then validate both JSONL files against the repro-trace schema.
trace-smoke:
	mkdir -p .trace-smoke
	$(PYTHON) -m repro generate -a 5 -t 200 -c 0.3 --seed 0 \
		-o .trace-smoke/data.csv
	$(PYTHON) -m repro discover .trace-smoke/data.csv \
		--trace .trace-smoke/discover.jsonl --metrics > /dev/null
	$(PYTHON) -m repro bench -e table3 --scale tiny --quiet \
		--algorithms depminer tane \
		--trace .trace-smoke/bench.jsonl > /dev/null
	$(PYTHON) scripts/check_trace.py .trace-smoke/discover.jsonl \
		.trace-smoke/bench.jsonl

# End-to-end reliability smoke: mine once fault-free, then once under
# the canned chaos plan (every pool shard attempt dies, every disk
# publish fails) and assert (a) the covers are byte-identical and (b)
# the degradation/quarantine counters prove the recovery paths ran.
# Separate cache dirs keep the faulty run from dodging the disk tier
# via a warm full hit.
faults-smoke:
	mkdir -p .faults-smoke
	$(PYTHON) -m repro generate -a 6 -t 300 -c 0.4 --seed 0 \
		-o .faults-smoke/data.csv
	$(PYTHON) -m repro discover .faults-smoke/data.csv --jobs 2 \
		--cache-dir .faults-smoke/store > .faults-smoke/plain.txt
	$(PYTHON) -m repro discover .faults-smoke/data.csv --jobs 2 \
		--cache-dir .faults-smoke/store-faulty \
		--fault-plan scripts/fault_plans/smoke.json \
		--trace .faults-smoke/faults.jsonl > .faults-smoke/faulty.txt
	$(PYTHON) scripts/check_faults.py .faults-smoke/faults.jsonl \
		.faults-smoke/plain.txt .faults-smoke/faulty.txt

# The paper's tables and figures at the laptop-friendly scale.
experiments:
	$(PYTHON) scripts/run_experiments.py --scale small --timeout 90 --isolated

# The original grid with the paper's two-hour budget (long!).
experiments-paper:
	$(PYTHON) scripts/run_experiments.py --scale paper --timeout 7200 --isolated

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/theory_tour.py
	$(PYTHON) examples/logical_tuning.py
	$(PYTHON) examples/csv_profiling.py
	$(PYTHON) examples/warehouse_audit.py
	$(PYTHON) examples/benchmark_shootout.py --rows 300 --attrs 5
	$(PYTHON) examples/large_table_sampling.py --rows 5000 --attrs 6

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .benchmarks \
		.trace-smoke .trace-parallel .cache-smoke .faults-smoke \
		.transversal-smoke .telemetry-smoke .trace-columnar
	find . -name __pycache__ -type d -exec rm -rf {} +
