"""Layered minimal-transversal kernel (reductions + incremental coverage).

The paper's levelwise ``LEFT_HAND_SIDE`` (Algorithm 5) re-tests every
candidate against every edge at every level: ``O(|edges|)`` rescans per
candidate, with the candidate's vertex mask rebuilt from scratch each
time.  On wide schemas — exactly the regime of the paper's scale-up
experiments (Figures 5-7) — that phase dominates Dep-Miner's runtime.
This module rebuilds the search as three layers:

1. **Reduction pass** (:func:`reduce_hypergraph`), run once before any
   search:

   - *edge minimization* — an edge that contains another edge is hit
     whenever the smaller one is, so only the inclusion-minimal edges
     constrain the transversals;
   - *essential vertices* — a singleton edge ``{v}`` forces ``v`` into
     every transversal; ``v`` is committed immediately and the edges it
     hits are dropped (in a simple hypergraph that is exactly the
     singleton itself);
   - *vertex merging* — vertices with identical edge incidence are
     interchangeable: no minimal transversal contains two of them, and
     swapping one for another maps minimal transversals to minimal
     transversals.  Each incidence class is collapsed to one
     representative and expanded back by substitution at the end;
   - *connected components* — edges sharing no vertex constrain
     disjoint parts of a transversal, so the hypergraph splits into
     components whose transversal families combine by cross product
     (sum of sizes, never product, is searched).

2. **Incremental-coverage levelwise core** (:func:`_search_component`):
   each candidate carries an *edge-coverage bitmask* built per level
   from its join parent's mask OR-ed with the new vertex's incidence
   column.  The transversality test becomes a single integer equality
   against the full-coverage mask instead of an ``O(|edges|)`` rescan,
   and candidate vertex masks are carried instead of rebuilt.

3. **Vectorized batch backend** (optional, NumPy): a whole level's
   coverage masks live in lane-packed ``uint64`` arrays (mirroring
   ``repro.core.agree_fast``); the per-level transversality test is one
   vectorized compare-and-reduce.  Selected with ``backend="vectorized"``
   and falling back to the pure-Python core (with a logged warning) when
   NumPy is not installed — ``pip install 'repro[fast]'`` provides it.

The kernel is extensionally identical to ``minimal_transversals_levelwise``
— the paper's algorithm, kept as the ablation baseline — and to the
Berge / DFS oracles (``tests/test_transversal_kernel.py`` holds all of
them equal on random simple hypergraphs, with and without ``max_size``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.attributes import popcount
from repro.errors import ReproError
from repro.hypergraph.hypergraph import minimize_sets
from repro.obs.logsetup import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import ProgressCallback, emit_progress

try:  # pragma: no cover - exercised via tests monkeypatching `np`
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

__all__ = [
    "HypergraphReduction",
    "reduce_hypergraph",
    "minimal_transversals_kernel",
]

logger = get_logger(__name__)

#: uint64 lanes keep one bit headroom, exactly like ``agree_fast``:
#: conversions from Python ints never touch the sign bit.
_BITS_PER_LANE = 63

_warned_numpy_missing = False


# -- layer 1: the reduction pass ---------------------------------------------

@dataclass
class HypergraphReduction:
    """Outcome of the preprocessing pass over one edge family.

    *essential* is the mask of vertices committed into every transversal
    (from singleton edges); *components* holds, per connected component,
    the list of remaining edges (masks over representative vertices);
    *groups* maps each representative vertex to the full list of
    vertices sharing its edge incidence (length 1 when nothing merged).
    """

    essential: int = 0
    components: List[List[int]] = field(default_factory=list)
    groups: Dict[int, List[int]] = field(default_factory=dict)
    edges_dropped: int = 0
    vertices_merged: int = 0

    @property
    def num_components(self) -> int:
        return len(self.components)


def reduce_hypergraph(edges: Sequence[int],
                      metrics: Optional[MetricsRegistry] = None
                      ) -> HypergraphReduction:
    """The preprocessing pass: minimize, commit essentials, merge, split.

    Accepts any family of non-empty edges (supersets of other edges are
    dropped first, so the input need not be a simple hypergraph) and
    returns a :class:`HypergraphReduction` whose components jointly have
    the same minimal-transversal family as the input, after adding the
    essential vertices and expanding the merged ones.
    """
    reduction = HypergraphReduction()
    minimal = minimize_sets(edges)
    reduction.edges_dropped = len(edges) - len(minimal)

    # Essential vertices: a singleton edge {v} is hit only by v.  In the
    # minimized (simple) family no other edge contains v, so committing
    # v drops exactly the singletons; the generic filter also covers
    # callers that disabled minimization upstream.
    essential = 0
    for edge in minimal:
        if edge & (edge - 1) == 0:  # exactly one bit set
            essential |= edge
    reduction.essential = essential
    remaining = [edge for edge in minimal if not edge & essential]

    if metrics is not None:
        if reduction.edges_dropped:
            metrics.inc("transversal.edges_dropped", reduction.edges_dropped)
        metrics.inc("transversal.essential_committed", popcount(essential))

    if not remaining:
        return reduction

    # Vertex merging: group the support vertices by their edge-incidence
    # bitmask (bit i of incidence[v] <-> v ∈ remaining[i]).  The bit
    # loop is inlined — this transpose is the hottest part of the pass.
    incidence: Dict[int, int] = {}
    get = incidence.get
    for index, edge in enumerate(remaining):
        bit = 1 << index
        while edge:
            low = edge & -edge
            vertex = low.bit_length() - 1
            incidence[vertex] = get(vertex, 0) | bit
            edge ^= low
    by_incidence: Dict[int, List[int]] = {}
    for vertex in sorted(incidence):
        by_incidence.setdefault(incidence[vertex], []).append(vertex)
    for members in by_incidence.values():
        reduction.groups[members[0]] = members
        reduction.vertices_merged += len(members) - 1
    if metrics is not None:
        metrics.inc("transversal.vertices_merged", reduction.vertices_merged)

    # Rebuild the edges over the representatives by transposing the
    # representatives' incidence columns back (every class member shares
    # the column, so the representatives alone reconstruct each edge).
    rebuilt = [0] * len(remaining)
    for representative in reduction.groups:
        bit = 1 << representative
        column = incidence[representative]
        while column:
            low = column & -column
            rebuilt[low.bit_length() - 1] |= bit
            column ^= low
    reduced_edges = sorted(set(rebuilt))

    # Connected components by support-mask clustering: each edge merges
    # every cluster whose support it overlaps, else it founds a new one.
    # O(|edges| x |clusters|) single-int intersections — no per-vertex
    # union-find walk.
    clusters: List[Tuple[int, List[int]]] = []
    for edge in reduced_edges:
        support = edge
        members = [edge]
        disjoint: List[Tuple[int, List[int]]] = []
        for cluster_support, cluster_edges in clusters:
            if cluster_support & support:
                support |= cluster_support
                members.extend(cluster_edges)
            else:
                disjoint.append((cluster_support, cluster_edges))
        disjoint.append((support, members))
        clusters = disjoint
    reduction.components = [
        sorted(members) for _, members in sorted(clusters)
    ]
    if metrics is not None:
        metrics.inc("transversal.components", len(reduction.components))
    return reduction


# -- layer 2: the incremental-coverage levelwise core ------------------------

class _LevelBudget:
    """Shared per-call observability state across component searches."""

    __slots__ = ("metrics", "progress", "candidates_seen")

    def __init__(self, metrics, progress):
        self.metrics = metrics
        self.progress = progress
        self.candidates_seen = 0

    def level(self, size: int) -> None:
        if self.metrics is not None:
            self.metrics.observe("transversal.level_size", size)
            self.metrics.inc("lhs.candidates_generated", size)
        self.candidates_seen += size
        if self.progress is not None:
            emit_progress(
                self.progress, "transversal.candidates", self.candidates_seen
            )

    def pruned(self, count: int) -> None:
        if count and self.metrics is not None:
            self.metrics.inc("transversal.candidates_pruned", count)


def _join_level(level: List[Tuple[int, ...]], covers: List[int],
                incidence: Dict[int, int],
                budget: _LevelBudget) -> Tuple[List[Tuple[int, ...]], List[int]]:
    """Apriori join carrying coverage masks alongside the index tuples.

    Joins pairs sharing their first ``i - 1`` vertices, prunes candidates
    with an absent size-``i`` subset, and builds each child's coverage as
    ``parent_coverage | incidence[new_vertex]`` — no per-edge rescan.
    """
    present = set(level)
    size = len(level[0])
    next_level: List[Tuple[int, ...]] = []
    next_covers: List[int] = []
    pruned = 0
    for i, left in enumerate(level):
        prefix = left[:-1]
        left_cover = covers[i]
        for j in range(i + 1, len(level)):
            right = level[j]
            if right[:-1] != prefix:
                break
            candidate = left + (right[-1],)
            # Dropping position size gives *left*, position size-1 gives
            # *right* — both present by construction, so only the other
            # size-1 subsets need the Apriori membership test.
            if all(
                candidate[:k] + candidate[k + 1:] in present
                for k in range(size - 1)
            ):
                next_level.append(candidate)
                next_covers.append(left_cover | incidence[candidate[-1]])
            else:
                pruned += 1
    budget.pruned(pruned)
    return next_level, next_covers


def _search_component(edges: List[int], max_size: Optional[int],
                      budget: _LevelBudget, vectorized: bool) -> List[int]:
    """Minimal transversals (≤ *max_size*) of one connected component."""
    incidence: Dict[int, int] = {}
    get = incidence.get
    for index, edge in enumerate(edges):
        bit = 1 << index
        while edge:
            low = edge & -edge
            vertex = low.bit_length() - 1
            incidence[vertex] = get(vertex, 0) | bit
            edge ^= low
    full = (1 << len(edges)) - 1
    if vectorized and np is not None:
        return _search_component_lanes(incidence, full, len(edges),
                                       max_size, budget)

    level: List[Tuple[int, ...]] = [
        (vertex,) for vertex in sorted(incidence)
    ]
    covers: List[int] = [incidence[candidate[0]] for candidate in level]
    found: List[int] = []
    size = 1
    while level:
        budget.level(len(level))
        survivors: List[Tuple[int, ...]] = []
        survivor_covers: List[int] = []
        for candidate, cover in zip(level, covers):
            if cover == full:
                mask = 0
                for vertex in candidate:
                    mask |= 1 << vertex
                found.append(mask)
            else:
                survivors.append(candidate)
                survivor_covers.append(cover)
        if not survivors or (max_size is not None and size >= max_size):
            break
        level, covers = _join_level(survivors, survivor_covers,
                                    incidence, budget)
        size += 1
    return found


# -- layer 3: the lane-packed batch backend ----------------------------------

def _pack_lanes(mask: int, num_lanes: int):
    """One coverage bitmask -> its uint64 lane row."""
    row = np.empty(num_lanes, dtype=np.uint64)
    lane_mask = (1 << _BITS_PER_LANE) - 1
    for lane in range(num_lanes):
        row[lane] = (mask >> (lane * _BITS_PER_LANE)) & lane_mask
    return row


def _search_component_lanes(incidence: Dict[int, int], full: int,
                            num_edges: int, max_size: Optional[int],
                            budget: _LevelBudget) -> List[int]:
    """The NumPy backend: evaluate a whole level's coverage at once.

    Candidate tuples and the Apriori join stay in Python (they are
    data-dependent and cheap); the coverage accumulation and the
    transversality test — the ``O(level × edges)`` part — run as
    vectorized uint64 lane operations over the entire level.
    """
    num_lanes = (num_edges + _BITS_PER_LANE - 1) // _BITS_PER_LANE
    vertices = sorted(incidence)
    vertex_row = {vertex: row for row, vertex in enumerate(vertices)}
    incidence_lanes = np.stack([
        _pack_lanes(incidence[vertex], num_lanes) for vertex in vertices
    ])
    full_lanes = _pack_lanes(full, num_lanes)

    level: List[Tuple[int, ...]] = [(vertex,) for vertex in vertices]
    covers = incidence_lanes.copy()
    found: List[int] = []
    size = 1
    while level:
        budget.level(len(level))
        complete = (covers == full_lanes).all(axis=1)
        for index in np.flatnonzero(complete):
            mask = 0
            for vertex in level[int(index)]:
                mask |= 1 << vertex
            found.append(mask)
        if complete.all() or (max_size is not None and size >= max_size):
            break
        keep = np.flatnonzero(~complete)
        survivors = [level[int(index)] for index in keep]
        covers = covers[keep]

        # The join emits (parent row, new vertex) pairs; the children's
        # coverage is one vectorized gather + OR over the whole level.
        present = set(survivors)
        next_level: List[Tuple[int, ...]] = []
        parent_rows: List[int] = []
        new_rows: List[int] = []
        pruned = 0
        for i, left in enumerate(survivors):
            prefix = left[:-1]
            for j in range(i + 1, len(survivors)):
                right = survivors[j]
                if right[:-1] != prefix:
                    break
                candidate = left + (right[-1],)
                # As in _join_level: left/right are the two trailing
                # subsets, present by construction.
                if all(
                    candidate[:k] + candidate[k + 1:] in present
                    for k in range(size - 1)
                ):
                    next_level.append(candidate)
                    parent_rows.append(i)
                    new_rows.append(vertex_row[candidate[-1]])
                else:
                    pruned += 1
        budget.pruned(pruned)
        if not next_level:
            break
        covers = covers[np.asarray(parent_rows, dtype=np.intp)] | \
            incidence_lanes[np.asarray(new_rows, dtype=np.intp)]
        level = next_level
        size += 1
    return found


# -- the public kernel -------------------------------------------------------

def _resolve_backend(backend: str) -> bool:
    global _warned_numpy_missing
    if backend == "python":
        return False
    if backend != "vectorized":
        raise ReproError(
            f"unknown kernel backend {backend!r}; "
            f"choose 'python' or 'vectorized'"
        )
    if np is None:
        if not _warned_numpy_missing:
            logger.warning(
                "transversal backend 'vectorized' needs NumPy, which is "
                "not installed; falling back to the pure-Python kernel "
                "(pip install 'repro[fast]' to enable it)"
            )
            _warned_numpy_missing = True
        return False
    return True


def minimal_transversals_kernel(edges: Sequence[int], num_vertices: int = 0,
                                max_size: Optional[int] = None,
                                metrics: Optional[MetricsRegistry] = None,
                                progress: Optional[ProgressCallback] = None,
                                backend: str = "python",
                                reductions: bool = True,
                                tracer=None) -> List[int]:
    """All minimal transversals (of size ≤ *max_size*) via the kernel.

    Extensionally identical to
    :func:`~repro.hypergraph.transversals.minimal_transversals_levelwise`
    — same inputs, same sorted bitmask output, same ``max_size``
    semantics (sound but incomplete truncation) — but runs the layered
    pipeline documented in the module docstring.  *backend* selects the
    coverage evaluator (``"python"`` big-int masks or ``"vectorized"``
    NumPy lanes; the latter silently degrades to the former when NumPy
    is missing).  *reductions* = ``False`` skips the preprocessing pass
    (ablation only — the incremental-coverage core still runs).

    *metrics* receives the same ``transversal.level_size`` /
    ``lhs.candidates_generated`` series as the levelwise search plus the
    reduction counters (``transversal.essential_committed``,
    ``transversal.vertices_merged``, ``transversal.components``,
    ``transversal.edges_dropped``, ``transversal.candidates_pruned``);
    *progress* sees the cumulative ``"transversal.candidates"`` stage;
    *tracer* optionally wraps the reduction pass in a
    ``transversal.reduce`` span carrying the reduction outcome as
    attributes.
    """
    if any(edge == 0 for edge in edges):
        raise ReproError("hypergraph edges must be non-empty")
    if max_size is not None and max_size < 1:
        raise ReproError("max_size must be a positive integer or None")
    vectorized = _resolve_backend(backend)
    if not edges:
        return [0]

    budget = _LevelBudget(metrics, progress)
    if reductions:
        if tracer is not None:
            with tracer.span("transversal.reduce",
                             edges=len(edges)) as span:
                reduction = reduce_hypergraph(edges, metrics=metrics)
                if span.attrs:  # a disabled tracer yields an inert span
                    span.attrs.update(
                        essential=popcount(reduction.essential),
                        merged=reduction.vertices_merged,
                        components=reduction.num_components,
                        edges_dropped=reduction.edges_dropped,
                    )
        else:
            reduction = reduce_hypergraph(edges, metrics=metrics)
    else:
        reduction = HypergraphReduction(
            components=[minimize_sets(edges)] if edges else [],
        )
        if metrics is not None:
            metrics.inc("transversal.components", len(reduction.components))

    remaining_budget = None
    if max_size is not None:
        remaining_budget = max_size - popcount(reduction.essential)
        if remaining_budget < 0:
            return []
        if remaining_budget == 0:
            return [] if reduction.components else [reduction.essential]

    families: List[List[int]] = []
    for component in reduction.components:
        family = _search_component(component, remaining_budget, budget,
                                   vectorized)
        if not family:
            # max_size truncated this component away: every global
            # transversal needs a part from each component, so none fits.
            return []
        families.append(family)

    combos = [reduction.essential]
    for family in families:
        merged = []
        for base in combos:
            for transversal in family:
                combined = base | transversal
                if max_size is None or popcount(combined) <= max_size:
                    merged.append(combined)
        combos = merged
        if not combos:
            return []

    if reduction.groups and any(
        len(members) > 1 for members in reduction.groups.values()
    ):
        expanded: List[int] = []
        for combo in combos:
            expanded.extend(_expand_merged(combo, reduction.groups))
        combos = expanded
    return sorted(combos)


def _expand_merged(mask: int, groups: Dict[int, List[int]]) -> List[int]:
    """Substitute each merged representative by every class member."""
    results = [mask]
    for representative, members in groups.items():
        if len(members) == 1:
            continue
        bit = 1 << representative
        expanded: List[int] = []
        for current in results:
            if current & bit:
                base = current ^ bit
                for member in members:
                    expanded.append(base | (1 << member))
            else:
                expanded.append(current)
        results = expanded
    return results
