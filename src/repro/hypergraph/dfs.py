"""Depth-first minimal-transversal search (FastFDs-style).

The year after Dep-Miner, FastFDs [Wyss, Giannella, Robertson 2001]
replaced the levelwise transversal computation with an ordered
depth-first search over *difference sets* (exactly the ``cmax`` edges of
this paper).  We provide that search as a third interchangeable method
for ``LEFT_HAND_SIDE`` — the paper's natural "future work" follow-up —
so the levelwise / Berge / DFS strategies can be compared on identical
inputs (see ``benchmarks/bench_ablation_transversal.py``).

Sketch: at each node, order the still-usable vertices by how many
uncovered edges they hit (descending, ties by vertex index); branch on
each vertex in order, allowing deeper levels to use only vertices that
come *after* the branching vertex in the current ordering.  This visits
every cover at most once; non-minimal covers are filtered by a final
witness check (every chosen vertex must hit some edge no other chosen
vertex hits).
"""

from __future__ import annotations

from typing import List, Sequence, Set

from repro.core.attributes import iter_bits
from repro.errors import ReproError

__all__ = ["minimal_transversals_dfs"]


def minimal_transversals_dfs(edges: Sequence[int],
                             num_vertices: int) -> List[int]:
    """All minimal transversals of a simple hypergraph, by ordered DFS."""
    if any(edge == 0 for edge in edges):
        raise ReproError("hypergraph edges must be non-empty")
    if not edges:
        return [0]
    edges = list(edges)
    results: Set[int] = set()

    def is_minimal(chosen_mask: int) -> bool:
        for vertex_bit in _bits(chosen_mask):
            rest = chosen_mask ^ vertex_bit
            if all(edge & rest for edge in edges):
                return False
        return True

    def recurse(uncovered: List[int], chosen_mask: int,
                allowed: List[int]) -> None:
        if not uncovered:
            if is_minimal(chosen_mask):
                results.add(chosen_mask)
            return
        coverage = []
        for vertex in allowed:
            bit = 1 << vertex
            count = sum(1 for edge in uncovered if edge & bit)
            if count:
                coverage.append((count, vertex))
        if not coverage:
            return  # dead branch: uncovered edges, no usable vertex
        coverage.sort(key=lambda pair: (-pair[0], pair[1]))
        ordered = [vertex for _count, vertex in coverage]
        for position, vertex in enumerate(ordered):
            bit = 1 << vertex
            remaining = [edge for edge in uncovered if not edge & bit]
            recurse(remaining, chosen_mask | bit, ordered[position + 1:])

    support = 0
    for edge in edges:
        support |= edge
    recurse(edges, 0, list(iter_bits(support)))
    return sorted(results)


def _bits(mask: int):
    while mask:
        low = mask & -mask
        yield low
        mask ^= low
