"""Simple hypergraphs over attribute universes.

A collection ``H`` of subsets of ``R`` is a *simple hypergraph* when every
edge is non-empty and no edge contains another (section 2, after [Ber76]).
The complements of the maximal sets ``cmax(dep(r), A)`` form a simple
hypergraph, whose minimal transversals are exactly the left-hand sides of
the minimal FDs with right-hand side ``A``.

Edges are bitmasks over a vertex universe of ``num_vertices`` bits, the
same representation as :class:`~repro.core.attributes.AttributeSet`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

from repro.core.attributes import popcount
from repro.errors import ReproError

__all__ = ["SimpleHypergraph", "minimize_sets", "maximize_sets"]


def minimize_sets(masks: Iterable[int]) -> List[int]:
    """Keep only the masks minimal under inclusion (an antichain).

    Duplicates are collapsed.  ``O(k²)`` subset tests on bitmasks, with an
    ascending-cardinality scan so each mask is only tested against already
    retained (smaller or equal) masks.

    >>> minimize_sets([0b011, 0b001, 0b110])
    [1, 6]
    """
    ordered = sorted(set(masks), key=lambda mask: (popcount(mask), mask))
    retained: List[int] = []
    for mask in ordered:
        if not any(kept & mask == kept for kept in retained):
            retained.append(mask)
    return sorted(retained)


def maximize_sets(masks: Iterable[int]) -> List[int]:
    """Keep only the masks maximal under inclusion (``Max⊆`` of the paper).

    >>> maximize_sets([0b011, 0b001, 0b110])
    [3, 6]
    """
    ordered = sorted(set(masks), key=lambda mask: (-popcount(mask), mask))
    retained: List[int] = []
    for mask in ordered:
        if not any(kept & mask == mask for kept in retained):
            retained.append(mask)
    return sorted(retained)


class SimpleHypergraph:
    """An antichain of non-empty edges over ``num_vertices`` vertices.

    >>> h = SimpleHypergraph(3, [0b011, 0b100])
    >>> h.is_transversal(0b101)
    True
    >>> h.is_transversal(0b001)
    False
    """

    __slots__ = ("_num_vertices", "_edges")

    def __init__(self, num_vertices: int, edges: Sequence[int],
                 check_simple: bool = True):
        if num_vertices < 0:
            raise ReproError("num_vertices must be non-negative")
        universe = (1 << num_vertices) - 1
        edges = sorted(set(int(edge) for edge in edges))
        for edge in edges:
            if edge == 0:
                raise ReproError("simple hypergraphs have no empty edge")
            if edge & ~universe:
                raise ReproError(
                    f"edge {bin(edge)} uses vertices outside the universe "
                    f"of size {num_vertices}"
                )
        if check_simple:
            for i, small in enumerate(edges):
                for big in edges[i + 1:]:
                    if small != big and (
                        small & big == small or small & big == big
                    ):
                        raise ReproError(
                            f"edges {bin(small)} and {bin(big)} are nested; "
                            "not a simple hypergraph (use from_sets to minimize)"
                        )
        self._num_vertices = num_vertices
        self._edges = edges

    @classmethod
    def from_sets(cls, num_vertices: int,
                  masks: Iterable[int]) -> "SimpleHypergraph":
        """Build the simple hypergraph ``min⊆`` of arbitrary non-empty sets."""
        masks = [mask for mask in masks if mask]
        return cls(num_vertices, minimize_sets(masks), check_simple=False)

    @property
    def num_vertices(self) -> int:
        return self._num_vertices

    @property
    def edges(self) -> List[int]:
        return list(self._edges)

    @property
    def vertex_support(self) -> int:
        """Mask of the vertices that appear in at least one edge."""
        support = 0
        for edge in self._edges:
            support |= edge
        return support

    def is_empty(self) -> bool:
        """True when the hypergraph has no edges (every set is a transversal)."""
        return not self._edges

    def is_transversal(self, mask: int) -> bool:
        """Does *mask* intersect every edge?"""
        return all(mask & edge for edge in self._edges)

    def is_minimal_transversal(self, mask: int) -> bool:
        """Is *mask* a transversal none of whose proper subsets is one?"""
        if not self.is_transversal(mask):
            return False
        remaining = mask
        while remaining:
            bit = remaining & -remaining
            if self.is_transversal(mask ^ bit):
                return False
            remaining ^= bit
        return True

    def transversal_hypergraph(self, method: str = "levelwise") -> "SimpleHypergraph":
        """``Tr(H)`` — the hypergraph of the minimal transversals.

        By Berge's nihilpotence property ``Tr(Tr(H)) = H`` for simple
        hypergraphs, which section 5.1 of the paper exploits to extend
        TANE with Armstrong-relation generation.
        """
        from repro.hypergraph.transversals import minimal_transversals

        transversals = minimal_transversals(
            self._edges, self._num_vertices, method=method
        )
        transversals = [t for t in transversals if t]
        return SimpleHypergraph(
            self._num_vertices, transversals, check_simple=False
        )

    def __iter__(self) -> Iterator[int]:
        return iter(self._edges)

    def __len__(self) -> int:
        return len(self._edges)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SimpleHypergraph):
            return NotImplemented
        return (
            self._num_vertices == other._num_vertices
            and self._edges == other._edges
        )

    def __hash__(self) -> int:
        return hash((self._num_vertices, tuple(self._edges)))

    def __repr__(self) -> str:
        return (
            f"SimpleHypergraph(vertices={self._num_vertices}, "
            f"edges={[bin(edge) for edge in self._edges]})"
        )
