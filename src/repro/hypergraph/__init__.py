"""Simple hypergraphs and minimal transversals (sections 2 and 3.3)."""

from repro.hypergraph.hypergraph import (
    SimpleHypergraph,
    maximize_sets,
    minimize_sets,
)
from repro.hypergraph.dfs import minimal_transversals_dfs
from repro.hypergraph.kernel import (
    HypergraphReduction,
    minimal_transversals_kernel,
    reduce_hypergraph,
)
from repro.hypergraph.transversals import (
    apriori_gen,
    minimal_transversals,
    minimal_transversals_berge,
    minimal_transversals_levelwise,
)

__all__ = [
    "SimpleHypergraph",
    "minimize_sets",
    "maximize_sets",
    "minimal_transversals",
    "minimal_transversals_levelwise",
    "minimal_transversals_berge",
    "minimal_transversals_dfs",
    "minimal_transversals_kernel",
    "reduce_hypergraph",
    "HypergraphReduction",
    "apriori_gen",
]
