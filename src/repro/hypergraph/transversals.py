"""Minimal transversals of simple hypergraphs.

The legacy algorithms (kept as differential oracles and ablation
baselines for the layered kernel in :mod:`repro.hypergraph.kernel`,
which is the production default of :class:`~repro.core.depminer.DepMiner`):

- :func:`minimal_transversals_levelwise` — the paper's Algorithm 5
  (``LEFT_HAND_SIDE``), a levelwise search that adapts the Apriori-gen
  candidate generation of [AS94]: level ``i`` holds the candidate vertex
  sets of size ``i``; the transversals found at a level are removed before
  the next level is generated, so every superset of a found transversal is
  pruned (it could not be minimal).

- :func:`minimal_transversals_berge` — Berge's sequential method, used as
  a correctness oracle and ablation baseline: fold edges one at a time,
  maintaining the minimal transversals of the prefix.

Both operate on bitmask edges and return bitmask transversals.  The empty
hypergraph (no edges) has the single minimal transversal ``∅``, which is
what makes constant columns come out as ``∅ → A`` in Dep-Miner.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.attributes import iter_bits, popcount
from repro.errors import ReproError
from repro.hypergraph.hypergraph import minimize_sets
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import ProgressCallback, emit_progress

__all__ = [
    "minimal_transversals",
    "minimal_transversals_levelwise",
    "minimal_transversals_berge",
    "apriori_gen",
]


def apriori_gen(level: Sequence[Tuple[int, ...]]) -> List[Tuple[int, ...]]:
    """Apriori-gen candidate generation [AS94], on sorted index tuples.

    Joins pairs of size-``i`` sets sharing their first ``i − 1`` elements,
    then prunes any candidate with a size-``i`` subset not present in
    *level*.

    >>> apriori_gen([(0, 1), (0, 2), (1, 2), (1, 3)])
    [(0, 1, 2)]
    """
    if not level:
        return []
    size = len(level[0])
    ordered = sorted(level)
    present = set(ordered)
    candidates: List[Tuple[int, ...]] = []
    for i, left in enumerate(ordered):
        prefix = left[:-1]
        for right in ordered[i + 1:]:
            if right[:-1] != prefix:
                break
            candidate = left + (right[-1],)
            if all(
                candidate[:k] + candidate[k + 1:] in present
                for k in range(size + 1)
            ):
                candidates.append(candidate)
    return candidates


def minimal_transversals_levelwise(edges: Sequence[int],
                                   num_vertices: int,
                                   max_size: Optional[int] = None,
                                   metrics: Optional[MetricsRegistry] = None,
                                   progress: Optional[ProgressCallback] = None) -> List[int]:
    """Algorithm 5 of the paper: levelwise minimal-transversal search.

    ``L1`` is initialised with the vertices appearing in some edge; at
    each level the candidates hitting every edge are reported as minimal
    transversals and removed, and Apriori-gen builds the next level from
    the survivors.

    *max_size* optionally stops the search after that level: the result
    is then every minimal transversal of size ≤ *max_size* (sound but
    incomplete) — the standard mitigation for wide schemas, where the
    candidate space ``C(|R|, k)`` explodes with the level ``k``.

    *metrics* receives one ``transversal.level_size`` histogram sample
    and one ``lhs.candidates_generated`` increment per level; *progress*
    is called once per level (stage ``"transversal.candidates"``, with
    the cumulative candidate count) and may abort by returning ``False``.
    """
    if any(edge == 0 for edge in edges):
        raise ReproError("hypergraph edges must be non-empty")
    if max_size is not None and max_size < 1:
        raise ReproError("max_size must be a positive integer or None")
    if not edges:
        return [0]
    # Test small edges first: `all(mask & edge ...)` short-circuits on
    # the first edge a candidate misses, and a low-popcount edge is the
    # likeliest miss.  Transversality is order-independent and the
    # result is sorted below, so the output is unchanged.
    edges = sorted(edges, key=popcount)
    support = 0
    for edge in edges:
        support |= edge
    level: List[Tuple[int, ...]] = [
        (vertex,) for vertex in iter_bits(support)
    ]
    # Vertex masks are carried alongside the sorted index tuples: a
    # child's mask is its join parent's mask OR the new vertex's bit,
    # never rebuilt with a per-vertex shift loop inside the level scan.
    masks: Dict[Tuple[int, ...], int] = {
        candidate: 1 << candidate[0] for candidate in level
    }
    found: List[int] = []
    size = 1
    candidates_seen = 0
    while level:
        if metrics is not None:
            metrics.observe("transversal.level_size", len(level))
            metrics.inc("lhs.candidates_generated", len(level))
        candidates_seen += len(level)
        if progress is not None:
            emit_progress(progress, "transversal.candidates", candidates_seen)
        survivors: List[Tuple[int, ...]] = []
        for candidate in level:
            mask = masks[candidate]
            if all(mask & edge for edge in edges):
                found.append(mask)
            else:
                survivors.append(candidate)
        if max_size is not None and size >= max_size:
            break
        level = apriori_gen(survivors)
        # Apriori-gen's subset prune guarantees candidate[:-1] survived
        # the previous level, so its mask is present to extend.
        masks = {
            candidate: masks[candidate[:-1]] | (1 << candidate[-1])
            for candidate in level
        }
        size += 1
    return sorted(found)


def minimal_transversals_berge(edges: Sequence[int],
                               num_vertices: int) -> List[int]:
    """Berge's sequential algorithm (correctness oracle / ablation).

    Maintains ``Tr(H_k)`` for the prefix of the first ``k`` edges: a
    transversal already hitting the next edge is kept as-is; otherwise it
    is extended by every vertex of the new edge, and the result is
    minimized under inclusion.
    """
    if any(edge == 0 for edge in edges):
        raise ReproError("hypergraph edges must be non-empty")
    current: List[int] = [0]
    for edge in edges:
        extended: List[int] = []
        for transversal in current:
            if transversal & edge:
                extended.append(transversal)
            else:
                for vertex in iter_bits(edge):
                    extended.append(transversal | (1 << vertex))
        current = minimize_sets(extended)
    return sorted(current)


def _dfs(edges: Sequence[int], num_vertices: int) -> List[int]:
    from repro.hypergraph.dfs import minimal_transversals_dfs

    return minimal_transversals_dfs(edges, num_vertices)


def _kernel(edges: Sequence[int], num_vertices: int) -> List[int]:
    from repro.hypergraph.kernel import minimal_transversals_kernel

    return minimal_transversals_kernel(edges, num_vertices)


def _kernel_vectorized(edges: Sequence[int], num_vertices: int) -> List[int]:
    from repro.hypergraph.kernel import minimal_transversals_kernel

    return minimal_transversals_kernel(edges, num_vertices,
                                       backend="vectorized")


_METHODS = {
    "levelwise": minimal_transversals_levelwise,
    "berge": minimal_transversals_berge,
    "dfs": _dfs,
    "kernel": _kernel,
    "vectorized": _kernel_vectorized,
}


def minimal_transversals(edges: Sequence[int], num_vertices: int,
                         method: str = "levelwise") -> List[int]:
    """Dispatch to a minimal-transversal algorithm by name.

    *method* is ``"levelwise"`` (the paper's Algorithm 5, the default),
    ``"berge"`` (sequential baseline), ``"dfs"`` (the FastFDs-style
    ordered depth-first search — the paper's follow-up work),
    ``"kernel"`` (the reduction + incremental-coverage kernel of
    :mod:`repro.hypergraph.kernel`) or ``"vectorized"`` (the same kernel
    with the NumPy lane-packed batch backend; falls back to the pure
    kernel when NumPy is missing).
    """
    try:
        algorithm = _METHODS[method]
    except KeyError:
        raise ReproError(
            f"unknown transversal method {method!r}; "
            f"choose from {sorted(_METHODS)}"
        ) from None
    return algorithm(edges, num_vertices)
