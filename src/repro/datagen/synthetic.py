"""The paper's synthetic benchmark database (section 5.2).

Relations are generated from three parameters (Table 2 of the paper):

- ``|R|`` — number of attributes;
- ``|r|`` — number of tuples;
- ``c``  — "rate of identical values": with ``c = 50%`` and 1 000 tuples,
  "each value for this attribute is chosen between 500 possible values",
  i.e. each column draws uniformly from ``round((1 − c) · |r|)`` distinct
  values, so a larger *rate of identical values* means a smaller active
  domain.  ``c = None`` reproduces "data sets without constraints":
  ``c = 0``, values drawn among ``|r|`` possibilities.

  Calibration note: the paper's sentence is ambiguous exactly at
  ``c = 50%`` (both ``c·|r|`` and ``(1−c)·|r|`` give 500 of 1 000).  Two
  observations pin the ``(1 − c)`` reading down: (a) a truly unbounded
  "without constraints" domain would make every agree set empty and
  every Armstrong relation 2 tuples, while Table 3(b) shows sizes in the
  hundreds, so the unconstrained generator drew from an ``O(|r|)``
  range; (b) only ``(1 − c)`` reproduces the paper's consistent ordering
  none < 30% < 50% of both execution times and Armstrong sizes
  (Tables 3–5) — under the ``c·|r|`` reading, 30% produces *more*
  duplication than 50% and the ordering inverts.

Generation is deterministic given ``seed``; columns use independent
streams so adding attributes does not reshuffle existing ones (useful
when sweeping ``|R|`` at fixed ``|r|``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.core.attributes import Schema
from repro.core.relation import Relation
from repro.errors import ReproError

__all__ = ["SyntheticSpec", "generate_relation", "generate_columns"]

@dataclass(frozen=True)
class SyntheticSpec:
    """One cell of the benchmark grid.

    ``skew`` extends the paper's uniform generator with Zipf-distributed
    values (``skew = 0`` keeps the uniform draw; larger values
    concentrate mass on few values, producing heavy-tailed equivalence
    classes — the regime the paper's c parameter cannot reach).
    """

    num_attributes: int
    num_tuples: int
    correlation: Optional[float] = None  # the paper's parameter c
    seed: int = 0
    skew: float = 0.0

    def __post_init__(self):
        if self.num_attributes < 1:
            raise ReproError("num_attributes must be positive")
        if self.num_tuples < 0:
            raise ReproError("num_tuples must be non-negative")
        if self.correlation is not None and not 0 <= self.correlation < 1:
            raise ReproError(
                "correlation c must lie in [0, 1) or be None "
                "(unconstrained)"
            )
        if self.skew < 0:
            raise ReproError("skew must be non-negative")

    @property
    def domain_size(self) -> int:
        """Distinct values available per column: ``(1 − c) · |r|``,
        with the unconstrained setting behaving as ``c = 0`` — see the
        module docstring's calibration note."""
        correlation = 0.0 if self.correlation is None else self.correlation
        return max(1, round((1.0 - correlation) * self.num_tuples))

    def label(self) -> str:
        c = "none" if self.correlation is None else f"{self.correlation:.0%}"
        return (
            f"|R|={self.num_attributes} |r|={self.num_tuples} c={c}"
        )


def _zipf_weights(domain: int, skew: float) -> List[float]:
    """Cumulative Zipf(s = skew) weights over ``domain`` values."""
    total = 0.0
    cumulative = []
    for rank in range(1, domain + 1):
        total += 1.0 / (rank ** skew)
        cumulative.append(total)
    return [weight / total for weight in cumulative]


def generate_columns(spec: SyntheticSpec) -> List[List[int]]:
    """The raw integer columns for *spec* (one independent RNG each)."""
    import bisect

    domain = spec.domain_size
    weights = _zipf_weights(domain, spec.skew) if spec.skew else None
    columns: List[List[int]] = []
    for attribute in range(spec.num_attributes):
        rng = random.Random(f"{spec.seed}/{attribute}")
        if weights is None:
            column = [rng.randrange(domain) for _ in range(spec.num_tuples)]
        else:
            column = [
                bisect.bisect_left(weights, rng.random())
                for _ in range(spec.num_tuples)
            ]
        columns.append(column)
    return columns


def generate_relation(num_attributes: int, num_tuples: int,
                      correlation: Optional[float] = None,
                      seed: int = 0, skew: float = 0.0) -> Relation:
    """Generate one benchmark relation.

    >>> r = generate_relation(5, 100, correlation=0.3, seed=1)
    >>> (len(r.schema), len(r))
    (5, 100)
    """
    spec = SyntheticSpec(
        num_attributes=num_attributes,
        num_tuples=num_tuples,
        correlation=correlation,
        seed=seed,
        skew=skew,
    )
    schema = Schema.of_width(spec.num_attributes)
    return Relation.from_columns(schema, generate_columns(spec))
