"""Realistic-looking profiling datasets with planted FD structure.

FD-discovery papers after this one standardised on small real datasets
(bridges, echocardiogram, adult, ...).  Those files are not bundled
here; instead this module *synthesises* datasets with the same character
— categorical columns, hierarchies, denormalised joins, a sprinkle of
nulls — with a known, documented set of planted dependencies, which the
tests then require the miners to find (and nothing stronger at the
planted positions).

Each generator is deterministic given ``seed`` and returns a
:class:`~repro.core.relation.Relation`; ``write_bundle`` exports them as
CSV files for the examples and the CLI.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Dict, List

from repro.core.attributes import Schema
from repro.core.relation import Relation
from repro.storage.csv_io import relation_to_csv

__all__ = [
    "hospital_dataset",
    "flights_dataset",
    "orders_dataset",
    "cities_dataset",
    "wards_dataset",
    "airports_dataset",
    "products_dataset",
    "customers_dataset",
    "write_bundle",
    "DATASET_BUILDERS",
    "REFERENCE_BUILDERS",
]

_CITIES = [
    ("lyon", "france", "eur"),
    ("paris", "france", "eur"),
    ("geneva", "switzerland", "chf"),
    ("turin", "italy", "eur"),
    ("dresden", "germany", "eur"),
    ("graz", "austria", "eur"),
]

_WARDS = [
    ("cardiology", "west"),
    ("oncology", "east"),
    ("neurology", "west"),
    ("pediatrics", "north"),
]


def cities_dataset(seed: int = 0) -> Relation:
    """Reference table for the hospital admissions (city hierarchy)."""
    schema = Schema(["city", "country", "currency"])
    return Relation.from_rows(schema, _CITIES)


def wards_dataset(seed: int = 0) -> Relation:
    """Reference table for the hospital admissions (ward → wing)."""
    schema = Schema(["ward", "wing"])
    return Relation.from_rows(schema, _WARDS)


def hospital_dataset(num_rows: int = 400, seed: int = 0) -> Relation:
    """Admissions: planted FDs ``patient_id → name``, ``ward → wing``,
    ``city → country`` (denormalised patient/ward/city hierarchies).
    Planted INDs: ``city ⊆ cities.city``, ``ward ⊆ wards.ward``."""
    rng = random.Random(f"hospital/{seed}")
    schema = Schema(
        ["admission_id", "patient_id", "name", "ward", "wing",
         "city", "country", "age"]
    )
    patients = {
        patient_id: (f"patient_{patient_id}", rng.choice(_CITIES),
                     rng.randint(1, 99))
        for patient_id in range(num_rows // 3 + 2)
    }
    rows = []
    for admission in range(num_rows):
        patient_id = rng.randrange(len(patients))
        name, (city, country, _currency), age = patients[patient_id]
        ward, wing = rng.choice(_WARDS)
        rows.append(
            (admission, patient_id, name, ward, wing, city, country, age)
        )
    return Relation.from_rows(schema, rows)


_AIRPORTS = ["lys", "cdg", "gva", "trn", "drs", "grz", "vie", "mxp"]


def airports_dataset(seed: int = 0) -> Relation:
    """Reference table for the flight legs (airport codes)."""
    rng = random.Random(f"airports/{seed}")
    schema = Schema(["code", "city", "runways"])
    cities = [c for c, _country, _cur in _CITIES] + ["vienna", "milan"]
    rows = [
        (code, cities[i % len(cities)], rng.randint(1, 4))
        for i, code in enumerate(_AIRPORTS)
    ]
    return Relation.from_rows(schema, rows)


def flights_dataset(num_rows: int = 500, seed: int = 0) -> Relation:
    """Flight legs: planted FDs ``flight_no → (origin, destination,
    carrier)`` and ``(origin, destination) → distance_km``.  Planted
    INDs: ``origin ⊆ airports.code``, ``destination ⊆ airports.code``."""
    rng = random.Random(f"flights/{seed}")
    schema = Schema(
        ["leg_id", "flight_no", "carrier", "origin", "destination",
         "distance_km", "day", "delay_min"]
    )
    airports = list(_AIRPORTS)
    distances: Dict[tuple, int] = {}
    flights: Dict[str, tuple] = {}
    for number in range(40):
        carrier = rng.choice(["af", "lh", "os", "lx"])
        origin, destination = rng.sample(airports, 2)
        flights[f"{carrier}{100 + number}"] = (carrier, origin, destination)
        distances.setdefault(
            (origin, destination), rng.randrange(200, 1800)
        )
    rows = []
    flight_numbers = sorted(flights)
    for leg in range(num_rows):
        flight_no = rng.choice(flight_numbers)
        carrier, origin, destination = flights[flight_no]
        rows.append(
            (
                leg,
                flight_no,
                carrier,
                origin,
                destination,
                distances[(origin, destination)],
                rng.choice(["mon", "tue", "wed", "thu", "fri"]),
                rng.choice([0, 0, 0, 5, 10, 25, 60]),
            )
        )
    return Relation.from_rows(schema, rows)


def _product_pool(seed: int) -> Dict[str, tuple]:
    rng = random.Random(f"orders-products/{seed}")
    return {
        f"p{code:03d}": (
            rng.choice(["tools", "paper", "food", "tech"]),
            rng.randrange(1, 500),
        )
        for code in range(50)
    }


def _customer_pool(seed: int) -> Dict[str, str]:
    rng = random.Random(f"orders-customers/{seed}")
    return {
        f"c{code:03d}": rng.choice(["retail", "wholesale", "public"])
        for code in range(40)
    }


def products_dataset(seed: int = 0) -> Relation:
    """Reference table for the order lines (product catalog)."""
    schema = Schema(["product_id", "category", "unit_price"])
    pool = _product_pool(seed)
    return Relation.from_rows(
        schema,
        [(pid, cat, price) for pid, (cat, price) in sorted(pool.items())],
    )


def customers_dataset(seed: int = 0) -> Relation:
    """Reference table for the order lines (customer master)."""
    schema = Schema(["customer_id", "segment"])
    pool = _customer_pool(seed)
    return Relation.from_rows(schema, sorted(pool.items()))


def orders_dataset(num_rows: int = 300, seed: int = 0,
                   null_rate: float = 0.05) -> Relation:
    """Order lines with nulls: planted FDs ``product → (category,
    unit_price)`` and ``customer → segment``; ``discount_code`` is
    nullable, exercising both null semantics.  Planted INDs:
    ``product ⊆ products.product_id``, ``customer ⊆
    customers.customer_id``."""
    rng = random.Random(f"orders/{seed}")
    schema = Schema(
        ["line_id", "order_id", "customer", "segment", "product",
         "category", "unit_price", "quantity", "discount_code"]
    )
    products = _product_pool(seed)
    customers = _customer_pool(seed)
    rows = []
    product_names = sorted(products)
    customer_names = sorted(customers)
    for line in range(num_rows):
        product = rng.choice(product_names)
        customer = rng.choice(customer_names)
        category, unit_price = products[product]
        discount = (
            None if rng.random() < 1 - null_rate
            else rng.choice(["SPRING", "VIP", "BULK"])
        )
        rows.append(
            (
                line,
                rng.randrange(num_rows // 2 + 1),
                customer,
                customers[customer],
                product,
                category,
                unit_price,
                rng.randint(1, 20),
                discount,
            )
        )
    return Relation.from_rows(schema, rows)


DATASET_BUILDERS = {
    "hospital": hospital_dataset,
    "flights": flights_dataset,
    "orders": orders_dataset,
}

REFERENCE_BUILDERS = {
    "cities": cities_dataset,
    "wards": wards_dataset,
    "airports": airports_dataset,
    "products": products_dataset,
    "customers": customers_dataset,
}


def write_bundle(directory, seed: int = 0,
                 include_references: bool = True) -> List[Path]:
    """Export the realistic datasets (and their reference tables) as
    CSV files into *directory*."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    builders = dict(DATASET_BUILDERS)
    if include_references:
        builders.update(REFERENCE_BUILDERS)
    written = []
    for name, builder in sorted(builders.items()):
        path = directory / f"{name}.csv"
        relation_to_csv(builder(seed=seed), path, name=name)
        written.append(path)
    return written
