"""Synthetic benchmark data generation (section 5.2's benchmark database)."""

from repro.datagen.realistic import (
    DATASET_BUILDERS,
    flights_dataset,
    hospital_dataset,
    orders_dataset,
    write_bundle,
)
from repro.datagen.synthetic import SyntheticSpec, generate_columns, generate_relation
from repro.datagen.workloads import CORRELATIONS, SCALES, WorkloadGrid, grid_for

__all__ = [
    "SyntheticSpec",
    "generate_relation",
    "generate_columns",
    "WorkloadGrid",
    "grid_for",
    "SCALES",
    "CORRELATIONS",
    "DATASET_BUILDERS",
    "hospital_dataset",
    "flights_dataset",
    "orders_dataset",
    "write_bundle",
]
