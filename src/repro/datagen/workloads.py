"""Named benchmark workloads — the grids behind every table and figure.

The paper's evaluation (section 5.3) runs one grid per correlation
setting: ``|R| ∈ {10, 20, 30, 40, 50, 60}`` × ``|r| ∈ {10k, 20k, 30k,
50k, 100k}``, for ``c ∈ {None, 30%, 50%}`` (Tables 3, 4, 5), and the
figures plot slices of those grids (times at ``|R| ∈ {10, 50}``,
Armstrong sizes across all ``|R|``).

Pure-Python absolute speeds differ from the 1999 C++ binary, so each
workload comes in four scales sharing the same *shape*:

- ``paper`` — the original grid (hours of runtime in pure Python);
- ``small`` — the default for the harness CLI (minutes);
- ``medium`` — the |r| axis stretched to 10k rows (tens of minutes);
- ``tiny``  — for the pytest-benchmark suite and CI (seconds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.datagen.synthetic import SyntheticSpec
from repro.errors import BenchmarkError

__all__ = ["WorkloadGrid", "grid_for", "SCALES", "CORRELATIONS"]

CORRELATIONS: Dict[str, Optional[float]] = {
    "none": None,   # Table 3 / Figures 2-3: data without constraints
    "c30": 0.30,    # Table 4 / Figures 4-5
    "c50": 0.50,    # Table 5 / Figures 6-7
}

SCALES: Dict[str, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {
    # (attribute counts, tuple counts)
    "paper": ((10, 20, 30, 40, 50, 60),
              (10_000, 20_000, 30_000, 50_000, 100_000)),
    "small": ((10, 15, 20), (500, 1_000, 2_000)),
    "medium": ((10, 15, 20), (2_000, 5_000, 10_000)),
    "tiny": ((5, 10), (200, 500)),
}


@dataclass(frozen=True)
class WorkloadGrid:
    """A |R| × |r| grid at one correlation setting."""

    name: str
    correlation: Optional[float]
    attribute_counts: Tuple[int, ...]
    tuple_counts: Tuple[int, ...]
    seed: int = 0

    def specs(self) -> List[SyntheticSpec]:
        """All cells, row-major (|r| outer, |R| inner, like the tables)."""
        return [
            SyntheticSpec(
                num_attributes=num_attributes,
                num_tuples=num_tuples,
                correlation=self.correlation,
                seed=self.seed,
            )
            for num_tuples in self.tuple_counts
            for num_attributes in self.attribute_counts
        ]

    def column_specs(self, num_attributes: int) -> List[SyntheticSpec]:
        """The |r|-sweep at a fixed |R| (one curve of a time figure)."""
        if num_attributes not in self.attribute_counts:
            raise BenchmarkError(
                f"|R|={num_attributes} is not in this grid "
                f"({self.attribute_counts})"
            )
        return [
            SyntheticSpec(
                num_attributes=num_attributes,
                num_tuples=num_tuples,
                correlation=self.correlation,
                seed=self.seed,
            )
            for num_tuples in self.tuple_counts
        ]


def grid_for(correlation_name: str, scale: str = "small",
             seed: int = 0) -> WorkloadGrid:
    """Build the named workload grid.

    *correlation_name* is ``"none"``, ``"c30"`` or ``"c50"``; *scale* is
    ``"paper"``, ``"small"`` or ``"tiny"``.
    """
    if correlation_name not in CORRELATIONS:
        raise BenchmarkError(
            f"unknown correlation {correlation_name!r}; "
            f"choose from {sorted(CORRELATIONS)}"
        )
    if scale not in SCALES:
        raise BenchmarkError(
            f"unknown scale {scale!r}; choose from {sorted(SCALES)}"
        )
    attribute_counts, tuple_counts = SCALES[scale]
    return WorkloadGrid(
        name=f"{correlation_name}-{scale}",
        correlation=CORRELATIONS[correlation_name],
        attribute_counts=attribute_counts,
        tuple_counts=tuple_counts,
        seed=seed,
    )
