"""Inclusion-dependency discovery ([KMRS92] lineage): unary INDs by
value-set inclusion, n-ary INDs via levelwise candidate generation, and
foreign-key suggestions."""

from repro.ind.discovery import (
    ind_coverage,
    discover_inds,
    discover_unary_inds,
    suggest_foreign_keys,
)
from repro.ind.ind import IND, ColumnRef

__all__ = [
    "IND",
    "ColumnRef",
    "discover_unary_inds",
    "ind_coverage",
    "discover_inds",
    "suggest_foreign_keys",
]
