"""Inclusion dependencies (INDs).

The paper's framework descends from [KMRS92], *"Discovering functional
and inclusion dependencies in relational databases"* — FDs describe one
table, INDs connect tables (foreign keys are exactly the INDs whose rhs
is a key).  This module completes that picture for the warehouse-audit
workflow: an :class:`IND` states

    ``R[A1, ..., An] ⊆ S[B1, ..., Bn]``

— every combination of values of ``A1..An`` occurring in ``R`` also
occurs under ``B1..Bn`` in ``S``.  Attribute *order matters* (the i-th
lhs column maps to the i-th rhs column); the canonical form used for
deduplication sorts the column *pairs* by lhs name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.errors import ReproError

__all__ = ["IND", "ColumnRef"]


@dataclass(frozen=True)
class ColumnRef:
    """A (table, column) reference."""

    table: str
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}"


class IND:
    """An inclusion dependency between two column sequences.

    >>> ind = IND("orders", ("product",), "products", ("product_id",))
    >>> str(ind)
    'orders[product] ⊆ products[product_id]'
    """

    __slots__ = ("lhs_table", "lhs_columns", "rhs_table", "rhs_columns")

    def __init__(self, lhs_table: str, lhs_columns: Iterable[str],
                 rhs_table: str, rhs_columns: Iterable[str]):
        lhs_columns = tuple(lhs_columns)
        rhs_columns = tuple(rhs_columns)
        if not lhs_columns:
            raise ReproError("an IND needs at least one column pair")
        if len(lhs_columns) != len(rhs_columns):
            raise ReproError(
                f"arity mismatch: {lhs_columns} vs {rhs_columns}"
            )
        if len(set(lhs_columns)) != len(lhs_columns):
            raise ReproError(f"duplicate lhs columns: {lhs_columns}")
        if len(set(rhs_columns)) != len(rhs_columns):
            raise ReproError(f"duplicate rhs columns: {rhs_columns}")
        # Canonical ordering: sort column pairs by the lhs name.
        pairs = sorted(zip(lhs_columns, rhs_columns))
        self.lhs_table = lhs_table
        self.lhs_columns = tuple(pair[0] for pair in pairs)
        self.rhs_table = rhs_table
        self.rhs_columns = tuple(pair[1] for pair in pairs)

    @property
    def arity(self) -> int:
        return len(self.lhs_columns)

    def is_trivial(self) -> bool:
        """Same table, same columns in the same positions."""
        return (
            self.lhs_table == self.rhs_table
            and self.lhs_columns == self.rhs_columns
        )

    def column_pairs(self) -> List[Tuple[str, str]]:
        return list(zip(self.lhs_columns, self.rhs_columns))

    def unary_projections(self) -> List["IND"]:
        """The arity-1 INDs this IND implies (projection rule)."""
        return [
            IND(self.lhs_table, (lhs,), self.rhs_table, (rhs,))
            for lhs, rhs in self.column_pairs()
        ]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IND):
            return NotImplemented
        return (
            self.lhs_table == other.lhs_table
            and self.lhs_columns == other.lhs_columns
            and self.rhs_table == other.rhs_table
            and self.rhs_columns == other.rhs_columns
        )

    def __hash__(self) -> int:
        return hash(
            (self.lhs_table, self.lhs_columns,
             self.rhs_table, self.rhs_columns)
        )

    def __repr__(self) -> str:
        return f"IND({self})"

    def __str__(self) -> str:
        lhs = ", ".join(self.lhs_columns)
        rhs = ", ".join(self.rhs_columns)
        return f"{self.lhs_table}[{lhs}] ⊆ {self.rhs_table}[{rhs}]"
