"""Armstrong-axiom derivations with readable proof traces.

Given ``F ⊨ X → A``, :func:`derive` produces a step-by-step proof using
the three Armstrong axioms (reflexivity, augmentation, transitivity).
The trace is reconstructed from the closure computation: the FDs fired to
grow ``X⁺`` are replayed as augmentation + transitivity steps.

This is a documentation/explanation facility — the DBA-facing complement
of the mining algorithms ("why does this FD follow from the mined
cover?") — not a performance-critical path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.attributes import AttributeSet, Schema, iter_bits
from repro.errors import ReproError
from repro.fd.fd import FD

__all__ = ["DerivationStep", "Derivation", "derive"]


@dataclass(frozen=True)
class DerivationStep:
    """One proof line: the derived statement ``lhs → rhs`` and its rule."""

    lhs: AttributeSet
    rhs: AttributeSet
    rule: str
    premises: Tuple[int, ...] = ()

    def render(self, number: int) -> str:
        lhs = self.lhs.compact() if self.lhs else "∅"
        rhs = self.rhs.compact() if self.rhs else "∅"
        cite = ""
        if self.premises:
            cite = " of (" + "), (".join(str(p) for p in self.premises) + ")"
        return f"({number}) {lhs} -> {rhs}   [{self.rule}{cite}]"


@dataclass
class Derivation:
    """A complete proof that ``F ⊨ target``."""

    target: FD
    steps: List[DerivationStep]

    def render(self) -> str:
        lines = [f"Proof of {self.target}:"]
        lines.extend(
            step.render(number)
            for number, step in enumerate(self.steps, start=1)
        )
        return "\n".join(lines)

    def conclusion(self) -> DerivationStep:
        return self.steps[-1]


def derive(fds: Sequence[FD], target: FD) -> Optional[Derivation]:
    """Derive *target* from *fds* with the Armstrong axioms.

    Returns ``None`` when the FD is **not** implied.  The proof pattern:

    1. reflexivity gives ``X → X``;
    2. each closure-expanding FD ``Y → B`` (with ``Y ⊆`` the current
       closure) becomes: augmentation of ``Y → B`` by the closure ``C``
       (giving ``C → C ∪ {B}``) and transitivity with the running
       ``X → C`` step;
    3. a final projectivity (reflexivity + transitivity) step narrows the
       accumulated rhs to ``A``.
    """
    schema = target.schema
    for fd in fds:
        if fd.schema != schema:
            raise ReproError("all FDs must share the target's schema")
    x_mask = target.lhs.mask
    steps: List[DerivationStep] = [
        DerivationStep(
            lhs=target.lhs, rhs=target.lhs, rule="reflexivity"
        )
    ]
    closure = x_mask
    running_index = 1  # 1-based index of the step proving X -> closure
    remaining = list(fds)
    progress = True
    while progress and not closure & target.rhs_mask:
        progress = False
        for fd in remaining:
            if fd.lhs.mask & ~closure:
                continue
            if not fd.rhs_mask & ~closure:
                remaining.remove(fd)
                progress = True
                break
            new_closure = closure | fd.rhs_mask
            steps.append(
                DerivationStep(
                    lhs=schema.from_mask(fd.lhs.mask),
                    rhs=schema.from_mask(fd.rhs_mask),
                    rule=f"given FD {fd}",
                )
            )
            given_index = len(steps)
            steps.append(
                DerivationStep(
                    lhs=schema.from_mask(closure),
                    rhs=schema.from_mask(new_closure),
                    rule="augmentation",
                    premises=(given_index,),
                )
            )
            steps.append(
                DerivationStep(
                    lhs=target.lhs,
                    rhs=schema.from_mask(new_closure),
                    rule="transitivity",
                    premises=(running_index, len(steps)),
                )
            )
            running_index = len(steps)
            closure = new_closure
            remaining.remove(fd)
            progress = True
            break
    if not closure & target.rhs_mask:
        return None
    if closure != target.rhs_mask:
        steps.append(
            DerivationStep(
                lhs=schema.from_mask(closure),
                rhs=schema.from_mask(target.rhs_mask),
                rule="reflexivity (projection)",
            )
        )
        steps.append(
            DerivationStep(
                lhs=target.lhs,
                rhs=schema.from_mask(target.rhs_mask),
                rule="transitivity",
                premises=(running_index, len(steps)),
            )
        )
    return Derivation(target=target, steps=steps)
