"""FD theory toolkit: FD objects, closure/implication, covers, candidate
keys, normalization, Armstrong-axiom derivations, and a brute-force
discovery oracle."""

from repro.fd.axioms import Derivation, DerivationStep, derive
from repro.fd.bruteforce import bruteforce_minimal_fds
from repro.fd.closure import (
    attribute_closure,
    closed_sets,
    closure_set,
    equivalent_covers,
    generators,
    implies,
    implies_all,
    is_closed,
)
from repro.fd.cover import (
    is_minimal_cover,
    left_reduce,
    minimal_cover,
    remove_redundant,
)
from repro.fd.fd import FD, fds_to_text, parse_fd, sort_fds
from repro.fd.lattice import ClosedSetLattice, build_lattice
from repro.fd.keys import (
    candidate_keys,
    is_candidate_key,
    is_superkey_for,
    minimize_superkey,
    prime_attributes,
)
from repro.fd.mvd import (
    MVD,
    decompose_4nf,
    dependency_basis,
    fourth_nf_violations,
    implies_mvd,
    is_4nf,
)
from repro.fd.normalize import (
    Decomposition,
    bcnf_violations,
    decompose_bcnf,
    is_2nf,
    is_3nf,
    is_bcnf,
    is_lossless_binary_split,
    project_fds,
    synthesize_3nf,
)

__all__ = [
    "FD",
    "parse_fd",
    "sort_fds",
    "fds_to_text",
    "attribute_closure",
    "closure_set",
    "implies",
    "implies_all",
    "equivalent_covers",
    "is_closed",
    "closed_sets",
    "generators",
    "left_reduce",
    "remove_redundant",
    "minimal_cover",
    "is_minimal_cover",
    "ClosedSetLattice",
    "build_lattice",
    "candidate_keys",
    "is_candidate_key",
    "is_superkey_for",
    "minimize_superkey",
    "prime_attributes",
    "MVD",
    "dependency_basis",
    "implies_mvd",
    "fourth_nf_violations",
    "is_4nf",
    "decompose_4nf",
    "Decomposition",
    "project_fds",
    "bcnf_violations",
    "is_bcnf",
    "is_3nf",
    "is_2nf",
    "decompose_bcnf",
    "synthesize_3nf",
    "is_lossless_binary_split",
    "derive",
    "Derivation",
    "DerivationStep",
    "bruteforce_minimal_fds",
]
