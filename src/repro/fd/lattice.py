"""The lattice of closed attribute sets.

``CL(F)`` ordered by inclusion forms a (meet-semi)lattice whose
meet-irreducible elements are the maximal sets / intersection generators
(`GEN(F) = MAX(F)`, [MR86, DLM92]).  This module materialises that
lattice for small schemas: nodes, Hasse edges, meet/join, irreducibility
flags, and a plain-text rendering grouped by level — the "lattice point
of view" of [DLM92] that underlies the Armstrong constructions.

Everything here is exponential in the schema width by nature and is
guarded accordingly; it exists for analysis, teaching and tests, not
for the mining hot path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.attributes import AttributeSet, Schema, popcount
from repro.errors import ReproError
from repro.fd.closure import attribute_closure, closed_sets
from repro.fd.fd import FD

__all__ = ["ClosedSetLattice", "build_lattice"]

_MAX_WIDTH = 16


@dataclass(frozen=True)
class _Node:
    mask: int
    is_meet_irreducible: bool


class ClosedSetLattice:
    """The lattice ``(CL(F), ⊆)`` for a set of FDs."""

    def __init__(self, schema: Schema, fds: Sequence[FD]):
        if len(schema) > _MAX_WIDTH:
            raise ReproError(
                f"closed-set lattices enumerate 2^width sets; width "
                f"{len(schema)} > {_MAX_WIDTH}"
            )
        self.schema = schema
        self.fds = list(fds)
        self._closed = closed_sets(self.fds, schema)
        self._closed_set = set(self._closed)
        self._hasse = self._compute_hasse()
        self._irreducible = self._compute_irreducible()

    # -- structure -----------------------------------------------------------

    @property
    def elements(self) -> List[int]:
        """Every closed set, as sorted bitmasks."""
        return list(self._closed)

    def __len__(self) -> int:
        return len(self._closed)

    def __contains__(self, mask: int) -> bool:
        return mask in self._closed_set

    def _compute_hasse(self) -> Dict[int, List[int]]:
        """Upper covers: y covers x iff x ⊂ y with no closed z between."""
        covers: Dict[int, List[int]] = {}
        for low in self._closed:
            uppers = []
            supersets = [
                high for high in self._closed
                if high != low and low & high == low
            ]
            for high in supersets:
                if not any(
                    mid != high and low & mid == low and mid & high == mid
                    for mid in supersets
                ):
                    uppers.append(high)
            covers[low] = sorted(uppers)
        return covers

    def _compute_irreducible(self) -> Dict[int, bool]:
        universe = self.schema.universe_mask
        flags: Dict[int, bool] = {}
        for mask in self._closed:
            if mask == universe:
                flags[mask] = False  # R is the empty intersection
                continue
            strictly_larger = [
                other for other in self._closed
                if other != mask and mask & other == mask
            ]
            meet = universe
            for other in strictly_larger:
                meet &= other
            flags[mask] = meet != mask
        return flags

    # -- queries ---------------------------------------------------------------

    def upper_covers(self, mask: int) -> List[int]:
        """The Hasse successors of a closed set."""
        if mask not in self._closed_set:
            raise ReproError(f"{bin(mask)} is not a closed set")
        return list(self._hasse[mask])

    def meet(self, first: int, second: int) -> int:
        """Greatest closed set below both (plain intersection — closed
        sets are closed under ∩)."""
        return first & second

    def join(self, first: int, second: int) -> int:
        """Least closed set above both: the closure of the union."""
        return attribute_closure(first | second, self.fds, self.schema)

    def meet_irreducible(self) -> List[int]:
        """``GEN(F)`` — the intersection generators (= maximal sets)."""
        return [m for m in self._closed if self._irreducible[m]]

    def closure(self, mask: int) -> int:
        return attribute_closure(mask, self.fds, self.schema)

    # -- rendering ----------------------------------------------------------------

    def render(self) -> str:
        """Plain-text rendering, one level (cardinality) per line.

        Meet-irreducible sets (the generators / maximal sets) are
        marked with ``*``.
        """
        levels: Dict[int, List[int]] = {}
        for mask in self._closed:
            levels.setdefault(popcount(mask), []).append(mask)
        lines = [
            f"Closed-set lattice over {list(self.schema.names)} "
            f"({len(self._closed)} closed sets; * = generator):"
        ]
        for size in sorted(levels, reverse=True):
            rendered = []
            for mask in levels[size]:
                name = AttributeSet(self.schema, mask).compact()
                star = "*" if self._irreducible[mask] else ""
                rendered.append(name + star)
            lines.append(f"  |X| = {size}:  " + "   ".join(rendered))
        return "\n".join(lines)


def build_lattice(schema: Schema, fds: Sequence[FD]) -> ClosedSetLattice:
    """Convenience constructor mirroring the other module entry points."""
    return ClosedSetLattice(schema, fds)
