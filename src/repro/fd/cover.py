"""Covers of FD sets: left-reduction, redundancy removal, minimal covers.

A *minimal cover* (canonical cover) of ``F`` is an equivalent FD set where
every rhs is a single attribute (true by construction here), no lhs
contains an extraneous attribute, and no FD is redundant.  Dep-Miner's
output ``{X → A : X ∈ lhs(dep(r), A)}`` is already a cover of ``dep(r)``;
these utilities let callers verify that, compare miners, and feed
normalization.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.attributes import AttributeSet, iter_bits
from repro.fd.closure import attribute_closure, equivalent_covers, implies
from repro.fd.fd import FD, sort_fds

__all__ = [
    "left_reduce",
    "remove_redundant",
    "minimal_cover",
    "is_minimal_cover",
]


def left_reduce(fds: Sequence[FD]) -> List[FD]:
    """Remove extraneous lhs attributes from every FD.

    An attribute ``B ∈ X`` is extraneous in ``X → A`` when
    ``(X − B)⁺_F ∋ A``; removal is applied greedily attribute by
    attribute, which is sound because extraneousness is monotone under
    shrinking lhs within a fixed ``F``.
    """
    fds = list(fds)
    reduced: List[FD] = []
    for fd in fds:
        schema = fd.schema
        lhs_mask = fd.lhs.mask
        for attribute in list(iter_bits(lhs_mask)):
            candidate = lhs_mask & ~(1 << attribute)
            if attribute_closure(candidate, fds, schema) & fd.rhs_mask:
                lhs_mask = candidate
        reduced.append(FD(AttributeSet(schema, lhs_mask), fd.rhs_index))
    return reduced


def remove_redundant(fds: Sequence[FD]) -> List[FD]:
    """Drop FDs implied by the remaining ones (order-deterministic).

    Scans in :func:`~repro.fd.fd.sort_fds` order so the result does not
    depend on input ordering.
    """
    kept = sort_fds(set(fds))
    index = 0
    while index < len(kept):
        without = kept[:index] + kept[index + 1:]
        if implies(without, kept[index]):
            kept = without
        else:
            index += 1
    return kept


def minimal_cover(fds: Sequence[FD]) -> List[FD]:
    """A minimal (canonical) cover: left-reduce, then remove redundancy."""
    return remove_redundant(left_reduce(fds))


def is_minimal_cover(fds: Sequence[FD], of: Sequence[FD] = None) -> bool:
    """Is *fds* a minimal cover (optionally of the FD set *of*)?"""
    fds = list(fds)
    if of is not None and not equivalent_covers(fds, list(of)):
        return False
    if len(set(fds)) != len(fds):
        return False
    for index, fd in enumerate(fds):
        without = fds[:index] + fds[index + 1:]
        if implies(without, fd):
            return False
        for attribute in iter_bits(fd.lhs.mask):
            shrunk = FD(fd.lhs.remove(attribute), fd.rhs_index)
            if implies(fds, shrunk):
                return False
    return True
