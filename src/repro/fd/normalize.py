"""Schema normalization — the "logical tuning" the paper motivates.

The paper's use case: the DBA mines minimal FDs with Dep-Miner, validates
them on the real-world Armstrong sample, then *normalizes* the schema to
remove update anomalies [MR94b, LL99].  This module supplies that last
step: normal-form tests (2NF, 3NF, BCNF), a BCNF decomposition, and the
classical 3NF synthesis from a minimal cover.

Sub-schemas are represented by :class:`Decomposition` entries carrying
the attribute subset (as an :class:`AttributeSet` of the *original*
schema) and the FDs projected onto it.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import List, Sequence, Tuple

from repro.core.attributes import AttributeSet, Schema, iter_bits
from repro.errors import ReproError
from repro.fd.closure import attribute_closure
from repro.fd.cover import minimal_cover
from repro.fd.fd import FD, sort_fds
from repro.fd.keys import candidate_keys, is_superkey_for, prime_attributes

__all__ = [
    "Decomposition",
    "project_fds",
    "bcnf_violations",
    "is_bcnf",
    "is_3nf",
    "is_2nf",
    "decompose_bcnf",
    "synthesize_3nf",
    "is_lossless_binary_split",
]

_MAX_PROJECTION_WIDTH = 22


@dataclass(frozen=True)
class Decomposition:
    """One fragment of a decomposition: attributes + projected FDs."""

    attributes: AttributeSet
    fds: Tuple[FD, ...]

    def __str__(self) -> str:
        inner = ", ".join(self.attributes.names)
        return f"R({inner})"


def project_fds(fds: Sequence[FD], onto_mask: int,
                schema: Schema) -> List[FD]:
    """``F[Z]`` — the FDs implied by *fds* whose attributes all lie in Z.

    Computed by closing every subset of Z (exponential in ``|Z|``; guarded
    because projection is inherently that hard in the worst case).  The
    result is returned as a minimal cover over the original schema.
    """
    z_attributes = list(iter_bits(onto_mask))
    if len(z_attributes) > _MAX_PROJECTION_WIDTH:
        raise ReproError(
            f"FD projection enumerates 2^|Z| subsets; |Z| = "
            f"{len(z_attributes)} is too wide"
        )
    projected: List[FD] = []
    for size in range(len(z_attributes) + 1):
        for subset in combinations(z_attributes, size):
            lhs_mask = 0
            for attribute in subset:
                lhs_mask |= 1 << attribute
            closure = attribute_closure(lhs_mask, fds, schema)
            for attribute in iter_bits(closure & onto_mask & ~lhs_mask):
                projected.append(
                    FD(AttributeSet(schema, lhs_mask), attribute)
                )
    return minimal_cover(projected)


def bcnf_violations(fds: Sequence[FD], schema: Schema,
                    within_mask: int = None) -> List[FD]:
    """Non-trivial FDs whose lhs is not a superkey (BCNF witnesses).

    With *within_mask* the test is performed on the sub-schema ``Z``:
    the FDs are first projected onto ``Z`` and superkey-ness is relative
    to ``Z``.
    """
    if within_mask is None:
        candidates = sort_fds(set(fds))
        universe = schema.universe_mask
    else:
        candidates = project_fds(fds, within_mask, schema)
        universe = within_mask
    violations = []
    for fd in candidates:
        if fd.is_trivial():
            continue
        closure = attribute_closure(fd.lhs.mask, list(candidates), schema)
        if closure & universe != universe:
            violations.append(fd)
    return violations


def is_bcnf(fds: Sequence[FD], schema: Schema, within_mask: int = None) -> bool:
    """Boyce–Codd normal form test."""
    return not bcnf_violations(fds, schema, within_mask)


def is_3nf(fds: Sequence[FD], schema: Schema) -> bool:
    """Third normal form: every violating FD's rhs must be prime."""
    prime = prime_attributes(fds, schema).mask
    for fd in fds:
        if fd.is_trivial():
            continue
        if is_superkey_for(fd.lhs.mask, list(fds), schema):
            continue
        if not fd.rhs_mask & prime:
            return False
    return True


def is_2nf(fds: Sequence[FD], schema: Schema) -> bool:
    """Second normal form: no partial dependency of a non-prime attribute
    on a candidate key."""
    keys = candidate_keys(list(fds), schema)
    prime = prime_attributes(fds, schema).mask
    fds = list(fds)
    for key in keys:
        proper_subsets = [
            key.mask & ~(1 << attribute) for attribute in iter_bits(key.mask)
        ]
        for subset in proper_subsets:
            closure = attribute_closure(subset, fds, schema)
            non_prime_dependents = closure & ~prime & ~subset
            if non_prime_dependents:
                return False
    return True


def decompose_bcnf(fds: Sequence[FD], schema: Schema) -> List[Decomposition]:
    """Lossless BCNF decomposition (classical splitting algorithm).

    Repeatedly splits a fragment ``Z`` with a violating FD ``X → A``
    (projected onto ``Z``) into ``X ∪ {A}`` and ``Z − A``.  Lossless by
    construction; dependency preservation is *not* guaranteed (that is
    BCNF's known limitation — use :func:`synthesize_3nf` when
    preservation matters).
    """
    fds = list(fds)
    worklist = [schema.universe_mask]
    fragments: List[Decomposition] = []
    while worklist:
        z_mask = worklist.pop()
        violations = bcnf_violations(fds, schema, within_mask=z_mask)
        if not violations:
            fragments.append(
                Decomposition(
                    schema.from_mask(z_mask),
                    tuple(project_fds(fds, z_mask, schema)),
                )
            )
            continue
        fd = violations[0]
        closure = attribute_closure(fd.lhs.mask, fds, schema) & z_mask
        first = fd.lhs.mask | (closure & ~fd.lhs.mask)
        second = z_mask & ~(closure & ~fd.lhs.mask)
        if first == z_mask or second == z_mask:
            # Defensive: a split that does not shrink would loop forever.
            raise ReproError(f"BCNF split of {bin(z_mask)} did not progress")
        worklist.append(first)
        worklist.append(second)
    # Drop fragments contained in others (can happen with nested splits).
    fragments.sort(key=lambda d: -len(d.attributes))
    kept: List[Decomposition] = []
    for fragment in fragments:
        if not any(
            fragment.attributes.issubset(existing.attributes)
            for existing in kept
        ):
            kept.append(fragment)
    return sorted(kept, key=lambda d: d.attributes.mask)


def synthesize_3nf(fds: Sequence[FD], schema: Schema) -> List[Decomposition]:
    """Bernstein-style 3NF synthesis from a minimal cover.

    Groups the minimal cover by lhs, creates one fragment per group, adds
    a candidate-key fragment when no fragment contains a key, and drops
    fragments subsumed by others.  Lossless and dependency-preserving.
    """
    fds = list(fds)
    cover = minimal_cover(fds)
    groups = {}
    for fd in cover:
        groups.setdefault(fd.lhs.mask, []).append(fd)
    fragments: List[Tuple[int, List[FD]]] = []
    for lhs_mask, members in groups.items():
        attributes = lhs_mask
        for fd in members:
            attributes |= fd.rhs_mask
        fragments.append((attributes, members))
    keys = candidate_keys(cover, schema) if cover else [schema.universe()]
    if not any(
        any(key.mask & fragment_mask == key.mask for key in keys)
        for fragment_mask, _members in fragments
    ):
        key = keys[0]
        fragments.append((key.mask, []))
    fragments.sort(key=lambda pair: -bin(pair[0]).count("1"))
    kept: List[Tuple[int, List[FD]]] = []
    for mask, members in fragments:
        container = next(
            (pair for pair in kept if mask & pair[0] == mask), None
        )
        if container is None:
            kept.append((mask, list(members)))
        else:
            container[1].extend(members)
    return sorted(
        (
            Decomposition(schema.from_mask(mask), tuple(sort_fds(members)))
            for mask, members in kept
        ),
        key=lambda d: d.attributes.mask,
    )


def is_lossless_binary_split(fds: Sequence[FD], schema: Schema,
                             first_mask: int, second_mask: int) -> bool:
    """Heath's theorem: ``Z1 ∩ Z2 → Z1`` or ``Z1 ∩ Z2 → Z2`` under F.

    Checks the classic sufficient condition for a binary decomposition of
    ``Z1 ∪ Z2`` to be lossless.
    """
    common = first_mask & second_mask
    closure = attribute_closure(common, list(fds), schema)
    return (
        closure & first_mask == first_mask
        or closure & second_mask == second_mask
    )
