"""Multivalued dependencies and fourth normal form.

The natural continuation of the paper's "logical tuning" story: once
FDs have been mined and the schema pushed to BCNF, the remaining
redundancy is multivalued — ``X ↠ Y`` holds when, within each
``X``-group, the ``Y``-values and the remaining values vary
*independently* (the group is their cross product).  4NF forbids
non-trivial MVDs whose lhs is not a superkey.

Provided here:

- :class:`MVD` and the instance-level satisfaction test
  (:meth:`MVD.holds_in` — the cross-product criterion per group);
- :func:`dependency_basis` — Beeri's fixpoint algorithm computing
  ``DEP(X)``, the finest partition of ``R − X`` such that ``X ↠ S`` for
  every block ``S``;
- :func:`implies_mvd` — MVD implication from a set of FDs and MVDs
  (FDs enter as ``X ↠ Y`` by the conversion rule, which is complete for
  *MVD* derivation; FD implication stays in :mod:`repro.fd.closure`);
- :func:`is_4nf` / :func:`fourth_nf_violations` /
  :func:`decompose_4nf` — the classical decomposition, splitting on a
  violating MVD into ``X ∪ Y`` and ``X ∪ (R − Y)`` (lossless by the
  definition of ↠, which the tests verify on instances via
  :meth:`~repro.core.relation.Relation.natural_join`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.core.attributes import AttributeSet, Schema, iter_bits
from repro.core.relation import Relation
from repro.errors import ReproError
from repro.fd.fd import FD
from repro.fd.keys import is_superkey_for
from repro.fd.normalize import Decomposition, project_fds

__all__ = [
    "MVD",
    "dependency_basis",
    "implies_mvd",
    "fourth_nf_violations",
    "is_4nf",
    "decompose_4nf",
]


class MVD:
    """A multivalued dependency ``X ↠ Y`` over a schema.

    Stored in the normalised form with ``Y`` disjoint from ``X``
    (``X ↠ Y`` and ``X ↠ Y − X`` are equivalent).
    """

    __slots__ = ("_lhs", "_rhs")

    def __init__(self, lhs: AttributeSet, rhs: AttributeSet):
        if lhs.schema != rhs.schema:
            raise ReproError("MVD sides must share a schema")
        self._lhs = lhs
        self._rhs = rhs.difference(lhs)

    @property
    def schema(self) -> Schema:
        return self._lhs.schema

    @property
    def lhs(self) -> AttributeSet:
        return self._lhs

    @property
    def rhs(self) -> AttributeSet:
        return self._rhs

    def complement(self) -> "MVD":
        """``X ↠ R − X − Y`` (the complementation rule)."""
        schema = self.schema
        rest = schema.universe_mask & ~self._lhs.mask & ~self._rhs.mask
        return MVD(self._lhs, AttributeSet(schema, rest))

    def is_trivial(self) -> bool:
        """``Y ⊆ X`` (empty here, by normalisation) or ``X ∪ Y = R``."""
        universe = self.schema.universe_mask
        return (
            self._rhs.mask == 0
            or self._lhs.mask | self._rhs.mask == universe
        )

    def holds_in(self, relation: Relation) -> bool:
        """``r ⊨ X ↠ Y`` — the cross-product criterion.

        For every ``X``-group: the set of (Y-part, Z-part) pairs must be
        exactly the cross product of the group's Y-parts and Z-parts,
        where ``Z = R − X − Y``.
        """
        schema = self.schema
        if relation.schema != schema:
            raise ReproError("relation is over a different schema")
        x_idx = self._lhs.indices()
        y_idx = self._rhs.indices()
        z_mask = schema.universe_mask & ~self._lhs.mask & ~self._rhs.mask
        z_idx = tuple(iter_bits(z_mask))
        groups: Dict[Tuple, Tuple[Set, Set, Set]] = {}
        for row in relation.rows():
            key = tuple(row[i] for i in x_idx)
            y_part = tuple(row[i] for i in y_idx)
            z_part = tuple(row[i] for i in z_idx)
            ys, zs, pairs = groups.setdefault(key, (set(), set(), set()))
            ys.add(y_part)
            zs.add(z_part)
            pairs.add((y_part, z_part))
        return all(
            len(pairs) == len(ys) * len(zs)
            for ys, zs, pairs in groups.values()
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MVD):
            return NotImplemented
        return self._lhs == other._lhs and self._rhs == other._rhs

    def __hash__(self) -> int:
        return hash((self._lhs, self._rhs))

    def __repr__(self) -> str:
        return f"MVD({self})"

    def __str__(self) -> str:
        return f"{self._lhs.compact()} ->> {self._rhs.compact()}"


def _as_mvd_pairs(schema: Schema, fds: Sequence[FD],
                  mvds: Sequence[MVD]) -> List[Tuple[int, int]]:
    """The given dependencies as (lhs_mask, rhs_mask) MVD pairs.

    FDs are converted by the replication rule ``X → Y ⊢ X ↠ Y``, which
    is complete for deriving MVDs from a mixed set.
    """
    pairs = [(fd.lhs.mask, fd.rhs_mask) for fd in fds]
    pairs.extend((mvd.lhs.mask, mvd.rhs.mask) for mvd in mvds)
    return pairs


def dependency_basis(lhs_mask: int, fds: Sequence[FD],
                     mvds: Sequence[MVD], schema: Schema) -> List[int]:
    """Beeri's algorithm: ``DEP(X)`` as a sorted list of block masks.

    Starts from the single block ``R − X`` and refines: a dependency
    ``W ↠ Z`` splits a block ``S`` with ``S ∩ W = ∅`` into ``S ∩ Z`` and
    ``S − Z`` (when both are non-empty), until fixpoint.  ``X ↠ Y``
    holds iff ``Y − X`` is a union of blocks.
    """
    universe = schema.universe_mask
    pairs = _as_mvd_pairs(schema, fds, mvds)
    blocks: List[int] = []
    start = universe & ~lhs_mask
    if start:
        blocks.append(start)
    changed = True
    while changed:
        changed = False
        for w_mask, z_mask in pairs:
            for block in list(blocks):
                if block & w_mask:
                    continue
                inside = block & z_mask
                outside = block & ~z_mask
                if inside and outside:
                    blocks.remove(block)
                    blocks.extend([inside, outside])
                    changed = True
    return sorted(blocks)


def implies_mvd(fds: Sequence[FD], mvds: Sequence[MVD],
                target: MVD) -> bool:
    """Does the mixed set ``F ∪ M`` imply ``X ↠ Y``?

    True iff ``Y − X`` is a union of dependency-basis blocks of ``X``.
    """
    schema = target.schema
    basis = dependency_basis(target.lhs.mask, fds, mvds, schema)
    remaining = target.rhs.mask
    for block in basis:
        if block & remaining == block:
            remaining &= ~block
    return remaining == 0


def fourth_nf_violations(fds: Sequence[FD], mvds: Sequence[MVD],
                         schema: Schema) -> List[MVD]:
    """Non-trivial declared MVDs whose lhs is not a superkey."""
    violations = []
    for mvd in mvds:
        if mvd.is_trivial():
            continue
        if not is_superkey_for(mvd.lhs.mask, list(fds), schema):
            violations.append(mvd)
    return violations


def is_4nf(fds: Sequence[FD], mvds: Sequence[MVD], schema: Schema) -> bool:
    """Fourth normal form w.r.t. the declared FDs and MVDs."""
    return not fourth_nf_violations(fds, mvds, schema)


def decompose_4nf(fds: Sequence[FD], mvds: Sequence[MVD],
                  schema: Schema) -> List[Decomposition]:
    """Classical 4NF decomposition.

    Splits on a violating MVD ``X ↠ Y`` into ``X ∪ Y`` and
    ``X ∪ (R − Y)``; MVDs project onto a fragment when all their
    attributes lie inside it (a sound, standard approximation of MVD
    projection), FDs project exactly via
    :func:`~repro.fd.normalize.project_fds`.
    """
    fds = list(fds)
    worklist: List[Tuple[int, List[MVD]]] = [
        (schema.universe_mask, list(mvds))
    ]
    fragments: List[Decomposition] = []
    while worklist:
        mask, local_mvds = worklist.pop()
        local_fds = project_fds(fds, mask, schema)
        violating = None
        for mvd in local_mvds:
            inside = (mvd.lhs.mask | mvd.rhs.mask) & ~mask == 0
            if not inside or mvd.is_trivial():
                continue
            rest = mask & ~mvd.lhs.mask & ~mvd.rhs.mask
            if not rest:
                continue  # trivial within this fragment
            # Superkey-ness must be relative to the fragment.
            from repro.fd.closure import attribute_closure

            closure = attribute_closure(mvd.lhs.mask, local_fds, schema)
            if closure & mask == mask:
                continue  # lhs is a superkey of the fragment: no violation
            violating = mvd
            break
        if violating is None:
            fragments.append(
                Decomposition(
                    AttributeSet(schema, mask), tuple(local_fds)
                )
            )
            continue
        first = violating.lhs.mask | (violating.rhs.mask & mask)
        second = mask & ~(violating.rhs.mask & mask) | violating.lhs.mask
        for sub_mask in (first, second):
            sub_mvds = [
                mvd for mvd in local_mvds
                if (mvd.lhs.mask | mvd.rhs.mask) & ~sub_mask == 0
                and mvd is not violating
            ]
            worklist.append((sub_mask, sub_mvds))
    fragments.sort(key=lambda d: d.attributes.mask)
    return fragments
