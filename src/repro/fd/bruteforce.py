"""Brute-force minimal FD discovery — the correctness oracle.

Enumerates candidate left-hand sides per attribute in increasing size,
checking each against the relation directly (O(n·p) per check), and
prunes supersets of already-found lhs so only *minimal* FDs are reported.
Exponential in the schema width; intended for the small relations of
tests and property-based checks, where it pins down the semantics that
Dep-Miner and TANE must both match.
"""

from __future__ import annotations

from itertools import combinations
from typing import List

from repro.core.attributes import AttributeSet, Schema
from repro.core.relation import Relation
from repro.errors import ReproError
from repro.fd.fd import FD, sort_fds

__all__ = ["bruteforce_minimal_fds"]

_MAX_WIDTH = 16


def bruteforce_minimal_fds(relation: Relation) -> List[FD]:
    """All minimal non-trivial FDs of *relation*, by exhaustive search."""
    schema = relation.schema
    width = len(schema)
    if width > _MAX_WIDTH:
        raise ReproError(
            f"brute-force discovery is exponential; width {width} > "
            f"{_MAX_WIDTH} (use DepMiner or Tane)"
        )
    fds: List[FD] = []
    for rhs_index in range(width):
        rhs_set = schema.from_mask(1 << rhs_index)
        others = [a for a in range(width) if a != rhs_index]
        found_masks: List[int] = []
        for size in range(0, len(others) + 1):
            for subset in combinations(others, size):
                mask = 0
                for attribute in subset:
                    mask |= 1 << attribute
                if any(mask & found == found for found in found_masks):
                    continue  # a subset already determines rhs
                lhs_set = AttributeSet(schema, mask)
                if relation.satisfies(lhs_set, rhs_set):
                    found_masks.append(mask)
                    fds.append(FD(lhs_set, rhs_index))
    return sort_fds(fds)
