"""Functional dependencies ``X → A``.

The paper works with single-attribute right-hand sides throughout (every
FD set can be decomposed that way), so :class:`FD` has one rhs attribute.
:func:`parse_fd` accepts the usual ``"B C -> A"`` / ``"BC -> A"`` textual
forms for CLI and test convenience.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple, Union

from repro.core.attributes import AttributeSet, Schema
from repro.errors import ReproError, SchemaMismatchError

__all__ = ["FD", "parse_fd", "fds_to_text", "sort_fds"]


class FD:
    """A functional dependency with a set lhs and a single-attribute rhs.

    >>> schema = Schema.of_width(4)
    >>> fd = FD(schema.attribute_set(["B", "C"]), "A")
    >>> str(fd)
    'BC -> A'
    >>> fd.is_trivial()
    False
    """

    __slots__ = ("_lhs", "_rhs_index")

    def __init__(self, lhs: AttributeSet, rhs: Union[str, int]):
        if isinstance(rhs, str):
            rhs_index = lhs.schema.index_of(rhs)
        else:
            lhs.schema.name_of(rhs)  # bounds check
            rhs_index = rhs
        self._lhs = lhs
        self._rhs_index = rhs_index

    @property
    def schema(self) -> Schema:
        return self._lhs.schema

    @property
    def lhs(self) -> AttributeSet:
        """The determinant ``X``."""
        return self._lhs

    @property
    def rhs(self) -> str:
        """The determined attribute ``A`` (name)."""
        return self.schema.name_of(self._rhs_index)

    @property
    def rhs_index(self) -> int:
        return self._rhs_index

    @property
    def rhs_mask(self) -> int:
        return 1 << self._rhs_index

    def is_trivial(self) -> bool:
        """``A ∈ X`` — the FD holds in every relation."""
        return bool(self._lhs.mask & self.rhs_mask)

    def attributes(self) -> AttributeSet:
        """``X ∪ {A}``."""
        return self.schema.from_mask(self._lhs.mask | self.rhs_mask)

    def holds_in(self, relation) -> bool:
        """``r ⊨ X → A``."""
        return relation.satisfies(self._lhs, self.schema.from_mask(self.rhs_mask))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FD):
            return NotImplemented
        return self._lhs == other._lhs and self._rhs_index == other._rhs_index

    def __hash__(self) -> int:
        return hash((self._lhs, self._rhs_index))

    def __repr__(self) -> str:
        return f"FD({self._lhs!r} -> {self.rhs})"

    def __str__(self) -> str:
        return f"{self._lhs.compact()} -> {self.rhs}"


def parse_fd(schema: Schema, text: str) -> FD:
    """Parse ``"B C -> A"``, ``"B,C->A"`` or ``"BC -> A"`` (single-letter
    schemas only for the compact form).

    >>> str(parse_fd(Schema.of_width(4), "BC -> A"))
    'BC -> A'
    """
    if "->" not in text:
        raise ReproError(f"an FD needs '->': {text!r}")
    left, _, right = text.partition("->")
    rhs = right.strip()
    if rhs not in schema:
        raise ReproError(f"unknown rhs attribute {rhs!r} in {text!r}")
    lhs_names = _split_attribute_list(schema, left.strip())
    return FD(schema.attribute_set(lhs_names), rhs)


def _split_attribute_list(schema: Schema, text: str) -> List[str]:
    if not text or text in ("{}", "∅", "0"):
        return []
    for separator in (",", " "):
        if separator in text:
            parts = [part.strip() for part in text.split(separator)]
            return [part for part in parts if part]
    if text in schema:
        return [text]
    # compact single-letter form such as "BC"
    names = list(text)
    unknown = [name for name in names if name not in schema]
    if unknown:
        raise ReproError(
            f"unknown attribute(s) {unknown} in lhs {text!r}"
        )
    return names


def sort_fds(fds: Iterable[FD]) -> List[FD]:
    """Deterministic order: by rhs index, then lhs size, then lhs mask."""
    return sorted(
        fds, key=lambda fd: (fd.rhs_index, len(fd.lhs), fd.lhs.mask)
    )


def fds_to_text(fds: Iterable[FD]) -> str:
    """Render an FD list one per line, in :func:`sort_fds` order."""
    return "\n".join(str(fd) for fd in sort_fds(fds))
