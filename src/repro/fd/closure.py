"""Attribute closure and FD implication.

``X⁺_F`` — the closure of ``X`` under a set ``F`` of FDs — is computed
with the classical linear-time algorithm (Beeri–Bernstein): each FD keeps
a counter of lhs attributes not yet in the closure; when a counter hits
zero the rhs joins the closure and is propagated through an attribute →
FDs index.

Everything here operates on bitmasks plus a :class:`Schema` for width, so
it composes directly with the mining modules.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set

from repro.core.attributes import AttributeSet, Schema, iter_bits
from repro.errors import SchemaMismatchError
from repro.fd.fd import FD

__all__ = [
    "attribute_closure",
    "closure_set",
    "implies",
    "implies_all",
    "equivalent_covers",
    "is_closed",
    "closed_sets",
    "generators",
]


def _check_same_schema(fds: Iterable[FD], schema: Schema) -> None:
    for fd in fds:
        if fd.schema != schema:
            raise SchemaMismatchError(
                "FD {fd} is over a different schema".format(fd=fd)
            )


def attribute_closure(mask: int, fds: Sequence[FD], schema: Schema) -> int:
    """``X⁺_F`` as a bitmask, in time linear in the total FD size."""
    _check_same_schema(fds, schema)
    counters: List[int] = []
    rhs_bits: List[int] = []
    by_attribute: Dict[int, List[int]] = {}
    for fd_index, fd in enumerate(fds):
        missing = fd.lhs.mask & ~mask
        counters.append(len(list(iter_bits(missing))))
        rhs_bits.append(fd.rhs_mask)
        for attribute in iter_bits(missing):
            by_attribute.setdefault(attribute, []).append(fd_index)
    closure = mask
    agenda = [
        fd_index for fd_index, count in enumerate(counters) if count == 0
    ]
    while agenda:
        fd_index = agenda.pop()
        new_bits = rhs_bits[fd_index] & ~closure
        closure |= rhs_bits[fd_index]
        for attribute in iter_bits(new_bits):
            for waiting in by_attribute.get(attribute, ()):
                counters[waiting] -= 1
                if counters[waiting] == 0:
                    agenda.append(waiting)
    return closure


def closure_set(attributes: AttributeSet, fds: Sequence[FD]) -> AttributeSet:
    """Schema-aware convenience wrapper around :func:`attribute_closure`."""
    schema = attributes.schema
    return schema.from_mask(attribute_closure(attributes.mask, fds, schema))


def implies(fds: Sequence[FD], fd: FD) -> bool:
    """``F ⊨ X → A`` — does *fd* follow from *fds* (Armstrong axioms)?"""
    closure = attribute_closure(fd.lhs.mask, fds, fd.schema)
    return bool(closure & fd.rhs_mask)


def implies_all(fds: Sequence[FD], others: Iterable[FD]) -> bool:
    """``F ⊨ G`` for every FD of *others*."""
    return all(implies(fds, fd) for fd in others)


def equivalent_covers(first: Sequence[FD], second: Sequence[FD]) -> bool:
    """Are the two FD sets covers of each other (``F ≡ G``)?"""
    return implies_all(first, second) and implies_all(second, first)


def is_closed(mask: int, fds: Sequence[FD], schema: Schema) -> bool:
    """Is ``X`` closed (``X⁺_F = X``)?"""
    return attribute_closure(mask, fds, schema) == mask


def closed_sets(fds: Sequence[FD], schema: Schema) -> List[int]:
    """``CL(F)`` — every closed attribute set, as sorted bitmasks.

    Exponential in the schema width by nature; intended for the small
    schemas of tests and examples.  Computed as the closure under
    intersection of the maximal proper closed sets, seeded with ``R``.
    """
    width = len(schema)
    universe = schema.universe_mask
    closed: Set[int] = set()
    for mask in range(universe + 1):
        if attribute_closure(mask, fds, schema) == mask:
            closed.add(mask)
    if width > 20:
        raise SchemaMismatchError(
            "closed_sets enumerates 2^width sets; schema too wide"
        )
    return sorted(closed)


def generators(fds: Sequence[FD], schema: Schema) -> List[int]:
    """``GEN(F)`` — the minimal family generating ``CL(F)`` by intersection.

    A closed set belongs to ``GEN(F)`` iff it is *meet-irreducible*: it
    cannot be written as the intersection of strictly larger closed sets.
    [MR86, MR94b] prove ``GEN(F) = MAX(F)``, which the Armstrong
    construction and the tests rely on.  ``R`` itself is excluded (it is
    the empty intersection).
    """
    universe = schema.universe_mask
    family = [mask for mask in closed_sets(fds, schema) if mask != universe]
    result: List[int] = []
    for mask in family:
        strictly_larger = [
            other for other in family + [universe]
            if other != mask and other & mask == mask
        ]
        meet = universe
        for other in strictly_larger:
            meet &= other
        if meet != mask:
            result.append(mask)
    return sorted(result)
