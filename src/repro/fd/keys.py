"""Candidate keys from a set of FDs.

Implements the Lucchesi–Osborn key-enumeration algorithm: starting from a
minimised superkey, every discovered key ``K`` and FD ``X → A`` spawn the
candidate superkey ``X ∪ (K − A)``, which is minimised and added unless a
known key is already contained in it.  Enumerates *all* candidate keys
(their number can be exponential; callers may cap it).

These are keys *with respect to a set of FDs* — the schema-design notion
the paper's "logical tuning" motivation needs — as opposed to
:meth:`repro.core.relation.Relation.is_superkey`, which checks one
relation instance.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.attributes import AttributeSet, Schema, iter_bits
from repro.errors import ReproError
from repro.fd.closure import attribute_closure
from repro.fd.fd import FD

__all__ = [
    "minimize_superkey",
    "candidate_keys",
    "is_superkey_for",
    "is_candidate_key",
    "prime_attributes",
]


def is_superkey_for(mask: int, fds: Sequence[FD], schema: Schema) -> bool:
    """Does ``X⁺_F = R`` hold?"""
    return attribute_closure(mask, fds, schema) == schema.universe_mask


def minimize_superkey(mask: int, fds: Sequence[FD], schema: Schema) -> int:
    """Shrink a superkey to a candidate key (greedy, high bit first)."""
    if not is_superkey_for(mask, fds, schema):
        raise ReproError("cannot minimize: the given set is not a superkey")
    for attribute in sorted(iter_bits(mask), reverse=True):
        candidate = mask & ~(1 << attribute)
        if is_superkey_for(candidate, fds, schema):
            mask = candidate
    return mask


def candidate_keys(fds: Sequence[FD], schema: Schema,
                   limit: Optional[int] = None) -> List[AttributeSet]:
    """All candidate keys of ``(R, F)`` (Lucchesi–Osborn).

    *limit* optionally caps the number of keys returned (the enumeration
    stops early); ``None`` enumerates all.
    """
    fds = list(fds)
    first = minimize_superkey(schema.universe_mask, fds, schema)
    keys: List[int] = [first]
    seen = {first}
    queue = [first]
    while queue:
        if limit is not None and len(keys) >= limit:
            break
        key = queue.pop()
        for fd in fds:
            candidate = fd.lhs.mask | (key & ~fd.rhs_mask)
            if any(existing & candidate == existing for existing in keys):
                continue
            new_key = minimize_superkey(candidate, fds, schema)
            if new_key not in seen:
                seen.add(new_key)
                keys.append(new_key)
                queue.append(new_key)
                if limit is not None and len(keys) >= limit:
                    break
    return [schema.from_mask(mask) for mask in sorted(keys)]


def is_candidate_key(mask: int, fds: Sequence[FD], schema: Schema) -> bool:
    """Is ``X`` a minimal superkey?"""
    if not is_superkey_for(mask, fds, schema):
        return False
    return all(
        not is_superkey_for(mask & ~(1 << attribute), fds, schema)
        for attribute in iter_bits(mask)
    )


def prime_attributes(fds: Sequence[FD], schema: Schema) -> AttributeSet:
    """Attributes belonging to at least one candidate key (2NF/3NF tests)."""
    prime = 0
    for key in candidate_keys(fds, schema):
        prime |= key.mask
    return schema.from_mask(prime)
