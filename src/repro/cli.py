"""Command-line interface: ``python -m repro <command>`` (or ``depminer``).

Commands
--------

``discover``   Mine minimal FDs (and an Armstrong sample) from a CSV file.
``armstrong``  Write the real-world Armstrong relation of a CSV file.
``report``     Full profiling report (FDs, keys, normal forms, sample).
``sample``     Exact FD discovery via guided sampling (large files).
``generate``   Emit a synthetic benchmark relation as CSV.
``bench``      Run one of the paper's experiments (table3..fig7).
``trace``      Analyse traces/manifests: summary, diff, critical-path,
               export-chrome.
``example``    Run the paper's worked example end-to-end.

Every command prints to stdout and exits non-zero on library errors with
a one-line message (no tracebacks for expected failure modes).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.experiments import (
    EXPERIMENTS,
    experiment_report,
    run_experiment,
)
from repro.bench.harness import ALGORITHM_NAMES
from repro.core.depminer import DepMiner
from repro.core.relation import Relation
from repro.datagen.synthetic import generate_relation
from repro.datagen.workloads import SCALES
from repro.errors import ReproError
from repro.fd.fd import fds_to_text
from repro.obs import (
    ConsoleProgress,
    MetricsRegistry,
    Tracer,
    configure_logging,
    export_jsonl,
)
from repro.storage.csv_io import relation_from_csv, relation_to_csv

__all__ = ["main", "build_parser"]


def _add_obs_arguments(subparser: argparse.ArgumentParser) -> None:
    """The shared observability flags (discover / bench / report)."""
    subparser.add_argument(
        "--trace", dest="trace_path", default=None, metavar="PATH",
        help="write a JSONL trace (spans + metrics) of the run to PATH",
    )
    subparser.add_argument(
        "--metrics", action="store_true",
        help="print the collected metrics as a markdown table",
    )
    subparser.add_argument(
        "--progress", action="store_true",
        help="report inner-loop progress on stderr while mining",
    )
    subparser.add_argument(
        "--fault-plan", dest="fault_plan_path", default=None, metavar="PATH",
        help="activate the deterministic fault-injection plan (JSON) at "
             "PATH for this run — chaos-test the reliability layer "
             "(see docs/reliability.md)",
    )
    subparser.add_argument(
        "--telemetry", dest="telemetry_path", nargs="?",
        const="results/telemetry", default=None, metavar="DIR|FILE.json",
        help="write a versioned run manifest — span tree, metrics with "
             "p50/p95/p99, phase timings, environment, relation "
             "fingerprint, RSS/memory peaks — to this directory (default "
             "results/telemetry) or exact .json file; implies tracing and "
             "metrics collection plus a background resource sampler "
             "(see docs/observability.md)",
    )


def _obs_hooks(args: argparse.Namespace):
    """(tracer, metrics, progress, sampler) per the observability flags.

    ``--telemetry`` implies tracing and metrics and starts the
    background resource sampler right away; ``_finish_obs`` stops it
    and writes the manifest.
    """
    fault_plan = getattr(args, "fault_plan_path", None)
    telemetry = getattr(args, "telemetry_path", None)
    tracer = Tracer() if (args.trace_path or telemetry) else None
    metrics = (
        MetricsRegistry()
        if (args.trace_path or args.metrics or fault_plan or telemetry)
        else None
    )
    progress = ConsoleProgress() if args.progress else None
    sampler = None
    if telemetry:
        from repro.obs import ResourceSampler

        sampler = ResourceSampler(tracer=tracer).start()
    return tracer, metrics, progress, sampler


def _fault_context(args: argparse.Namespace, metrics):
    """Context manager activating the requested fault plan (or a no-op)."""
    import contextlib

    path = getattr(args, "fault_plan_path", None)
    if not path:
        return contextlib.nullcontext(None)
    from repro.reliability import fault_plan_active, load_fault_plan

    plan = load_fault_plan(path)
    print(
        f"fault plan {plan.name!r} active: {len(plan.specs)} spec(s), "
        f"seed {plan.seed}", file=sys.stderr,
    )
    return fault_plan_active(plan, metrics=metrics)


def _report_injections(plan) -> None:
    """Summarise what the fault plan actually injected (stderr)."""
    if plan is None:
        return
    total = plan.injected_total()
    per_site = ", ".join(
        f"{site}={count}" for site, count in sorted(plan.injected.items())
    )
    print(
        f"fault plan {plan.name!r}: {total} fault(s) injected"
        + (f" ({per_site})" if per_site else ""),
        file=sys.stderr,
    )


def _telemetry_destination(target: str, command: str):
    """Resolve ``--telemetry`` (a dir or an exact .json path) to a file."""
    import time
    from pathlib import Path

    path = Path(target)
    if path.suffix.lower() == ".json":
        return path
    stamp = time.strftime("%Y%m%dT%H%M%S")
    import os

    return path / f"{command}-{stamp}-{os.getpid()}.json"


def _finish_obs(args: argparse.Namespace, tracer, metrics, meta,
                sampler=None, relation_info=None) -> None:
    """Export trace/manifest and/or print the metrics table, as requested."""
    if sampler is not None:
        sampler.stop()
    if args.trace_path:
        try:
            export_jsonl(args.trace_path, tracer=tracer, metrics=metrics,
                         meta=meta)
        except OSError as error:
            raise ReproError(
                f"cannot write trace to {args.trace_path}: {error}"
            ) from error
        print(f"wrote trace to {args.trace_path}", file=sys.stderr)
    telemetry = getattr(args, "telemetry_path", None)
    if telemetry:
        from repro.obs import RunManifest

        manifest = RunManifest.build(
            command=meta.get("command", args.command),
            tracer=tracer, metrics=metrics, resources=sampler,
            relation=relation_info, meta=meta,
        )
        destination = _telemetry_destination(telemetry, manifest.command)
        try:
            manifest.write(destination)
        except OSError as error:
            raise ReproError(
                f"cannot write run manifest to {destination}: {error}"
            ) from error
        print(f"wrote run manifest to {destination}", file=sys.stderr)
    if args.metrics and metrics is not None:
        print()
        print(metrics.to_markdown())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="depminer",
        description=(
            "Dep-Miner: efficient discovery of functional dependencies "
            "and real-world Armstrong relations (EDBT 2000 reproduction)"
        ),
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="increase log verbosity (-v INFO, -vv DEBUG)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    discover = subparsers.add_parser(
        "discover", help="mine minimal FDs from a CSV file"
    )
    discover.add_argument("csv", help="input CSV file (header row expected)")
    discover.add_argument(
        "--algorithm",
        choices=("couples", "identifiers", "vectorized"),
        default="couples",
        help="agree-set algorithm (couples = Dep-Miner, identifiers = "
             "Dep-Miner 2, vectorized = NumPy fast path)",
    )
    discover.add_argument(
        "--max-couples", type=int, default=None,
        help="memory threshold for the couples algorithm",
    )
    discover.add_argument(
        "--backend",
        choices=("python", "columnar"),
        default="python",
        help="mining backend (python = the classic row-at-a-time "
             "pipeline; columnar = integer-coded NumPy columns with "
             "batch agree-set intersection — identical output, see "
             "docs/columnar.md; falls back to python when NumPy is "
             "missing)",
    )
    discover.add_argument(
        "--transversal",
        choices=("kernel", "vectorized", "levelwise", "berge", "dfs"),
        default="kernel",
        help="transversal algorithm for the LEFT_HAND_SIDE phase "
             "(kernel = reductions + incremental coverage, the default; "
             "vectorized = kernel with the NumPy batch backend; "
             "levelwise = the paper's Algorithm 5; berge/dfs = oracles)",
    )
    discover.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="worker processes for the sharded execution layer "
             "(1 = serial, 0 = all cores; output is identical at any N)",
    )
    discover.add_argument(
        "--mp-context", default=None, metavar="METHOD",
        help="multiprocessing start method for the worker pool (fork or "
             "spawn; default: the platform's preference)",
    )
    discover.add_argument(
        "--armstrong", action="store_true",
        help="also print the real-world Armstrong relation",
    )
    discover.add_argument(
        "--stats", action="store_true",
        help="print phase timings and artefact counts",
    )
    discover.add_argument(
        "--json", dest="json_path", default=None, metavar="PATH",
        help="also write the mined cover as a JSON document (for "
             "'depminer diff')",
    )
    discover.add_argument(
        "--max-lhs", type=int, default=None, metavar="K",
        help="only mine FDs with at most K lhs attributes (wide-schema "
             "mitigation; sound but incomplete)",
    )
    discover.add_argument(
        "--sql-nulls", action="store_true",
        help="treat NULL <> NULL (SQL semantics) instead of grouping "
             "nulls together",
    )
    discover.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed artifact cache directory: re-mining an "
             "unchanged (or row-permuted) file reuses its partitions, "
             "agree sets and FD cover (see docs/caching.md)",
    )
    discover.add_argument(
        "--append", action="append", default=None, metavar="CSV",
        dest="append_paths",
        help="append the rows of this CSV (same header) to the input and "
             "re-mine incrementally — only the new tuple couples are "
             "swept; repeatable, applied in order",
    )
    _add_obs_arguments(discover)

    armstrong = subparsers.add_parser(
        "armstrong", help="write the real-world Armstrong relation of a CSV"
    )
    armstrong.add_argument("csv", help="input CSV file")
    armstrong.add_argument(
        "--output", "-o", default=None,
        help="output CSV path (default: print to stdout)",
    )

    generate = subparsers.add_parser(
        "generate", help="emit a synthetic benchmark relation as CSV"
    )
    generate.add_argument("--attributes", "-a", type=int, required=True)
    generate.add_argument("--tuples", "-t", type=int, required=True)
    generate.add_argument(
        "--correlation", "-c", type=float, default=None,
        help="the paper's c parameter in [0, 1); omit for "
             "'without constraints'",
    )
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--output", "-o", default=None,
        help="output CSV path (default: stdout)",
    )

    bench = subparsers.add_parser(
        "bench", help="run one of the paper's experiments"
    )
    bench.add_argument(
        "--experiment", "-e", choices=sorted(EXPERIMENTS), required=True,
        help="which table/figure to regenerate",
    )
    bench.add_argument(
        "--scale", choices=sorted(SCALES), default="small",
        help="workload scale (paper = the original grid)",
    )
    bench.add_argument(
        "--algorithms", nargs="+",
        choices=tuple(ALGORITHM_NAMES) + ("fdep", "depminer-fast",
                                          "depminer-columnar"),
        default=list(ALGORITHM_NAMES),
    )
    bench.add_argument(
        "--timeout", type=float, default=None,
        help="per-cell time budget in seconds (cells over it print '*')",
    )
    bench.add_argument(
        "--isolated", action="store_true",
        help="run each cell in a forked subprocess with a hard timeout",
    )
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="worker processes for the Dep-Miner variants "
             "(1 = serial, 0 = all cores)",
    )
    bench.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress"
    )
    _add_obs_arguments(bench)

    report = subparsers.add_parser(
        "report", help="full profiling report (FDs, keys, normal forms, "
                       "Armstrong sample) for a CSV file",
    )
    report.add_argument("csv", help="input CSV file")
    report.add_argument(
        "--backend",
        choices=("python", "columnar"),
        default="python",
        help="mining backend for the profiling run; columnar also "
             "switches the CSV load to the streaming ingest path "
             "(identical output; falls back to python when NumPy is "
             "missing)",
    )
    report.add_argument(
        "--output", "-o", default=None,
        help="write the markdown report here (default: stdout)",
    )
    _add_obs_arguments(report)

    sample = subparsers.add_parser(
        "sample", help="exact FD discovery via guided sampling "
                       "(for very large files)",
    )
    sample.add_argument("csv", help="input CSV file")
    sample.add_argument("--sample-size", type=int, default=256)
    sample.add_argument("--seed", type=int, default=0)

    diff = subparsers.add_parser(
        "diff", help="compare two mined FD covers (dependency drift); "
                     "inputs are CSVs to mine or JSON covers from "
                     "'discover --json'",
    )
    diff.add_argument("old", help="old cover: .json document or .csv file")
    diff.add_argument("new", help="new cover: .json document or .csv file")

    keys = subparsers.add_parser(
        "keys", help="discover minimal unique column combinations "
                     "(candidate keys) of a CSV file",
    )
    keys.add_argument("csv", help="input CSV file")
    keys.add_argument(
        "--sql-nulls", action="store_true",
        help="treat NULL <> NULL when grouping",
    )

    inds = subparsers.add_parser(
        "inds", help="discover inclusion dependencies / foreign-key "
                     "candidates across a directory of CSV files",
    )
    inds.add_argument(
        "directory", help="directory of CSV files (one table each)"
    )
    inds.add_argument("--max-arity", type=int, default=2)
    inds.add_argument(
        "--foreign-keys", action="store_true",
        help="only print INDs whose rhs is unique (FK candidates)",
    )

    trace = subparsers.add_parser(
        "trace", help="analyse trace JSONL files and run manifests "
                      "(summary, diff, critical-path, export-chrome)",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    trace_summary = trace_sub.add_parser(
        "summary", help="phase breakdown, hot spans and critical path "
                        "of one trace or manifest",
    )
    trace_summary.add_argument("path", help="trace .jsonl or manifest .json")
    trace_summary.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the summary as JSON instead of text",
    )

    trace_diff = trace_sub.add_parser(
        "diff", help="compare phase timings of two traces/manifests "
                     "(old vs new)",
    )
    trace_diff.add_argument("old", help="old trace .jsonl or manifest .json")
    trace_diff.add_argument("new", help="new trace .jsonl or manifest .json")
    trace_diff.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the diff as JSON instead of a table",
    )

    trace_critical = trace_sub.add_parser(
        "critical-path", help="the heaviest root-to-leaf span chain, "
                              "with per-hop self time",
    )
    trace_critical.add_argument(
        "path", help="trace .jsonl or manifest .json"
    )
    trace_critical.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the path as JSON instead of text",
    )

    trace_chrome = trace_sub.add_parser(
        "export-chrome", help="convert a trace/manifest to Chrome "
                              "trace-event JSON (Perfetto-loadable)",
    )
    trace_chrome.add_argument("path", help="trace .jsonl or manifest .json")
    trace_chrome.add_argument(
        "--output", "-o", required=True, metavar="OUT.json",
        help="where to write the Chrome trace-event file",
    )

    subparsers.add_parser(
        "example", help="run the paper's worked example (section 2-4)"
    )

    serve = subparsers.add_parser(
        "serve", help="run the long-lived discovery daemon "
                      "(HTTP+JSON, concurrent sessions; docs/service.md)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=8765,
        help="TCP port; 0 picks an ephemeral port, printed at startup",
    )
    serve.add_argument(
        "--cache-dir", metavar="DIR",
        help="artifact-store disk tier shared by every session "
             "(default: memory-only)",
    )
    serve.add_argument(
        "--max-sessions", type=int, default=64,
        help="concurrent session bound; full + nothing idle -> HTTP 429",
    )
    serve.add_argument(
        "--session-ttl", type=float, default=3600.0, metavar="SECONDS",
        help="evict sessions idle this long (<= 0 disables eviction)",
    )
    serve.add_argument(
        "--jobs", type=int, default=1,
        help="default worker processes per mining request (0 = all cores)",
    )
    serve.add_argument(
        "--mp-context", default=None, metavar="METHOD",
        help="multiprocessing start method for the daemon's persistent "
             "worker pool (fork or spawn; default: the platform's "
             "preference)",
    )
    serve.add_argument(
        "--backend", choices=("python", "columnar"), default="python",
        help="default mining backend for new sessions",
    )
    serve.add_argument(
        "--telemetry-dir", metavar="DIR",
        help="write one run manifest per request into DIR",
    )
    serve.add_argument(
        "--fault-plan", metavar="PLAN.json",
        help="run the whole server under a reliability fault plan",
    )
    return parser


def _command_discover(args: argparse.Namespace) -> int:
    tracer, metrics, progress, sampler = _obs_hooks(args)
    with _fault_context(args, metrics) as fault_plan:
        result = _run_discover(args, tracer, metrics, progress, sampler)
    _report_injections(fault_plan)
    return result


def _load_mining_input(args: argparse.Namespace, cache, tracer):
    """CSV → mining input: the streaming columnar ingest when the
    columnar backend is active (a :class:`CodedRelation`, factorized
    chunk by chunk, fingerprinted in the same pass when a cache is
    configured, no ``Relation`` built up front), the classic
    ``relation_from_csv`` path otherwise."""
    if getattr(args, "backend", "python") == "columnar":
        from repro.columnar import numpy_available

        if numpy_available():
            from repro.columnar.ingest import ingest_csv

            return ingest_csv(
                args.csv,
                nulls_equal=not getattr(args, "sql_nulls", False),
                fingerprint=cache is not None,
                tracer=tracer,
            )
    return relation_from_csv(args.csv)


def _run_discover(args: argparse.Namespace, tracer, metrics,
                  progress, sampler=None) -> int:
    cache = None
    if args.cache_dir:
        from repro.cache import ArtifactStore

        cache = ArtifactStore(cache_dir=args.cache_dir)
    relation = _load_mining_input(args, cache, tracer)
    miner = DepMiner(
        agree_algorithm=args.algorithm,
        max_couples=args.max_couples,
        backend=args.backend,
        transversal_algorithm=args.transversal,
        build_armstrong="real-world" if args.armstrong else "none",
        nulls_equal=not args.sql_nulls,
        max_lhs_size=args.max_lhs,
        cache=cache,
        jobs=args.jobs,
        mp_context=args.mp_context,
        tracer=tracer,
        metrics=metrics,
        progress=progress,
    )
    if args.append_paths:
        from repro.cache import IncrementalMiner

        incremental = IncrementalMiner(relation, miner=miner)
        for path in args.append_paths:
            extra = relation_from_csv(path)
            if extra.schema.names != relation.schema.names:
                raise ReproError(
                    f"--append file {path} has columns "
                    f"{list(extra.schema.names)}, the input has "
                    f"{list(relation.schema.names)}"
                )
            incremental.append(list(extra.rows()))
            print(
                f"appended {len(extra)} rows from {path} "
                f"({incremental.num_rows} total)", file=sys.stderr,
            )
        result = incremental.result
    else:
        result = miner.run(relation)
    if cache is not None:
        quarantine_note = " [disk tier quarantined]" if cache.quarantined \
            else ""
        print(
            f"cache: {cache.stats['cache.hit']} hit(s), "
            f"{cache.stats['cache.miss']} miss(es) in "
            f"{args.cache_dir}{quarantine_note}",
            file=sys.stderr,
        )
    print(fds_to_text(result.fds))
    if args.armstrong:
        print()
        if result.armstrong is not None:
            print("Real-world Armstrong relation:")
            print(result.armstrong.to_text())
        else:
            print(
                "No real-world Armstrong relation exists (Proposition 1); "
                "classical construction:"
            )
            print(result.classical_armstrong.to_text())
    if args.stats:
        print()
        print(result.summary())
    if args.json_path:
        from pathlib import Path

        from repro.serialize import fds_to_json

        Path(args.json_path).write_text(fds_to_json(result.fds))
        print(f"wrote JSON cover to {args.json_path}", file=sys.stderr)
    relation_info = None
    if getattr(args, "telemetry_path", None):
        from repro.obs import relation_summary

        # A CodedRelation materializes here, and only here: telemetry
        # summaries are row-wise by contract.
        summarized = relation.to_relation() \
            if hasattr(relation, "to_relation") else relation
        relation_info = relation_summary(
            summarized, nulls_equal=not args.sql_nulls, source=args.csv
        )
    _finish_obs(
        args, result.trace, metrics,
        meta={"command": "discover", "input": args.csv,
              "algorithm": args.algorithm, "backend": args.backend,
              "transversal": args.transversal,
              "jobs": args.jobs,
              "mp_context": args.mp_context,
              "cache_dir": args.cache_dir,
              "appended": list(args.append_paths or ())},
        sampler=sampler, relation_info=relation_info,
    )
    return 0


def _load_cover(path_text: str):
    from pathlib import Path

    from repro.core.depminer import discover_fds
    from repro.serialize import fds_from_json

    path = Path(path_text)
    if path.suffix.lower() == ".json":
        return fds_from_json(path.read_text())
    return discover_fds(relation_from_csv(path))


def _command_diff(args: argparse.Namespace) -> int:
    from repro.explain import diff_covers

    old = _load_cover(args.old)
    new = _load_cover(args.new)
    diff = diff_covers(old, new)
    print(diff.render())
    return 0 if diff.is_equivalent else 2


def _command_armstrong(args: argparse.Namespace) -> int:
    relation = relation_from_csv(args.csv)
    result = DepMiner(build_armstrong="strict").run(relation)
    armstrong = result.armstrong
    if args.output:
        relation_to_csv(armstrong, args.output, name="armstrong")
        print(
            f"wrote {len(armstrong)} tuples "
            f"({len(relation)} in the input) to {args.output}"
        )
    else:
        print(armstrong.to_text(max_rows=len(armstrong)))
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    relation = generate_relation(
        args.attributes, args.tuples,
        correlation=args.correlation, seed=args.seed,
    )
    if args.output:
        relation_to_csv(relation, args.output, name="synthetic")
        print(f"wrote {len(relation)} tuples to {args.output}")
    else:
        print(relation.to_text(max_rows=50))
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    progress = None if args.quiet else lambda line: print(line, file=sys.stderr)
    tracer, metrics, miner_progress, sampler = _obs_hooks(args)
    if args.isolated and (tracer or metrics or miner_progress):
        print(
            "note: --isolated cells run in forked subprocesses; their "
            "spans and metrics cannot be collected",
            file=sys.stderr,
        )
    with _fault_context(args, metrics) as fault_plan:
        experiment, result = run_experiment(
            args.experiment, scale=args.scale,
            algorithms=args.algorithms, timeout=args.timeout,
            isolated=args.isolated, seed=args.seed, jobs=args.jobs,
            progress=progress,
            tracer=tracer, metrics=metrics, miner_progress=miner_progress,
        )
    _report_injections(fault_plan)
    print(experiment_report(experiment, result))
    _finish_obs(
        args, tracer, metrics,
        meta={"command": "bench", "experiment": args.experiment,
              "scale": args.scale, "algorithms": list(args.algorithms)},
        sampler=sampler,
    )
    return 0


def _load_trace_file(path_text: str):
    from repro.obs import load_trace

    try:
        return load_trace(path_text)
    except OSError as error:
        raise ReproError(f"cannot read trace {path_text}: {error}") from error
    except ValueError as error:
        raise ReproError(
            f"{path_text} is not a valid trace/manifest: {error}"
        ) from error


def _command_trace(args: argparse.Namespace) -> int:
    import json

    from repro.obs import (
        critical_path,
        diff_traces,
        export_chrome_trace,
        render_diff,
        render_summary,
        summarize_trace,
    )
    from repro.obs.analyze import render_critical_path

    if args.trace_command == "summary":
        loaded = _load_trace_file(args.path)
        summary = summarize_trace(loaded["spans"], loaded.get("phases"))
        if args.as_json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(render_summary(summary, loaded.get("meta")))
        return 0
    if args.trace_command == "critical-path":
        loaded = _load_trace_file(args.path)
        path = critical_path(loaded["spans"])
        if args.as_json:
            print(json.dumps(path, indent=2, sort_keys=True))
        else:
            print(render_critical_path(path))
        return 0
    if args.trace_command == "diff":
        old = _load_trace_file(args.old)
        new = _load_trace_file(args.new)
        diff = diff_traces(old, new)
        if args.as_json:
            print(json.dumps(diff, indent=2, sort_keys=True))
        else:
            print(render_diff(diff))
        return 0
    if args.trace_command == "export-chrome":
        loaded = _load_trace_file(args.path)
        export_chrome_trace(args.output, loaded["spans"],
                            meta=loaded.get("meta"))
        print(f"wrote Chrome trace to {args.output}", file=sys.stderr)
        return 0
    raise ReproError(f"unknown trace subcommand {args.trace_command!r}")


def _command_example(_args: argparse.Namespace) -> int:
    from repro.datasets import paper_example_relation

    relation = paper_example_relation()
    print("Input relation (the employee/department example):")
    print(relation.to_text())
    result = DepMiner().run(relation)
    print()
    print("Agree sets ag(r):")
    print("  " + ", ".join(
        s.compact() for s in result.agree_sets_view()
    ))
    print()
    print("Maximal sets:")
    for name, sets in result.max_sets_view().items():
        print(f"  max(dep(r), {name}) = "
              + "{" + ", ".join(s.compact() for s in sets) + "}")
    print()
    print(f"Minimal non-trivial FDs ({len(result.fds)}):")
    print(fds_to_text(result.fds))
    print()
    print("Real-world Armstrong relation:")
    print(result.armstrong.to_text())
    return 0


def _command_report(args: argparse.Namespace) -> int:
    from repro.report import profile_relation
    from pathlib import Path

    name = Path(args.csv).stem
    tracer, metrics, progress, sampler = _obs_hooks(args)
    with _fault_context(args, metrics) as fault_plan:
        loaded = _load_mining_input(args, None, tracer)
        if hasattr(loaded, "to_relation"):
            relation, source = loaded.to_relation(), loaded
        else:
            relation, source = loaded, None
        miner = DepMiner(backend=args.backend, tracer=tracer,
                         metrics=metrics, progress=progress)
        report = profile_relation(
            relation, name=name, miner=miner, source=source
        )
    _report_injections(fault_plan)
    markdown = report.to_markdown()
    if args.output:
        Path(args.output).write_text(markdown)
        print(f"wrote report to {args.output}")
        print(report.summary_line())
    else:
        print(markdown)
    _finish_obs(
        args, miner.last_trace, metrics,
        meta={"command": "report", "input": args.csv},
        sampler=sampler,
    )
    return 0


def _command_sample(args: argparse.Namespace) -> int:
    from repro.core.sampling import discover_with_sampling

    relation = relation_from_csv(args.csv)
    result = discover_with_sampling(
        relation, sample_size=args.sample_size, seed=args.seed
    )
    print(fds_to_text(result.fds))
    print(
        f"\n(exact cover from a {result.sample_size}-tuple sample of "
        f"{len(relation)}; {result.rounds} round(s), "
        f"{result.verifications} verification scans)"
    )
    return 0


def _command_keys(args: argparse.Namespace) -> int:
    from repro.core.keys_mining import discover_keys

    relation = relation_from_csv(args.csv)
    keys = discover_keys(relation, nulls_equal=not args.sql_nulls)
    if not keys:
        print(
            "no unique column combination exists "
            "(the file contains duplicate rows)"
        )
        return 0
    for key in keys:
        print("(" + ", ".join(key.names) + ")" if key.names else "()")
    print(f"\n{len(keys)} candidate key(s)", file=sys.stderr)
    return 0


def _command_inds(args: argparse.Namespace) -> int:
    from repro.ind import discover_inds, suggest_foreign_keys
    from repro.storage import Database

    db = Database("inds")
    loaded = db.load_directory(args.directory)
    print(
        f"loaded {len(loaded)} table(s): {', '.join(db.table_names())}",
        file=sys.stderr,
    )
    inds = discover_inds(db, max_arity=args.max_arity)
    if args.foreign_keys:
        inds = suggest_foreign_keys(db, inds)
    for ind in inds:
        print(ind)
    kind = "foreign-key candidate(s)" if args.foreign_keys else "IND(s)"
    print(f"\n{len(inds)} {kind}", file=sys.stderr)
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.service import ServiceConfig, serve

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        max_sessions=args.max_sessions,
        session_ttl=args.session_ttl,
        jobs=args.jobs,
        backend=args.backend,
        mp_context=args.mp_context,
        telemetry_dir=args.telemetry_dir,
        fault_plan=args.fault_plan,
    )
    return serve(config)


_COMMANDS = {
    "discover": _command_discover,
    "armstrong": _command_armstrong,
    "generate": _command_generate,
    "bench": _command_bench,
    "report": _command_report,
    "sample": _command_sample,
    "diff": _command_diff,
    "keys": _command_keys,
    "inds": _command_inds,
    "trace": _command_trace,
    "example": _command_example,
    "serve": _command_serve,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.verbose:
        configure_logging(args.verbose)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
