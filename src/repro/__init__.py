"""repro — Dep-Miner: efficient discovery of functional dependencies and
real-world Armstrong relations.

A full reproduction of S. Lopes, J.-M. Petit, L. Lakhal, *"Efficient
Discovery of Functional Dependencies and Armstrong Relations"* (EDBT
2000), including the TANE baseline the paper compares against, the FD
theory toolkit the approach builds on, the synthetic benchmark database,
and a harness regenerating every table and figure of the evaluation.

Quickstart::

    from repro import Relation, Schema, discover

    schema = Schema(["empnum", "depnum", "year", "depname", "mgr"])
    r = Relation.from_rows(schema, [...])
    result = discover(r)
    for fd in result.fds:
        print(fd)
    print(result.armstrong.to_text())

See ``examples/`` for runnable scenarios and ``DESIGN.md`` for the system
inventory.
"""

from repro.core.agree_sets import (
    agree_sets,
    agree_sets_from_couples,
    agree_sets_from_identifiers,
    naive_agree_sets,
)
from repro.core.armstrong import (
    armstrong_size,
    classical_armstrong,
    is_armstrong_for,
    minimum_armstrong_size_bounds,
    real_world_armstrong,
    real_world_armstrong_exists,
    real_world_existence_deficits,
)
from repro.core.attributes import AttributeSet, Schema
from repro.core.depminer import DepMiner, DepMinerResult, discover, discover_fds
from repro.core.lhs import fd_output, left_hand_sides
from repro.core.maximal_sets import (
    complement_maximal_sets,
    max_set_union,
    maximal_sets,
)
from repro.core.ranking import FDEvidence, fd_evidence, rank_fds
from repro.core.relation import Relation
from repro.core.keys_mining import discover_keys
from repro.core.sampling import SamplingResult, discover_with_sampling
from repro.explain import (
    ArmstrongExplanation,
    CoverDiff,
    diff_covers,
    explain_armstrong,
)
from repro.errors import (
    ArmstrongExistenceError,
    BenchmarkError,
    QueryError,
    RelationError,
    ReproError,
    SchemaError,
    SchemaMismatchError,
    StorageError,
)
from repro.fd.fd import FD, parse_fd
from repro.fdep import Fdep, FdepResult
from repro.hypergraph.hypergraph import SimpleHypergraph
from repro.obs import (
    MetricsRegistry,
    ProgressAborted,
    Span,
    Tracer,
    configure_logging,
    get_logger,
)
from repro.partitions.database import StrippedPartitionDatabase
from repro.partitions.partition import StrippedPartition
from repro.report import ProfileReport, profile_relation
from repro.serialize import (
    fds_from_json,
    fds_to_json,
    result_to_dict,
    result_to_json,
)
from repro.tane.tane import Tane, TaneResult
from repro.validate import ValidationReport, validate_result

__version__ = "1.0.0"

__all__ = [
    "AttributeSet",
    "Schema",
    "Relation",
    "StrippedPartition",
    "StrippedPartitionDatabase",
    "SimpleHypergraph",
    "FD",
    "parse_fd",
    "DepMiner",
    "DepMinerResult",
    "discover",
    "discover_fds",
    "discover_with_sampling",
    "SamplingResult",
    "discover_keys",
    "fd_evidence",
    "rank_fds",
    "FDEvidence",
    "Fdep",
    "FdepResult",
    "profile_relation",
    "ProfileReport",
    "fds_to_json",
    "fds_from_json",
    "result_to_json",
    "result_to_dict",
    "validate_result",
    "ValidationReport",
    "explain_armstrong",
    "ArmstrongExplanation",
    "diff_covers",
    "CoverDiff",
    "Tane",
    "TaneResult",
    "Tracer",
    "Span",
    "MetricsRegistry",
    "ProgressAborted",
    "get_logger",
    "configure_logging",
    "agree_sets",
    "agree_sets_from_couples",
    "agree_sets_from_identifiers",
    "naive_agree_sets",
    "maximal_sets",
    "complement_maximal_sets",
    "max_set_union",
    "left_hand_sides",
    "fd_output",
    "classical_armstrong",
    "is_armstrong_for",
    "armstrong_size",
    "minimum_armstrong_size_bounds",
    "real_world_armstrong",
    "real_world_armstrong_exists",
    "real_world_existence_deficits",
    "ReproError",
    "SchemaError",
    "SchemaMismatchError",
    "RelationError",
    "ArmstrongExistenceError",
    "StorageError",
    "QueryError",
    "BenchmarkError",
    "__version__",
]
