"""The run manifest: one versioned JSON artifact per mining run.

A :class:`RunManifest` unifies everything the observability layer knows
about one run into a single queryable document:

- the **span tree** (tree-ordered ``Span.to_record`` dicts) and the
  derived **phase timings**;
- the full **metrics snapshot** (counters / gauges / histograms with
  p50/p95/p99) plus a **per-subsystem grouping** — ``cache.*``,
  ``parallel.*``, ``transversal.*``, ``reliability.*`` … keyed by the
  first dotted component — so the cache hit rate, shard retries and
  kernel reduction stats of a run live next to its timings;
- an **environment capture** (Python / NumPy versions, platform, CPU
  count, repro version);
- the optional **relation fingerprint** from :mod:`repro.cache` and the
  optional **resource summary** from
  :class:`~repro.obs.resources.ResourceSampler`.

The serialized form is versioned (``repro-run-manifest`` / version 1),
key-sorted and round-trip stable: ``RunManifest.from_json(m.to_json())``
re-serializes byte-identically.  ``scripts/check_regression.py`` emits
one manifest per bench suite into ``results/telemetry/``; the CLI's
``--telemetry`` flag emits one per command; ``repro trace summary``
reads either manifests or raw trace JSONL.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span, Tracer

__all__ = [
    "MANIFEST_FORMAT",
    "MANIFEST_VERSION",
    "RunManifest",
    "capture_environment",
    "group_metrics",
    "relation_summary",
    "validate_manifest",
]

MANIFEST_FORMAT = "repro-run-manifest"
MANIFEST_VERSION = 1

_EMPTY_SNAPSHOT: Dict[str, Dict[str, Any]] = {
    "counters": {}, "gauges": {}, "histograms": {},
}


def capture_environment() -> Dict[str, Any]:
    """The reproducibility context of the current process."""
    try:
        from repro import __version__ as repro_version
    except Exception:  # pragma: no cover - partial installs
        repro_version = None
    try:
        import numpy

        numpy_version: Optional[str] = numpy.__version__
    except ImportError:
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy_version,
        "repro": repro_version,
        "argv0": sys.argv[0] if sys.argv else None,
    }


def group_metrics(snapshot: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
    """Group a :meth:`MetricsRegistry.snapshot` by subsystem prefix.

    ``cache.hit`` lands under ``{"cache": {"counters": {"cache.hit":
    ...}}}`` and so on; the prefix is the first dotted component, or
    the whole name for prefix-less metrics.
    """
    grouped: Dict[str, Dict[str, Dict[str, Any]]] = {}
    for kind in ("counters", "gauges", "histograms"):
        for name, value in snapshot.get(kind, {}).items():
            subsystem = name.split(".", 1)[0]
            grouped.setdefault(subsystem, {}).setdefault(kind, {})[name] = \
                value
    return grouped


def relation_summary(relation: Any, nulls_equal: bool = True,
                     source: Optional[str] = None) -> Dict[str, Any]:
    """The manifest's ``relation`` section, fingerprint included.

    Uses the row-permutation-invariant content fingerprint from
    :mod:`repro.cache.fingerprint`, so two manifests describe the same
    data iff their fingerprints match — regardless of row order.
    """
    from repro.cache.fingerprint import fingerprint_relation

    return {
        "fingerprint": fingerprint_relation(relation, nulls_equal),
        "attributes": len(relation.schema),
        "rows": len(relation),
        "nulls_equal": nulls_equal,
        "source": source,
    }


def _span_records(tracer: Optional[Union[Tracer, List[Any]]]) -> List[Dict]:
    if tracer is None:
        return []
    if isinstance(tracer, Tracer):
        spans: List[Any] = list(tracer.iter_tree())
    else:
        spans = list(tracer)
    return [
        span.to_record() if isinstance(span, Span) else dict(span)
        for span in spans
    ]


@dataclass
class RunManifest:
    """One run's telemetry, ready to serialize (see the module doc)."""

    command: str
    created_unix: float
    status: str = "ok"
    meta: Dict[str, Any] = field(default_factory=dict)
    environment: Dict[str, Any] = field(default_factory=dict)
    relation: Optional[Dict[str, Any]] = None
    phases: Dict[str, float] = field(default_factory=dict)
    spans: List[Dict[str, Any]] = field(default_factory=list)
    metrics: Dict[str, Dict[str, Any]] = field(
        default_factory=lambda: {k: dict(v)
                                 for k, v in _EMPTY_SNAPSHOT.items()}
    )
    subsystems: Dict[str, Any] = field(default_factory=dict)
    resources: Optional[Dict[str, Any]] = None

    # -- construction -------------------------------------------------------

    @classmethod
    def build(cls, command: str,
              tracer: Optional[Union[Tracer, List[Any]]] = None,
              metrics: Optional[MetricsRegistry] = None,
              resources: Optional[Any] = None,
              relation: Optional[Dict[str, Any]] = None,
              meta: Optional[Dict[str, Any]] = None,
              created_unix: Optional[float] = None) -> "RunManifest":
        """Assemble a manifest from live observability objects.

        *tracer* may be a :class:`Tracer` (disabled tracers yield an
        empty span section), a span list, or ``None``; *resources* a
        :class:`~repro.obs.resources.ResourceSampler` or a pre-built
        summary dict.
        """
        spans = _span_records(tracer)
        phases: Dict[str, float] = {}
        for record in spans:
            if record.get("attrs", {}).get("phase"):
                phases[record["name"]] = record["duration"]
        status = "ok"
        if any(record.get("status") == "error" for record in spans):
            status = "error"
        snapshot = (
            metrics.snapshot() if metrics is not None
            else {k: dict(v) for k, v in _EMPTY_SNAPSHOT.items()}
        )
        if resources is not None and hasattr(resources, "summary"):
            resources = resources.summary()
        return cls(
            command=command,
            created_unix=(
                created_unix if created_unix is not None else time.time()
            ),
            status=status,
            meta=dict(meta or {}),
            environment=capture_environment(),
            relation=relation,
            phases=phases,
            spans=spans,
            metrics=snapshot,
            subsystems=group_metrics(snapshot),
            resources=resources,
        )

    # -- derived views ------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        """Wall time: the longest root span, falling back to phase sum."""
        roots = [s["duration"] for s in self.spans if s.get("depth") == 0]
        if roots:
            return max(roots)
        return sum(self.phases.values())

    def phase_fractions(self) -> Dict[str, float]:
        """Each phase's share of the phase-time total (sums to 1)."""
        total = sum(self.phases.values())
        if not total:
            return {name: 0.0 for name in self.phases}
        return {name: value / total for name, value in self.phases.items()}

    def counter(self, name: str, default: float = 0) -> float:
        return self.metrics.get("counters", {}).get(name, default)

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "command": self.command,
            "created_unix": self.created_unix,
            "status": self.status,
            "meta": self.meta,
            "environment": self.environment,
            "relation": self.relation,
            "phases": self.phases,
            "spans": self.spans,
            "metrics": self.metrics,
            "subsystems": self.subsystems,
            "resources": self.resources,
        }

    def to_json(self) -> str:
        return json.dumps(
            self.to_dict(), indent=2, sort_keys=True, default=str
        ) + "\n"

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "RunManifest":
        problems = validate_manifest(document)
        if problems:
            raise ValueError(
                "invalid run manifest: " + "; ".join(problems)
            )
        return cls(
            command=document["command"],
            created_unix=document["created_unix"],
            status=document.get("status", "ok"),
            meta=document.get("meta", {}),
            environment=document.get("environment", {}),
            relation=document.get("relation"),
            phases=document.get("phases", {}),
            spans=document.get("spans", []),
            metrics=document.get("metrics", dict(_EMPTY_SNAPSHOT)),
            subsystems=document.get("subsystems", {}),
            resources=document.get("resources"),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        return cls.from_dict(json.loads(text))

    def write(self, path: Union[str, Path]) -> Path:
        """Serialize to *path*, creating parent directories."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunManifest":
        return cls.from_json(Path(path).read_text())

    def __repr__(self) -> str:
        return (
            f"RunManifest({self.command!r}, status={self.status}, "
            f"{len(self.spans)} spans, {len(self.phases)} phases)"
        )


def validate_manifest(document: Dict[str, Any]) -> List[str]:
    """Schema check of a manifest dict; returns problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["manifest must be a JSON object"]
    if document.get("format") != MANIFEST_FORMAT:
        problems.append(
            f"format must be {MANIFEST_FORMAT!r}, "
            f"got {document.get('format')!r}"
        )
    if document.get("version") != MANIFEST_VERSION:
        problems.append(
            f"version must be {MANIFEST_VERSION}, "
            f"got {document.get('version')!r}"
        )
    if not document.get("command"):
        problems.append("manifest without a command")
    if not isinstance(document.get("created_unix"), (int, float)):
        problems.append("created_unix must be a number")
    if document.get("status") not in ("ok", "error"):
        problems.append(
            f"status must be 'ok' or 'error', got {document.get('status')!r}"
        )
    phases = document.get("phases", {})
    if not isinstance(phases, dict):
        problems.append("phases must be an object")
    else:
        for name, value in phases.items():
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(f"phase {name!r} has invalid duration "
                                f"{value!r}")
    spans = document.get("spans", [])
    if not isinstance(spans, list):
        problems.append("spans must be a list")
    else:
        seen: set = set()
        for index, record in enumerate(spans):
            if not isinstance(record, dict) or "id" not in record:
                problems.append(f"span #{index} is not a span record")
                continue
            parent = record.get("parent_id")
            if parent is not None and parent not in seen:
                problems.append(
                    f"span #{index} ({record.get('name')!r}) exported "
                    f"before its parent {parent}"
                )
            seen.add(record["id"])
    metrics = document.get("metrics", _EMPTY_SNAPSHOT)
    if not isinstance(metrics, dict) or not \
            set(metrics) >= {"counters", "gauges", "histograms"}:
        problems.append(
            "metrics must hold counters/gauges/histograms sections"
        )
    return problems
