"""Trace and metrics exporters: JSONL, flame-style text, markdown.

The canonical on-disk format is **trace JSONL**: one JSON object per
line, each carrying a ``type`` discriminator —

- ``{"type": "meta", "format": "repro-trace", "version": 1, ...}``
  exactly once, as the first line;
- ``{"type": "span", "id", "parent_id", "name", "depth", "start",
  "end", "duration", "status", "error", "memory_delta", "attrs", ...}``
  one per finished span, parents before children (tree order);
- ``{"type": "metric", "kind": "counter" | "gauge" | "histogram",
  "name", "value"}`` one per metric at export time.

``scripts/check_trace.py`` (and ``make trace-smoke``) validate this
schema via :func:`validate_records`; :func:`parse_jsonl` is the
round-trip reader the tests and the bench figures use.  The flame text
and markdown renderers are human-oriented views over the same spans.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span, Tracer

__all__ = [
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "trace_records",
    "dumps_jsonl",
    "export_jsonl",
    "parse_jsonl",
    "validate_records",
    "flame_text",
    "spans_markdown",
]

TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1

_SPAN_REQUIRED = ("id", "name", "depth", "start", "duration", "status",
                  "attrs")
_METRIC_KINDS = ("counter", "gauge", "histogram")


def _span_records(source: Union[Tracer, Sequence[Span]]) -> List[Dict[str, Any]]:
    if isinstance(source, Tracer):
        spans = list(source.iter_tree())
    else:
        spans = list(source)
    return [
        span.to_record() if isinstance(span, Span) else dict(span)
        for span in spans
    ]


def trace_records(tracer: Optional[Union[Tracer, Sequence[Span]]] = None,
                  metrics: Optional[MetricsRegistry] = None,
                  meta: Optional[Dict[str, Any]] = None) -> List[Dict[str, Any]]:
    """The full record list of one export (meta + spans + metrics)."""
    head: Dict[str, Any] = {
        "type": "meta",
        "format": TRACE_FORMAT,
        "version": TRACE_VERSION,
        "created_unix": time.time(),
    }
    if meta:
        head.update(meta)
    records: List[Dict[str, Any]] = [head]
    if tracer is not None:
        records.extend(_span_records(tracer))
    if metrics is not None:
        records.extend(metrics.to_records())
    return records


def dumps_jsonl(records: Sequence[Dict[str, Any]]) -> str:
    """Records → JSONL text (one compact JSON object per line)."""
    return "\n".join(
        json.dumps(record, sort_keys=True, default=_json_default)
        for record in records
    ) + "\n"


def _json_default(value: Any) -> Any:
    if hasattr(value, "to_dict"):
        return value.to_dict()
    return str(value)


def export_jsonl(path: Union[str, Path],
                 tracer: Optional[Union[Tracer, Sequence[Span]]] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 meta: Optional[Dict[str, Any]] = None) -> str:
    """Write a trace JSONL file; returns the text written."""
    text = dumps_jsonl(trace_records(tracer, metrics, meta))
    Path(path).write_text(text)
    return text


def parse_jsonl(text: str) -> Dict[str, List[Dict[str, Any]]]:
    """JSONL text → ``{"meta": [...], "spans": [...], "metrics": [...]}``."""
    out: Dict[str, List[Dict[str, Any]]] = {
        "meta": [], "spans": [], "metrics": [], "other": [],
    }
    for line in text.splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        kind = record.get("type")
        if kind == "meta":
            out["meta"].append(record)
        elif kind == "span":
            out["spans"].append(record)
        elif kind == "metric":
            out["metrics"].append(record)
        else:
            out["other"].append(record)
    return out


def validate_records(records: Sequence[Dict[str, Any]]) -> List[str]:
    """Schema check; returns a list of problems (empty = valid)."""
    problems: List[str] = []
    if not records:
        return ["trace is empty"]
    head = records[0]
    if head.get("type") != "meta":
        problems.append("first record must have type 'meta'")
    elif head.get("format") != TRACE_FORMAT:
        problems.append(
            f"meta.format must be {TRACE_FORMAT!r}, got {head.get('format')!r}"
        )
    span_ids = {
        record["id"]
        for record in records
        if record.get("type") == "span" and "id" in record
    }
    for index, record in enumerate(records):
        kind = record.get("type")
        where = f"line {index + 1}"
        if kind == "meta":
            if index != 0:
                problems.append(f"{where}: duplicate meta record")
        elif kind == "span":
            missing = [key for key in _SPAN_REQUIRED if key not in record]
            if missing:
                problems.append(f"{where}: span missing keys {missing}")
                continue
            if record.get("end") is not None and \
                    record["end"] < record["start"]:
                problems.append(f"{where}: span ends before it starts")
            if record["duration"] < 0:
                problems.append(f"{where}: negative span duration")
            parent = record.get("parent_id")
            if parent is not None and parent not in span_ids:
                problems.append(
                    f"{where}: parent_id {parent} references no span"
                )
            if record["status"] not in ("ok", "error"):
                problems.append(
                    f"{where}: status must be 'ok' or 'error', "
                    f"got {record['status']!r}"
                )
        elif kind == "metric":
            if record.get("kind") not in _METRIC_KINDS:
                problems.append(
                    f"{where}: metric kind must be one of {_METRIC_KINDS}"
                )
            if not record.get("name"):
                problems.append(f"{where}: metric without a name")
            if "value" not in record:
                problems.append(f"{where}: metric without a value")
        else:
            problems.append(f"{where}: unknown record type {kind!r}")
    return problems


def _as_records(spans: Union[Tracer, Sequence[Any]]) -> List[Dict[str, Any]]:
    if isinstance(spans, Tracer):
        return _span_records(spans)
    return [
        span.to_record() if isinstance(span, Span) else dict(span)
        for span in spans
    ]


def flame_text(spans: Union[Tracer, Sequence[Any]], width: int = 40) -> str:
    """Flame-style text summary: indented span tree with duration bars.

    *spans* may be a :class:`Tracer`, a span sequence or parsed span
    records; the bar of each span is proportional to its share of the
    root's duration.
    """
    records = _as_records(spans)
    if not records:
        return "(no spans)"
    total = max(
        (r["duration"] for r in records if r.get("depth") == 0),
        default=max(r["duration"] for r in records),
    ) or 1.0
    lines = []
    for record in records:
        share = min(record["duration"] / total, 1.0)
        bar = "█" * max(int(round(share * width)), 1)
        error = "  [ERROR]" if record.get("status") == "error" else ""
        lines.append(
            f"{'  ' * record['depth']}{record['name']:<{max(2, 28 - 2 * record['depth'])}} "
            f"{record['duration'] * 1000:9.3f} ms  {bar}{error}"
        )
    return "\n".join(lines)


def spans_markdown(spans: Union[Tracer, Sequence[Any]]) -> str:
    """Markdown table of spans (for reports)."""
    records = _as_records(spans)
    lines = ["| span | depth | duration (s) | status |", "|---|---|---|---|"]
    for record in records:
        indent = "&nbsp;&nbsp;" * record["depth"]
        lines.append(
            f"| {indent}{record['name']} | {record['depth']} | "
            f"{record['duration']:.6f} | {record['status']} |"
        )
    return "\n".join(lines)
