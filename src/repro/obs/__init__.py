"""``repro.obs`` — structured observability for the mining pipelines.

One package gathers the four instruments every miner and the bench
harness share:

- :mod:`repro.obs.tracer` — span-based tracing (:class:`Tracer`,
  :class:`Span`): nested, thread-safe, wall-clock (+ optional
  ``tracemalloc``) timings that survive mid-pipeline exceptions;
- :mod:`repro.obs.metrics` — counters / gauges / histograms
  (:class:`MetricsRegistry`) for artefact cardinalities such as
  ``agree.couples_enumerated`` or ``transversal.level_size``;
- :mod:`repro.obs.progress` — abortable progress callbacks
  (:func:`emit_progress`, :class:`ProgressAborted`) for the
  long-running inner loops;
- :mod:`repro.obs.exporters` — JSONL trace dump, flame-style text and
  markdown renderers, plus the schema validator behind
  ``make trace-smoke``;
- :mod:`repro.obs.manifest` — the versioned :class:`RunManifest`
  unifying span tree, metrics, phase timings, environment capture,
  relation fingerprint and resource summary into one JSON artifact;
- :mod:`repro.obs.resources` — the background-thread
  :class:`ResourceSampler` (RSS + ``tracemalloc``, per-phase peaks);
- :mod:`repro.obs.analyze` — trace summaries, critical-path
  extraction, cross-run aggregation, trace diffing and the Chrome
  trace-event (Perfetto) exporter behind ``repro trace ...``;
- :mod:`repro.obs.logsetup` — the ``repro.<component>`` logger
  hierarchy (:func:`get_logger`) and the CLI's ``-v``-driven
  :func:`configure_logging`.

Everything defaults to *off*: :data:`NULL_TRACER` and
:data:`NULL_METRICS` make the instrumentation calls no-ops, and the
overhead benchmark (``benchmarks/bench_obs_overhead.py``) holds the
disabled path under 2% of pipeline time.  See ``docs/observability.md``
for the full API tour.
"""

from __future__ import annotations

from repro.obs.exporters import (
    TRACE_FORMAT,
    TRACE_VERSION,
    dumps_jsonl,
    export_jsonl,
    flame_text,
    parse_jsonl,
    spans_markdown,
    trace_records,
    validate_records,
)
from repro.obs.analyze import (
    aggregate_phases,
    chrome_trace_events,
    critical_path,
    diff_traces,
    export_chrome_trace,
    load_trace,
    render_diff,
    render_summary,
    summarize_trace,
)
from repro.obs.logsetup import configure_logging, get_logger, verbosity_to_level
from repro.obs.manifest import (
    MANIFEST_FORMAT,
    MANIFEST_VERSION,
    RunManifest,
    capture_environment,
    group_metrics,
    relation_summary,
    validate_manifest,
)
from repro.obs.metrics import NULL_METRICS, HistogramSummary, MetricsRegistry
from repro.obs.progress import (
    ConsoleProgress,
    ProgressAborted,
    ProgressCallback,
    emit_progress,
)
from repro.obs.resources import ResourceSampler, rss_bytes
from repro.obs.tracer import NULL_TRACER, Span, Tracer

__all__ = [
    # tracer
    "Tracer",
    "Span",
    "NULL_TRACER",
    # metrics
    "MetricsRegistry",
    "HistogramSummary",
    "NULL_METRICS",
    # progress
    "ProgressAborted",
    "ProgressCallback",
    "emit_progress",
    "ConsoleProgress",
    # exporters
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "trace_records",
    "dumps_jsonl",
    "export_jsonl",
    "parse_jsonl",
    "validate_records",
    "flame_text",
    "spans_markdown",
    # manifest
    "MANIFEST_FORMAT",
    "MANIFEST_VERSION",
    "RunManifest",
    "capture_environment",
    "group_metrics",
    "relation_summary",
    "validate_manifest",
    # resources
    "ResourceSampler",
    "rss_bytes",
    # analysis
    "load_trace",
    "summarize_trace",
    "render_summary",
    "critical_path",
    "aggregate_phases",
    "diff_traces",
    "render_diff",
    "chrome_trace_events",
    "export_chrome_trace",
    # logging
    "get_logger",
    "configure_logging",
    "verbosity_to_level",
]
