"""Lightweight metrics registry: counters, gauges and histograms.

The miners report cardinalities of their intermediate artefacts here —
``agree.couples_enumerated``, ``lhs.candidates_generated``,
``transversal.level_size``, ``partition.stripped_classes`` … — so the
bench harness and the CLI can account for *work done*, not just wall
time.  A disabled registry (:data:`NULL_METRICS`) turns every update
into an attribute lookup plus an immediate return, cheap enough to leave
the instrumentation unconditionally in the hot paths.

Three instrument kinds:

- **counter** — monotonically increasing total (:meth:`MetricsRegistry.inc`);
- **gauge** — last-written value (:meth:`MetricsRegistry.gauge`);
- **histogram** — running count/sum/min/max of observed values
  (:meth:`MetricsRegistry.observe`) plus a fixed-size log-scale bucket
  sketch from which streaming **p50/p95/p99** estimates are derived —
  enough for the level-size style distributions the paper's figures
  discuss without ever storing raw samples.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, List, Optional, Union

__all__ = ["HistogramSummary", "MetricsRegistry", "NULL_METRICS"]

Number = Union[int, float]

#: Geometric growth factor of the quantile-sketch buckets.  Bucket ``i``
#: covers ``[BASE**i, BASE**(i+1))``; reporting a bucket's geometric
#: midpoint bounds the relative quantile error at ``sqrt(BASE) - 1``
#: (~7%), with memory proportional to the observed dynamic range only.
_QUANTILE_BASE = 1.15
_LOG_BASE = math.log(_QUANTILE_BASE)
#: The quantiles every export surfaces.
QUANTILES = (0.5, 0.95, 0.99)


def _bucket_index(value: Number) -> int:
    return int(math.floor(math.log(value) / _LOG_BASE))


class HistogramSummary:
    """Running summary of observed values (no stored samples).

    Alongside count/sum/min/max, a log-scale bucket sketch supports
    :meth:`quantile` estimates (p50/p95/p99 in every export) in O(log
    dynamic-range) memory.  Values ``<= 0`` (rare for the cardinality
    metrics this registry holds) are tracked in a dedicated underflow
    bucket and attributed to the recorded minimum.
    """

    __slots__ = ("count", "total", "min", "max", "buckets", "nonpositive")

    def __init__(self):
        self.count = 0
        self.total: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None
        self.buckets: Dict[int, int] = {}
        self.nonpositive = 0

    def observe(self, value: Number) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if value > 0:
            index = _bucket_index(value)
            self.buckets[index] = self.buckets.get(index, 0) + 1
        else:
            self.nonpositive += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[Number]:
        """Streaming estimate of the *q*-quantile (``0 < q <= 1``).

        Exact when every observation landed in one bucket (or all were
        equal); otherwise the geometric midpoint of the bucket holding
        the target rank, clamped to the true ``[min, max]``.
        """
        if not self.count:
            return None
        if self.min == self.max:
            return self.min
        rank = max(1, math.ceil(q * self.count))
        cumulative = self.nonpositive
        if rank <= cumulative:
            return self.min
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if rank <= cumulative:
                estimate = _QUANTILE_BASE ** (index + 0.5)
                return min(max(estimate, self.min), self.max)
        return self.max

    def merge(self, summary: Dict[str, Any]) -> None:
        """Fold a serialised :meth:`to_dict` into this summary."""
        if not summary.get("count"):
            return
        self.count += summary["count"]
        self.total += summary["sum"]
        self.min = (
            summary["min"] if self.min is None
            else min(self.min, summary["min"])
        )
        self.max = (
            summary["max"] if self.max is None
            else max(self.max, summary["max"])
        )
        self.nonpositive += summary.get("nonpositive", 0)
        for key, count in (summary.get("buckets") or {}).items():
            index = int(key)
            self.buckets[index] = self.buckets.get(index, 0) + count

    def to_dict(self) -> Dict[str, Any]:
        quantiles = {
            f"p{int(q * 100)}": self.quantile(q) for q in QUANTILES
        }
        out: Dict[str, Any] = {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }
        out.update(quantiles)
        # JSON object keys must be strings; merge() accepts either.
        out["buckets"] = {
            str(index): self.buckets[index] for index in sorted(self.buckets)
        }
        out["nonpositive"] = self.nonpositive
        return out

    def __repr__(self) -> str:
        return (
            f"HistogramSummary(count={self.count}, sum={self.total}, "
            f"min={self.min}, max={self.max})"
        )


class MetricsRegistry:
    """Thread-safe registry of named counters, gauges and histograms."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.counters: Dict[str, Number] = {}
        self.gauges: Dict[str, Number] = {}
        self.histograms: Dict[str, HistogramSummary] = {}
        self._lock = threading.Lock()

    # -- updates ------------------------------------------------------------

    def inc(self, name: str, value: Number = 1) -> None:
        """Add *value* to counter *name* (creating it at zero)."""
        if not self.enabled:
            return
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: Number) -> None:
        """Set gauge *name* to *value* (last write wins)."""
        if not self.enabled:
            return
        with self._lock:
            self.gauges[name] = value

    def observe(self, name: str, value: Number) -> None:
        """Record one sample into histogram *name*."""
        if not self.enabled:
            return
        with self._lock:
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = HistogramSummary()
            histogram.observe(value)

    def merge_histogram(self, name: str,
                        summary: Dict[str, Any]) -> None:
        """Fold a serialised summary (:meth:`HistogramSummary.to_dict`)
        into histogram *name* — how worker-process observations reach
        the parent registry (see :mod:`repro.parallel`).  Quantile
        sketch buckets merge losslessly; summaries from older producers
        without a ``buckets`` section still merge (their quantiles then
        lean on min/max clamping alone)."""
        if not self.enabled or not summary.get("count"):
            return
        with self._lock:
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = HistogramSummary()
            histogram.merge(summary)

    # -- queries ------------------------------------------------------------

    def names(self) -> List[str]:
        """Every metric name seen so far, sorted."""
        with self._lock:
            return sorted(
                set(self.counters) | set(self.gauges) | set(self.histograms)
            )

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """JSON-ready dump of the whole registry."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "histograms": {
                    name: histogram.to_dict()
                    for name, histogram in self.histograms.items()
                },
            }

    def to_records(self) -> List[Dict[str, Any]]:
        """One JSON-ready record per metric (the exporters' lines)."""
        snapshot = self.snapshot()
        records: List[Dict[str, Any]] = []
        for name in sorted(snapshot["counters"]):
            records.append({
                "type": "metric", "kind": "counter", "name": name,
                "value": snapshot["counters"][name],
            })
        for name in sorted(snapshot["gauges"]):
            records.append({
                "type": "metric", "kind": "gauge", "name": name,
                "value": snapshot["gauges"][name],
            })
        for name in sorted(snapshot["histograms"]):
            records.append({
                "type": "metric", "kind": "histogram", "name": name,
                "value": snapshot["histograms"][name],
            })
        return records

    def to_markdown(self) -> str:
        """Markdown table of every metric (for reports and ``--metrics``)."""
        lines = ["| metric | kind | value |", "|---|---|---|"]
        for record in self.to_records():
            value = record["value"]
            if record["kind"] == "histogram":
                value = (
                    f"count={value['count']}, sum={value['sum']}, "
                    f"min={value['min']}, max={value['max']}, "
                    f"mean={value['mean']:.2f}, "
                    f"p50={value['p50']:.2f}, p95={value['p95']:.2f}, "
                    f"p99={value['p99']:.2f}"
                )
            lines.append(f"| {record['name']} | {record['kind']} | {value} |")
        return "\n".join(lines)

    def clear(self) -> None:
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"MetricsRegistry({state}, {len(self.names())} metrics)"


#: Shared disabled registry: every update returns immediately.
NULL_METRICS = MetricsRegistry(enabled=False)
