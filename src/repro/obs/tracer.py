"""Span-based tracing for the mining pipelines.

A :class:`Tracer` collects :class:`Span` records — named, nested,
wall-clock-timed sections of work — from any number of threads.  Spans
are opened with a context manager (or the :meth:`Tracer.wrap` decorator)
and always close, even when the guarded code raises: the span is then
marked ``status="error"`` but its duration is recorded, which is what
guarantees partial traces survive pipeline failures (e.g. an
:class:`~repro.errors.ArmstrongExistenceError` in step 5 no longer
discards the timings of steps 1–4).

Design constraints, in order:

1. *Cheap when disabled.*  ``Tracer(enabled=False)`` (or the shared
   :data:`NULL_TRACER`) returns a singleton no-op context manager from
   :meth:`Tracer.span`; no objects are allocated per call.
2. *Thread-safe.*  The current-span stack is thread-local, the finished
   list is guarded by a lock, so the benchmark harness can trace cells
   running on worker threads into one tracer.
3. *Self-describing.*  Every span carries ``name``, ``start``/``end``
   (``time.perf_counter`` based), a wall-clock ``start_unix``, its
   ``parent_id``/``depth``, free-form ``attrs`` and an optional
   ``tracemalloc`` memory delta.  The exporters
   (:mod:`repro.obs.exporters`) serialize exactly these fields.
"""

from __future__ import annotations

import functools
import threading
import time
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer", "NULL_TRACER"]


class Span:
    """One timed section of work.  Created by :meth:`Tracer.span`."""

    __slots__ = (
        "span_id", "parent_id", "name", "depth", "attrs",
        "start", "end", "start_unix", "status", "error", "memory_delta",
        "_memory_start",
    )

    def __init__(self, span_id: int, parent_id: Optional[int], name: str,
                 depth: int, attrs: Dict[str, Any]):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.depth = depth
        self.attrs = attrs
        self.start = 0.0
        self.end: Optional[float] = None
        self.start_unix = 0.0
        self.status = "ok"
        self.error: Optional[str] = None
        self.memory_delta: Optional[int] = None
        self._memory_start: Optional[int] = None

    @property
    def duration(self) -> float:
        """Elapsed seconds (up to *now* while the span is still open)."""
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start

    @property
    def finished(self) -> bool:
        return self.end is not None

    def to_record(self) -> Dict[str, Any]:
        """JSON-ready dict — the exporters' span line."""
        return {
            "type": "span",
            "id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "depth": self.depth,
            "start": self.start,
            "end": self.end,
            "start_unix": self.start_unix,
            "duration": self.duration,
            "status": self.status,
            "error": self.error,
            "memory_delta": self.memory_delta,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.duration:.6f}s, "
            f"depth={self.depth}, status={self.status})"
        )


class _SpanContext:
    """Context manager that opens/closes one span on a tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, _tb) -> bool:
        self._tracer._pop(self._span, exc)
        return False  # never swallow the exception


class _NullSpan:
    """Inert stand-in yielded when tracing is disabled."""

    __slots__ = ()
    name = "<disabled>"
    duration = 0.0
    status = "ok"
    attrs: Dict[str, Any] = {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans; share one per pipeline run (or per process).

    Parameters
    ----------
    enabled:
        ``False`` turns :meth:`span` into a no-op returning a shared
        inert context manager — the zero-overhead path.
    trace_memory:
        Record a ``tracemalloc`` memory delta per span.  Starts
        ``tracemalloc`` on demand (and remembers whether it did, so
        :meth:`close` only stops what it started).  Adds measurable
        overhead; off by default.
    """

    def __init__(self, enabled: bool = True, trace_memory: bool = False):
        self.enabled = enabled
        self.trace_memory = trace_memory
        self.spans: List[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 0
        self._started_tracemalloc = False
        # Innermost currently-open spans flagged phase=True, across all
        # threads (phases are sequential in practice).  Read by the
        # resource sampler thread for per-phase attribution.
        self._phase_stack: List[str] = []
        if enabled and trace_memory:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True

    # -- span lifecycle -----------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Open a named span: ``with tracer.span("lhs", width=5): ...``."""
        if not self.enabled:
            return _NULL_SPAN
        parent = self.current_span
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        span = Span(
            span_id=span_id,
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            depth=parent.depth + 1 if parent is not None else 0,
            attrs=attrs,
        )
        return _SpanContext(self, span)

    def record(self, name: str, seconds: float, **attrs: Any) -> Optional[Span]:
        """Append an already-measured span (work done elsewhere).

        The parallel execution layer uses this to attribute work that
        ran in a worker *process*: the worker's own spans die with the
        child, so the parent re-records each shard from the duration
        reported through the result queue.  The synthetic span becomes a
        child of the currently open span (if any) and ends *now*, i.e.
        ``start`` is back-dated by *seconds* — but never past the
        parent's own start: a relayed shard that (by pool scheduling
        jitter) reports more seconds than its parent has been open is
        clamped to the parent's window, so child intervals always nest
        exactly and trace validators need no containment tolerance.
        The full reported duration survives in ``attrs["seconds"]``
        whenever the clamp shortens the span.
        """
        if not self.enabled:
            return None
        parent = self.current_span
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        span = Span(
            span_id=span_id,
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            depth=parent.depth + 1 if parent is not None else 0,
            attrs=attrs,
        )
        span.end = time.perf_counter()
        span.start = span.end - seconds
        span.start_unix = time.time() - seconds
        if parent is not None and span.start < parent.start:
            attrs.setdefault("seconds", seconds)
            span.start = parent.start
            span.start_unix = max(span.start_unix, parent.start_unix)
        with self._lock:
            self.spans.append(span)
        return span

    def wrap(self, name: Optional[str] = None, **attrs: Any) -> Callable:
        """Decorator form: ``@tracer.wrap("phase")``."""

        def decorator(function: Callable) -> Callable:
            span_name = name or function.__qualname__

            @functools.wraps(function)
            def wrapper(*args, **kwargs):
                with self.span(span_name, **attrs):
                    return function(*args, **kwargs)

            return wrapper

        return decorator

    def _push(self, span: Span) -> None:
        if self.trace_memory:
            import tracemalloc

            if tracemalloc.is_tracing():
                span._memory_start = tracemalloc.get_traced_memory()[0]
        span.start_unix = time.time()
        span.start = time.perf_counter()
        stack = self._stack()
        stack.append(span)
        if span.attrs.get("phase"):
            with self._lock:
                self._phase_stack.append(span.name)

    def _pop(self, span: Span, exc: Optional[BaseException]) -> None:
        span.end = time.perf_counter()
        if exc is not None:
            span.status = "error"
            span.error = f"{type(exc).__name__}: {exc}"
        if span._memory_start is not None:
            import tracemalloc

            if tracemalloc.is_tracing():
                span.memory_delta = (
                    tracemalloc.get_traced_memory()[0] - span._memory_start
                )
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # exotic unwinding: drop it wherever it is
            stack.remove(span)
        with self._lock:
            if span.attrs.get("phase"):
                for index in range(len(self._phase_stack) - 1, -1, -1):
                    if self._phase_stack[index] == span.name:
                        del self._phase_stack[index]
                        break
            self.spans.append(span)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    # -- queries ------------------------------------------------------------

    @property
    def current_span(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    @property
    def active_phase(self) -> Optional[str]:
        """Name of the innermost open ``phase=True`` span, from any
        thread (``None`` outside phases).  This is what the resource
        sampler (:mod:`repro.obs.resources`) reads to attribute memory
        samples to pipeline phases."""
        with self._lock:
            return self._phase_stack[-1] if self._phase_stack else None

    def mark(self) -> int:
        """Index into the finished-span list; slice later with [mark:]."""
        with self._lock:
            return len(self.spans)

    def finished_spans(self, since: int = 0) -> List[Span]:
        """Finished spans (appended in completion order), from *since*."""
        with self._lock:
            return list(self.spans[since:])

    def roots(self, since: int = 0) -> List[Span]:
        return [s for s in self.finished_spans(since) if s.parent_id is None]

    def find(self, name: str, since: int = 0) -> List[Span]:
        return [s for s in self.finished_spans(since) if s.name == name]

    def iter_tree(self, since: int = 0) -> Iterator[Span]:
        """Spans in depth-first tree order (parents before children)."""
        spans = self.finished_spans(since)
        children: Dict[Optional[int], List[Span]] = {}
        for span in spans:
            children.setdefault(span.parent_id, []).append(span)
        for siblings in children.values():
            siblings.sort(key=lambda s: s.start)
        present = {span.span_id for span in spans}

        def walk(parent_key: Optional[int]) -> Iterator[Span]:
            for span in children.get(parent_key, []):
                yield span
                yield from walk(span.span_id)

        yield from walk(None)
        # Spans whose parent never finished (partial traces) come last.
        for span in spans:
            if span.parent_id is not None and span.parent_id not in present:
                yield span
                yield from walk(span.span_id)

    def phase_seconds(self, since: int = 0) -> Dict[str, float]:
        """``{name: duration}`` for spans flagged ``phase=True``.

        This is the view :class:`~repro.core.depminer.DepMinerResult`
        (and the TANE/FDEP result objects) expose as ``phase_seconds``;
        repeated phases (shared tracers) keep the *latest* duration.
        """
        out: Dict[str, float] = {}
        for span in self.finished_spans(since):
            if span.attrs.get("phase"):
                out[span.name] = span.duration
        return out

    def close(self) -> None:
        """Stop tracemalloc if this tracer started it."""
        if self._started_tracemalloc:
            import tracemalloc

            tracemalloc.stop()
            self._started_tracemalloc = False

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({state}, {len(self.spans)} finished spans)"


#: Shared disabled tracer: ``span()`` allocates nothing.
NULL_TRACER = Tracer(enabled=False)
