"""Progress callbacks for the long-running inner loops.

The couple enumeration of the agree-set phase, the levelwise transversal
search and TANE's lattice walk can all run for minutes on large inputs.
They periodically call a user-supplied callback::

    def callback(stage: str, done: int, total: Optional[int]) -> Optional[bool]

with the loop's stage name, a monotone work counter and (when known) the
total amount of work.  Returning ``False`` — and only literally
``False``; ``None`` (an ordinary ``print``-style callback) continues —
aborts the computation by raising :class:`ProgressAborted`, which
derives from :class:`~repro.errors.ReproError` so existing CLI error
handling reports it cleanly.

:func:`emit_progress` is the helper the instrumented loops use;
:class:`ConsoleProgress` is the CLI's stderr reporter.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Optional

from repro.errors import ReproError

__all__ = ["ProgressAborted", "ProgressCallback", "emit_progress",
           "ConsoleProgress"]

#: Callback signature: ``(stage, done, total) -> None | bool``.
ProgressCallback = Callable[[str, int, Optional[int]], Optional[bool]]


class ProgressAborted(ReproError):
    """A progress callback returned ``False``: the run was cancelled."""

    def __init__(self, stage: str, done: int,
                 total: Optional[int] = None):
        of_total = f" of {total}" if total is not None else ""
        super().__init__(
            f"aborted by progress callback during {stage!r} "
            f"({done}{of_total} units done)"
        )
        self.stage = stage
        self.done = done
        self.total = total


def emit_progress(callback: Optional[ProgressCallback], stage: str,
                  done: int, total: Optional[int] = None) -> None:
    """Invoke *callback* (if any); raise :class:`ProgressAborted` on
    ``False``."""
    if callback is None:
        return
    if callback(stage, done, total) is False:
        raise ProgressAborted(stage, done, total)


class ConsoleProgress:
    """Rate-limited progress printer (the CLI's ``--progress`` flag).

    Prints at most one line per *interval* seconds per stage, plus the
    first report of each stage, to *stream* (stderr by default).
    """

    def __init__(self, stream=None, interval: float = 0.1):
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self._last_emit = {}

    def __call__(self, stage: str, done: int,
                 total: Optional[int] = None) -> None:
        now = time.monotonic()
        last = self._last_emit.get(stage)
        if last is not None and now - last < self.interval:
            return
        self._last_emit[stage] = now
        if total:
            percent = 100.0 * done / total
            print(
                f"[{stage}] {done}/{total} ({percent:.0f}%)",
                file=self.stream,
            )
        else:
            print(f"[{stage}] {done}", file=self.stream)
