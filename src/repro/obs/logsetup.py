"""Unified logger naming and CLI-driven configuration.

Every module of the library obtains its logger through
:func:`get_logger`, which collapses dotted module paths onto the
``repro.<component>`` hierarchy the docs promise:

>>> get_logger("repro.tane.tane").name
'repro.tane'
>>> get_logger("repro.partitions.database").name
'repro.partitions'
>>> get_logger("repro.core.depminer").name
'repro.depminer'

i.e. the logger is named after the subpackage — except for
``repro.core``, whose modules are the pipeline's named algorithms and
log under their own module name (``repro.depminer``, ``repro.agree_sets``,
…), preserving the names the test-suite and downstream handlers already
filter on.

:func:`configure_logging` maps the CLI's ``-v`` count onto levels for
the whole ``repro`` tree (0 → WARNING, 1 → INFO, ≥2 → DEBUG) and is
idempotent: re-invocations replace the handler it installed rather than
stacking duplicates.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

__all__ = ["get_logger", "configure_logging", "verbosity_to_level"]

_HANDLER_MARKER = "_repro_obs_handler"

_LOG_FORMAT = "%(asctime)s %(name)s %(levelname)s: %(message)s"


def get_logger(module_name: str) -> logging.Logger:
    """Logger for *module_name*, normalized to ``repro.<component>``.

    Call as ``get_logger(__name__)``.  Names outside the ``repro``
    package are passed through unchanged.
    """
    parts = module_name.split(".")
    if parts[0] != "repro" or len(parts) == 1:
        return logging.getLogger(module_name)
    component = parts[1]
    if component == "core" and len(parts) > 2:
        component = parts[2]
    return logging.getLogger(f"repro.{component}")


def verbosity_to_level(verbosity: int) -> int:
    """``-v`` count → logging level (0 WARNING, 1 INFO, ≥2 DEBUG)."""
    if verbosity <= 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def configure_logging(verbosity: int = 0, stream=None,
                      fmt: Optional[str] = None) -> logging.Logger:
    """Configure the ``repro`` logger tree for console output.

    Installs (or replaces) one :class:`~logging.StreamHandler` on the
    ``repro`` root logger and sets its level from *verbosity*.  Returns
    the configured logger.
    """
    root = logging.getLogger("repro")
    level = verbosity_to_level(verbosity)
    root.setLevel(level)
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_MARKER, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(
        stream if stream is not None else sys.stderr
    )
    handler.setLevel(level)
    handler.setFormatter(logging.Formatter(fmt or _LOG_FORMAT))
    setattr(handler, _HANDLER_MARKER, True)
    root.addHandler(handler)
    return root
