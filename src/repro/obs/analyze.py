"""Trace analysis: summaries, critical paths, diffs, Chrome export.

Everything here operates on **span records** (``Span.to_record`` dicts)
so the same analyses run on live tracers, parsed trace JSONL files and
run manifests alike.  :func:`load_trace` is the CLI's entry point: it
auto-detects the two on-disk formats (``repro-trace`` JSONL,
``repro-run-manifest`` JSON) and normalizes both to
``{"meta", "spans", "metrics"}``.

Four analyses back the ``repro trace`` subcommands:

- :func:`summarize_trace` — totals, error counts, per-phase breakdown
  and hot spans, aggregated by span name;
- :func:`critical_path` — the heaviest root-to-leaf chain, with self
  time (duration minus child time) per hop, which is where an
  optimization pays;
- :func:`diff_traces` — per-phase and per-span-name comparison of two
  runs (the regression gate's attribution engine);
- :func:`aggregate_phases` — cross-run phase statistics over many
  traces or manifests.

:func:`chrome_trace_events` / :func:`export_chrome_trace` emit the
Chrome trace-event JSON format, loadable in Perfetto / ``about:tracing``
alongside the existing flame/JSONL exporters.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.obs.exporters import parse_jsonl
from repro.obs.manifest import MANIFEST_FORMAT, RunManifest
from repro.obs.tracer import Span, Tracer

__all__ = [
    "load_trace",
    "critical_path",
    "summarize_trace",
    "render_summary",
    "aggregate_phases",
    "diff_traces",
    "render_diff",
    "chrome_trace_events",
    "export_chrome_trace",
]

SpanSource = Union[Tracer, Sequence[Any], Dict[str, Any]]


def _records(source: SpanSource) -> List[Dict[str, Any]]:
    if isinstance(source, Tracer):
        return [span.to_record() for span in source.iter_tree()]
    if isinstance(source, dict):  # a load_trace() document
        source = source.get("spans", [])
    return [
        span.to_record() if isinstance(span, Span) else dict(span)
        for span in source
    ]


def load_trace(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a trace JSONL file *or* a run manifest JSON file.

    Returns ``{"meta": dict, "spans": [records], "metrics": [records],
    "phases": {name: seconds}, "kind": "trace" | "manifest"}``.
    """
    text = Path(path).read_text()
    document: Optional[Dict[str, Any]] = None
    if text.lstrip()[:1] == "{":
        # A manifest is one big JSON object; trace JSONL fails this
        # parse at line 2 ("Extra data") and falls through.
        try:
            parsed_document = json.loads(text)
        except json.JSONDecodeError:
            parsed_document = None
        if isinstance(parsed_document, dict) and \
                parsed_document.get("format") == MANIFEST_FORMAT:
            document = parsed_document
    if document is not None:
        manifest = RunManifest.from_dict(document)
        metric_records = []
        for kind_name, kind in (("counter", "counters"),
                                ("gauge", "gauges"),
                                ("histogram", "histograms")):
            for name in sorted(manifest.metrics.get(kind, {})):
                metric_records.append({
                    "type": "metric", "kind": kind_name, "name": name,
                    "value": manifest.metrics[kind][name],
                })
        return {
            "kind": "manifest",
            "meta": {"command": manifest.command,
                     "status": manifest.status,
                     **manifest.meta},
            "spans": manifest.spans,
            "metrics": metric_records,
            "phases": dict(manifest.phases),
        }
    parsed = parse_jsonl(text)
    phases = {
        record["name"]: record["duration"]
        for record in parsed["spans"]
        if record.get("attrs", {}).get("phase")
    }
    return {
        "kind": "trace",
        "meta": parsed["meta"][0] if parsed["meta"] else {},
        "spans": parsed["spans"],
        "metrics": parsed["metrics"],
        "phases": phases,
    }


# -- critical path ----------------------------------------------------------

def critical_path(source: SpanSource) -> List[Dict[str, Any]]:
    """The heaviest root-to-leaf chain of the span tree.

    Starting from the longest root, each hop descends into the child
    with the largest duration.  Every hop reports ``self_seconds``
    (duration minus the time spent in its children — the part only
    optimizable at that span) and ``share`` of the root's duration.
    """
    records = _records(source)
    if not records:
        return []
    children: Dict[Optional[int], List[Dict[str, Any]]] = {}
    for record in records:
        children.setdefault(record.get("parent_id"), []).append(record)
    roots = children.get(None, [])
    if not roots:  # partial trace: treat the longest span as the root
        roots = [max(records, key=lambda r: r["duration"])]
    node = max(roots, key=lambda r: r["duration"])
    total = node["duration"] or 1.0
    path = []
    while node is not None:
        kids = children.get(node.get("id"), [])
        child_seconds = sum(k["duration"] for k in kids)
        path.append({
            "name": node["name"],
            "id": node.get("id"),
            "duration": node["duration"],
            "self_seconds": max(node["duration"] - child_seconds, 0.0),
            "share": min(node["duration"] / total, 1.0),
            "status": node.get("status", "ok"),
        })
        node = max(kids, key=lambda r: r["duration"]) if kids else None
    return path


# -- summary ----------------------------------------------------------------

def summarize_trace(source: SpanSource,
                    phases: Optional[Dict[str, float]] = None
                    ) -> Dict[str, Any]:
    """Aggregate one trace: totals, errors, phases, hot span names."""
    records = _records(source)
    if phases is None and isinstance(source, dict):
        phases = dict(source.get("phases") or {})
    if phases is None:
        phases = {
            record["name"]: record["duration"]
            for record in records
            if record.get("attrs", {}).get("phase")
        }
    by_name: Dict[str, Dict[str, Any]] = {}
    for record in records:
        entry = by_name.setdefault(
            record["name"], {"count": 0, "total_seconds": 0.0, "errors": 0}
        )
        entry["count"] += 1
        entry["total_seconds"] += record["duration"]
        if record.get("status") == "error":
            entry["errors"] += 1
    roots = [r["duration"] for r in records if r.get("depth") == 0]
    total = max(roots) if roots else sum(phases.values())
    hot = sorted(
        ({"name": name, **entry} for name, entry in by_name.items()),
        key=lambda e: e["total_seconds"], reverse=True,
    )
    return {
        "span_count": len(records),
        "error_count": sum(
            1 for r in records if r.get("status") == "error"
        ),
        "total_seconds": total,
        "phases": dict(phases),
        "hot_spans": hot[:10],
        "critical_path": critical_path(records),
    }


def render_summary(summary: Dict[str, Any],
                   meta: Optional[Dict[str, Any]] = None) -> str:
    """Human-readable ``repro trace summary`` text."""
    lines = []
    if meta and meta.get("command"):
        lines.append(f"command: {meta['command']}")
    lines.append(
        f"spans: {summary['span_count']} "
        f"({summary['error_count']} error(s)); "
        f"total {summary['total_seconds'] * 1000:.3f} ms"
    )
    phases = summary["phases"]
    if phases:
        phase_total = sum(phases.values()) or 1.0
        lines.append("phases:")
        for name, seconds in sorted(
                phases.items(), key=lambda item: -item[1]):
            lines.append(
                f"  {name:<14} {seconds * 1000:9.3f} ms "
                f"({seconds / phase_total:6.1%})"
            )
    path = summary["critical_path"]
    if path:
        lines.append("critical path:")
        lines.append(render_critical_path(path, indent="  "))
    return "\n".join(lines)


def render_critical_path(path: List[Dict[str, Any]],
                         indent: str = "") -> str:
    lines = []
    for depth, hop in enumerate(path):
        error = "  [ERROR]" if hop["status"] == "error" else ""
        lines.append(
            f"{indent}{'  ' * depth}{hop['name']:<{max(2, 24 - 2 * depth)}} "
            f"{hop['duration'] * 1000:9.3f} ms  "
            f"(self {hop['self_seconds'] * 1000:8.3f} ms, "
            f"{hop['share']:6.1%}){error}"
        )
    return "\n".join(lines)


# -- cross-run aggregation --------------------------------------------------

def aggregate_phases(phase_dicts: Sequence[Dict[str, float]]
                     ) -> Dict[str, Dict[str, float]]:
    """Per-phase count/min/max/mean/total across many runs."""
    out: Dict[str, Dict[str, float]] = {}
    for phases in phase_dicts:
        for name, seconds in phases.items():
            entry = out.setdefault(
                name, {"count": 0, "total": 0.0,
                       "min": float("inf"), "max": 0.0}
            )
            entry["count"] += 1
            entry["total"] += seconds
            entry["min"] = min(entry["min"], seconds)
            entry["max"] = max(entry["max"], seconds)
    for entry in out.values():
        entry["mean"] = entry["total"] / entry["count"]
    return out


# -- diffing ----------------------------------------------------------------

def diff_traces(old: Dict[str, Any], new: Dict[str, Any]
                ) -> Dict[str, Any]:
    """Compare two loaded traces (:func:`load_trace` outputs).

    Produces per-phase rows (old/new seconds, delta, ratio) plus a
    per-span-name aggregate comparison; phases present in only one run
    get ``None`` on the other side.
    """
    old_summary = summarize_trace(old["spans"], old.get("phases"))
    new_summary = summarize_trace(new["spans"], new.get("phases"))
    rows = []
    names = sorted(set(old_summary["phases"]) | set(new_summary["phases"]))
    for name in names:
        before = old_summary["phases"].get(name)
        after = new_summary["phases"].get(name)
        ratio = (
            after / before
            if before and after is not None and before > 0 else None
        )
        rows.append({
            "phase": name,
            "old_seconds": before,
            "new_seconds": after,
            "delta_seconds": (
                after - before
                if before is not None and after is not None else None
            ),
            "ratio": ratio,
        })
    by_name = {}
    old_names = {e["name"]: e for e in old_summary["hot_spans"]}
    for entry in new_summary["hot_spans"]:
        before = old_names.get(entry["name"])
        if before is not None:
            by_name[entry["name"]] = {
                "old_seconds": before["total_seconds"],
                "new_seconds": entry["total_seconds"],
            }
    return {
        "total": {
            "old_seconds": old_summary["total_seconds"],
            "new_seconds": new_summary["total_seconds"],
            "ratio": (
                new_summary["total_seconds"] / old_summary["total_seconds"]
                if old_summary["total_seconds"] else None
            ),
        },
        "phases": rows,
        "spans": by_name,
    }


def render_diff(diff: Dict[str, Any]) -> str:
    """Human-readable ``repro trace diff`` table."""
    total = diff["total"]
    ratio = total["ratio"]
    lines = [
        f"total: {total['old_seconds'] * 1000:.3f} ms -> "
        f"{total['new_seconds'] * 1000:.3f} ms"
        + (f"  ({ratio:.2f}x)" if ratio else ""),
        "| phase | old (ms) | new (ms) | delta (ms) | ratio |",
        "|---|---|---|---|---|",
    ]
    for row in diff["phases"]:
        old_ms = (
            f"{row['old_seconds'] * 1000:.3f}"
            if row["old_seconds"] is not None else "-"
        )
        new_ms = (
            f"{row['new_seconds'] * 1000:.3f}"
            if row["new_seconds"] is not None else "-"
        )
        delta = (
            f"{row['delta_seconds'] * 1000:+.3f}"
            if row["delta_seconds"] is not None else "-"
        )
        ratio_text = (
            f"{row['ratio']:.2f}x" if row["ratio"] is not None else "-"
        )
        lines.append(
            f"| {row['phase']} | {old_ms} | {new_ms} | {delta} "
            f"| {ratio_text} |"
        )
    return "\n".join(lines)


# -- Chrome trace-event export ----------------------------------------------

def chrome_trace_events(source: SpanSource) -> List[Dict[str, Any]]:
    """Span records as Chrome trace-event ``"X"`` (complete) events.

    Timestamps are microseconds relative to the earliest span, so the
    file opens at t=0 in Perfetto / ``about:tracing``.  Error spans are
    colored via ``cname`` and every span's attrs travel in ``args``.
    """
    records = _records(source)
    if not records:
        return []
    origin = min(record["start"] for record in records)
    events = []
    for record in records:
        duration = record["duration"]
        event: Dict[str, Any] = {
            "name": record["name"],
            "ph": "X",
            "ts": round((record["start"] - origin) * 1e6, 3),
            "dur": round(duration * 1e6, 3),
            "pid": 1,
            "tid": 1,
            "cat": "phase" if record.get("attrs", {}).get("phase")
                   else "span",
            "args": {
                **record.get("attrs", {}),
                "status": record.get("status", "ok"),
            },
        }
        if record.get("status") == "error":
            event["cname"] = "terrible"
            if record.get("error"):
                event["args"]["error"] = record["error"]
        events.append(event)
    return events


def export_chrome_trace(path: Union[str, Path], source: SpanSource,
                        meta: Optional[Dict[str, Any]] = None) -> str:
    """Write a Perfetto-loadable Chrome trace JSON file; returns text."""
    document = {
        "traceEvents": chrome_trace_events(source),
        "displayTimeUnit": "ms",
        "otherData": dict(meta or {}),
    }
    text = json.dumps(document, indent=2, sort_keys=True, default=str)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text + "\n")
    return text
