"""Background resource sampling: RSS and ``tracemalloc`` over time.

A :class:`ResourceSampler` runs a daemon thread that periodically
records the process's resident set size (and, when ``tracemalloc`` is
tracing, the traced heap) together with the pipeline phase that was
active at sample time.  Each sample also sums the RSS of the process's
live direct children (:func:`children_rss_bytes`), so worker-pool
memory — which lives outside the parent — shows up in the summary's
``children_rss_peak_bytes`` / ``rss_total_peak_bytes`` fields.  Its :meth:`~ResourceSampler.summary` — peak and
per-phase memory — is what :class:`repro.obs.manifest.RunManifest`
embeds under ``"resources"``.

Design constraints:

1. *Cheap.*  One sample is a single ``/proc/self/statm`` read (a few
   microseconds on Linux); the default 10 ms interval keeps the sampler
   well inside the ``BENCH_obs.json`` telemetry budget.  ``tracemalloc``
   is only consulted when it is already tracing (or the caller opted in
   with ``trace_allocations=True``) because *starting* it is the
   expensive part.
2. *Portable.*  Where ``/proc`` is unavailable the sampler falls back to
   ``resource.getrusage`` peak-RSS, and where that is missing too it
   degrades to phase bookkeeping only (``summary()["rss_supported"]``
   says which you got).  Nothing is ever a hard error.
3. *Useful on tiny runs.*  ``stop()`` always takes one final sample, so
   even a run shorter than the interval yields a non-empty summary.

Per-phase attribution reads :attr:`repro.obs.tracer.Tracer.active_phase`
— the innermost currently-open span flagged ``phase=True`` — so samples
land in the ``strip`` / ``agree_sets`` / ``lhs`` / … buckets without the
pipeline knowing the sampler exists.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["ResourceSampler", "children_rss_bytes", "rss_bytes"]

#: Bytes per page for the ``/proc/self/statm`` fast path.
try:
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (ValueError, OSError, AttributeError):  # pragma: no cover
    _PAGE_SIZE = 4096

_STATM = "/proc/self/statm"


def rss_bytes() -> Optional[int]:
    """Current resident set size in bytes, or ``None`` when unknowable.

    Tries ``/proc/self/statm`` (Linux: current RSS), then
    ``resource.getrusage`` (POSIX: *peak* RSS — still monotone, so peaks
    derived from it remain correct).
    """
    try:
        with open(_STATM, "rb") as handle:
            return int(handle.read().split()[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is KiB on Linux, bytes on macOS.
        return peak if sys.platform == "darwin" else peak * 1024
    except Exception:  # pragma: no cover - exotic platforms
        return None


def _child_pids() -> Optional[List[int]]:
    """Direct child PIDs from ``/proc/self/task/*/children``, or ``None``
    when that interface is unavailable (non-Linux)."""
    try:
        task_ids = os.listdir("/proc/self/task")
    except OSError:
        return None
    pids: List[int] = []
    for task in task_ids:
        try:
            with open(f"/proc/self/task/{task}/children", "rb") as handle:
                pids.extend(int(pid) for pid in handle.read().split())
        except (OSError, ValueError):
            continue
    return pids


def children_rss_bytes() -> Optional[int]:
    """Summed resident set size of live direct children, in bytes.

    Worker-pool memory lives in the *children* of the mining process, so
    the parent's own RSS wildly understates a parallel run.  Sums the
    current ``/proc/<pid>/statm`` RSS over the direct children named by
    ``/proc/self/task/*/children`` (racy against pool churn, but each
    read is atomic and a vanished child is simply skipped).  Where
    ``/proc`` is unavailable, falls back to
    ``getrusage(RUSAGE_CHILDREN).ru_maxrss`` — the *peak* RSS of any
    single **reaped** child, which is monotone but zero until a child
    exits.  Returns ``None`` only when neither source exists.
    """
    pids = _child_pids()
    if pids is not None:
        total = 0
        for pid in pids:
            try:
                with open(f"/proc/{pid}/statm", "rb") as handle:
                    total += int(handle.read().split()[1]) * _PAGE_SIZE
            except (OSError, IndexError, ValueError):
                continue
        return total
    try:  # pragma: no cover - non-Linux fallback
        import resource

        peak = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
        return peak if sys.platform == "darwin" else peak * 1024
    except Exception:  # pragma: no cover - exotic platforms
        return None


class ResourceSampler:
    """Samples RSS (+ traced heap) on a background thread.

    Parameters
    ----------
    interval:
        Seconds between samples (default 10 ms).
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer`; when given, each
        sample is attributed to ``tracer.active_phase`` and the summary
        gains a ``per_phase`` breakdown.
    trace_allocations:
        Start ``tracemalloc`` for the sampler's lifetime (stopped again
        by :meth:`stop` if the sampler started it).  Off by default —
        allocation tracing costs far more than the sampler itself; when
        ``tracemalloc`` is already tracing the sampler reads it either
        way.

    Use as a context manager (``with ResourceSampler() as sampler:``) or
    call :meth:`start` / :meth:`stop` explicitly.  :meth:`summary` is
    valid after ``stop()`` (and best-effort while running).
    """

    def __init__(self, interval: float = 0.01,
                 tracer: Optional[Any] = None,
                 trace_allocations: bool = False):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval!r}")
        self.interval = interval
        self.tracer = tracer
        self.trace_allocations = trace_allocations
        #: ``(perf_counter, rss_bytes | None, traced_bytes | None, phase,
        #: children_rss_bytes | None)`` — the last slot sums the live
        #: direct children (worker pools), so parallel runs account for
        #: the memory that left the parent process.
        self.samples: List[Tuple[float, Optional[int], Optional[int],
                                 Optional[str], Optional[int]]] = []
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_tracemalloc = False
        self._start_time: Optional[float] = None
        self._stop_time: Optional[float] = None
        self._rss_start: Optional[int] = None

    # -- lifecycle ----------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "ResourceSampler":
        if self._thread is not None:
            raise RuntimeError("ResourceSampler cannot be restarted; "
                               "create a fresh one per run")
        if self.trace_allocations:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True
        self._start_time = time.perf_counter()
        self._rss_start = rss_bytes()
        self._sample()
        self._thread = threading.Thread(
            target=self._loop, name="repro-resource-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> Dict[str, Any]:
        """Stop sampling (idempotent) and return :meth:`summary`."""
        if self._thread is not None and self._stop_time is None:
            self._stop_event.set()
            self._thread.join(timeout=5.0)
            self._sample()  # guarantee >= 2 samples even on a < 10 ms run
            self._stop_time = time.perf_counter()
        if self._started_tracemalloc:
            import tracemalloc

            tracemalloc.stop()
            self._started_tracemalloc = False
        return self.summary()

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *_exc) -> bool:
        self.stop()
        return False

    def _loop(self) -> None:
        while not self._stop_event.wait(self.interval):
            self._sample()

    def _sample(self) -> None:
        traced: Optional[int] = None
        import tracemalloc

        if tracemalloc.is_tracing():
            traced = tracemalloc.get_traced_memory()[0]
        phase = None
        if self.tracer is not None:
            phase = getattr(self.tracer, "active_phase", None)
        with self._lock:
            self.samples.append(
                (time.perf_counter(), rss_bytes(), traced, phase,
                 children_rss_bytes())
            )

    # -- span attachment ----------------------------------------------------

    def attach(self, span: Any) -> "_SpanWindow":
        """Attribute the samples of a window to *span*'s attrs.

        ``with sampler.attach(span): ...`` records the window's peak RSS
        and traced-heap into ``span.attrs["rss_peak_bytes"]`` /
        ``["tracemalloc_peak_bytes"]`` when the block exits — the hook
        the manifest uses to surface per-span memory for coarse spans.
        """
        return _SpanWindow(self, span)

    def _window_peaks(self, since: int) -> Tuple[Optional[int], Optional[int]]:
        with self._lock:
            window = self.samples[since:]
        rss = [s[1] for s in window if s[1] is not None]
        traced = [s[2] for s in window if s[2] is not None]
        return (max(rss) if rss else None, max(traced) if traced else None)

    # -- summary ------------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """JSON-ready peak / per-phase digest of everything sampled."""
        with self._lock:
            samples = list(self.samples)
        rss_values = [s[1] for s in samples if s[1] is not None]
        traced_values = [s[2] for s in samples if s[2] is not None]
        children_values = [s[4] for s in samples if s[4] is not None]
        total_values = [
            s[1] + s[4] for s in samples
            if s[1] is not None and s[4] is not None
        ]
        per_phase: Dict[str, Dict[str, Any]] = {}
        for _stamp, rss, traced, phase, _children in samples:
            if phase is None:
                continue
            bucket = per_phase.setdefault(
                phase, {"samples": 0, "rss_peak_bytes": None,
                        "tracemalloc_peak_bytes": None}
            )
            bucket["samples"] += 1
            if rss is not None:
                bucket["rss_peak_bytes"] = (
                    rss if bucket["rss_peak_bytes"] is None
                    else max(bucket["rss_peak_bytes"], rss)
                )
            if traced is not None:
                bucket["tracemalloc_peak_bytes"] = (
                    traced if bucket["tracemalloc_peak_bytes"] is None
                    else max(bucket["tracemalloc_peak_bytes"], traced)
                )
        end = self._stop_time
        if end is None:
            end = samples[-1][0] if samples else self._start_time
        peak = max(rss_values) if rss_values else None
        return {
            "samples": len(samples),
            "interval_seconds": self.interval,
            "duration_seconds": (
                round(end - self._start_time, 6)
                if self._start_time is not None and end is not None else 0.0
            ),
            "rss_supported": bool(rss_values),
            "rss_start_bytes": self._rss_start,
            "rss_peak_bytes": peak,
            "rss_delta_bytes": (
                peak - self._rss_start
                if peak is not None and self._rss_start is not None else None
            ),
            "children_rss_peak_bytes": (
                max(children_values) if children_values else None
            ),
            "rss_total_peak_bytes": (
                max(total_values) if total_values
                else (peak if peak is not None else None)
            ),
            "tracemalloc_peak_bytes": (
                max(traced_values) if traced_values else None
            ),
            "per_phase": per_phase,
        }

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return (
            f"ResourceSampler({state}, {len(self.samples)} samples, "
            f"interval={self.interval})"
        )


class _SpanWindow:
    """Context manager of :meth:`ResourceSampler.attach`."""

    __slots__ = ("_sampler", "_span", "_mark")

    def __init__(self, sampler: ResourceSampler, span: Any):
        self._sampler = sampler
        self._span = span
        self._mark = 0

    def __enter__(self) -> Any:
        self._sampler._sample()
        with self._sampler._lock:
            self._mark = max(len(self._sampler.samples) - 1, 0)
        return self._span

    def __exit__(self, *_exc) -> bool:
        self._sampler._sample()
        rss_peak, traced_peak = self._sampler._window_peaks(self._mark)
        attrs = getattr(self._span, "attrs", None)
        if isinstance(attrs, dict):
            if rss_peak is not None:
                attrs["rss_peak_bytes"] = rss_peak
            if traced_peak is not None:
                attrs["tracemalloc_peak_bytes"] = traced_peak
        return False
