"""An in-memory database catalog.

Stands in for the DBMS connection of the original system (Oracle /
MS Access over ODBC): a named collection of tables with create / drop /
lookup, bulk CSV loading for a directory of datasets, and a profiling
entry point that runs Dep-Miner over any catalogued table.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.errors import StorageError
from repro.storage.csv_io import read_csv
from repro.storage.table import Table

__all__ = ["Database"]


class Database:
    """A catalog of named tables."""

    def __init__(self, name: str = "default"):
        if not name:
            raise StorageError("database names must be non-empty")
        self.name = name
        self._tables: Dict[str, Table] = {}

    # -- catalog operations ---------------------------------------------------

    def create_table(self, table: Table, replace: bool = False) -> Table:
        """Register *table*; refuses to overwrite unless *replace*."""
        if table.name in self._tables and not replace:
            raise StorageError(
                f"table {table.name!r} already exists in database "
                f"{self.name!r} (pass replace=True to overwrite)"
            )
        self._tables[table.name] = table
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise StorageError(
                f"cannot drop unknown table {name!r} from {self.name!r}"
            )
        del self._tables[name]

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise StorageError(
                f"unknown table {name!r}; database {self.name!r} has "
                f"{sorted(self._tables)}"
            ) from None

    def table_names(self) -> List[str]:
        return sorted(self._tables)

    def __contains__(self, name: object) -> bool:
        return name in self._tables

    def __len__(self) -> int:
        return len(self._tables)

    # -- bulk loading ------------------------------------------------------------

    def load_csv(self, path: Union[str, Path], name: Optional[str] = None,
                 replace: bool = False, **csv_options) -> Table:
        """Load one CSV file as a table (named after the file by default)."""
        table = read_csv(path, name=name, **csv_options)
        return self.create_table(table, replace=replace)

    def load_directory(self, directory: Union[str, Path],
                       pattern: str = "*.csv",
                       replace: bool = False) -> List[Table]:
        """Load every CSV in *directory* matching *pattern*."""
        directory = Path(directory)
        if not directory.is_dir():
            raise StorageError(f"not a directory: {directory}")
        loaded = []
        for path in sorted(directory.glob(pattern)):
            loaded.append(self.load_csv(path, replace=replace))
        return loaded

    # -- persistence ---------------------------------------------------------------

    def save(self, directory: Union[str, Path]) -> List[Path]:
        """Write every table as ``<name>.csv`` into *directory*.

        The catalog round-trips through :meth:`load` (CSV carries the
        schema in the header; types are re-inferred on load).
        """
        from repro.storage.csv_io import write_csv

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written = []
        for name in self.table_names():
            path = directory / f"{name}.csv"
            write_csv(self._tables[name], path)
            written.append(path)
        return written

    @classmethod
    def load(cls, directory: Union[str, Path],
             name: Optional[str] = None) -> "Database":
        """Build a catalog from a directory previously written by
        :meth:`save` (or any directory of CSV files)."""
        directory = Path(directory)
        db = cls(name or directory.name or "default")
        db.load_directory(directory)
        return db

    # -- profiling ------------------------------------------------------------------

    def discover_fds(self, table_name: str, **depminer_options):
        """Run Dep-Miner on a catalogued table.

        Returns the full :class:`~repro.core.depminer.DepMinerResult`;
        this mirrors the paper's workflow where the miner is pointed at a
        live DBMS table.
        """
        from repro.core.depminer import DepMiner

        relation = self.table(table_name).to_relation()
        return DepMiner(**depminer_options).run(relation)

    def __repr__(self) -> str:
        return f"Database({self.name!r}, tables={self.table_names()})"
