"""A minimal SQL SELECT dialect over the database catalog.

The original system talks to Oracle / MS Access through ODBC; the only
statements it ever needs are single-table scans and projections.  This
module implements exactly that surface so workflows (and tests) can be
written the way a DBA would write them:

    SELECT a, b FROM t
    SELECT DISTINCT city FROM hospital WHERE age >= 18 ORDER BY city
    SELECT * FROM orders WHERE discount_code IS NOT NULL LIMIT 10

Grammar (case-insensitive keywords)::

    select   := SELECT [DISTINCT] columns FROM name
                [WHERE condition {AND condition}]
                [ORDER BY name [DESC] {, name [DESC]}]
                [LIMIT number]
    columns  := '*' | name {, name}
    condition:= name op literal | name IS [NOT] NULL
    op       := = | != | <> | < | <= | > | >=
    literal  := number | 'string'

No joins, no aggregates, no subqueries — those belong to a real DBMS;
profiling needs scans.  Malformed statements raise
:class:`~repro.errors.QueryError` with the offending token.
"""

from __future__ import annotations

import re
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import QueryError
from repro.storage.database import Database
from repro.storage.query import Query
from repro.storage.table import Table

__all__ = ["execute_sql", "parse_select", "SelectStatement"]

_TOKEN_PATTERN = re.compile(
    r"""
    \s*(
        '(?:[^']|'')*'          # string literal ('' escapes a quote)
      | [A-Za-z_][A-Za-z_0-9]*  # identifier / keyword
      | -?\d+\.\d+              # float
      | -?\d+                   # int
      | <> | != | <= | >= | [=<>*,()]
    )
    """,
    re.VERBOSE,
)

_OPERATORS: dict = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a is not None and b is not None and a < b,
    "<=": lambda a, b: a is not None and b is not None and a <= b,
    ">": lambda a, b: a is not None and b is not None and a > b,
    ">=": lambda a, b: a is not None and b is not None and a >= b,
}


class _Tokens:
    def __init__(self, text: str):
        self.tokens: List[str] = []
        position = 0
        while position < len(text):
            match = _TOKEN_PATTERN.match(text, position)
            if match is None:
                remainder = text[position:].strip()
                if not remainder:
                    break
                raise QueryError(f"cannot tokenize near: {remainder[:20]!r}")
            self.tokens.append(match.group(1))
            position = match.end()
        self.index = 0

    def peek(self) -> Optional[str]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise QueryError("unexpected end of statement")
        self.index += 1
        return token

    def accept_keyword(self, keyword: str) -> bool:
        token = self.peek()
        if token is not None and token.upper() == keyword:
            self.index += 1
            return True
        return False

    def expect_keyword(self, keyword: str) -> None:
        if not self.accept_keyword(keyword):
            raise QueryError(
                f"expected {keyword}, found {self.peek()!r}"
            )

    def expect_identifier(self) -> str:
        token = self.next()
        if not re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", token):
            raise QueryError(f"expected an identifier, found {token!r}")
        return token

    def done(self) -> bool:
        return self.index >= len(self.tokens)


class SelectStatement:
    """A parsed SELECT, executable against a table or a catalog."""

    def __init__(self, columns: Optional[List[str]], table: str,
                 distinct: bool,
                 conditions: List[Callable[[dict], bool]],
                 order_by: List[Tuple[str, bool]],
                 limit: Optional[int]):
        self.columns = columns  # None means '*'
        self.table = table
        self.distinct = distinct
        self.conditions = conditions
        self.order_by = order_by
        self.limit = limit

    def run(self, source) -> Table:
        """Execute against a :class:`Database` or a single :class:`Table`."""
        if isinstance(source, Database):
            table = source.table(self.table)
        else:
            table = source
            if table.name != self.table:
                raise QueryError(
                    f"statement selects from {self.table!r} but was run "
                    f"against table {table.name!r}"
                )
        query = Query(table)
        for condition in self.conditions:
            query = query.where(condition)
        # Sort while all source columns are still visible (SQL permits
        # ORDER BY over non-selected columns); apply keys last-first so
        # stacked stable sorts make the first key primary.
        for name, descending in reversed(self.order_by):
            query = query.order_by(name, descending=descending)
        if self.columns is not None:
            query = query.select(*self.columns)
        if self.distinct:
            # Runs after the sort: keeps the first row per key in sort
            # order, which is the deterministic reading of
            # DISTINCT + ORDER BY in this mini-dialect.
            query = query.distinct()
        if self.limit is not None:
            query = query.limit(self.limit)
        return query.to_table(f"{self.table}_result")


def _parse_literal(token: str) -> Any:
    if token.startswith("'"):
        return token[1:-1].replace("''", "'")
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        raise QueryError(f"expected a literal, found {token!r}") from None


def _parse_condition(tokens: _Tokens) -> Callable[[dict], bool]:
    column = tokens.expect_identifier()
    if tokens.accept_keyword("IS"):
        negated = tokens.accept_keyword("NOT")
        tokens.expect_keyword("NULL")
        if negated:
            return lambda row: row.get(column) is not None
        return lambda row: row.get(column) is None
    operator = tokens.next()
    if operator not in _OPERATORS:
        raise QueryError(f"unknown operator {operator!r}")
    literal = _parse_literal(tokens.next())
    compare = _OPERATORS[operator]
    return lambda row: compare(row.get(column), literal)


def parse_select(text: str) -> SelectStatement:
    """Parse a SELECT statement of the mini-dialect."""
    tokens = _Tokens(text.strip().rstrip(";"))
    tokens.expect_keyword("SELECT")
    distinct = tokens.accept_keyword("DISTINCT")
    columns: Optional[List[str]]
    if tokens.peek() == "*":
        tokens.next()
        columns = None
    else:
        columns = [tokens.expect_identifier()]
        while tokens.peek() == ",":
            tokens.next()
            columns.append(tokens.expect_identifier())
    tokens.expect_keyword("FROM")
    table = tokens.expect_identifier()
    conditions: List[Callable[[dict], bool]] = []
    if tokens.accept_keyword("WHERE"):
        conditions.append(_parse_condition(tokens))
        while tokens.accept_keyword("AND"):
            conditions.append(_parse_condition(tokens))
    order_by: List[Tuple[str, bool]] = []
    if tokens.accept_keyword("ORDER"):
        tokens.expect_keyword("BY")
        while True:
            name = tokens.expect_identifier()
            descending = tokens.accept_keyword("DESC")
            if not descending:
                tokens.accept_keyword("ASC")
            order_by.append((name, descending))
            if tokens.peek() == ",":
                tokens.next()
                continue
            break
    limit: Optional[int] = None
    if tokens.accept_keyword("LIMIT"):
        token = tokens.next()
        try:
            limit = int(token)
        except ValueError:
            raise QueryError(f"LIMIT expects an integer, got {token!r}")
        if limit < 0:
            raise QueryError("LIMIT must be non-negative")
    if not tokens.done():
        raise QueryError(f"unexpected trailing tokens: {tokens.peek()!r}")
    return SelectStatement(
        columns=columns, table=table, distinct=distinct,
        conditions=conditions, order_by=order_by, limit=limit,
    )


def execute_sql(source, statement: str) -> Table:
    """Parse and run *statement* against a database or table."""
    return parse_select(statement).run(source)
