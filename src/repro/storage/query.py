"""A minimal query interface over catalogued tables.

The original system issues simple scans through ODBC ("select the
column, stream the values").  This module gives the same capability a
composable shape: projection, selection, distinct, limit, and order-by
over a :class:`~repro.storage.table.Table`, evaluated lazily and
materialised with :meth:`Query.to_table` / :meth:`Query.to_relation`.

It is deliberately not SQL — just the relational operators the
profiling workflows need (e.g. sampling a table before mining, or
projecting the columns a DBA cares about).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import QueryError
from repro.storage.table import Table

__all__ = ["Query"]

Row = Tuple[Any, ...]
Predicate = Callable[[dict], bool]


class Query:
    """A lazy pipeline of relational operators over a table.

    >>> table = Table.from_rows("emp", ["year", "mgr"],
    ...                         [(85, 5), (94, 12), (75, 5)])
    >>> Query(table).where(lambda row: row["year"] > 90).select("mgr").rows()
    [(12,)]
    """

    def __init__(self, table: Table):
        self._table = table
        self._column_names: Tuple[str, ...] = table.column_names
        self._steps: List[Callable[[Iterator[dict]], Iterator[dict]]] = []

    # -- operator builders (each returns self for chaining) ------------------

    def select(self, *names: str) -> "Query":
        """Keep only the given columns (projection without dedup)."""
        unknown = [n for n in names if n not in self._table.column_names]
        if unknown:
            raise QueryError(
                f"unknown column(s) {unknown}; table has "
                f"{list(self._table.column_names)}"
            )
        if not names:
            raise QueryError("select() needs at least one column")
        selected = tuple(names)

        def step(rows: Iterator[dict]) -> Iterator[dict]:
            for row in rows:
                yield {name: row[name] for name in selected}

        self._steps.append(step)
        self._column_names = selected
        return self

    def where(self, predicate: Predicate) -> "Query":
        """Keep rows for which *predicate(row_dict)* is true."""

        def step(rows: Iterator[dict]) -> Iterator[dict]:
            return (row for row in rows if predicate(row))

        self._steps.append(step)
        return self

    def distinct(self) -> "Query":
        """Remove duplicate rows (on the currently selected columns)."""

        def step(rows: Iterator[dict]) -> Iterator[dict]:
            seen = set()
            for row in rows:
                key = tuple(row.values())
                if key not in seen:
                    seen.add(key)
                    yield row

        self._steps.append(step)
        return self

    def order_by(self, *names: str, descending: bool = False) -> "Query":
        """Sort by the given columns (materialises the stream)."""
        if not names:
            raise QueryError("order_by() needs at least one column")

        def step(rows: Iterator[dict]) -> Iterator[dict]:
            try:
                ordered = sorted(
                    rows,
                    key=lambda row: tuple(row[name] for name in names),
                    reverse=descending,
                )
            except KeyError as exc:
                raise QueryError(f"order_by: unknown column {exc}") from None
            return iter(ordered)

        self._steps.append(step)
        return self

    def limit(self, count: int) -> "Query":
        """Keep the first *count* rows."""
        if count < 0:
            raise QueryError("limit() must be non-negative")

        def step(rows: Iterator[dict]) -> Iterator[dict]:
            for index, row in enumerate(rows):
                if index >= count:
                    return
                yield row

        self._steps.append(step)
        return self

    # -- evaluation ----------------------------------------------------------------

    def _rows(self) -> Iterator[dict]:
        names = self._table.column_names

        def source() -> Iterator[dict]:
            for row in self._table.rows():
                yield dict(zip(names, row))

        rows: Iterator[dict] = source()
        for step in self._steps:
            rows = step(rows)
        return rows

    def rows(self) -> List[Row]:
        """Evaluate and return plain row tuples."""
        return [tuple(row.values()) for row in self._rows()]

    def count(self) -> int:
        return sum(1 for _ in self._rows())

    def to_table(self, name: str) -> Table:
        """Materialise the result as a new table."""
        return Table.from_rows(name, self._column_names, self.rows())

    def to_relation(self):
        """Materialise directly as a mining-ready relation."""
        return self.to_table("query_result").to_relation()
