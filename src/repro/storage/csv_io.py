"""CSV reading/writing with type inference.

The paper's test datasets live in DBMS tables; ours live in CSV files.
:func:`read_csv` performs light type inference (int → float → str, per
column, with configurable null tokens) so FD semantics do not depend on
textual quirks like ``"01"`` vs ``"1"`` being the same integer — callers
who want raw text columns can pass ``infer_types=False``.

Two correctness rules shape the inference:

- Casters accept only *canonical* numeric text (optional sign, digits,
  one optional point/exponent).  Python's own ``int``/``float`` accept
  far more — ``"1_000"``, ``" 7 "``, ``"nan"``, ``"inf"`` — and each of
  those corrupts equality-based partition grouping: ``float("nan") !=
  float("nan")`` silently splits agree sets, ``1_000 == 1000`` silently
  merges distinct source strings, and ``float("1e999")`` collapses every
  overflowing literal onto ``inf``.  Non-canonical tokens keep the
  column textual instead.
- Null tokens and data that *looks like* a null token are kept apart by
  a backslash escape: :func:`write_csv` prefixes ``\\`` to any string
  value that would otherwise read back as null (or that itself starts
  with ``\\``), and :func:`read_csv` strips one leading ``\\`` after
  null mapping.  A table therefore round-trips exactly, including a
  real ``None`` next to the literal string ``"NULL"``.
"""

from __future__ import annotations

import csv
import math
import re
from itertools import chain
from pathlib import Path
from typing import Any, List, Optional, Sequence, Union

from repro.core.relation import Relation
from repro.errors import StorageError
from repro.reliability.faults import fault_point, wrap_text_stream
from repro.storage.table import Table

__all__ = ["read_csv", "write_csv", "relation_from_csv", "relation_to_csv"]

DEFAULT_NULL_TOKENS = ("", "NULL", "null", "NA", "N/A")

# Canonical numeric text only: Python's int()/float() additionally accept
# underscores, surrounding whitespace and the nan/inf family, none of
# which may silently become numbers in a dependency miner (see module
# docstring).
_CANONICAL_INT = re.compile(r"[+-]?[0-9]+\Z")
_CANONICAL_FLOAT = re.compile(
    r"[+-]?(?:[0-9]+\.[0-9]*|\.[0-9]+|[0-9]+)(?:[eE][+-]?[0-9]+)?\Z"
)


def _cast_int(token: str) -> int:
    if _CANONICAL_INT.match(token) is None:
        raise ValueError(f"not a canonical integer: {token!r}")
    return int(token)


def _cast_float(token: str) -> float:
    if _CANONICAL_FLOAT.match(token) is None:
        raise ValueError(f"not a canonical float: {token!r}")
    value = float(token)
    if not math.isfinite(value):  # e.g. "1e999" overflowing to inf
        raise ValueError(f"float overflows to non-finite: {token!r}")
    return value


def _parse_column(tokens: Sequence[Optional[str]]) -> List[Any]:
    """Best-effort typed parse of one column: all-int, else all-float,
    else the original strings.  Nulls (None) are preserved untouched."""
    non_null = [token for token in tokens if token is not None]
    for caster in (_cast_int, _cast_float):
        try:
            parsed = {token: caster(token) for token in set(non_null)}
        except (TypeError, ValueError):
            continue
        return [
            parsed[token] if token is not None else None for token in tokens
        ]
    return list(tokens)


def _duplicate_names(header: Sequence[str]) -> List[str]:
    seen = set()
    duplicates = set()
    for column in header:
        if column in seen:
            duplicates.add(column)
        seen.add(column)
    return sorted(duplicates)


def _check_header(header: Sequence[str], path: Path) -> None:
    duplicates = _duplicate_names(header)
    if duplicates:
        raise StorageError(
            f"{path}: duplicate column name(s): {', '.join(duplicates)}"
        )


def _unescape(token: str) -> str:
    """Drop the one leading backslash :func:`write_csv` may have added."""
    return token[1:] if token.startswith("\\") else token


def _escape(value: str, null_set: frozenset) -> str:
    """Protect a string value from reading back as null (or unescaping)."""
    if value in null_set or value.startswith("\\"):
        return "\\" + value
    return value


def read_csv(path: Union[str, Path], name: Optional[str] = None,
             delimiter: str = ",", has_header: bool = True,
             infer_types: bool = True,
             null_tokens: Sequence[str] = DEFAULT_NULL_TOKENS) -> Table:
    """Load a CSV file into a :class:`~repro.storage.table.Table`.

    The file is consumed in a single streaming pass: the header is
    validated as soon as the first row arrives (duplicate names raise
    the usual :class:`StorageError` listing every offender, before the
    body is read at all) and data rows are bucketed into columns as the
    reader yields them — nothing is materialized twice.

    Without a header row, columns are named ``col1..colN``.  Ragged rows
    and duplicate header names raise :class:`StorageError` with the
    offending line number / column names; real IO errors are wrapped in
    :class:`StorageError` as well (fault site ``storage.read``).
    """
    path = Path(path)
    if not path.exists():
        raise StorageError(f"CSV file not found: {path}")
    null_set = set(null_tokens)
    try:
        fault_point("storage.read", path=str(path))
        with path.open(newline="") as raw:
            handle = wrap_text_stream("storage.read", raw, path=str(path))
            reader = csv.reader(handle, delimiter=delimiter)
            first = next((row for row in reader if row), None)
            if first is None:
                raise StorageError(f"CSV file {path} is empty")
            if has_header:
                header, data = first, reader
            else:
                header = [f"col{i + 1}" for i in range(len(first))]
                data = chain([first], reader)
            _check_header(header, path)
            width = len(header)
            columns: List[List[Optional[str]]] = [[] for _ in range(width)]
            # Blank lines are skipped without advancing the reported
            # line number (it counts retained rows, as it always has).
            line_number = 1 if has_header else 0
            for row in data:
                if not row:
                    continue
                line_number += 1
                if len(row) != width:
                    raise StorageError(
                        f"{path}:{line_number}: expected {width} fields, "
                        f"got {len(row)}"
                    )
                for bucket, token in zip(columns, row):
                    bucket.append(
                        None if token in null_set else _unescape(token)
                    )
    except OSError as error:
        raise StorageError(f"cannot read {path}: {error}") from error
    if infer_types:
        columns = [_parse_column(bucket) for bucket in columns]
    table_name = name if name is not None else path.stem
    return Table.from_rows(table_name, header, zip(*columns))


def write_csv(table: Table, path: Union[str, Path],
              delimiter: str = ",",
              null_tokens: Sequence[str] = DEFAULT_NULL_TOKENS) -> None:
    """Write a table to CSV (header + rows; ``None`` becomes empty).

    String values that would read back as null under *null_tokens* (or
    that start with a backslash) are escaped with one leading ``\\`` so
    :func:`read_csv` with the same tokens restores the table exactly.
    Real IO errors are wrapped in :class:`StorageError` (fault site
    ``storage.write``).
    """
    path = Path(path)
    null_set = frozenset(null_tokens)
    try:
        fault_point("storage.write", path=str(path))
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle, delimiter=delimiter)
            writer.writerow(table.column_names)
            for row in table.rows():
                writer.writerow([
                    "" if value is None
                    else _escape(value, null_set) if isinstance(value, str)
                    else value
                    for value in row
                ])
    except OSError as error:
        raise StorageError(f"cannot write {path}: {error}") from error


def relation_from_csv(path: Union[str, Path], **options) -> Relation:
    """One-call CSV → :class:`~repro.core.relation.Relation`."""
    return read_csv(path, **options).to_relation()


def relation_to_csv(relation: Relation, path: Union[str, Path],
                    name: str = "relation") -> None:
    """One-call :class:`~repro.core.relation.Relation` → CSV."""
    write_csv(Table.from_relation(name, relation), path)
