"""CSV reading/writing with type inference.

The paper's test datasets live in DBMS tables; ours live in CSV files.
:func:`read_csv` performs light type inference (int → float → str, per
column, with configurable null tokens) so FD semantics do not depend on
textual quirks like ``"01"`` vs ``"1"`` being the same integer — callers
who want raw text columns can pass ``infer_types=False``.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Iterable, List, Optional, Sequence, Union

from repro.core.relation import Relation
from repro.errors import StorageError
from repro.storage.table import Table

__all__ = ["read_csv", "write_csv", "relation_from_csv", "relation_to_csv"]

DEFAULT_NULL_TOKENS = ("", "NULL", "null", "NA", "N/A")


def _parse_column(tokens: Sequence[Optional[str]]) -> List[Any]:
    """Best-effort typed parse of one column: all-int, else all-float,
    else the original strings.  Nulls (None) are preserved untouched."""
    non_null = [token for token in tokens if token is not None]
    for caster in (int, float):
        try:
            parsed = {token: caster(token) for token in set(non_null)}
        except (TypeError, ValueError):
            continue
        return [
            parsed[token] if token is not None else None for token in tokens
        ]
    return list(tokens)


def read_csv(path: Union[str, Path], name: Optional[str] = None,
             delimiter: str = ",", has_header: bool = True,
             infer_types: bool = True,
             null_tokens: Sequence[str] = DEFAULT_NULL_TOKENS) -> Table:
    """Load a CSV file into a :class:`~repro.storage.table.Table`.

    Without a header row, columns are named ``col1..colN``.  Ragged rows
    raise :class:`StorageError` with the offending line number.
    """
    path = Path(path)
    if not path.exists():
        raise StorageError(f"CSV file not found: {path}")
    null_set = set(null_tokens)
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        rows = list(reader)
    rows = [row for row in rows if row]  # skip completely blank lines
    if not rows:
        raise StorageError(f"CSV file {path} is empty")
    if has_header:
        header, data = rows[0], rows[1:]
    else:
        header = [f"col{i + 1}" for i in range(len(rows[0]))]
        data = rows
    width = len(header)
    columns: List[List[Optional[str]]] = [[] for _ in range(width)]
    for line_number, row in enumerate(data, start=2 if has_header else 1):
        if len(row) != width:
            raise StorageError(
                f"{path}:{line_number}: expected {width} fields, "
                f"got {len(row)}"
            )
        for bucket, token in zip(columns, row):
            bucket.append(None if token in null_set else token)
    if infer_types:
        columns = [_parse_column(bucket) for bucket in columns]
    table_name = name if name is not None else path.stem
    return Table.from_rows(table_name, header, zip(*columns))


def write_csv(table: Table, path: Union[str, Path],
              delimiter: str = ",") -> None:
    """Write a table to CSV (header + rows; ``None`` becomes empty)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(table.column_names)
        for row in table.rows():
            writer.writerow(
                ["" if value is None else value for value in row]
            )


def relation_from_csv(path: Union[str, Path], **options) -> Relation:
    """One-call CSV → :class:`~repro.core.relation.Relation`."""
    return read_csv(path, **options).to_relation()


def relation_to_csv(relation: Relation, path: Union[str, Path],
                    name: str = "relation") -> None:
    """One-call :class:`~repro.core.relation.Relation` → CSV."""
    write_csv(Table.from_relation(name, relation), path)
