"""Storage substrate: typed column tables, CSV I/O, a database catalog,
and a minimal query interface (the ODBC/DBMS substitution)."""

from repro.storage.csv_io import (
    read_csv,
    relation_from_csv,
    relation_to_csv,
    write_csv,
)
from repro.storage.database import Database
from repro.storage.query import Query
from repro.storage.sql import SelectStatement, execute_sql, parse_select
from repro.storage.table import Column, Table, coerce_value, infer_type

__all__ = [
    "Column",
    "Table",
    "Database",
    "Query",
    "execute_sql",
    "parse_select",
    "SelectStatement",
    "read_csv",
    "write_csv",
    "relation_from_csv",
    "relation_to_csv",
    "infer_type",
    "coerce_value",
]
