"""Column-oriented tables — the storage substrate.

The original system reads relations out of Oracle / MS Access through
ODBC; mining itself never touches the DBMS again after the stripped
partitions are built.  This module provides the equivalent local
substrate: a typed, column-oriented :class:`Table` that the profiling
algorithms consume via :meth:`Table.to_relation`.

Types are deliberately minimal — ``int``, ``float``, ``str``, ``bool``
plus nullability — enough to round-trip the CSV datasets and the
synthetic benchmark relations.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.attributes import Schema
from repro.core.relation import Relation
from repro.errors import StorageError

__all__ = ["Column", "Table", "infer_type", "coerce_value", "TYPE_NAMES"]

TYPE_NAMES = ("int", "float", "str", "bool")

_CASTS = {
    "int": int,
    "float": float,
    "str": str,
    "bool": bool,
}

_BOOL_TOKENS = {
    "true": True, "false": False, "t": True, "f": False,
    "yes": True, "no": False, "1": True, "0": False,
}


def infer_type(values: Iterable[Any]) -> str:
    """Infer the narrowest type name covering all non-null *values*.

    Order of preference: ``bool`` < ``int`` < ``float`` < ``str``.
    An all-null column is typed ``str``.
    """
    best = 0  # index into the preference ladder
    ladder = ("bool", "int", "float", "str")
    saw_value = False
    for value in values:
        if value is None:
            continue
        saw_value = True
        if isinstance(value, bool):
            rank = 0
        elif isinstance(value, int):
            rank = 1
        elif isinstance(value, float):
            rank = 2
        else:
            rank = 3
        best = max(best, rank)
    return ladder[best] if saw_value else "str"


def coerce_value(token: Optional[str], type_name: str) -> Any:
    """Parse a textual *token* as *type_name* (``None`` stays ``None``)."""
    if token is None:
        return None
    if type_name not in _CASTS:
        raise StorageError(
            f"unknown type {type_name!r}; expected one of {TYPE_NAMES}"
        )
    if type_name == "bool":
        lowered = str(token).strip().lower()
        if lowered not in _BOOL_TOKENS:
            raise StorageError(f"cannot parse {token!r} as bool")
        return _BOOL_TOKENS[lowered]
    try:
        return _CASTS[type_name](token)
    except (TypeError, ValueError) as exc:
        raise StorageError(
            f"cannot parse {token!r} as {type_name}: {exc}"
        ) from None


class Column:
    """A named, typed column with nullable values."""

    __slots__ = ("name", "type_name", "values", "nullable")

    def __init__(self, name: str, values: Sequence[Any],
                 type_name: Optional[str] = None, nullable: bool = True):
        if not name:
            raise StorageError("column names must be non-empty")
        values = list(values)
        if type_name is None:
            type_name = infer_type(values)
        if type_name not in _CASTS:
            raise StorageError(
                f"unknown type {type_name!r}; expected one of {TYPE_NAMES}"
            )
        if not nullable and any(value is None for value in values):
            raise StorageError(
                f"column {name!r} is declared NOT NULL but holds nulls"
            )
        self.name = name
        self.type_name = type_name
        self.values = values
        self.nullable = nullable

    def __len__(self) -> int:
        return len(self.values)

    def distinct_count(self) -> int:
        return len(set(self.values))

    def null_count(self) -> int:
        return sum(1 for value in self.values if value is None)

    def __repr__(self) -> str:
        return (
            f"Column({self.name!r}, type={self.type_name}, "
            f"rows={len(self.values)})"
        )


class Table:
    """A named collection of equal-length columns."""

    def __init__(self, name: str, columns: Sequence[Column]):
        if not name:
            raise StorageError("table names must be non-empty")
        if not columns:
            raise StorageError(f"table {name!r} needs at least one column")
        sizes = {len(column) for column in columns}
        if len(sizes) > 1:
            raise StorageError(
                f"table {name!r} has ragged columns: lengths {sorted(sizes)}"
            )
        seen = set()
        for column in columns:
            if column.name in seen:
                raise StorageError(
                    f"table {name!r} has duplicate column {column.name!r}"
                )
            seen.add(column.name)
        self.name = name
        self.columns = list(columns)
        self._by_name = {column.name: column for column in columns}

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_rows(cls, name: str, column_names: Sequence[str],
                  rows: Iterable[Sequence[Any]],
                  types: Optional[Sequence[str]] = None) -> "Table":
        values: List[List[Any]] = [[] for _ in column_names]
        for row_number, row in enumerate(rows):
            row = tuple(row)
            if len(row) != len(column_names):
                raise StorageError(
                    f"row {row_number} has arity {len(row)}; table "
                    f"{name!r} has {len(column_names)} columns"
                )
            for bucket, value in zip(values, row):
                bucket.append(value)
        columns = [
            Column(
                column_name,
                bucket,
                type_name=types[index] if types else None,
            )
            for index, (column_name, bucket) in enumerate(
                zip(column_names, values)
            )
        ]
        return cls(name, columns)

    @classmethod
    def from_relation(cls, name: str, relation: Relation) -> "Table":
        columns = [
            Column(attr, relation.column(attr))
            for attr in relation.schema.names
        ]
        return cls(name, columns)

    # -- accessors -------------------------------------------------------------

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise StorageError(
                f"table {self.name!r} has no column {name!r}; "
                f"columns are {list(self.column_names)}"
            ) from None

    def __len__(self) -> int:
        return len(self.columns[0])

    def row(self, index: int) -> Tuple[Any, ...]:
        return tuple(column.values[index] for column in self.columns)

    def rows(self) -> Iterator[Tuple[Any, ...]]:
        return (self.row(i) for i in range(len(self)))

    # -- conversion ---------------------------------------------------------------

    def to_relation(self) -> Relation:
        """The :class:`Relation` view the mining algorithms consume."""
        schema = Schema(self.column_names)
        return Relation.from_columns(
            schema, [column.values for column in self.columns]
        )

    def profile(self) -> Dict[str, Dict[str, Any]]:
        """Per-column statistics (type, distinct count, null count)."""
        return {
            column.name: {
                "type": column.type_name,
                "rows": len(column),
                "distinct": column.distinct_count(),
                "nulls": column.null_count(),
            }
            for column in self.columns
        }

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, columns={list(self.column_names)}, "
            f"rows={len(self)})"
        )
