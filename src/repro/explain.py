"""Explanations of mining results for the DBA.

The paper argues the real-world Armstrong relation helps the DBA decide
which mined FDs are genuine business rules — but a bare sample leaves
the "why" implicit.  :func:`explain_armstrong` makes it explicit: each
sample row is annotated with the maximal set it witnesses and with the
minimal FDs it *refutes* the extensions of (the pairs of rows that agree
on the maximal set but disagree elsewhere demonstrate the non-FDs).

:func:`diff_covers` supports the complementary drift workflow: given
two mined covers of the same schema (say, last month's JSON document and
today's run), report which dependencies appeared, which disappeared and
which merely changed syntactic form while staying implied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.attributes import AttributeSet, Schema, iter_bits
from repro.core.depminer import DepMinerResult
from repro.errors import ReproError
from repro.fd.closure import implies
from repro.fd.fd import FD, sort_fds

__all__ = ["explain_armstrong", "ArmstrongExplanation", "diff_covers",
           "CoverDiff"]


@dataclass
class ArmstrongExplanation:
    """One annotated row of the Armstrong sample."""

    row_index: int
    values: Tuple
    witnessed_max_set: AttributeSet  # R itself for the base row
    demonstrates: List[str]

    def render(self) -> str:
        values = ", ".join(str(v) for v in self.values)
        witness = self.witnessed_max_set.compact()
        lines = [f"row {self.row_index}: ({values})"]
        lines.append(f"  agrees with row 0 exactly on {{{witness}}}")
        for message in self.demonstrates:
            lines.append(f"  shows {message}")
        return "\n".join(lines)


def explain_armstrong(result: DepMinerResult) -> List[ArmstrongExplanation]:
    """Annotate each Armstrong-sample row with what it proves.

    Row ``i ≥ 1`` corresponds to the maximal set ``Xi``: together with
    row 0 it agrees exactly on ``Xi``, refuting ``Xi → A`` for every
    ``A ∉ Xi`` — i.e. it is the *witness* that the mined FDs with those
    right-hand sides cannot have smaller left-hand sides inside ``Xi``.
    """
    armstrong = result.armstrong or result.classical_armstrong
    if armstrong is None:
        raise ReproError(
            "the mining result carries no Armstrong relation "
            "(build_armstrong='none')"
        )
    schema = result.schema
    explanations = [
        ArmstrongExplanation(
            row_index=0,
            values=armstrong.row(0),
            witnessed_max_set=schema.universe(),
            demonstrates=["the base tuple every other row is compared to"],
        )
    ]
    for index, max_mask in enumerate(result.max_union, start=1):
        refuted = [
            f"{AttributeSet(schema, max_mask).compact()} -/-> "
            f"{schema.name_of(attribute)}"
            for attribute in iter_bits(schema.universe_mask & ~max_mask)
        ]
        explanations.append(
            ArmstrongExplanation(
                row_index=index,
                values=armstrong.row(index),
                witnessed_max_set=AttributeSet(schema, max_mask),
                demonstrates=refuted,
            )
        )
    return explanations


@dataclass
class CoverDiff:
    """Differences between two FD covers of the same schema."""

    added: List[FD]          # new and not implied by the old cover
    removed: List[FD]        # gone and not implied by the new cover
    reformulated: List[FD]   # textually new but implied by the old cover
    unchanged: List[FD]

    @property
    def is_equivalent(self) -> bool:
        """True when the covers imply each other (only reformulations)."""
        return not self.added and not self.removed

    def render(self) -> str:
        if self.is_equivalent and not self.reformulated:
            return "covers are identical"
        lines = []
        if self.is_equivalent:
            lines.append("covers are equivalent (reformulated only)")
        for label, fds in (
            ("added", self.added),
            ("removed", self.removed),
            ("reformulated", self.reformulated),
        ):
            for fd in fds:
                lines.append(f"  {label:>12}: {fd}")
        lines.append(
            f"  ({len(self.unchanged)} unchanged)"
        )
        return "\n".join(lines)


def diff_covers(old: Sequence[FD], new: Sequence[FD]) -> CoverDiff:
    """Compare two covers of the same schema (dependency drift).

    An FD present only in *new* counts as *reformulated* when the old
    cover already implied it (schema evolution without semantic change),
    and *added* otherwise; symmetrically for removals.
    """
    old = list(old)
    new = list(new)
    if old and new and old[0].schema != new[0].schema:
        raise ReproError("cannot diff covers over different schemas")
    old_set = set(old)
    new_set = set(new)
    unchanged = sort_fds(old_set & new_set)
    added = []
    reformulated = []
    for fd in sort_fds(new_set - old_set):
        if implies(old, fd):
            reformulated.append(fd)
        else:
            added.append(fd)
    removed = [
        fd for fd in sort_fds(old_set - new_set) if not implies(new, fd)
    ]
    return CoverDiff(
        added=added,
        removed=removed,
        reformulated=reformulated,
        unchanged=unchanged,
    )
