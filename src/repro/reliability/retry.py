"""Exponential backoff with deterministic jitter.

The sharded executor retries failed shard attempts through a
:class:`RetryPolicy`; the policy is its own module so other subsystems
(and tests) can reuse the exact backoff arithmetic.

Jitter is the part that usually breaks reproducibility, so here it is
*keyed*, not random: the jitter fraction is a hash of ``(token,
attempt)``, meaning the same shard retried at the same attempt always
sleeps the same amount — a chaos run's timing is as replayable as its
injections (see :mod:`repro.reliability.faults`).  The jitter still does
its real job (decorrelating many shards retrying at once) because every
shard carries a different token.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import ReliabilityError
from repro.reliability.faults import _fraction

__all__ = ["RetryPolicy", "DEFAULT_RETRY_POLICY"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry and how long to wait between attempts.

    ``retries`` is the number of *re*-attempts: a task gets
    ``retries + 1`` attempts in total.  The sleep before re-attempt
    ``n`` (1-based) is ``min(base * 2**(n-1), cap)`` stretched by up to
    ``jitter`` (a fraction), with the stretch drawn deterministically
    from ``(token, n)``.
    """

    retries: int = 2
    base: float = 0.05
    cap: float = 2.0
    jitter: float = 0.25

    def __post_init__(self):
        if self.retries < 0:
            raise ReliabilityError("retries must be non-negative")
        if self.base <= 0 or self.cap <= 0:
            raise ReliabilityError("backoff base and cap must be positive")
        if not 0.0 <= self.jitter <= 1.0:
            raise ReliabilityError("jitter must be a fraction in [0, 1]")

    @property
    def attempts(self) -> int:
        """Total attempts a task receives (first try + retries)."""
        return self.retries + 1

    def backoff(self, attempt: int, token: Any = "") -> float:
        """Seconds to sleep before re-attempt *attempt* (1-based)."""
        if attempt < 1:
            raise ReliabilityError("attempt numbers are 1-based")
        raw = min(self.base * (2 ** (attempt - 1)), self.cap)
        return raw * (1.0 + self.jitter * _fraction("retry", token, attempt))


#: The executor's default: 3 attempts, 50 ms base, 2 s cap, 25% jitter.
DEFAULT_RETRY_POLICY = RetryPolicy()
