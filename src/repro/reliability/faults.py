"""Deterministic fault injection for the IO- and process-touching layers.

PRs 1–3 gave the pipeline subsystems that talk to the filesystem and to
worker processes (``repro.parallel``, ``repro.cache``, the streaming CSV
readers).  Those layers can fail in ways the paper's algorithms never
had to consider — a worker dying mid-shard, a cache directory on a full
disk, a truncated input file — and the recovery code for them is
unreachable from ordinary tests.  This module makes such faults
*schedulable*: a :class:`FaultPlan` names instrumented **sites** and the
**triggers** under which each should misbehave, and the instrumented
code consults the plan through three tiny hooks:

- :func:`fault_point` — raise an injected exception (or sleep an
  injected delay) when a spec fires; a no-op when no plan is active;
- :func:`filter_bytes` / :func:`filter_text` — truncate a payload that
  was just read, simulating torn writes and short reads;
- :func:`wrap_text_stream` — the streaming variant: replace a text
  handle with a truncated one before anything is parsed.

Determinism is the design constraint that matters: a chaos run must be
reproducible in a bug report.  Probabilistic triggers therefore draw
from a keyed hash of ``(plan seed, site, call number, spec index)`` —
never from global PRNG state — so the same plan over the same call
sequence injects the same faults on every machine.  Within one process
the per-site call counters are global to the active plan; worker
processes receive a pickled copy of the plan with *fresh* counters, so
``calls``-triggered specs count per process (see ``docs/reliability.md``).

Every injection is counted as ``reliability.injected`` (plus the
per-site ``reliability.injected.<site>``) into both the registry bound
at activation time and the registry passed at the call site, which is
how injections inside worker processes surface in the parent's metrics
through the shard-outcome relay.
"""

from __future__ import annotations

import hashlib
import io
import json
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, TextIO, Union

from repro.errors import ReliabilityError
from repro.obs import NULL_METRICS, MetricsRegistry, get_logger

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "KNOWN_SITES",
    "load_fault_plan",
    "activate_plan",
    "deactivate_plan",
    "fault_plan_active",
    "current_plan",
    "fault_point",
    "filter_bytes",
    "filter_text",
    "wrap_text_stream",
]

logger = get_logger(__name__)

#: The sites instrumented across the codebase.  A plan may name other
#: sites (forward compatibility), but a typo'd site never fires, so
#: loading warns about unknown ones.
KNOWN_SITES = (
    "parallel.shard",     # one shard attempt (context: kind, index, pool)
    "cache.disk_read",    # artifact store disk lookup (context: kind, key)
    "cache.disk_write",   # artifact store disk publish (context: kind, key)
    "storage.read",       # csv_io.read_csv (context: path)
    "storage.write",      # csv_io.write_csv (context: path)
    "partitions.stream",  # streaming partition build (context: path)
)

_FAULT_KINDS = ("error", "delay", "truncate")

#: Exception classes a spec may raise — the same types real faults
#: produce.  Library errors (ReproError subclasses) are deliberately
#: absent: injected faults must exercise the *recovery* paths, not
#: imitate typed library failures.
_ERROR_TYPES = {
    "OSError": OSError,
    "IOError": OSError,
    "ConnectionError": ConnectionError,
    "TimeoutError": TimeoutError,
    "MemoryError": MemoryError,
    "RuntimeError": RuntimeError,
    "ValueError": ValueError,
}

_SPEC_FIELDS = (
    "site", "kind", "error", "message", "delay", "truncate",
    "calls", "probability", "match", "times",
)


def _fraction(*parts: Any) -> float:
    """A deterministic draw in [0, 1) keyed by *parts* (hash-seed free)."""
    text = ":".join(str(part) for part in parts)
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2 ** 64


class FaultSpec:
    """One schedulable fault: a site, a kind, and trigger predicates.

    Parameters
    ----------
    site:
        The instrumented site name (see :data:`KNOWN_SITES`).
    kind:
        ``"error"`` raises :attr:`error`, ``"delay"`` sleeps
        :attr:`delay` seconds, ``"truncate"`` keeps only
        :attr:`truncate` bytes/characters of a read payload.
    error / message:
        Exception class name (from a small whitelist of builtin types)
        and optional message for ``"error"`` faults.
    calls:
        1-based call numbers of the site at which to fire (``None`` =
        any call).  Counted per process — see the module docstring.
    probability:
        Fire with this probability, drawn deterministically from the
        plan seed (``None`` = always, subject to the other triggers).
    match:
        Context predicates: each key must equal the value the call site
        passed (a list value means membership, e.g.
        ``{"index": [0, 1]}``).
    times:
        Stop firing after this many injections (``None`` = unlimited) —
        the knob that turns a fault *transient* so retry paths can be
        shown to recover.
    """

    __slots__ = ("site", "kind", "error", "message", "delay", "truncate",
                 "calls", "probability", "match", "times")

    def __init__(self, site: str, kind: str = "error",
                 error: str = "OSError", message: Optional[str] = None,
                 delay: float = 0.01, truncate: int = 0,
                 calls: Optional[Sequence[int]] = None,
                 probability: Optional[float] = None,
                 match: Optional[Mapping[str, Any]] = None,
                 times: Optional[int] = None):
        if not site or not isinstance(site, str):
            raise ReliabilityError("a fault spec needs a non-empty site name")
        if kind not in _FAULT_KINDS:
            raise ReliabilityError(
                f"unknown fault kind {kind!r}; choose from {_FAULT_KINDS}"
            )
        if kind == "error" and error not in _ERROR_TYPES:
            raise ReliabilityError(
                f"unknown error type {error!r}; choose from "
                f"{sorted(_ERROR_TYPES)}"
            )
        if kind == "delay" and delay <= 0:
            raise ReliabilityError("delay faults need a positive delay")
        if kind == "truncate" and truncate < 0:
            raise ReliabilityError("truncate must be a non-negative length")
        if probability is not None and not 0.0 <= probability <= 1.0:
            raise ReliabilityError(
                f"probability must be in [0, 1]; got {probability!r}"
            )
        if times is not None and times < 1:
            raise ReliabilityError("times must be a positive integer or None")
        if calls is not None:
            calls = tuple(int(c) for c in calls)
            if any(c < 1 for c in calls):
                raise ReliabilityError("calls are 1-based call numbers")
        self.site = site
        self.kind = kind
        self.error = error
        self.message = message
        self.delay = float(delay)
        self.truncate = int(truncate)
        self.calls = calls
        self.probability = probability
        self.match = dict(match) if match is not None else None
        self.times = times

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        unknown = sorted(set(data) - set(_SPEC_FIELDS))
        if unknown:
            raise ReliabilityError(
                f"unknown fault spec field(s): {', '.join(unknown)}"
            )
        if "site" not in data:
            raise ReliabilityError("a fault spec needs a 'site'")
        return cls(**dict(data))

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"site": self.site, "kind": self.kind}
        if self.kind == "error":
            out["error"] = self.error
            if self.message:
                out["message"] = self.message
        if self.kind == "delay":
            out["delay"] = self.delay
        if self.kind == "truncate":
            out["truncate"] = self.truncate
        if self.calls is not None:
            out["calls"] = list(self.calls)
        if self.probability is not None:
            out["probability"] = self.probability
        if self.match is not None:
            out["match"] = dict(self.match)
        if self.times is not None:
            out["times"] = self.times
        return out

    def matches_context(self, context: Mapping[str, Any]) -> bool:
        if self.match is None:
            return True
        for key, wanted in self.match.items():
            actual = context.get(key)
            if isinstance(wanted, (list, tuple)):
                if actual not in wanted:
                    return False
            elif actual != wanted:
                return False
        return True

    def build_error(self, call_number: int) -> Exception:
        message = self.message or (
            f"injected {self.error} at {self.site} (call {call_number})"
        )
        return _ERROR_TYPES[self.error](message)

    def __repr__(self) -> str:
        return f"FaultSpec({self.site!r}, kind={self.kind!r})"


class FaultPlan:
    """An ordered set of :class:`FaultSpec`\\ s plus trigger state.

    The plan is the unit the CLI loads (``--fault-plan plan.json``), the
    executor ships to worker processes, and tests activate around a
    block of code.  Trigger state (per-site call counters, per-spec
    injection counts) lives in the plan object; :meth:`to_dict` /
    :meth:`from_dict` serialize only the specs and seed, so a shipped
    copy starts counting from zero.
    """

    def __init__(self, specs: Sequence[FaultSpec], seed: int = 0,
                 name: str = "fault-plan"):
        self.specs = list(specs)
        self.seed = int(seed)
        self.name = name
        self._lock = threading.Lock()
        self._calls: Dict[str, int] = {}
        self._fired: List[int] = [0] * len(self.specs)
        self.injected: Dict[str, int] = {}
        for spec in self.specs:
            if spec.site not in KNOWN_SITES:
                logger.warning(
                    "fault plan %s names unknown site %r (known: %s) — "
                    "it will never fire", name, spec.site,
                    ", ".join(KNOWN_SITES),
                )

    # -- (de)serialization ---------------------------------------------------

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        if not isinstance(data, Mapping):
            raise ReliabilityError("a fault plan must be a JSON object")
        unknown = sorted(set(data) - {"name", "seed", "faults"})
        if unknown:
            raise ReliabilityError(
                f"unknown fault plan field(s): {', '.join(unknown)}"
            )
        faults = data.get("faults", [])
        if not isinstance(faults, Sequence) or isinstance(faults, str):
            raise ReliabilityError("'faults' must be a list of fault specs")
        specs = [FaultSpec.from_dict(spec) for spec in faults]
        return cls(specs, seed=data.get("seed", 0),
                   name=data.get("name", "fault-plan"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ReliabilityError(f"fault plan is not valid JSON: {error}")
        return cls.from_dict(data)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.specs],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    # -- trigger evaluation --------------------------------------------------

    def select(self, site: str, context: Mapping[str, Any],
               kinds: Sequence[str]):
        """The first spec firing at *site* (or ``None``) and the call no.

        Increments the site's call counter; evaluation order is spec
        order, so plans can layer a specific ``match`` spec over a
        broad probabilistic one.
        """
        with self._lock:
            call_number = self._calls.get(site, 0) + 1
            self._calls[site] = call_number
            for index, spec in enumerate(self.specs):
                if spec.site != site or spec.kind not in kinds:
                    continue
                if spec.times is not None and self._fired[index] >= spec.times:
                    continue
                if spec.calls is not None and call_number not in spec.calls:
                    continue
                if not spec.matches_context(context):
                    continue
                if spec.probability is not None and _fraction(
                    self.seed, site, call_number, index
                ) >= spec.probability:
                    continue
                self._fired[index] += 1
                self.injected[site] = self.injected.get(site, 0) + 1
                return spec, call_number
        return None, call_number

    def injected_total(self) -> int:
        """Injections fired from this plan object (this process only)."""
        return sum(self.injected.values())

    def __repr__(self) -> str:
        return (
            f"FaultPlan({self.name!r}, {len(self.specs)} spec(s), "
            f"{self.injected_total()} injected)"
        )


def load_fault_plan(path: Union[str, Path]) -> FaultPlan:
    """Read a :class:`FaultPlan` from a JSON file (the CLI entry point)."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise ReliabilityError(f"cannot read fault plan {path}: {error}")
    plan = FaultPlan.from_json(text)
    if plan.name == "fault-plan":
        plan.name = path.stem
    return plan


# -- the active plan ---------------------------------------------------------

_active_plan: Optional[FaultPlan] = None
_bound_metrics: MetricsRegistry = NULL_METRICS


def activate_plan(plan: FaultPlan,
                  metrics: Optional[MetricsRegistry] = None) -> None:
    """Make *plan* the process-wide active plan (one at a time).

    *metrics* (optional) receives the ``reliability.injected`` counters
    for every injection, in addition to any registry the call sites
    pass themselves.
    """
    global _active_plan, _bound_metrics
    _active_plan = plan
    _bound_metrics = metrics if metrics is not None else NULL_METRICS


def deactivate_plan() -> None:
    global _active_plan, _bound_metrics
    _active_plan = None
    _bound_metrics = NULL_METRICS


@contextmanager
def fault_plan_active(plan: FaultPlan,
                      metrics: Optional[MetricsRegistry] = None):
    """Scoped activation: ``with fault_plan_active(plan): ...``."""
    previous_plan, previous_metrics = _active_plan, _bound_metrics
    activate_plan(plan, metrics)
    try:
        yield plan
    finally:
        if previous_plan is not None:
            activate_plan(previous_plan, previous_metrics)
        else:
            deactivate_plan()


def current_plan() -> Optional[FaultPlan]:
    return _active_plan


def _count_injection(site: str, spec: FaultSpec,
                     metrics: MetricsRegistry) -> None:
    registries = [metrics]
    if _bound_metrics is not metrics:  # avoid double counting one registry
        registries.append(_bound_metrics)
    for registry in registries:
        registry.inc("reliability.injected")
        registry.inc(f"reliability.injected.{site}")
    logger.info("injected %s fault at %s", spec.kind, site)


# -- the hooks instrumented code calls ---------------------------------------

def fault_point(site: str, metrics: MetricsRegistry = NULL_METRICS,
                **context: Any) -> None:
    """Raise/sleep if the active plan schedules a fault here; else no-op.

    The fast path — no plan active — is one global read and a return,
    cheap enough to leave in production code paths unconditionally.
    """
    plan = _active_plan
    if plan is None:
        return
    spec, call_number = plan.select(site, context, kinds=("error", "delay"))
    if spec is None:
        return
    _count_injection(site, spec, metrics)
    if spec.kind == "delay":
        time.sleep(spec.delay)
        return
    raise spec.build_error(call_number)


def filter_bytes(site: str, data: bytes,
                 metrics: MetricsRegistry = NULL_METRICS,
                 **context: Any) -> bytes:
    """Truncate *data* if a ``truncate`` fault fires at *site*."""
    plan = _active_plan
    if plan is None:
        return data
    spec, _ = plan.select(site, context, kinds=("truncate",))
    if spec is None:
        return data
    _count_injection(site, spec, metrics)
    return data[:spec.truncate]


def filter_text(site: str, text: str,
                metrics: MetricsRegistry = NULL_METRICS,
                **context: Any) -> str:
    """Character-level twin of :func:`filter_bytes` for text payloads."""
    plan = _active_plan
    if plan is None:
        return text
    spec, _ = plan.select(site, context, kinds=("truncate",))
    if spec is None:
        return text
    _count_injection(site, spec, metrics)
    return text[:spec.truncate]


def wrap_text_stream(site: str, handle: TextIO,
                     metrics: MetricsRegistry = NULL_METRICS,
                     **context: Any) -> TextIO:
    """Replace *handle* with a truncated stream if a fault fires.

    Only consulted (and only buffering the file) when the active plan
    actually holds ``truncate`` specs for *site* — the common case
    returns the original handle untouched, preserving streaming reads.
    """
    plan = _active_plan
    if plan is None or not any(
        spec.site == site and spec.kind == "truncate" for spec in plan.specs
    ):
        return handle
    spec, _ = plan.select(site, context, kinds=("truncate",))
    if spec is None:
        return handle
    _count_injection(site, spec, metrics)
    return io.StringIO(handle.read()[:spec.truncate])
