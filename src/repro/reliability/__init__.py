"""``repro.reliability`` — fault injection, retry and graceful degradation.

The paper treats resource exhaustion as a first-class design input (the
couple-memory threshold of Algorithm 2; TANE's stripped partitions);
this package does the same for process and IO faults in the subsystems
that grew around the algorithms:

- :mod:`repro.reliability.faults` — a deterministic fault-injection
  registry: a :class:`FaultPlan` (loadable from JSON, e.g. the CLI's
  ``--fault-plan plan.json``) names instrumented sites and trigger
  predicates (nth call, seeded probability, context match, bounded
  ``times``), and the instrumented layers consult it through
  :func:`fault_point` / :func:`filter_bytes` / :func:`wrap_text_stream`;
- :mod:`repro.reliability.retry` — :class:`RetryPolicy`, exponential
  backoff with *keyed* (reproducible) jitter, used by the sharded
  executor's per-shard retry.

The consumers live where the faults live: ``parallel.ShardedExecutor``
(retry + poisoned-pool detection + degradation to serial,
``parallel.degraded``), ``cache.ArtifactStore`` (disk-tier quarantine,
``cache.quarantined``), and the CSV readers (typed ``StorageError`` on
injected/real IO errors).  The contract, enforced by the differential
suite in ``tests/test_reliability.py``: with any fault plan active a
mining run either returns the exact cover of a fault-free run or raises
a typed :class:`~repro.errors.ReproError` — never a wrong answer.  See
``docs/reliability.md``.
"""

from __future__ import annotations

from repro.reliability.faults import (
    KNOWN_SITES,
    FaultPlan,
    FaultSpec,
    activate_plan,
    current_plan,
    deactivate_plan,
    fault_plan_active,
    fault_point,
    filter_bytes,
    filter_text,
    load_fault_plan,
    wrap_text_stream,
)
from repro.reliability.retry import DEFAULT_RETRY_POLICY, RetryPolicy

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "KNOWN_SITES",
    "load_fault_plan",
    "activate_plan",
    "deactivate_plan",
    "fault_plan_active",
    "current_plan",
    "fault_point",
    "filter_bytes",
    "filter_text",
    "wrap_text_stream",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
]
