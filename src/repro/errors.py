"""Exception hierarchy for the repro (Dep-Miner) library.

All library-specific errors derive from :class:`ReproError` so callers can
catch one base class.  Errors are raised eagerly with actionable messages;
the library never silently returns wrong results.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class SchemaError(ReproError):
    """A schema is malformed (duplicate/empty attribute names, too wide)."""


class SchemaMismatchError(ReproError):
    """Two objects built over different schemas were combined."""


class RelationError(ReproError):
    """A relation is malformed (ragged rows, wrong arity, bad tuple ids)."""


class ArmstrongExistenceError(ReproError):
    """A real-world Armstrong relation does not exist (Proposition 1 fails).

    Carries the offending attributes so callers can report which columns
    lack enough distinct values.
    """

    def __init__(self, message: str, failing_attributes=()):
        super().__init__(message)
        self.failing_attributes = tuple(failing_attributes)


class StorageError(ReproError):
    """Storage-layer failure (unknown table, malformed CSV, bad types)."""


class QueryError(StorageError):
    """A query against the storage layer was invalid."""


class BenchmarkError(ReproError):
    """A benchmark experiment was misconfigured."""


class ReliabilityError(ReproError):
    """A fault plan is malformed (unknown site/kind, bad trigger values).

    Note *injected* faults never raise this: an injection raises the
    exception class the :class:`~repro.reliability.FaultSpec` names
    (``OSError``, ``RuntimeError``, …) so the code under test sees the
    same type a real fault would produce.
    """


class CacheError(ReproError):
    """The artifact cache was misconfigured or fed an unknown artefact.

    Note *corrupted* on-disk entries never raise: the store treats them
    as misses and recomputes (see :mod:`repro.cache.store`).
    """


class CacheCodecError(CacheError):
    """A serialized cache artefact failed to decode (corruption, version
    or guard mismatch).  Internal to the cache: the store converts this
    into a miss."""


class ServiceError(ReproError):
    """A discovery-service request was malformed or cannot be satisfied.

    The server answers with :attr:`http_status` and a structured JSON
    error body (see :mod:`repro.service.protocol`); subclasses override
    the default 400, and an instance can carry its own via the
    ``http_status`` keyword.
    """

    http_status = 400

    def __init__(self, message: str, http_status=None):
        super().__init__(message)
        if http_status is not None:
            self.http_status = int(http_status)


class SessionNotFoundError(ServiceError):
    """The requested session id is unknown (expired, evicted or never
    registered)."""

    http_status = 404


class SessionLimitError(ServiceError):
    """The session registry is full and nothing was idle enough to
    evict; retry later or raise ``--max-sessions``."""

    http_status = 429
