"""Streaming columnar ingestion: CSV bytes → the ``int64`` code matrix.

:func:`repro.storage.csv_io.read_csv` materializes a full Python
``Table`` — one ``str``/``int``/``float`` object per cell, several
per-cell passes for null mapping, unescaping and type inference — and
``encode_relation`` then re-walks all of it into the code matrix.  On
wide, long relations that ingestion toll dominates the whole columnar
run.  :func:`ingest_csv` goes straight from CSV text to the factorized
form instead:

- the file is read in fixed-size **row chunks** (``chunk_rows``), each
  converted once into a 2-D NumPy unicode array, so the per-row Python
  working set stays bounded and per-cell work happens in C;
- every column is **dictionary-encoded**: an all-ASCII-digit column is
  parsed by a vectorized digit-place evaluation (no string sort at
  all), any other column is deduplicated with one ``np.unique`` and the
  null-token / escape / numeric-inference rules are applied to the
  *distinct tokens only* — semantics identical to ``read_csv`` +
  ``encode_column``, pinned by the differential suite in
  ``tests/test_ingest.py``;
- the relation **fingerprint** can be accumulated from the codes in the
  same pass (``fingerprint=True``), so a configured cache serves a full
  hit before any Python ``Relation`` exists;
- the :class:`Relation` itself is built **lazily** — only when a
  non-columnar consumer asks (:meth:`CodedRelation.to_relation`).

Error behaviour mirrors ``read_csv`` exactly: missing/empty files,
ragged rows (with the line number of the offending row) and duplicate
header names raise :class:`~repro.errors.StorageError`; duplicate
headers are rejected from the *first* chunk, before any data is parsed.
Real IO errors are wrapped via the ``storage.read`` fault site.
"""

from __future__ import annotations

import csv
from itertools import chain, islice
from pathlib import Path
from typing import Any, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.attributes import Schema
from repro.core.relation import Relation
from repro.errors import StorageError
from repro.obs import Tracer, get_logger
from repro.reliability.faults import fault_point, wrap_text_stream
from repro.storage.csv_io import (
    DEFAULT_NULL_TOKENS,
    _cast_float,
    _cast_int,
    _check_header,
    _unescape,
)

__all__ = ["CodedRelation", "ingest_csv", "coded_from_relation",
           "DEFAULT_CHUNK_ROWS"]

logger = get_logger(__name__)

#: Default rows per chunk for the streaming reader.
DEFAULT_CHUNK_ROWS = 4096

#: Digit count safely representable in the vectorized ``int64`` cast.
_MAX_FAST_INT_DIGITS = 18

_POW10 = 10 ** np.arange(_MAX_FAST_INT_DIGITS + 1, dtype=np.int64)

# ``np.strings`` is the NumPy 2.x home of the vectorized string ufuncs;
# ``np.char`` carries the same names on older releases.
_np_strings = getattr(np, "strings", np.char)


class CodedRelation:
    """A relation held as its factorized columnar form.

    The mining pipeline only ever needs the ``(width, num_rows)`` code
    matrix; the per-column ``uniques`` (decoded values in
    first-occurrence order, exactly as
    :func:`repro.columnar.encode.encode_column` would produce them)
    are kept for the round trip.  A Python :class:`Relation` is built
    lazily, once, on the first :meth:`to_relation` call.
    """

    __slots__ = ("schema", "codes", "name", "nulls_equal", "_uniques",
                 "_uniques_lists", "_relation", "_distinct",
                 "_fingerprint_keys")

    def __init__(self, schema: Schema, codes: "np.ndarray",
                 uniques: Sequence[Any], nulls_equal: bool = True,
                 name: Optional[str] = None):
        if codes.shape[0] != len(schema):
            raise ValueError(
                f"code matrix has {codes.shape[0]} rows, "
                f"schema has {len(schema)} attributes"
            )
        self.schema = schema
        self.codes = codes
        self.name = name
        self.nulls_equal = nulls_equal
        # Per column: either a Python list (generic path) or an int64
        # array (fast path); lists are materialized on demand.
        self._uniques = list(uniques)
        self._uniques_lists: List[Optional[List[Any]]] = [
            column if isinstance(column, list) else None
            for column in self._uniques
        ]
        self._relation: Optional[Relation] = None
        self._distinct: dict = {}
        self._fingerprint_keys: dict = {}

    # -- shape ---------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return int(self.codes.shape[1])

    def __len__(self) -> int:
        return self.num_rows

    # -- decoding ------------------------------------------------------------

    def uniques(self, attribute: int) -> List[Any]:
        """Decoded distinct slots of one column (``uniques[code]`` order).

        Under ``nulls_equal=False`` every null *cell* owns a slot, so
        the list may repeat ``None`` — exactly like ``encode_column``.
        """
        cached = self._uniques_lists[attribute]
        if cached is None:
            cached = self._uniques[attribute].tolist()
            self._uniques_lists[attribute] = cached
        return cached

    def distinct_values(self, attribute: int) -> List[Any]:
        """``πA(r)`` in first-seen order (``None`` at most once)."""
        cached = self._distinct.get(attribute)
        if cached is None:
            seen: dict = {}
            for value in self.uniques(attribute):
                if value not in seen:
                    seen[value] = None
            cached = self._distinct[attribute] = list(seen)
        return cached

    def distinct_count(self, attribute: int) -> int:
        """``|πA(r)|`` — what Proposition 1 budgets against."""
        return len(self.distinct_values(attribute))

    def to_relation(self) -> Relation:
        """Materialize (and memoize) the Python :class:`Relation`."""
        if self._relation is None:
            columns = []
            for attribute in range(len(self.schema)):
                decoder = np.asarray(self.uniques(attribute), dtype=object)
                columns.append(decoder[self.codes[attribute]].tolist())
            self._relation = Relation.from_columns(self.schema, columns)
        return self._relation

    @property
    def materialized(self) -> bool:
        """Whether :meth:`to_relation` has already been paid for."""
        return self._relation is not None

    # -- fingerprint ---------------------------------------------------------

    def fingerprint_key(self, nulls_equal: Optional[bool] = None) -> str:
        """The cache fingerprint, computed from codes (memoized).

        Identical to ``fingerprint_relation(self.to_relation(), ...)``
        without ever materializing the relation (the equality is a
        hypothesis property in ``tests/test_ingest.py``).
        """
        if nulls_equal is None:
            nulls_equal = self.nulls_equal
        key = self._fingerprint_keys.get(nulls_equal)
        if key is None:
            from repro.cache.fingerprint import fingerprint_from_codes

            # Decoded (Python-typed) uniques: value digests are
            # type-tagged, so np.int64 slots must become plain ints.
            decoded = [
                self.uniques(a) for a in range(len(self.schema))
            ]
            key = fingerprint_from_codes(
                self.codes, decoded, self.schema,
                nulls_equal=nulls_equal,
            )
            self._fingerprint_keys[nulls_equal] = key
        return key

    def __repr__(self) -> str:
        return (
            f"CodedRelation(width={len(self.schema)}, rows={self.num_rows}, "
            f"nulls_equal={self.nulls_equal})"
        )


def coded_from_relation(relation: Relation,
                        nulls_equal: bool = True) -> CodedRelation:
    """Factorize an in-memory :class:`Relation` into a
    :class:`CodedRelation` (the classic ``encode_relation`` path, with
    the uniques retained for decoding)."""
    from repro.columnar.encode import encode_column

    width = len(relation.schema)
    codes = np.empty((width, len(relation)), dtype=np.int64)
    uniques: List[List[Any]] = []
    for attribute in range(width):
        codes[attribute], column_uniques = encode_column(
            relation.column(attribute), nulls_equal=nulls_equal
        )
        uniques.append(column_uniques)
    coded = CodedRelation(
        relation.schema, codes, uniques, nulls_equal=nulls_equal
    )
    coded._relation = relation
    return coded


# -- the streaming reader ----------------------------------------------------


def ingest_csv(path: Union[str, Path], name: Optional[str] = None,
               delimiter: str = ",", has_header: bool = True,
               infer_types: bool = True,
               null_tokens: Sequence[str] = DEFAULT_NULL_TOKENS,
               nulls_equal: bool = True,
               chunk_rows: int = DEFAULT_CHUNK_ROWS,
               fingerprint: bool = False,
               tracer: Optional[Tracer] = None) -> CodedRelation:
    """Stream a CSV file directly into a :class:`CodedRelation`.

    Parameters mirror :func:`repro.storage.csv_io.read_csv` (same null
    tokens, same canonical numeric inference, same error messages) plus:

    chunk_rows:
        Rows per streaming chunk — bounds the per-chunk Python row
        working set; factorization state is per-chunk-distinct, not
        per-cell.
    nulls_equal:
        Null semantics are resolved *at ingest* (fresh code per null
        cell under ``False``), exactly as ``encode_column`` would.
    fingerprint:
        Also fold the relation fingerprint (``ingest.fingerprint``
        span) so a configured cache can serve a full hit before any
        ``Relation`` is materialized.
    tracer:
        Optional span collector: ``ingest.read``, ``ingest.factorize``
        and (with ``fingerprint=True``) ``ingest.fingerprint``.
    """
    path = Path(path)
    if not path.exists():
        raise StorageError(f"CSV file not found: {path}")
    if chunk_rows < 1:
        raise StorageError(f"chunk_rows must be >= 1, got {chunk_rows}")
    tracer = tracer if tracer is not None else Tracer()
    null_set = set(null_tokens)
    with tracer.span("ingest.read", phase=True, path=str(path),
                     chunk_rows=chunk_rows) as read_span:
        header, chunks = _read_chunks(
            path, delimiter, has_header, chunk_rows
        )
    width = len(header)
    num_rows = sum(chunk.shape[0] for chunk in chunks)
    with tracer.span("ingest.factorize", phase=True, width=width,
                     rows=num_rows):
        codes = np.empty((width, num_rows), dtype=np.int64)
        uniques: List[Any] = []
        for attribute in range(width):
            column = _column_view(chunks, attribute)
            codes[attribute], column_uniques = _factorize_column(
                column, null_set, infer_types, nulls_equal
            )
            uniques.append(column_uniques)
    coded = CodedRelation(
        Schema(header), codes, uniques, nulls_equal=nulls_equal,
        name=name if name is not None else path.stem,
    )
    if fingerprint:
        with tracer.span("ingest.fingerprint", phase=True):
            coded.fingerprint_key(nulls_equal)
    logger.debug(
        "ingested %s: %d attributes over %d rows in %d chunk(s) (%.3fs "
        "read)", path, width, num_rows, len(chunks), read_span.duration,
    )
    return coded


def _read_chunks(path: Path, delimiter: str, has_header: bool,
                 chunk_rows: int) -> Tuple[List[str], List["np.ndarray"]]:
    """Chunked CSV read → (header, list of 2-D unicode chunk arrays).

    Blank lines are skipped (without advancing the reported line
    number, matching ``read_csv``); ragged rows raise with the same
    ``path:line: expected W fields`` message; duplicate header names
    are rejected before the first data chunk is converted.
    """
    try:
        fault_point("storage.read", path=str(path))
        with path.open(newline="") as raw:
            handle = wrap_text_stream("storage.read", raw, path=str(path))
            reader = csv.reader(handle, delimiter=delimiter)
            first = next((row for row in reader if row), None)
            if first is None:
                raise StorageError(f"CSV file {path} is empty")
            if has_header:
                header = first
                data = reader
                start = 2
            else:
                header = [f"col{i + 1}" for i in range(len(first))]
                data = chain([first], reader)
                start = 1
            _check_header(header, path)
            width = len(header)
            chunks: List[np.ndarray] = []
            consumed = 0  # non-blank data rows already converted
            while True:
                chunk = list(islice(data, chunk_rows))
                if not chunk:
                    break
                array = _chunk_array(chunk, width, path, start + consumed)
                consumed += len(chunk) - _blank_rows(chunk)
                if array.shape[0]:
                    chunks.append(array)
    except OSError as error:
        raise StorageError(f"cannot read {path}: {error}") from error
    return header, chunks


def _blank_rows(chunk: List[List[str]]) -> int:
    return sum(1 for row in chunk if not row)


def _chunk_array(chunk: List[List[str]], width: int, path: Path,
                 line_number: int) -> "np.ndarray":
    """One chunk as a 2-D unicode array, validating row widths.

    The clean case (no blank lines, rectangular) converts in a single C
    call; anything else falls back to a per-row scan that reports the
    exact offending line, numbered the way ``read_csv`` numbers it
    (blank lines do not advance the count).
    """
    try:
        array = np.asarray(chunk)
    except ValueError:
        array = None
    if array is not None and array.ndim == 2 and array.dtype.kind == "U" \
            and array.shape[1] == width:
        return array
    cleaned: List[List[str]] = []
    for row in chunk:
        if not row:
            continue
        if len(row) != width:
            raise StorageError(
                f"{path}:{line_number + len(cleaned)}: expected {width} "
                f"fields, got {len(row)}"
            )
        cleaned.append(row)
    if not cleaned:
        return np.empty((0, width), dtype="U1")
    return np.asarray(cleaned)


def _column_view(chunks: List["np.ndarray"], attribute: int) -> "np.ndarray":
    """Column *attribute* across all chunks, as one contiguous array."""
    if not chunks:
        return np.empty(0, dtype="U1")
    if len(chunks) == 1:
        return np.ascontiguousarray(chunks[0][:, attribute])
    parts = [chunk[:, attribute] for chunk in chunks]
    return np.concatenate(parts)


# -- per-column factorization ------------------------------------------------


def _factorize_column(column: "np.ndarray", null_set: set,
                      infer_types: bool, nulls_equal: bool):
    """Factorize one raw-token column into ``(codes, uniques)``.

    Bit-identical to ``encode_column`` applied to the column that
    ``read_csv`` would have produced — null mapping, one-backslash
    unescape, canonical all-int / all-float / strings inference, dense
    codes in first-occurrence order, fresh codes per null cell under
    ``nulls_equal=False``.
    """
    if column.shape[0] == 0:
        return np.empty(0, dtype=np.int64), []
    if infer_types:
        fast = _fast_int_values(column, null_set)
        if fast is not None:
            return _codes_of_values(fast)
    return _factorize_generic(column, null_set, infer_types, nulls_equal)


def _fast_int_values(column: "np.ndarray",
                     null_set: set) -> Optional["np.ndarray"]:
    """The vectorized cast: all-ASCII-digit columns → ``int64`` values.

    Returns ``None`` whenever anything requires the generic path: a
    non-digit character (signs, decimal points, escapes, null tokens —
    all non-digit), a token longer than 18 digits, an empty token, or a
    null-token set that could claim a digit string.
    """
    if any(token.isascii() and token.isdigit() for token in null_set):
        return None  # a digit token might be a null — let the slow path decide
    column = np.ascontiguousarray(column)
    item_chars = column.dtype.itemsize // 4
    if item_chars == 0:
        return None
    u32 = column.view(np.uint32).reshape(column.shape[0], item_chars)
    digits = (u32 - 48) < 10  # uint32 wraparound rejects chars below '0'
    lengths = _np_strings.str_len(column)
    if int(lengths.max(initial=0)) > _MAX_FAST_INT_DIGITS \
            or int(lengths.min(initial=1)) == 0:
        return None
    inside = np.arange(item_chars) < lengths[:, None]
    if not bool((digits == inside).all()):
        return None  # digits exactly fill the token, NUL padding outside
    exponents = np.clip(lengths[:, None] - 1 - np.arange(item_chars), 0, None)
    places = np.where(inside, u32.astype(np.int64) - 48, 0)
    return (places * _POW10[exponents]).sum(axis=1)


def _codes_of_values(values: "np.ndarray"):
    """Dense first-occurrence codes of an ``int64`` value array.

    One stable argsort: run starts give the distinct values, and —
    because the sort is stable — the first row of each run is the
    value's first occurrence, which fixes the code order.
    """
    order = np.argsort(values, kind="stable")
    ranked = values[order]
    num = values.shape[0]
    starts = np.empty(num, dtype=bool)
    starts[0] = True
    starts[1:] = ranked[1:] != ranked[:-1]
    first_rows = order[starts]
    by_first = np.argsort(first_rows, kind="stable")
    num_distinct = first_rows.shape[0]
    rank = np.empty(num_distinct, dtype=np.int64)
    rank[by_first] = np.arange(num_distinct)
    inverse = np.empty(num, dtype=np.int64)
    inverse[order] = np.cumsum(starts) - 1
    return rank[inverse], ranked[starts][by_first]


def _factorize_generic(column: "np.ndarray", null_set: set,
                       infer_types: bool, nulls_equal: bool):
    """The general path: dedup once, decode distinct tokens in Python."""
    uniq, inverse = np.unique(column, return_inverse=True)
    inverse = inverse.reshape(-1)
    # First-occurrence row of every distinct raw token.
    order = np.argsort(inverse, kind="stable")
    ranked = inverse[order]
    starts = np.empty(inverse.shape[0], dtype=bool)
    starts[0] = True
    starts[1:] = ranked[1:] != ranked[:-1]
    first_rows = np.empty(uniq.shape[0], dtype=np.int64)
    first_rows[ranked[starts]] = order[starts]
    # Null mapping, unescape and numeric inference on distinct tokens.
    tokens = uniq.tolist()
    mapped = [
        None if token in null_set else _unescape(token) for token in tokens
    ]
    if infer_types:
        mapped = _infer_distinct(mapped)
    if nulls_equal:
        return _codes_nulls_equal(mapped, first_rows, inverse)
    return _codes_sql_nulls(mapped, first_rows, inverse)


def _infer_distinct(mapped: List[Any]) -> List[Any]:
    """``_parse_column`` restricted to distinct tokens: all-int, else
    all-float, else the strings (nulls untouched)."""
    non_null = [token for token in mapped if token is not None]
    for caster in (_cast_int, _cast_float):
        try:
            parsed = {token: caster(token) for token in set(non_null)}
        except (TypeError, ValueError):
            continue
        return [
            parsed[token] if token is not None else None for token in mapped
        ]
    return mapped


def _codes_nulls_equal(mapped: List[Any], first_rows: "np.ndarray",
                       inverse: "np.ndarray"):
    """Token codes under grouped-null semantics.

    Distinct tokens whose decoded values are equal (``"01"`` and
    ``"1"`` in an integer column, ``"\\\\x"`` and ``"x"``) merge into
    one code; visiting tokens by first occurrence keeps the code order
    exactly first-occurrence-of-value.
    """
    code_of_token = np.empty(len(mapped), dtype=np.int64)
    uniques: List[Any] = []
    seen: dict = {}
    for token_index in np.argsort(first_rows, kind="stable").tolist():
        value = mapped[token_index]
        if value in seen:
            code = seen[value]
        else:
            code = seen[value] = len(uniques)
            uniques.append(value)
        code_of_token[token_index] = code
    return code_of_token[inverse], uniques


def _codes_sql_nulls(mapped: List[Any], first_rows: "np.ndarray",
                     inverse: "np.ndarray"):
    """Token codes under SQL null semantics: fresh code per null cell.

    ``encode_column`` hands out codes in row order — a null cell takes
    the next code the moment it is seen, interleaved with first-seen
    values — so codes are ranked over the merged event sequence
    (value first occurrences ∪ null cells).
    """
    null_token = np.array([value is None for value in mapped], dtype=bool)
    null_cells = null_token[inverse]
    null_rows = np.flatnonzero(null_cells)
    seen: dict = {}
    value_first: List[int] = []
    token_value: List[int] = [-1] * len(mapped)
    for token_index in np.argsort(first_rows, kind="stable").tolist():
        if null_token[token_index]:
            continue
        value = mapped[token_index]
        if value in seen:
            token_value[token_index] = seen[value]
        else:
            token_value[token_index] = seen[value] = len(value_first)
            value_first.append(int(first_rows[token_index]))
    events = np.concatenate([
        np.asarray(value_first, dtype=np.int64), null_rows
    ])
    event_code = np.empty(events.shape[0], dtype=np.int64)
    event_code[np.argsort(events, kind="stable")] = \
        np.arange(events.shape[0])
    num_values = len(value_first)
    value_code = event_code[:num_values]
    padded = np.concatenate([value_code, np.asarray([-1], dtype=np.int64)])
    codes = padded[np.asarray(token_value, dtype=np.int64)[inverse]]
    codes[null_cells] = event_code[num_values:]
    uniques: List[Any] = [None] * events.shape[0]
    for value, value_id in seen.items():
        uniques[int(value_code[value_id])] = value
    return codes, uniques
