"""Agree sets by vectorized batch intersection of ``ec(t)`` arrays.

Algorithm 2 computes ``ag(t1, t2)`` couple by couple; here the whole
couple population is resolved in one array sweep per attribute:

1. :func:`candidate_couples` enumerates, per attribute, all row pairs
   sharing a stripped class (runs batched by class size, one
   ``np.triu_indices`` per size), then collapses the cross-attribute
   duplicates with a single ``np.unique`` over ``left·n + right`` keys —
   the same deduplicate-before-counting contract the parallel couples
   path honours (the distinct-couple count feeds the ``∅ ∈ ag(r)``
   test);
2. :func:`resolve_couples` intersects the per-tuple class-identifier
   arrays: per attribute, one vectorized comparison marks the agreeing
   couples and ORs the attribute's bit into ``uint64`` lane
   accumulators (63 usable bits per lane, same layout as
   :mod:`repro.core.agree_fast` and the transversal kernel);
3. one ``np.unique`` collapses the per-couple lane rows into the
   distinct agree-set masks.

:func:`columnar_agree_sets` chains the two and adds ``∅`` when some row
pair shares no stripped class at all (distinct couples < ``n(n−1)/2``).
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

import numpy as np

__all__ = [
    "candidate_couples",
    "resolve_couples",
    "masks_from_lanes",
    "columnar_agree_sets",
]

#: Usable bits per ``uint64`` lane — matches ``repro.core.agree_fast``
#: and ``repro.hypergraph.kernel`` (kept clear of sign pitfalls in
#: int ↔ uint64 conversions).
_BITS_PER_LANE = 63


def candidate_couples(ec: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """The deduplicated candidate couples of a class-id matrix.

    Returns parallel ``(left, right)`` index arrays with ``left <
    right``, sorted by ``(left, right)``; each couple appears exactly
    once even when it co-occurs in classes of several attributes.
    """
    from repro.columnar.grouping import grouped_runs

    width, num_rows = ec.shape
    n = np.int64(max(num_rows, 1))
    key_parts = []
    for attribute in range(width):
        order, starts, lengths = grouped_runs(ec[attribute])
        if starts.shape[0] == 0:
            continue
        sorted_ids = ec[attribute][order]
        keep = (lengths > 1) & (sorted_ids[starts] >= 0)
        kept_starts = starts[keep]
        kept_lengths = lengths[keep]
        for size in np.unique(kept_lengths).tolist():
            size_starts = kept_starts[kept_lengths == size]
            # (k, size) member matrix; rows ascend within each run, so
            # the triu pairs are already left < right.
            members = order[size_starts[:, None]
                            + np.arange(size, dtype=np.int64)]
            i, j = np.triu_indices(int(size), k=1)
            left = members[:, i].ravel()
            right = members[:, j].ravel()
            key_parts.append(left * n + right)
    if not key_parts:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    keys = np.unique(np.concatenate(key_parts))
    return keys // n, keys % n


def masks_from_lanes(lanes: np.ndarray) -> Set[int]:
    """Distinct Python-int masks from a ``(num_lanes, count)`` array."""
    num_lanes = lanes.shape[0]
    if num_lanes == 1:
        return {int(value) for value in np.unique(lanes[0])}
    result: Set[int] = set()
    for row in np.unique(lanes.T, axis=0):
        mask = 0
        for lane in range(num_lanes):
            mask |= int(row[lane]) << (lane * _BITS_PER_LANE)
        result.add(mask)
    return result


def resolve_couples(ec: np.ndarray, left: np.ndarray,
                    right: np.ndarray) -> Set[int]:
    """The distinct agree-set masks of the given couples.

    One vectorized pass per attribute over the class-identifier matrix;
    the result is independent of couple order and therefore of how a
    sharded run slices the couple arrays.
    """
    width = ec.shape[0]
    count = int(left.shape[0])
    if not count:
        return set()
    num_lanes = (width + _BITS_PER_LANE - 1) // _BITS_PER_LANE
    lanes = np.zeros((max(num_lanes, 1), count), dtype=np.uint64)
    for attribute in range(width):
        ids = ec[attribute]
        left_ids = ids[left]
        agree = (left_ids >= 0) & (left_ids == ids[right])
        lane, bit = divmod(attribute, _BITS_PER_LANE)
        lanes[lane, agree] |= np.uint64(1 << bit)
    return masks_from_lanes(lanes)


def columnar_agree_sets(ec: np.ndarray,
                        left: Optional[np.ndarray] = None,
                        right: Optional[np.ndarray] = None) -> Set[int]:
    """``ag(r)`` from a class-id matrix — same output as ``agree_sets``.

    Enumerates (or reuses the supplied) candidate couples, resolves
    them, and adds ``∅`` when the distinct couples do not exhaust every
    row pair (Algorithm 2's emptiness criterion).
    """
    if left is None or right is None:
        left, right = candidate_couples(ec)
    result = resolve_couples(ec, left, right)
    num_rows = int(ec.shape[1])
    if int(left.shape[0]) < num_rows * (num_rows - 1) // 2:
        result.add(0)
    return result
