"""``max``/``cmax`` derivation on lane-packed bitmask arrays.

Lemma 3: ``max(dep(r), A) = Max⊆ { X ∈ ag(r) : A ∉ X }``.  The
pure-Python :func:`repro.core.maximal_sets.maximal_sets` re-runs a
quadratic subset scan per attribute; here the quadratic part happens
once, vectorized, and every attribute then reads the answer in
linear time:

1. pack the distinct agree-set masks into a ``(m, lanes)`` ``uint64``
   matrix (63 usable bits per lane — the layout shared with
   :mod:`repro.columnar.agree` and the transversal kernel);
2. one chunked, vectorized sweep computes the *strict-superset bitset*:
   row ``i`` of a ``(m, ⌈m/8⌉)`` ``uint8`` matrix marks every ``j``
   with ``mask_i ⊂ mask_j`` (``np.packbits`` keeps it 8 candidates per
   byte);
3. per attribute ``A``: the candidates are the masks without bit ``A``
   (one lane test); a candidate is maximal iff its superset bitset hits
   no *candidate* — a single masked ``any`` over the packed matrix.

The per-attribute output lists are identical (same masks, same sorted
order) to ``maximal_sets`` + ``complement_maximal_sets``, and the cmax
edges feed straight into ``minimal_transversals_kernel``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.core.attributes import Schema

__all__ = ["pack_masks", "maximal_sets_packed"]

_BITS_PER_LANE = 63
_LANE_MASK = (1 << _BITS_PER_LANE) - 1

#: Budget (array elements) per chunk of the superset sweep — bounds the
#: ``(chunk, m, lanes)`` temporary regardless of how many agree sets
#: the relation produced.
_CHUNK_ELEMENTS = 1 << 22


def pack_masks(masks: Iterable[int], width: int) -> np.ndarray:
    """Python-int masks as a ``(m, lanes)`` ``uint64`` matrix."""
    masks = list(masks)
    num_lanes = max((width + _BITS_PER_LANE - 1) // _BITS_PER_LANE, 1)
    lanes = np.zeros((len(masks), num_lanes), dtype=np.uint64)
    for index, mask in enumerate(masks):
        for lane in range(num_lanes):
            lanes[index, lane] = (mask >> (lane * _BITS_PER_LANE)) & _LANE_MASK
    return lanes


def _strict_superset_bitsets(lanes: np.ndarray) -> np.ndarray:
    """Packed dominance matrix: bit ``j`` of row ``i`` ⇔ ``mask_i ⊂ mask_j``.

    Masks are distinct, so subset plus ``i ≠ j`` is already strict; the
    diagonal (every mask is a subset of itself) is cleared explicitly.
    """
    m = lanes.shape[0]
    chunk = max(1, _CHUNK_ELEMENTS // max(m * lanes.shape[1], 1))
    packed = np.empty((m, (m + 7) // 8), dtype=np.uint8)
    not_lanes = ~lanes
    for start in range(0, m, chunk):
        stop = min(start + chunk, m)
        subset = (
            (lanes[start:stop, None, :] & not_lanes[None, :, :]) == 0
        ).all(axis=2)
        subset[np.arange(stop - start), np.arange(start, stop)] = False
        packed[start:stop] = np.packbits(subset, axis=1)
    return packed


def maximal_sets_packed(agree: Iterable[int],
                        schema: Schema) -> Tuple[Dict[int, List[int]],
                                                 Dict[int, List[int]]]:
    """``(max_sets, cmax_sets)`` per attribute, from ``ag(r)`` bitmasks.

    Same two dicts as
    :func:`repro.core.maximal_sets.maximal_sets` followed by
    :func:`repro.core.maximal_sets.complement_maximal_sets` (the
    differential tests hold them equal); an attribute mapped to an
    empty list is constant in the relation.
    """
    width = len(schema)
    universe = schema.universe_mask
    ordered = sorted(set(agree))
    m = len(ordered)
    if m == 0:
        empty: Dict[int, List[int]] = {a: [] for a in range(width)}
        return empty, {a: [] for a in range(width)}
    lanes = pack_masks(ordered, width)
    dominated_by = _strict_superset_bitsets(lanes)
    max_sets: Dict[int, List[int]] = {}
    cmax_sets: Dict[int, List[int]] = {}
    for attribute in range(width):
        lane, bit = divmod(attribute, _BITS_PER_LANE)
        candidates = (lanes[:, lane] & np.uint64(1 << bit)) == 0
        candidate_bits = np.packbits(candidates)
        dominated = (dominated_by & candidate_bits).any(axis=1)
        maximal = candidates & ~dominated
        masks = [ordered[i] for i in np.flatnonzero(maximal)]
        max_sets[attribute] = masks
        cmax_sets[attribute] = sorted(universe & ~mask for mask in masks)
    return max_sets, cmax_sets
