"""Vectorized Armstrong constructions (the columnar output side).

The row-wise builders in :mod:`repro.core.armstrong` synthesize one
tuple per maximal set with a Python loop over attributes.  Both
constructions are really just broadcasts over the *presence matrix* —
``present[i, a] ⇔ attribute a ∈ Xi`` for the i-th maximal set — so the
columnar backend emits the whole relation as one NumPy expression:

- **classical** (eq. (1)): row ``i`` is ``where(present[i], 0, i)``,
  with the all-zero row for ``X0 = R`` stacked on top;
- **real-world** (eq. (2)): the fresh-value index of row ``i`` on
  attribute ``a`` is ``1 +`` (number of earlier rows that also needed a
  fresh value on ``a``) — an exclusive cumulative sum of ``~present``
  down the rows — decoded through the active domain in first-seen
  order, i.e. exactly the ``uniques[code]`` round trip of the ingest
  side.

Outputs are **bit-identical** to the legacy builders (same Python value
objects, same row order — the differential suite sweeps the oracle
corpus), and :func:`is_armstrong_for_columnar` re-checks the
[BDFS84] characterisation by lane-packing the candidate's pairwise
agree masks instead of looping row pairs in Python.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

import numpy as np

from repro.core.armstrong import armstrong_size  # noqa: F401  (re-export)
from repro.core.attributes import Schema
from repro.core.relation import Relation
from repro.errors import ArmstrongExistenceError

__all__ = [
    "classical_armstrong_columnar",
    "real_world_armstrong_columnar",
    "existence_deficits",
    "is_armstrong_for_columnar",
    "presence_matrix",
]

_BITS_PER_LANE = 63
_LANE_MASK = (1 << _BITS_PER_LANE) - 1

#: Anything that can hand out per-attribute active domains: a
#: :class:`Relation` or a :class:`repro.columnar.ingest.CodedRelation`.
DomainSource = Union[Relation, "object"]


def presence_matrix(max_union: Sequence[int], width: int) -> np.ndarray:
    """``present[i, a] ⇔ a ∈ Xi`` as a ``(len(max_union), width)`` bool
    matrix, unpacked from the Python-int bitmasks lane by lane."""
    count = len(max_union)
    num_lanes = max((width + _BITS_PER_LANE - 1) // _BITS_PER_LANE, 1)
    lanes = np.zeros((count, num_lanes), dtype=np.uint64)
    for index, mask in enumerate(max_union):
        for lane in range(num_lanes):
            lanes[index, lane] = (mask >> (lane * _BITS_PER_LANE)) \
                & _LANE_MASK
    present = np.zeros((count, width), dtype=bool)
    for attribute in range(width):
        lane, bit = divmod(attribute, _BITS_PER_LANE)
        present[:, attribute] = (lanes[:, lane] >> np.uint64(bit)) \
            & np.uint64(1)
    return present


def classical_armstrong_columnar(schema: Schema,
                                 max_union: Sequence[int]) -> Relation:
    """Equation (1) as one broadcast: identical output to
    :func:`repro.core.armstrong.classical_armstrong`."""
    width = len(schema)
    present = presence_matrix(max_union, width)
    fresh = np.arange(1, len(max_union) + 1, dtype=np.int64)[:, None]
    body = np.where(present, np.int64(0), fresh)
    matrix = np.concatenate(
        [np.zeros((1, width), dtype=np.int64), body], axis=0
    )
    return Relation.from_columns(
        schema, [matrix[:, a].tolist() for a in range(width)]
    )


def _domains(source: DomainSource, attribute: int) -> List:
    return source.distinct_values(attribute)


def _available(source: DomainSource, attribute: int) -> int:
    if isinstance(source, Relation):
        return len(set(source.column(attribute)))
    return source.distinct_count(attribute)


def existence_deficits(source: DomainSource,
                       max_union: Sequence[int]) -> Dict[str, int]:
    """Proposition 1 deficits, off a :class:`Relation` *or* a coded
    relation — same mapping as
    :func:`repro.core.armstrong.real_world_existence_deficits`."""
    deficits: Dict[str, int] = {}
    for index, name in enumerate(source.schema.names):
        bit = 1 << index
        needed = sum(1 for mask in max_union if not mask & bit) + 1
        available = _available(source, index)
        if available < needed:
            deficits[name] = needed - available
    return deficits


def real_world_armstrong_columnar(source: DomainSource,
                                  max_union: Sequence[int]) -> Relation:
    """Equation (2), vectorized; bit-identical to
    :func:`repro.core.armstrong.real_world_armstrong`.

    The fresh-value index matrix is ``1 +`` the exclusive cumsum of
    ``~present`` down the rows; decoding gathers through each
    attribute's first-seen active domain with an object-dtype take, so
    the emitted cells are the *same* Python objects the row-wise
    builder would have picked.
    """
    deficits = existence_deficits(source, max_union)
    if deficits:
        details = ", ".join(
            f"{name} (short by {missing})"
            for name, missing in sorted(deficits.items())
        )
        raise ArmstrongExistenceError(
            "no real-world Armstrong relation exists: attributes with too "
            f"few distinct values: {details}",
            failing_attributes=sorted(deficits),
        )
    schema = source.schema
    width = len(schema)
    present = presence_matrix(max_union, width)
    needs_fresh = ~present
    earlier = np.cumsum(needs_fresh, axis=0) - needs_fresh
    indices = np.where(present, 0, 1 + earlier).astype(np.int64)
    # Row 0 (X0 = R) reads every attribute's first distinct value.
    indices = np.concatenate(
        [np.zeros((1, width), dtype=np.int64), indices], axis=0
    )
    columns = []
    for attribute in range(width):
        wanted = indices[:, attribute]
        depth = int(wanted.max()) + 1
        domain = np.empty(depth, dtype=object)
        domain[:] = _domains(source, attribute)[:depth]
        columns.append(domain[wanted].tolist())
    return Relation.from_columns(schema, columns)


def is_armstrong_for_columnar(candidate: Relation,
                              max_union: Sequence[int]) -> bool:
    """The [BDFS84] check (``GEN ⊆ ag(candidate) ⊆ CL``) with the
    candidate's agree sets computed columnarly.

    The candidate is factorized, then each row's agreements with every
    later row resolve as one lane-packed comparison — no Python pair
    loop.  Equivalent to
    :func:`repro.core.armstrong.is_armstrong_for` on every input.
    """
    from repro.columnar.encode import encode_relation

    universe = candidate.schema.universe_mask
    num_rows = len(candidate)
    width = len(candidate.schema)
    agree: set = set()
    if num_rows > 1:
        codes = encode_relation(candidate)
        num_lanes = max((width + _BITS_PER_LANE - 1) // _BITS_PER_LANE, 1)
        weights = [
            np.uint64(1) << np.uint64(bit) for bit in range(_BITS_PER_LANE)
        ]
        distinct_lanes: List[np.ndarray] = []
        for row in range(num_rows - 1):
            equal = codes[:, row, None] == codes[:, row + 1:]
            lanes = np.zeros((equal.shape[1], num_lanes), dtype=np.uint64)
            for attribute in range(width):
                lane, bit = divmod(attribute, _BITS_PER_LANE)
                lanes[:, lane] |= np.where(
                    equal[attribute], weights[bit], np.uint64(0)
                )
            distinct_lanes.append(np.unique(lanes, axis=0))
        for row in np.unique(np.concatenate(distinct_lanes, axis=0), axis=0):
            mask = 0
            for lane in range(num_lanes):
                mask |= int(row[lane]) << (lane * _BITS_PER_LANE)
            agree.add(mask)
    agree.discard(universe)  # duplicate rows agree on R; R is closed
    required = set(max_union)
    if not required <= agree:
        return False
    for mask in agree:
        meet = universe
        for max_mask in max_union:
            if mask & max_mask == mask:
                meet &= max_mask
        if meet != mask:
            return False
    return True
