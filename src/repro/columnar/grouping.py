"""Stripped partitions as arrays, via stable lexsort grouping.

A stripped partition ``π̂A`` (section 3.1 of the paper) drops singleton
classes.  Columnar representation: one stable argsort per coded column
yields the rows grouped by value as contiguous *runs* of the sort
order; runs of length 1 are the stripped singletons.  Two array forms
are derived from the runs:

- :func:`class_ids` — the per-tuple equivalence-class identifier array
  (``-1`` for stripped rows), i.e. one row of the paper's ``ec(t)``
  table; :func:`class_matrix` stacks them into the full
  tuples×attributes identifier matrix the agree-set stage intersects;
- :func:`to_stripped_partition` — the classic
  :class:`~repro.partitions.partition.StrippedPartition` object, used
  by the property tests to hold the grouping equal to
  :func:`repro.partitions.partition.stripped_partition_of_column`.

The stable sort keeps row indices ascending within each run, which the
couple enumeration in :mod:`repro.columnar.agree` relies on (it emits
``left < right`` pairs without any extra sorting).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.partitions.partition import StrippedPartition

__all__ = [
    "grouped_runs",
    "class_ids",
    "class_matrix",
    "num_stripped_classes",
    "to_stripped_partition",
]


def grouped_runs(codes: np.ndarray) -> Tuple[np.ndarray, np.ndarray,
                                             np.ndarray]:
    """Group one coded column: ``(order, starts, lengths)``.

    ``order`` is the stable argsort of *codes*; equal codes form
    contiguous runs of ``order`` described by the parallel ``starts``
    (first-occurrence offset into ``order``) and ``lengths`` arrays.
    """
    num_rows = int(codes.shape[0])
    order = np.argsort(codes, kind="stable")
    if num_rows == 0:
        empty = np.empty(0, dtype=np.int64)
        return order, empty, empty
    sorted_codes = codes[order]
    boundary = np.empty(num_rows, dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_codes[1:], sorted_codes[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    lengths = np.diff(np.append(starts, num_rows))
    return order, starts, lengths


def class_ids(codes: np.ndarray) -> np.ndarray:
    """``row → stripped class id`` for one column (``-1`` = singleton).

    Class ids are dense over the surviving (length > 1) runs; their
    numbering is arbitrary — only *equality* of ids matters downstream.
    """
    order, starts, lengths = grouped_runs(codes)
    ids = np.full(codes.shape[0], -1, dtype=np.int64)
    keep = lengths > 1
    if keep.any():
        run_ids = np.cumsum(keep) - 1
        member_run = np.repeat(
            np.arange(starts.shape[0], dtype=np.int64), lengths
        )
        kept_positions = keep[member_run]
        ids[order[kept_positions]] = run_ids[member_run[kept_positions]]
    return ids


def class_matrix(codes: np.ndarray) -> np.ndarray:
    """The ``ec(t)`` table: a ``(width, num_rows)`` class-id matrix.

    Row ``a`` holds the stripped class identifier of every tuple under
    attribute ``a`` (``-1`` for stripped singletons) — the columnar form
    of :meth:`StrippedPartitionDatabase.equivalence_class_identifiers`.
    """
    width, num_rows = codes.shape
    if width == 0:
        return np.empty((0, num_rows), dtype=np.int64)
    return np.vstack([class_ids(codes[a]) for a in range(width)])


def num_stripped_classes(ec: np.ndarray) -> int:
    """Total ``|π̂A|`` over all attributes of a class-id matrix."""
    total = 0
    for attribute in range(ec.shape[0]):
        ids = ec[attribute]
        ids = ids[ids >= 0]
        total += int(np.unique(ids).shape[0]) if ids.shape[0] else 0
    return total


def to_stripped_partition(codes: np.ndarray) -> StrippedPartition:
    """The :class:`StrippedPartition` of one coded column.

    Equivalence helper for the property tests; the pipeline itself never
    materialises class tuples.
    """
    order, starts, lengths = grouped_runs(codes)
    classes = [
        tuple(order[start:start + length].tolist())
        for start, length in zip(starts.tolist(), lengths.tolist())
        if length > 1
    ]
    return StrippedPartition(classes, int(codes.shape[0]))
