"""The end-to-end columnar run behind ``DepMiner(backend="columnar")``.

Stage for stage the same pipeline as the pure-Python path — and the
same *phase span names* (``strip``, ``agree_sets``, ``cmax``, ``lhs``,
``fd_output``, ``armstrong``), so ``phase_seconds`` keeps its
compatibility guarantee — with the row-at-a-time inner loops replaced
by the array primitives of this package:

- ``strip`` — :func:`~repro.columnar.encode.encode_relation` (child
  span ``columnar.encode``) + :func:`~repro.columnar.grouping.class_matrix`
  (``columnar.group``);
- ``agree_sets`` — :func:`~repro.columnar.agree.candidate_couples`
  (``columnar.couples``) + :func:`~repro.columnar.agree.resolve_couples`
  (``columnar.resolve``); with ``jobs > 1`` the couple arrays are
  sliced into ranges and resolved by the sharded executor
  (:func:`repro.parallel.shards.parallel_columnar_couples`);
- ``cmax`` — :func:`~repro.columnar.cmax.maximal_sets_packed` on the
  lane-packed masks (serial path; the ``jobs > 1`` path reuses the
  fused per-RHS ``parallel_cmax_lhs`` tail of the Python backend);
- ``lhs`` — the existing transversal search; the default ``"kernel"``
  method is resolved to the kernel's lane-packed ``"vectorized"``
  backend (explicit method choices are honoured unchanged);
- ``fd_output`` / ``armstrong`` — shared with the Python path verbatim.

Caching mirrors ``DepMiner._run_cached``: cover bundle first, then
``ag(r)``, then a cold run; the ``backend`` participates in the agree
and cover stage keys (see :class:`repro.cache.fingerprint.PipelineKeys`)
so columnar artefacts are never confused with Python-path ones.  The
stripped-partition tier is skipped — the columnar run never
materialises partition objects.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.columnar import require_numpy
from repro.columnar.agree import candidate_couples, resolve_couples
from repro.columnar.cmax import maximal_sets_packed
from repro.columnar.encode import encode_relation
from repro.columnar.grouping import class_matrix, num_stripped_classes
from repro.core.lhs import fd_output, left_hand_sides
from repro.core.relation import Relation
from repro.obs import MetricsRegistry, Tracer, get_logger

__all__ = ["run_columnar", "resolved_transversal_method"]

logger = get_logger(__name__)

#: Sentinel distinguishing "no executor created yet" from "serial run".
_UNSET = object()


def resolved_transversal_method(miner) -> str:
    """The transversal method the columnar backend actually runs.

    The default ``"kernel"`` choice becomes the kernel's lane-packed
    ``"vectorized"`` backend — the cmax stage already produces packed
    bitmask families, so they feed straight into the NumPy kernel.  Any
    explicitly chosen method (``levelwise``, ``berge``, …) is honoured
    unchanged; every method yields the identical cover.
    """
    if miner.transversal_method == "kernel":
        return "vectorized"
    return miner.transversal_method


def run_columnar(miner, relation, tracer: Tracer,
                 metrics: MetricsRegistry, mark: int):
    """Execute the full columnar pipeline for *miner* on *relation*.

    *relation* is a :class:`Relation` or a
    :class:`repro.columnar.ingest.CodedRelation`.  A coded relation
    skips the ``columnar.encode`` re-walk (its code matrix feeds the
    grouping stage directly when the null semantics match) and is
    fingerprinted from the codes, so a warm cover hit is served without
    ever materializing a ``Relation`` — the Armstrong step reads
    domains off the code matrix too.
    """
    require_numpy()
    coded = None if isinstance(relation, Relation) else relation
    schema = relation.schema
    num_rows = len(relation)
    stats: Dict[str, int] = {}
    keys = None
    guard: Optional[bytes] = None
    store = miner.cache

    if store is not None:
        from repro.cache.artifacts import unpack_agree, unpack_cover
        from repro.cache.codec import guard_digest
        from repro.cache.fingerprint import PipelineKeys, fingerprint_relation

        with tracer.span("cache.fingerprint"):
            if coded is not None:
                relation_key = coded.fingerprint_key(miner.nulls_equal)
            else:
                relation_key = fingerprint_relation(
                    relation, miner.nulls_equal
                )
            keys = PipelineKeys.for_miner(relation_key, miner)
            guard = guard_digest(schema.names, num_rows)
        with tracer.span("cache.lookup", stage="cover"):
            bundle = store.get("cover", keys.cover, guard, metrics=metrics)
        if bundle is not None:
            agree, max_sets, cmax, lhs_sets, fds, stats = unpack_cover(
                bundle, schema
            )
            metrics.inc("cache.full_hit")
            metrics.gauge("agree.sets", len(agree))
            metrics.gauge("fd.count", len(fds))
            logger.debug(
                "columnar cover cache hit for %s: %d FDs reused",
                keys.cover, len(fds),
            )
            return miner._finalize(
                agree, max_sets, cmax, lhs_sets, fds, schema, num_rows,
                relation, stats, tracer, metrics, mark,
            )
        with tracer.span("cache.lookup", stage="agree"):
            entry = store.get("agree", keys.agree, guard, metrics=metrics)
        if entry is not None:
            agree, stats = unpack_agree(entry)
            metrics.gauge("agree.sets", len(agree))
            return _complete(
                miner, agree, schema, num_rows, relation, stats, tracer,
                metrics, mark, keys, guard,
            )

    with tracer.span("strip", phase=True, backend="columnar") as strip_span:
        if coded is not None and coded.nulls_equal == miner.nulls_equal:
            # Ingest already factorized under these null semantics; the
            # code matrix is the encode stage's output, verbatim.
            codes = coded.codes
        else:
            if coded is not None:
                # Semantics mismatch (e.g. ingested nulls_equal=True,
                # mined with SQL nulls): re-encode from the values.
                relation = coded.to_relation()
            with tracer.span("columnar.encode"):
                codes = encode_relation(
                    relation, nulls_equal=miner.nulls_equal
                )
        with tracer.span("columnar.group"):
            ec = class_matrix(codes)
        stripped = num_stripped_classes(ec)
        metrics.gauge("partition.stripped_classes", stripped)
    logger.debug(
        "columnar strip: %d attributes over %d rows into %d classes "
        "(%.3fs)", len(schema), num_rows, stripped, strip_span.duration,
    )

    executor = miner._make_executor(tracer, metrics)
    with tracer.span("agree_sets", phase=True, algorithm="columnar",
                     jobs=miner.jobs) as agree_span:
        with tracer.span("columnar.couples"):
            left, right = candidate_couples(ec)
        visited = int(left.shape[0])
        stats["num_couples"] = visited
        with tracer.span("columnar.resolve"):
            if executor is not None:
                from repro.parallel.shards import parallel_columnar_couples

                agree = parallel_columnar_couples(
                    ec, left, right, executor, stats=stats
                )
            else:
                metrics.inc("agree.couples_enumerated", visited)
                agree = resolve_couples(ec, left, right)
        if visited < num_rows * (num_rows - 1) // 2:
            agree.add(0)
        stats["num_agree_sets"] = len(agree)
        metrics.gauge("agree.sets", len(agree))
    logger.debug(
        "columnar agree sets: %d from %d couples (%.3fs)",
        len(agree), visited, agree_span.duration,
    )

    if store is not None:
        from repro.cache.artifacts import pack_agree

        store.put(
            "agree", keys.agree, guard, pack_agree(agree, stats),
            metrics=metrics,
        )
    return _complete(
        miner, agree, schema, num_rows, relation, stats, tracer, metrics,
        mark, keys, guard, executor=executor,
    )


def _complete(miner, agree, schema, num_rows, relation, stats,
              tracer: Tracer, metrics: MetricsRegistry, mark: int,
              keys, guard, executor=_UNSET):
    """Steps 2–4 of the columnar run, plus the cover write-back."""
    if executor is _UNSET:
        executor = miner._make_executor(tracer, metrics)
    method = resolved_transversal_method(miner)
    if executor is not None:
        from repro.parallel.shards import parallel_cmax_lhs

        with tracer.span("cmax", phase=True, jobs=miner.jobs):
            agree_list = sorted(agree)
        with tracer.span("lhs", phase=True, method=method, jobs=miner.jobs,
                         fused_cmax=True) as lhs_span:
            max_sets, cmax, lhs_sets = parallel_cmax_lhs(
                agree_list, schema, executor, method=method,
                max_size=miner.max_lhs_size,
            )
            metrics.gauge(
                "cmax.edges", sum(len(edges) for edges in cmax.values())
            )
    else:
        with tracer.span("cmax", phase=True, backend="columnar"):
            max_sets, cmax = maximal_sets_packed(agree, schema)
            metrics.gauge(
                "cmax.edges", sum(len(edges) for edges in cmax.values())
            )
        with tracer.span("lhs", phase=True, method=method) as lhs_span:
            lhs_sets = left_hand_sides(
                cmax, schema, method=method, max_size=miner.max_lhs_size,
                metrics=metrics, progress=miner.progress, tracer=tracer,
            )
    logger.debug(
        "columnar lhs families computed via %s (%.3fs)",
        method, lhs_span.duration,
    )

    with tracer.span("fd_output", phase=True):
        fds = fd_output(lhs_sets, schema)
        metrics.gauge("fd.count", len(fds))
    logger.info(
        "mined %d minimal FDs over %d attributes and %d rows "
        "(columnar backend)", len(fds), len(schema), num_rows,
    )

    if keys is not None and miner.cache is not None:
        from repro.cache.artifacts import pack_cover

        miner.cache.put(
            "cover", keys.cover, guard,
            pack_cover(agree, max_sets, cmax, lhs_sets, fds, stats),
            metrics=metrics,
        )
    return miner._finalize(
        agree, max_sets, cmax, lhs_sets, fds, schema, num_rows, relation,
        stats, tracer, metrics, mark,
    )
