"""Integer coding of relations (the columnar ingest step).

Every column is *factorized* exactly once: distinct values get dense
``int64`` codes in first-occurrence order, so all later stages operate
on arrays of small integers and never touch the original Python values
again.  Two rows agree on an attribute iff their codes are equal —
value identity is fully captured by the coding, which is what makes the
grouping and agree-set stages pure array computations.

Null semantics are resolved here, not downstream: with
``nulls_equal=False`` (SQL's ``NULL <> NULL``) every ``None`` cell
receives a *fresh* code, so it can never share a code with another row
and the grouping stage strips it as a singleton — exactly the semantics
of :func:`repro.partitions.partition.stripped_partition_of_column`.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

import numpy as np

from repro.core.relation import Relation

__all__ = ["encode_column", "encode_relation"]


def encode_column(values: Sequence[Any],
                  nulls_equal: bool = True) -> Tuple[np.ndarray, List[Any]]:
    """Factorize one column into ``(codes, uniques)``.

    ``codes`` is an ``int64`` array with ``uniques[codes[row]] ==
    values[row]`` for every row (the round-trip property the tests pin
    down); codes are dense and assigned in first-occurrence order.  With
    ``nulls_equal=False`` each ``None`` cell gets its own code (and its
    own ``uniques`` slot, keeping the round trip exact).

    >>> codes, uniques = encode_column(["x", "y", "x"])
    >>> codes.tolist(), uniques
    ([0, 1, 0], ['x', 'y'])
    """
    codes = np.empty(len(values), dtype=np.int64)
    uniques: List[Any] = []
    table: dict = {}
    for row, value in enumerate(values):
        if value is None and not nulls_equal:
            code = len(uniques)
            uniques.append(None)
        else:
            code = table.get(value)
            if code is None:
                code = table[value] = len(uniques)
                uniques.append(value)
        codes[row] = code
    return codes, uniques


def encode_relation(relation: Relation,
                    nulls_equal: bool = True) -> np.ndarray:
    """The whole relation as a ``(width, num_rows)`` code matrix.

    Row ``a`` of the result is the factorized coding of attribute ``a``.
    """
    width = len(relation.schema)
    num_rows = len(relation)
    codes = np.empty((width, num_rows), dtype=np.int64)
    for attribute in range(width):
        codes[attribute], _ = encode_column(
            relation.column(attribute), nulls_equal=nulls_equal
        )
    return codes
