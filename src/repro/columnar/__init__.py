"""``repro.columnar`` — the integer-coded NumPy mining backend.

The pure-Python pipeline walks tuples one at a time; this package runs
the same Dep-Miner stages column-at-a-time on integer-coded arrays:

- :mod:`repro.columnar.encode` — factorize every column once at ingest
  into dense ``int64`` codes (``encode_column``/``encode_relation``);
- :mod:`repro.columnar.grouping` — stripped partitions as
  group-index/first-occurrence arrays via stable lexsort grouping; the
  paper's ``ec(t)`` tables become one tuples×attributes class-id matrix;
- :mod:`repro.columnar.agree` — candidate couples batched per class
  size, deduplicated with one ``np.unique``, and resolved by vectorized
  batch intersection of the per-tuple class-identifier arrays;
- :mod:`repro.columnar.cmax` — ``max``/``cmax`` derivation on
  lane-packed ``uint64`` bitmasks, feeding the lane-packed transversal
  kernel of :mod:`repro.hypergraph.kernel`;
- :mod:`repro.columnar.pipeline` — the end-to-end run behind
  ``DepMiner(backend="columnar")`` (cache- and executor-aware);
- :mod:`repro.columnar.ingest` — chunked streaming CSV → code matrix
  (:func:`ingest_csv` / :class:`CodedRelation`): factorization, type
  inference and the relation fingerprint in one pass, with the Python
  ``Relation`` materialized lazily only when a row-wise consumer asks;
- :mod:`repro.columnar.armstrong` — the Armstrong constructions as
  NumPy broadcasts over the max-union bitsets, bit-identical to
  :mod:`repro.core.armstrong`.

The backend is extensionally identical to the pure-Python path — the
oracle-conformance suite (``tests/oracle.py``) holds the covers equal
bit for bit.  Without NumPy, :class:`ColumnarUnavailableError` is the
typed failure mode; ``DepMiner`` catches the condition up front and
falls back to ``backend="python"`` with a logged warning (see
``docs/columnar.md``).
"""

from __future__ import annotations

import importlib

from repro.errors import ReproError

__all__ = [
    "ColumnarUnavailableError",
    "numpy_available",
    "require_numpy",
    "encode_column",
    "encode_relation",
    "grouped_runs",
    "class_ids",
    "class_matrix",
    "num_stripped_classes",
    "to_stripped_partition",
    "candidate_couples",
    "resolve_couples",
    "columnar_agree_sets",
    "maximal_sets_packed",
    "run_columnar",
    "CodedRelation",
    "ingest_csv",
    "coded_from_relation",
    "classical_armstrong_columnar",
    "real_world_armstrong_columnar",
    "is_armstrong_for_columnar",
]


class ColumnarUnavailableError(ReproError):
    """The columnar backend was requested but NumPy is not installed."""


try:
    import numpy as _np  # noqa: F401  (availability probe only)
except ImportError:  # pragma: no cover - exercised by the NumPy-free CI lane
    _np = None


def numpy_available() -> bool:
    """True when NumPy is importable (the backend's only dependency)."""
    return _np is not None


def require_numpy() -> None:
    """Raise the typed error unless NumPy is importable."""
    if not numpy_available():
        raise ColumnarUnavailableError(
            "the columnar backend needs NumPy; install the repro[fast] "
            "extra or use DepMiner(backend='python')"
        )


#: Lazy re-exports: the submodules import NumPy at module level, so they
#: are only loaded on first attribute access (after `require_numpy`).
_LAZY = {
    "encode_column": "repro.columnar.encode",
    "encode_relation": "repro.columnar.encode",
    "grouped_runs": "repro.columnar.grouping",
    "class_ids": "repro.columnar.grouping",
    "class_matrix": "repro.columnar.grouping",
    "num_stripped_classes": "repro.columnar.grouping",
    "to_stripped_partition": "repro.columnar.grouping",
    "candidate_couples": "repro.columnar.agree",
    "resolve_couples": "repro.columnar.agree",
    "columnar_agree_sets": "repro.columnar.agree",
    "maximal_sets_packed": "repro.columnar.cmax",
    "run_columnar": "repro.columnar.pipeline",
    "CodedRelation": "repro.columnar.ingest",
    "ingest_csv": "repro.columnar.ingest",
    "coded_from_relation": "repro.columnar.ingest",
    "classical_armstrong_columnar": "repro.columnar.armstrong",
    "real_world_armstrong_columnar": "repro.columnar.armstrong",
    "is_armstrong_for_columnar": "repro.columnar.armstrong",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module 'repro.columnar' has no attribute {name!r}")
    require_numpy()
    return getattr(importlib.import_module(module), name)
