"""Stripped partition databases (section 3.1 of the paper).

A *stripped partition database* ``r̂ = ⋃_{A∈R} π̂A`` is the reduced
representation of a relation that Dep-Miner takes as input: one stripped
partition per attribute.  Building it is the only step that touches the
raw data ("database accesses are only performed during the computation of
agree sets"), which is why the paper can claim feasibility independent of
data volume.

This module also computes ``MC``, the set of *maximal equivalence
classes* of ``r̂`` (Lemma 1): only tuple couples inside a common class of
``MC`` can have a non-empty agree set, so they are the only candidates
worth enumerating.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.core.attributes import Schema
from repro.core.relation import Relation
from repro.errors import RelationError
from repro.obs.logsetup import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.partitions.partition import (
    StrippedPartition,
    stripped_partition_of_column,
)

__all__ = ["StrippedPartitionDatabase", "maximal_classes"]

logger = get_logger(__name__)


class StrippedPartitionDatabase:
    """``r̂`` — one stripped partition per attribute of the schema."""

    __slots__ = ("_schema", "_partitions", "_num_rows")

    def __init__(self, schema: Schema,
                 partitions: Dict[int, StrippedPartition],
                 num_rows: int):
        if set(partitions) != set(range(len(schema))):
            raise RelationError(
                "a stripped partition database needs exactly one partition "
                "per attribute"
            )
        for partition in partitions.values():
            if partition.num_rows != num_rows:
                raise RelationError(
                    "all partitions must be over the same number of rows"
                )
        self._schema = schema
        self._partitions = dict(partitions)
        self._num_rows = num_rows

    @classmethod
    def from_relation(cls, relation: Relation,
                      nulls_equal: bool = True,
                      metrics: Optional[MetricsRegistry] = None) -> "StrippedPartitionDatabase":
        """Scan *relation* column-wise and strip each attribute partition.

        This is the paper's pre-processing phase; it is the only place
        the actual tuple values are read.  ``nulls_equal=False`` switches
        to SQL null semantics (see
        :func:`~repro.partitions.partition.stripped_partition_of_column`).
        *metrics*, when given, receives the ``partition.stripped_classes``
        and ``partition.rows`` gauges.
        """
        partitions = {
            index: stripped_partition_of_column(
                relation.column(index), nulls_equal=nulls_equal
            )
            for index in range(len(relation.schema))
        }
        spdb = cls(relation.schema, partitions, len(relation))
        if metrics is not None:
            metrics.gauge("partition.stripped_classes", spdb.total_classes())
            metrics.gauge("partition.rows", spdb.num_rows)
        logger.debug(
            "built stripped partition database: %d attributes, %d rows, "
            "%d classes", len(relation.schema), len(relation),
            spdb.total_classes(),
        )
        return spdb

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def num_rows(self) -> int:
        return self._num_rows

    def partition(self, attribute) -> StrippedPartition:
        """``π̂A`` for attribute *attribute* (name or index)."""
        if isinstance(attribute, str):
            attribute = self._schema.index_of(attribute)
        return self._partitions[attribute]

    def __iter__(self) -> Iterator[Tuple[int, StrippedPartition]]:
        """Yield ``(attribute_index, stripped_partition)`` in schema order."""
        for index in range(len(self._schema)):
            yield index, self._partitions[index]

    def __len__(self) -> int:
        return len(self._partitions)

    def total_classes(self) -> int:
        """Total number of stripped classes across all attributes."""
        return sum(p.num_classes for p in self._partitions.values())

    def maximal_classes(self) -> List[Tuple[int, ...]]:
        """``MC`` — see :func:`maximal_classes`."""
        return maximal_classes(self)

    def equivalence_class_identifiers(self) -> Dict[int, Dict[int, int]]:
        """``ec(t)`` for every tuple *t* (Lemma 2's identifier sets).

        Returns a mapping ``row -> {attribute_index: class_index}``; a
        tuple absent from every stripped class maps to an empty dict.
        The pair ``(A, i)`` of the paper is the dict item ``A: i``.
        """
        identifiers: Dict[int, Dict[int, int]] = {}
        for attribute, partition in self:
            for class_index, cls in enumerate(partition):
                for row in cls:
                    identifiers.setdefault(row, {})[attribute] = class_index
        return identifiers

    def __repr__(self) -> str:
        return (
            f"StrippedPartitionDatabase(width={len(self._schema)}, "
            f"rows={self._num_rows}, classes={self.total_classes()})"
        )


def maximal_classes(spdb: StrippedPartitionDatabase) -> List[Tuple[int, ...]]:
    """``MC = Max⊆ {c ∈ π̂A : π̂A ∈ r̂}`` — maximal equivalence classes.

    Duplicated classes (the same tuple group appearing under several
    attributes) are kept once; classes contained in a strictly larger
    class of another attribute are dropped.

    The subset test is accelerated by indexing, for every row, the
    already-retained classes that contain it: a candidate (scanned in
    decreasing size order) is dominated iff one retained class containing
    its first member contains all of its members.
    """
    unique: Dict[FrozenSet[int], Tuple[int, ...]] = {}
    for _attribute, partition in spdb:
        for cls in partition:
            unique.setdefault(frozenset(cls), cls)
    candidates = sorted(unique.items(), key=lambda item: -len(item[0]))
    retained: List[Tuple[int, ...]] = []
    containing: Dict[int, List[FrozenSet[int]]] = {}
    for as_set, as_tuple in candidates:
        dominated = any(
            as_set <= kept for kept in containing.get(as_tuple[0], ())
        )
        if dominated:
            continue
        retained.append(as_tuple)
        for row in as_tuple:
            containing.setdefault(row, []).append(as_set)
    retained.sort()
    return retained
