"""Streaming construction of stripped partition databases.

The paper stresses that Dep-Miner's "feasibility does not depend on the
volume of handled data": the only full scan of the relation is the one
that builds the stripped partitions, and everything downstream works on
tuple-id lists.  This module makes that literal for CSV sources: the
file is read row by row, per-column ``value → row ids`` maps are
accumulated, singleton groups are dropped, and the values themselves
are discarded — the relation is never materialised.

Values are compared as *verbatim text* (after null-token mapping and
the backslash unescape of :mod:`repro.storage.csv_io`), which is the
exact-match semantics large-scale profilers use; load
through :mod:`repro.storage.csv_io` instead when typed comparison
("1" = "01" as integers) is wanted.

``DepMiner.run_on_partitions(spdb)`` accepts the result directly; the
convenience wrapper :func:`mine_csv` wires the two together (the
real-world Armstrong step degrades to the classical construction, since
the original values are gone by design).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.core.attributes import Schema
from repro.errors import StorageError
from repro.partitions.database import StrippedPartitionDatabase
from repro.partitions.partition import StrippedPartition
from repro.reliability.faults import fault_point, wrap_text_stream
from repro.storage.csv_io import DEFAULT_NULL_TOKENS, _check_header, _unescape

__all__ = ["stream_partition_database", "mine_csv"]


def stream_partition_database(
    path: Union[str, Path],
    delimiter: str = ",",
    has_header: bool = True,
    null_tokens: Sequence[str] = DEFAULT_NULL_TOKENS,
    nulls_equal: bool = True,
) -> StrippedPartitionDatabase:
    """One streaming pass: CSV file → stripped partition database."""
    path = Path(path)
    if not path.exists():
        raise StorageError(f"CSV file not found: {path}")
    null_set = set(null_tokens)
    groups: Optional[List[Dict[Optional[str], List[int]]]] = None
    header: Optional[List[str]] = None
    row_count = 0
    try:
        fault_point("partitions.stream", path=str(path))
        with path.open(newline="") as raw:
            handle = wrap_text_stream(
                "partitions.stream", raw, path=str(path)
            )
            reader = csv.reader(handle, delimiter=delimiter)
            for line_number, row in enumerate(reader, start=1):
                if not row:
                    continue  # blank line
                if header is None:
                    if has_header:
                        header = list(row)
                    else:
                        header = [f"col{i + 1}" for i in range(len(row))]
                    _check_header(header, path)
                    groups = [{} for _ in header]
                    if has_header:
                        continue
                if len(row) != len(header):
                    raise StorageError(
                        f"{path}:{line_number}: expected {len(header)} "
                        f"fields, got {len(row)}"
                    )
                for bucket, token in zip(groups, row):
                    value = None if token in null_set else _unescape(token)
                    bucket.setdefault(value, []).append(row_count)
                row_count += 1
    except OSError as error:
        raise StorageError(f"cannot read {path}: {error}") from error
    if header is None:
        raise StorageError(f"CSV file {path} is empty")
    schema = Schema(header)
    partitions = {}
    for index, bucket in enumerate(groups):
        classes = [
            rows
            for value, rows in bucket.items()
            if len(rows) > 1 and (nulls_equal or value is not None)
        ]
        partitions[index] = StrippedPartition(classes, row_count)
    return StrippedPartitionDatabase(schema, partitions, row_count)


def mine_csv(path: Union[str, Path], **options):
    """Stream a CSV into partitions and run Dep-Miner on them.

    Keyword options are split between :func:`stream_partition_database`
    (``delimiter``, ``has_header``, ``null_tokens``, ``nulls_equal``)
    and :class:`~repro.core.depminer.DepMiner` (the rest).  Returns the
    usual :class:`~repro.core.depminer.DepMinerResult`; the Armstrong
    step yields the classical construction only (no values are kept).
    """
    from repro.core.depminer import DepMiner

    stream_keys = ("delimiter", "has_header", "null_tokens", "nulls_equal")
    stream_options = {
        key: options.pop(key) for key in stream_keys if key in options
    }
    nulls_equal = stream_options.get("nulls_equal", True)
    spdb = stream_partition_database(path, **stream_options)
    options.setdefault("build_armstrong", "classical")
    options.setdefault("nulls_equal", nulls_equal)
    return DepMiner(**options).run_on_partitions(spdb)
