"""Partition substrate: partitions, stripped partitions, partition
products, and stripped partition databases (section 3.1 / [HKPT98])."""

from repro.partitions.database import StrippedPartitionDatabase, maximal_classes
from repro.partitions.partition import (
    StrippedPartition,
    full_partition,
    partition_product,
    stripped_partition_of_column,
)

__all__ = [
    "StrippedPartition",
    "StrippedPartitionDatabase",
    "full_partition",
    "stripped_partition_of_column",
    "partition_product",
    "maximal_classes",
]
