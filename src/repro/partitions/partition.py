"""Partitions and stripped partitions (section 3.1 of the paper).

Two tuples are *equivalent* w.r.t. an attribute set ``X`` when they share
the values of every attribute of ``X``.  The set of equivalence classes is
the partition ``πX``; dropping singleton classes (tuples that share their
value with nobody) yields the *stripped partition* ``π̂X``.

Stripped partitions are the common substrate of Dep-Miner (agree sets are
mined from them) and TANE (FD validity is read off partition refinement).
Both the partition *product* (needed by TANE's lattice walk) and the
classical error measures are implemented here.

Equivalence classes are stored as sorted tuples of 0-based row indices;
the class list itself is kept sorted by first member so partitions have a
canonical form, which makes equality and tests deterministic.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.errors import RelationError

__all__ = [
    "StrippedPartition",
    "full_partition",
    "stripped_partition_of_column",
    "partition_product",
]

Class = Tuple[int, ...]


def full_partition(values: Sequence[Any]) -> List[Class]:
    """``πA`` — group row indices by value, singletons included.

    >>> full_partition(["x", "y", "x"])
    [(0, 2), (1,)]
    """
    groups: Dict[Any, List[int]] = {}
    for row, value in enumerate(values):
        groups.setdefault(value, []).append(row)
    return sorted((tuple(members) for members in groups.values()),
                  key=lambda cls: cls[0])


def stripped_partition_of_column(values: Sequence[Any],
                                 nulls_equal: bool = True) -> "StrippedPartition":
    """``π̂A`` — the stripped partition of a single column.

    With ``nulls_equal=False`` (SQL's ``NULL <> NULL``), rows holding
    ``None`` never join an equivalence class: each is its own singleton
    and is stripped away, so no FD can be *violated* through a null and
    none can be *witnessed* by one either.
    """
    classes = [
        cls
        for cls in full_partition(values)
        if len(cls) > 1 and (nulls_equal or values[cls[0]] is not None)
    ]
    return StrippedPartition(classes, len(values))


class StrippedPartition:
    """A stripped partition ``π̂X`` over a relation of ``num_rows`` tuples.

    Exposes the counts used by FD miners:

    - ``num_classes`` — ``|π̂X|``, the number of non-singleton classes;
    - ``num_rows_in_classes`` — ``||π̂X||``, the tuples they contain;
    - ``num_full_classes`` — ``|πX|`` of the unstripped partition;
    - ``error`` — TANE's ``e(X) = (||π̂X|| − |π̂X|) / num_rows``, the
      minimum fraction of tuples to delete so ``X`` becomes a superkey.
    """

    __slots__ = ("_classes", "_num_rows", "_num_rows_in_classes")

    def __init__(self, classes: Iterable[Sequence[int]], num_rows: int):
        if num_rows < 0:
            raise RelationError("num_rows must be non-negative")
        normalized: List[Class] = []
        covered = 0
        for cls in classes:
            members = tuple(sorted(cls))
            if len(members) < 2:
                raise RelationError(
                    "stripped partitions contain no singleton classes; "
                    f"got class {members}"
                )
            if members[0] < 0 or members[-1] >= num_rows:
                raise RelationError(
                    f"class {members} has row indices outside 0..{num_rows - 1}"
                )
            normalized.append(members)
            covered += len(members)
        normalized.sort(key=lambda cls: cls[0])
        self._classes = normalized
        self._num_rows = num_rows
        self._num_rows_in_classes = covered

    # -- counts ------------------------------------------------------------

    @property
    def classes(self) -> List[Class]:
        """The equivalence classes of size > 1, each a sorted tuple."""
        return list(self._classes)

    @property
    def num_rows(self) -> int:
        """Size of the underlying relation."""
        return self._num_rows

    @property
    def num_classes(self) -> int:
        """``|π̂X|``."""
        return len(self._classes)

    @property
    def num_rows_in_classes(self) -> int:
        """``||π̂X||``."""
        return self._num_rows_in_classes

    @property
    def num_full_classes(self) -> int:
        """``|πX|`` of the unstripped partition (singletons counted back)."""
        singletons = self._num_rows - self._num_rows_in_classes
        return len(self._classes) + singletons

    @property
    def error(self) -> float:
        """``e(X)`` — fraction of tuples to remove for ``X`` to be a key."""
        if self._num_rows == 0:
            return 0.0
        return (self._num_rows_in_classes - len(self._classes)) / self._num_rows

    def rank(self) -> int:
        """``||π̂X|| − |π̂X|`` — the integer numerator of :attr:`error`.

        Two attribute sets ``X ⊆ Y`` satisfy ``X → Y \\ X`` exactly when
        their ranks are equal, which is how TANE tests FD validity.
        """
        return self._num_rows_in_classes - len(self._classes)

    def is_superkey(self) -> bool:
        """True when the stripped partition is empty (all classes singleton)."""
        return not self._classes

    # -- operations ----------------------------------------------------------

    def refines(self, other: "StrippedPartition") -> bool:
        """Is every class of ``self`` contained in a class of *other*?

        ``πX`` refines ``πY`` iff ``X → Y``'s agree structure holds, i.e.
        tuples equivalent under ``X`` stay equivalent under ``Y``.
        """
        if self._num_rows != other._num_rows:
            raise RelationError("partitions are over different relations")
        owner: Dict[int, int] = {}
        for class_index, cls in enumerate(other._classes):
            for row in cls:
                owner[row] = class_index
        for cls in self._classes:
            first = owner.get(cls[0], -1)
            if first < 0:
                return False
            if any(owner.get(row, -2) != first for row in cls[1:]):
                return False
        return True

    def product(self, other: "StrippedPartition") -> "StrippedPartition":
        """``πX · πY = πX∪Y`` — see :func:`partition_product`."""
        return partition_product(self, other)

    # -- dunder ---------------------------------------------------------------

    def __iter__(self) -> Iterator[Class]:
        return iter(self._classes)

    def __len__(self) -> int:
        return len(self._classes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StrippedPartition):
            return NotImplemented
        return (
            self._num_rows == other._num_rows
            and self._classes == other._classes
        )

    def __hash__(self) -> int:
        return hash((self._num_rows, tuple(self._classes)))

    def __repr__(self) -> str:
        inner = ", ".join("{" + ",".join(map(str, cls)) + "}"
                          for cls in self._classes)
        return f"StrippedPartition([{inner}], rows={self._num_rows})"


def partition_product(left: StrippedPartition,
                      right: StrippedPartition) -> StrippedPartition:
    """Compute ``π̂X∪Y`` from ``π̂X`` and ``π̂Y`` in linear time.

    This is the probe-table algorithm of TANE [HKPT98]: tag every row with
    its class in *left*, then split *right*'s classes by those tags.  Rows
    in no *left* class are singletons under the product and are dropped.
    """
    if left.num_rows != right.num_rows:
        raise RelationError("cannot multiply partitions over different relations")
    tag: Dict[int, int] = {}
    for class_index, cls in enumerate(left):
        for row in cls:
            tag[row] = class_index
    product_classes: List[List[int]] = []
    buckets: Dict[Tuple[int, int], List[int]] = {}
    for right_index, cls in enumerate(right):
        for row in cls:
            left_index = tag.get(row)
            if left_index is None:
                continue
            buckets.setdefault((left_index, right_index), []).append(row)
    for members in buckets.values():
        if len(members) > 1:
            product_classes.append(members)
    return StrippedPartition(product_classes, left.num_rows)
