"""TANE extended with Armstrong-relation generation (section 5.1).

TANE produces left-hand sides, not maximal sets — so unlike Dep-Miner it
cannot emit Armstrong relations "for free".  The paper observes that for
a simple hypergraph ``H``, ``Tr(Tr(H)) = H`` (Berge's nihilpotence), and
since ``Tr(cmax(dep(r), A)) = lhs(dep(r), A)``, the complements of the
maximal sets can be recovered *from* the lhs families:

    ``cmax(dep(r), A) = Tr(lhs(dep(r), A))``

From there the maximal sets are edge-wise complements, their union is
``MAX(dep(r))``, and the constructions of section 4 apply.  This module
implements exactly that extension — it is the "adapted algorithm" the
paper argues is necessarily slower than Dep-Miner because the transversal
computation happens *after* FD discovery instead of alongside it.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.core.armstrong import (
    classical_armstrong,
    real_world_armstrong,
    real_world_armstrong_exists,
)
from repro.core.relation import Relation
from repro.hypergraph.transversals import minimal_transversals
from repro.tane.tane import Tane, TaneResult

__all__ = ["TaneArmstrongResult", "tane_with_armstrong", "cmax_from_lhs"]


class TaneArmstrongResult:
    """TANE output augmented with maximal sets and Armstrong relations."""

    def __init__(self, tane_result: TaneResult,
                 cmax_sets: Dict[int, List[int]],
                 max_sets: Dict[int, List[int]],
                 max_union: List[int],
                 armstrong: Optional[Relation],
                 classical: Relation,
                 extension_seconds: float):
        self.tane_result = tane_result
        self.cmax_sets = cmax_sets
        self.max_sets = max_sets
        self.max_union = max_union
        self.armstrong = armstrong
        self.classical_armstrong = classical
        self.extension_seconds = extension_seconds

    @property
    def fds(self):
        return self.tane_result.fds

    @property
    def total_seconds(self) -> float:
        return self.tane_result.total_seconds + self.extension_seconds


def cmax_from_lhs(lhs_sets: Dict[int, List[int]], width: int,
                  method: str = "levelwise") -> Dict[int, List[int]]:
    """``cmax(dep(r), A) = Tr(lhs(dep(r), A))`` per attribute.

    An attribute whose lhs family is ``{∅}`` (constant column) has no
    cmax edge — ``Tr({∅})`` does not exist as a simple hypergraph, and
    indeed ``max(dep(r), A) = ∅`` in that case.
    """
    cmax: Dict[int, List[int]] = {}
    for attribute, masks in lhs_sets.items():
        if 0 in masks:
            cmax[attribute] = []
        else:
            cmax[attribute] = minimal_transversals(masks, width, method=method)
    return cmax


def tane_with_armstrong(relation: Relation, epsilon: float = 0.0,
                        transversal_method: str = "levelwise",
                        tracer=None, metrics=None,
                        progress=None) -> TaneArmstrongResult:
    """Run TANE, then derive maximal sets and build Armstrong relations.

    The real-world relation is built when Proposition 1 allows it
    (``armstrong`` is ``None`` otherwise); the classical integer-valued
    relation is always built.  *tracer*/*metrics*/*progress* are
    forwarded to :class:`~repro.tane.tane.Tane`; the extension itself
    runs inside a ``tane.armstrong_extension`` span.
    """
    from repro.obs import NULL_TRACER

    tane_result = Tane(
        epsilon=epsilon, tracer=tracer, metrics=metrics, progress=progress
    ).run(relation)
    span_tracer = tracer if tracer is not None else NULL_TRACER
    start = time.perf_counter()
    with span_tracer.span("tane.armstrong_extension"):
        schema = tane_result.schema
        universe = schema.universe_mask
        lhs_sets = tane_result.lhs_sets()
        cmax = cmax_from_lhs(lhs_sets, len(schema), method=transversal_method)
        max_sets = {
            attribute: sorted(universe & ~edge for edge in edges)
            for attribute, edges in cmax.items()
        }
        union = sorted({mask for masks in max_sets.values() for mask in masks})
        classical = classical_armstrong(schema, union)
        armstrong = None
        if real_world_armstrong_exists(relation, union):
            armstrong = real_world_armstrong(relation, union)
    extension_seconds = time.perf_counter() - start
    return TaneArmstrongResult(
        tane_result=tane_result,
        cmax_sets=cmax,
        max_sets=max_sets,
        max_union=union,
        armstrong=armstrong,
        classical=classical,
        extension_seconds=extension_seconds,
    )
