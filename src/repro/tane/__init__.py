"""TANE baseline [HKPT98]: lattice-walking FD discovery with partition
refinement, plus the Armstrong-relation extension of section 5.1."""

from repro.tane.armstrong_ext import (
    TaneArmstrongResult,
    cmax_from_lhs,
    tane_with_armstrong,
)
from repro.tane.tane import Tane, TaneResult, g3_error

__all__ = [
    "Tane",
    "TaneResult",
    "g3_error",
    "tane_with_armstrong",
    "TaneArmstrongResult",
    "cmax_from_lhs",
]
