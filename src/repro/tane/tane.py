"""TANE [HKPT98] — the baseline FD miner of the paper's evaluation.

TANE walks the attribute-set lattice level by level, pruning with
right-hand-side candidate sets ``C⁺(X)`` and key pruning, and validates
``X \\ A → A`` by comparing stripped-partition ranks (two partitions have
equal rank ``||π̂|| − |π̂|`` iff one refines the other within the lattice
edge being tested).  Like the downloadable original — and like the
authors' own reimplementation used in the paper — it also supports
*approximate* dependencies: ``X → A`` is accepted when the ``g₃`` error
(minimum fraction of tuples to remove for the FD to hold exactly) is at
most ``epsilon``.

The structure follows the TANE paper faithfully:

- ``compute_dependencies`` (C⁺ intersection, validity test, C⁺ updates);
- ``prune`` (empty-C⁺ removal and superkey pruning with its special FD
  emission rule);
- ``generate_next_level`` (prefix join + subset check, with partition
  products computed once per new node).

Exact mode (``epsilon = 0``) returns the same minimal non-trivial FD
cover as Dep-Miner, which the test suite asserts on thousands of random
relations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.attributes import AttributeSet, Schema, iter_bits
from repro.core.relation import Relation
from repro.errors import ReproError
from repro.fd.fd import FD, sort_fds
from repro.obs import (
    NULL_METRICS,
    MetricsRegistry,
    ProgressCallback,
    Tracer,
    emit_progress,
    get_logger,
)
from repro.partitions.database import StrippedPartitionDatabase
from repro.partitions.partition import StrippedPartition, partition_product

__all__ = ["Tane", "TaneResult"]

logger = get_logger(__name__)


@dataclass
class _Node:
    """Lattice node: attribute set X with its partition and C⁺(X)."""

    mask: int
    attributes: Tuple[int, ...]
    partition: StrippedPartition
    cplus: int = 0


@dataclass
class TaneResult:
    """Output of a TANE run."""

    schema: Schema
    num_rows: int
    fds: List[FD]
    epsilon: float
    level_sizes: List[int] = field(default_factory=list)
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    trace: Optional[Tracer] = None

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    def lhs_sets(self) -> Dict[int, List[int]]:
        """``lhs(dep(r), A)`` per attribute, reconstructed from the FDs.

        Adds back the trivial minimal lhs ``{A}`` whenever ``∅ → A`` was
        not found, matching the paper's definition of ``lhs(dep(r), A)``
        (the worked example lists ``A ∈ lhs(dep(r), A)``).  This is what
        the TANE→Armstrong extension of section 5.1 consumes.
        """
        result: Dict[int, List[int]] = {
            a: [] for a in range(len(self.schema))
        }
        for fd in self.fds:
            result[fd.rhs_index].append(fd.lhs.mask)
        for attribute, masks in result.items():
            if 0 not in masks:
                masks.append(1 << attribute)
            masks.sort()
        return result

    def summary(self) -> str:
        kind = "exact" if self.epsilon == 0 else f"approximate (ε={self.epsilon})"
        return (
            f"TANE ({kind}): {len(self.fds)} minimal FDs over "
            f"{len(self.schema)} attributes, {self.num_rows} tuples, "
            f"{self.total_seconds:.3f}s"
        )


class Tane:
    """TANE runner.

    Parameters
    ----------
    epsilon:
        Maximum ``g₃`` error for an FD to be reported.  ``0`` (default)
        discovers exact minimal FDs.
    max_level:
        Optional cap on the lattice level (lhs size + 1); ``None`` runs
        the full lattice.  Useful to profile level-by-level behaviour.
    tracer / metrics / progress:
        Optional observability hooks (see :mod:`repro.obs`): phase spans
        (``strip``/``lattice``, with one nested span per lattice level),
        the ``tane.level_size`` histogram, and a per-level progress
        callback (stage ``"tane.levels"``) that may abort the walk.
    """

    def __init__(self, epsilon: float = 0.0, max_level: Optional[int] = None,
                 nulls_equal: bool = True,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 progress: Optional[ProgressCallback] = None):
        if epsilon < 0 or epsilon >= 1:
            raise ReproError("epsilon must satisfy 0 <= epsilon < 1")
        if max_level is not None and max_level < 1:
            raise ReproError("max_level must be at least 1")
        self.epsilon = epsilon
        self.max_level = max_level
        self.nulls_equal = nulls_equal
        self.tracer = tracer
        self.metrics = metrics
        self.progress = progress
        #: Tracer of the most recent run (partial on error paths).
        self.last_trace: Optional[Tracer] = None

    def _begin_trace(self) -> Tracer:
        tracer = self.tracer if self.tracer is not None else Tracer()
        self.last_trace = tracer
        return tracer

    # -- public API ----------------------------------------------------------

    def run(self, relation: Relation) -> TaneResult:
        tracer = self._begin_trace()
        mark = tracer.mark()
        with tracer.span("tane.run", width=len(relation.schema),
                         rows=len(relation)):
            with tracer.span("strip", phase=True):
                spdb = StrippedPartitionDatabase.from_relation(
                    relation, nulls_equal=self.nulls_equal,
                    metrics=self.metrics,
                )
            result = self.run_on_partitions(
                spdb, _tracer=tracer, _mark=mark
            )
        return result

    def run_on_partitions(self, spdb: StrippedPartitionDatabase,
                          _tracer: Optional[Tracer] = None,
                          _mark: Optional[int] = None) -> TaneResult:
        tracer = _tracer if _tracer is not None else self._begin_trace()
        mark = _mark if _mark is not None else tracer.mark()
        metrics = self.metrics if self.metrics is not None else NULL_METRICS
        schema = spdb.schema
        width = len(schema)
        num_rows = spdb.num_rows
        universe = schema.universe_mask
        # rank(π̂∅): one class containing every row (when there are ≥ 2).
        empty_rank = max(num_rows - 1, 0)

        fds: List[FD] = []
        level_sizes: List[int] = []

        with tracer.span("lattice", phase=True):
            # Persistent C⁺ store: survives pruning so the key-pruning
            # rule can evaluate C⁺ of sibling nodes that were deleted —
            # or never generated — per the TANE paper's on-demand
            # intersection rule.
            cplus_store: Dict[int, int] = {0: universe}

            # Level 1.
            previous: Dict[int, _Node] = {}
            level: Dict[int, _Node] = {}
            for attribute in range(width):
                mask = 1 << attribute
                level[mask] = _Node(
                    mask=mask,
                    attributes=(attribute,),
                    partition=spdb.partition(attribute),
                    cplus=universe,
                )

            level_number = 1
            while level:
                level_sizes.append(len(level))
                metrics.observe("tane.level_size", len(level))
                emit_progress(
                    self.progress, "tane.levels", level_number
                )
                logger.debug(
                    "TANE level %d: %d nodes, %d FDs so far",
                    level_number, len(level), len(fds),
                )
                with tracer.span("level", number=level_number,
                                 nodes=len(level)):
                    self._compute_dependencies(
                        level, previous, cplus_store, empty_rank, num_rows,
                        schema, fds,
                    )
                    self._prune(level, fds, schema, universe, cplus_store)
                    if self.max_level is not None and \
                            level_number >= self.max_level:
                        break
                    previous, level = level, self._generate_next_level(level)
                level_number += 1
            metrics.gauge("fd.count", len(fds))

        return TaneResult(
            schema=schema,
            num_rows=num_rows,
            fds=sort_fds(fds),
            epsilon=self.epsilon,
            level_sizes=level_sizes,
            phase_seconds=tracer.phase_seconds(mark),
            trace=tracer,
        )

    # -- internals -------------------------------------------------------------

    def _valid(self, lhs_partition: Optional[StrippedPartition],
               lhs_rank: int, whole: StrippedPartition,
               num_rows: int) -> bool:
        """Is ``X \\ A → A`` valid, comparing π̂(X\\A) against π̂(X)?

        Exact mode compares ranks; approximate mode computes the ``g₃``
        error of the refinement.
        """
        if self.epsilon == 0:
            return lhs_rank == whole.rank()
        if lhs_partition is None:
            # lhs = ∅: retained tuples = the largest class of π(X).
            largest = max(
                (len(cls) for cls in whole), default=1 if num_rows else 0
            )
            singleton_rows = num_rows - whole.num_rows_in_classes
            best = max(largest, 1 if singleton_rows else 0)
            error = (num_rows - best) / num_rows if num_rows else 0.0
            return error <= self.epsilon
        return g3_error(lhs_partition, whole, num_rows) <= self.epsilon

    def _cplus_of(self, mask: int, cplus_store: Dict[int, int],
                  universe: int) -> int:
        """C⁺(X) from the store, computed on demand when X was pruned
        away before being assigned one (``C⁺(X) = ⋂_{A∈X} C⁺(X\\A)``,
        grounded at ``C⁺(∅) = R``).  Memoized in the store."""
        cached = cplus_store.get(mask)
        if cached is not None:
            return cached
        value = universe
        for attribute in iter_bits(mask):
            value &= self._cplus_of(
                mask & ~(1 << attribute), cplus_store, universe
            )
            if not value:
                break
        cplus_store[mask] = value
        return value

    def _compute_dependencies(self, level: Dict[int, _Node],
                              previous: Dict[int, _Node],
                              cplus_store: Dict[int, int], empty_rank: int,
                              num_rows: int, schema: Schema,
                              fds: List[FD]) -> None:
        universe = schema.universe_mask
        for node in level.values():
            cplus = universe
            for attribute in node.attributes:
                cplus &= self._cplus_of(
                    node.mask & ~(1 << attribute), cplus_store, universe
                )
                if not cplus:
                    break
            node.cplus = cplus
            candidates = node.mask & node.cplus
            for attribute in iter_bits(candidates):
                lhs_mask = node.mask & ~(1 << attribute)
                if lhs_mask == 0:
                    lhs_partition = None
                    lhs_rank = empty_rank
                else:
                    parent = previous.get(lhs_mask)
                    if parent is None:
                        continue
                    lhs_partition = parent.partition
                    lhs_rank = parent.partition.rank()
                if self._valid(lhs_partition, lhs_rank, node.partition,
                               num_rows):
                    fds.append(
                        FD(AttributeSet(schema, lhs_mask), attribute)
                    )
                    node.cplus &= ~(1 << attribute)
                    node.cplus &= ~(schema.universe_mask & ~node.mask)
            cplus_store[node.mask] = node.cplus

    def _prune(self, level: Dict[int, _Node], fds: List[FD],
               schema: Schema, universe: int,
               cplus_store: Dict[int, int]) -> None:
        # Two passes: emission first against the *complete* level (the
        # sibling C⁺ lookups of the key-pruning rule must see nodes that
        # are themselves about to be pruned), then the deletions.
        to_delete: List[int] = []
        for mask, node in level.items():
            if node.cplus == 0:
                to_delete.append(mask)
                continue
            if node.partition.is_superkey():
                for attribute in iter_bits(node.cplus & ~node.mask):
                    bit = 1 << attribute
                    emit = True
                    for b in node.attributes:
                        sibling_mask = (node.mask | bit) & ~(1 << b)
                        if not self._cplus_of(
                            sibling_mask, cplus_store, universe
                        ) & bit:
                            emit = False
                            break
                    if emit:
                        fds.append(
                            FD(AttributeSet(schema, node.mask), attribute)
                        )
                to_delete.append(mask)
        for mask in to_delete:
            del level[mask]

    def _generate_next_level(self, level: Dict[int, _Node]) -> Dict[int, _Node]:
        next_level: Dict[int, _Node] = {}
        ordered = sorted(level.values(), key=lambda node: node.attributes)
        masks_present = set(level)
        for i, left in enumerate(ordered):
            prefix = left.attributes[:-1]
            for right in ordered[i + 1:]:
                if right.attributes[:-1] != prefix:
                    break
                union_mask = left.mask | right.mask
                union_attributes = left.attributes + (right.attributes[-1],)
                if not all(
                    (union_mask & ~(1 << attribute)) in masks_present
                    for attribute in union_attributes
                ):
                    continue
                next_level[union_mask] = _Node(
                    mask=union_mask,
                    attributes=union_attributes,
                    partition=partition_product(
                        left.partition, right.partition
                    ),
                )
        return next_level


def g3_error(lhs_partition: StrippedPartition,
             whole_partition: StrippedPartition, num_rows: int) -> float:
    """``g₃(X → A)`` from ``π̂X`` and ``π̂X∪A`` [HKPT98, KM95].

    For each class ``c`` of ``π̂X``, the tuples that can be kept are the
    largest sub-class of ``πX∪A`` inside ``c`` (singleton sub-classes
    count 1); everything else must be removed.  Returns the removed
    fraction.
    """
    if num_rows == 0:
        return 0.0
    size_at: Dict[int, int] = {}
    for cls in whole_partition:
        for row in cls:
            size_at[row] = len(cls)
    removed = 0
    for cls in lhs_partition:
        best = max(size_at.get(row, 1) for row in cls)
        removed += len(cls) - best
    return removed / num_rows
