"""The discovery daemon: ``repro serve``.

A long-lived, stdlib-only HTTP+JSON service
(:class:`http.server.ThreadingHTTPServer`, one thread per request)
that keeps registered relations *warm*: each session holds an
:class:`~repro.cache.incremental.IncrementalMiner`, so appends re-mine
only the delta, and every session shares one process-wide
:class:`~repro.cache.store.ArtifactStore` — re-registering a relation
already mined (by any session, live or closed) is answered from the
cover bundle in the cache (counter ``cache.full_hit``) before a
:class:`~repro.core.relation.Relation` ever materializes.

Endpoints (see ``docs/service.md`` for the full reference)::

    GET    /health                     liveness + protocol version
    GET    /stats                      registry / cache / counter totals
    POST   /sessions                   register (csv_path | csv_text | rows)
    GET    /sessions                   list live sessions
    GET    /sessions/<id>              one session's description
    DELETE /sessions/<id>              close a session
    POST   /sessions/<id>/append       stream rows into the miner
    GET    /sessions/<id>/cover        the current minimal FD cover
    GET    /sessions/<id>/keys         minimal candidate keys
    GET    /sessions/<id>/armstrong    Armstrong relation (on demand)
    POST   /shutdown                   graceful stop (drains in-flight)

Failure semantics: every :class:`~repro.errors.ReproError` becomes a
structured JSON error document with a meaningful HTTP status
(:func:`repro.service.protocol.http_status_for`); unexpected
exceptions become 500 ``InternalError`` documents.  The daemon never
answers 200 with a cover it is not sure about.

Observability: each request runs under its own
:class:`~repro.obs.tracer.Tracer` (root span ``service.request``,
flagged as a phase) and :class:`~repro.obs.metrics.MetricsRegistry`;
counters fold into the process-wide registry served by ``/stats``, and
with ``--telemetry-dir`` every request writes a run manifest.
"""

from __future__ import annotations

import dataclasses
import logging
import os
import signal
import tempfile
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.cache.incremental import IncrementalMiner
from repro.cache.store import ArtifactStore
from repro.core.armstrong import (
    classical_armstrong,
    real_world_armstrong,
    real_world_armstrong_exists,
)
from repro.core.depminer import DepMiner
from repro.core.keys_mining import discover_keys
from repro.core.relation import Relation, Schema
from repro.errors import ReproError, ServiceError
from repro.obs.manifest import RunManifest
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.parallel.executor import (
    PersistentPool,
    resolve_jobs,
    resolve_start_method,
)
from repro.service import protocol
from repro.service.protocol import (
    PROTOCOL_VERSION,
    SERVICE_NAME,
    cover_document,
    error_document,
    http_status_for,
    keys_document,
    miner_options,
    parse_body,
    parse_rows,
    relation_document,
)
from repro.service.sessions import Session, SessionRegistry
from repro.storage.csv_io import relation_from_csv

logger = logging.getLogger(__name__)

__all__ = ["ServiceConfig", "ServiceApp", "ReproServiceServer", "serve"]

#: Request bodies above this are rejected (413) before parsing.
MAX_BODY_BYTES = 64 * 1024 * 1024


@dataclasses.dataclass
class ServiceConfig:
    """Everything ``repro serve`` needs to run the daemon."""

    host: str = "127.0.0.1"
    port: int = 8765  # 0 picks an ephemeral port (printed at startup)
    cache_dir: Optional[str] = None  # None: memory-only ArtifactStore
    max_sessions: int = 64
    session_ttl: float = 3600.0
    jobs: int = 1
    backend: str = "python"
    mp_context: Optional[str] = None  # fork/spawn for the worker pool
    telemetry_dir: Optional[str] = None
    fault_plan: Optional[str] = None
    max_memory_entries: Optional[int] = None


class ServiceApp:
    """The HTTP-free application core: routing table and handlers.

    Kept separate from the socket layer so tests can drive it directly
    (``app.handle(...)``) and the handler class stays a thin adapter.
    All shared state is thread-safe: the registry has its own lock,
    sessions serialize their requests on per-session locks, and the
    artifact store guards its memory tier internally.
    """

    def __init__(self, config: ServiceConfig):
        self.config = config
        store_kwargs: Dict[str, Any] = {}
        if config.max_memory_entries is not None:
            store_kwargs["max_memory_entries"] = config.max_memory_entries
        self.store = ArtifactStore(cache_dir=config.cache_dir,
                                   **store_kwargs)
        self.registry = SessionRegistry(max_sessions=config.max_sessions,
                                        ttl_seconds=config.session_ttl)
        self.metrics = MetricsRegistry()
        self.started_unix = time.time()
        self._started = time.monotonic()
        self._lock = threading.Lock()
        self._requests = 0
        self.shutdown_requested = threading.Event()
        self.telemetry_dir = (Path(config.telemetry_dir)
                              if config.telemetry_dir else None)
        # One persistent worker pool for the whole daemon: sessions
        # whose jobs setting matches the daemon default mine on it, so
        # request N pays zero pool spin-up after request 1 (or after
        # warm_pool() at startup).  resolve_start_method validates
        # --mp-context before the socket ever binds.
        self.pool: Optional[PersistentPool] = None
        if resolve_jobs(config.jobs) > 1:
            self.pool = PersistentPool(resolve_jobs(config.jobs),
                                       mp_context=config.mp_context)
        else:
            resolve_start_method(config.mp_context)
        # With --fault-plan the plan is active for the app's whole
        # lifetime (activation is process-global, so request threads see
        # it), and injections count into the process-wide registry.
        self._fault_context = None
        if config.fault_plan:
            from repro.reliability import fault_plan_active, load_fault_plan

            plan = load_fault_plan(config.fault_plan)
            self._fault_context = fault_plan_active(plan,
                                                    metrics=self.metrics)
            self._fault_context.__enter__()

    # -- plumbing ------------------------------------------------------------

    def _miner_defaults(self) -> Dict[str, Any]:
        return {"backend": self.config.backend, "jobs": self.config.jobs}

    def warm_pool(self) -> None:
        """Fork the worker pool before serving traffic (daemon startup),
        so the first parallel request already finds it live."""
        if self.pool is not None:
            self.pool.ensure()

    def _session_pool(self, options: Dict[str, Any]):
        """The shared pool, iff the session's jobs match its worker
        count (a session overriding ``jobs`` builds its own)."""
        if (self.pool is not None and not self.pool.closed
                and resolve_jobs(options.get("jobs", 1)) == self.pool.jobs):
            return self.pool
        return None

    def handle(self, method: str, route: str, query: Dict[str, str],
               payload: Dict[str, Any], tracer: Tracer,
               metrics: MetricsRegistry) -> Tuple[Dict[str, Any], int]:
        """Route one request; raises typed errors for the handler to map."""
        parts = [part for part in route.split("/") if part]
        if parts == ["health"]:
            self._require(method, "GET")
            return self._health(), 200
        if parts == ["stats"]:
            self._require(method, "GET")
            return self._stats(), 200
        if parts == ["shutdown"]:
            self._require(method, "POST")
            self.shutdown_requested.set()
            return {"status": "shutting down",
                    "sessions_closed": self.registry.close_all()}, 200
        if parts == ["sessions"]:
            if method == "POST":
                return self._register(payload, tracer, metrics)
            self._require(method, "GET")
            return {"sessions": [session.document() for session
                                 in self.registry.sessions()]}, 200
        if len(parts) >= 2 and parts[0] == "sessions":
            session_id = parts[1]
            if len(parts) == 2:
                if method == "DELETE":
                    session = self.registry.remove(session_id)
                    return {"closed": session.document()}, 200
                self._require(method, "GET")
                session = self.registry.acquire(session_id)
                with session.lock:
                    return {"session": session.document()}, 200
            if len(parts) == 3:
                action = parts[2]
                session = self.registry.acquire(session_id)
                if action == "append":
                    self._require(method, "POST")
                    return self._append(session, payload, tracer, metrics)
                if action == "cover":
                    self._require(method, "GET")
                    return self._cover(session, metrics)
                if action == "keys":
                    self._require(method, "GET")
                    return self._keys(session, tracer)
                if action == "armstrong":
                    self._require(method, "GET")
                    return self._armstrong(session, query, tracer)
        raise ServiceError(f"no such endpoint: {method} {route}",
                           http_status=404)

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise ServiceError(
                f"method {method} not allowed here (use {expected})",
                http_status=405,
            )

    def finish_request(self, method: str, route: str, status: int,
                       tracer: Tracer, metrics: MetricsRegistry) -> None:
        """Fold per-request telemetry into process-wide state."""
        with self._lock:
            self._requests += 1
            number = self._requests
        snapshot = metrics.snapshot()
        for name, value in snapshot["counters"].items():
            self.metrics.inc(name, value)
        self.metrics.inc("service.requests")
        if status >= 400:
            self.metrics.inc("service.errors")
        if self.telemetry_dir is None:
            return
        try:
            manifest = RunManifest.build(
                command=f"serve {method} {route}",
                tracer=tracer,
                metrics=metrics,
                meta={"route": route, "method": method,
                      "status": status, "request": number,
                      "service": SERVICE_NAME},
            )
            manifest.write(self.telemetry_dir / f"request-{number:06d}.json")
        except OSError as error:
            logger.warning("could not write request manifest: %s", error)

    def close(self) -> None:
        self.registry.close_all()
        if self.pool is not None:
            self.pool.close()
        if self._fault_context is not None:
            self._fault_context.__exit__(None, None, None)
            self._fault_context = None

    # -- endpoints -----------------------------------------------------------

    def _health(self) -> Dict[str, Any]:
        return {
            "status": "ok",
            "service": SERVICE_NAME,
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "sessions": len(self.registry),
        }

    def _stats(self) -> Dict[str, Any]:
        with self._lock:
            requests = self._requests
        return {
            "service": SERVICE_NAME,
            "requests": requests,
            "registry": self.registry.stats(),
            "cache": dict(self.store.stats),
            "counters": self.metrics.snapshot()["counters"],
            "defaults": self._miner_defaults(),
            "pool": self.pool.stats() if self.pool is not None else None,
        }

    def _register(self, payload: Dict[str, Any], tracer: Tracer,
                  metrics: MetricsRegistry) -> Tuple[Dict[str, Any], int]:
        name = payload.get("name", "relation")
        if not isinstance(name, str) or not name:
            raise ServiceError("'name' must be a non-empty string")
        options = miner_options(payload.get("options"),
                                self._miner_defaults())

        def build(session_id: str) -> Session:
            source = self._load_source(payload, options, tracer)
            miner = DepMiner(cache=self.store, tracer=tracer,
                             metrics=metrics, build_armstrong="none",
                             pool=self._session_pool(options),
                             **options)
            incremental = IncrementalMiner(source, miner=miner)
            return Session(session_id, name, incremental, options)

        session = self.registry.register(name, build)
        document = {
            "session": session.document(),
            "cover": cover_document(session.miner.result),
            "counters": metrics.snapshot()["counters"],
        }
        return document, 201

    def _load_source(self, payload: Dict[str, Any],
                     options: Dict[str, Any], tracer: Tracer):
        """The relation being registered, from whichever source the body
        names.  Columnar sessions with a cache attached ingest straight
        to a fingerprinted code matrix, so a warm cover is served
        without materializing a Relation."""
        csv_path, csv_text = protocol.split_csv_source(payload)
        sources = sum(1 for value in (csv_path, csv_text,
                                      payload.get("rows"))
                      if value is not None)
        if sources != 1:
            raise ServiceError(
                "registration needs exactly one of 'csv_path', "
                "'csv_text' or 'rows'"
            )
        if csv_path is not None:
            path = Path(csv_path)
            if not path.is_file():
                raise ServiceError(f"no CSV file at {path}")
            return self._ingest(path, options, tracer)
        if csv_text is not None:
            handle = tempfile.NamedTemporaryFile(
                "w", suffix=".csv", delete=False, encoding="utf-8"
            )
            try:
                handle.write(csv_text)
                handle.close()
                return self._ingest(Path(handle.name), options, tracer)
            finally:
                os.unlink(handle.name)
        attributes = payload.get("attributes")
        if not (isinstance(attributes, list) and attributes
                and all(isinstance(a, str) for a in attributes)):
            raise ServiceError(
                "inline 'rows' need an 'attributes' list of column names"
            )
        rows = parse_rows(payload)
        return Relation.from_rows(Schema(attributes), rows)

    def _ingest(self, path: Path, options: Dict[str, Any],
                tracer: Tracer):
        if options.get("backend") == "columnar":
            from repro.columnar import numpy_available

            if numpy_available():
                from repro.columnar.ingest import ingest_csv

                return ingest_csv(
                    path,
                    nulls_equal=options.get("nulls_equal", True),
                    fingerprint=True,
                    tracer=tracer,
                )
        return relation_from_csv(path)

    def _append(self, session: Session, payload: Dict[str, Any],
                tracer: Tracer,
                metrics: MetricsRegistry) -> Tuple[Dict[str, Any], int]:
        rows = parse_rows(payload)
        if not rows:
            raise ServiceError("'rows' must not be empty")
        with session.lock:
            session.requests += 1
            with session.observe(tracer, metrics):
                session.miner.append(rows)
            session.appends += 1
            document = {
                "session": session.document(),
                "cover": cover_document(session.miner.result),
            }
        return document, 200

    def _cover(self, session: Session,
               metrics: MetricsRegistry) -> Tuple[Dict[str, Any], int]:
        with session.lock:
            session.requests += 1
            document = {
                "session": session.document(),
                "cover": cover_document(session.miner.result),
                "counters": metrics.snapshot()["counters"],
            }
        return document, 200

    def _keys(self, session: Session,
              tracer: Tracer) -> Tuple[Dict[str, Any], int]:
        with session.lock:
            session.requests += 1
            with tracer.span("service.keys"):
                keys = discover_keys(
                    session.miner.relation(),
                    nulls_equal=session.miner.miner.nulls_equal,
                )
            document = keys_document(keys)
            document["session"] = session.document()
        return document, 200

    def _armstrong(self, session: Session, query: Dict[str, str],
                   tracer: Tracer) -> Tuple[Dict[str, Any], int]:
        construction = query.get("construction", "auto")
        if construction not in ("auto", "real-world", "strict",
                                "classical"):
            raise ServiceError(
                f"construction must be 'auto', 'strict' or 'classical'; "
                f"got {construction!r}"
            )
        max_rows: Optional[int] = None
        if "max_rows" in query:
            try:
                max_rows = int(query["max_rows"])
            except ValueError:
                raise ServiceError("'max_rows' must be an integer") from None
        with session.lock:
            session.requests += 1
            result = session.miner.result
            union = result.max_union
            with tracer.span("service.armstrong",
                             construction=construction):
                if construction == "classical":
                    used = "classical"
                    armstrong = classical_armstrong(result.schema, union)
                else:
                    relation = session.miner.relation()
                    if construction in ("strict", "real-world") or \
                            real_world_armstrong_exists(relation, union):
                        used = "real-world"
                        # raises ArmstrongExistenceError (409) when the
                        # domains are too small and the caller insisted
                        armstrong = real_world_armstrong(relation, union)
                    else:
                        used = "classical"
                        armstrong = classical_armstrong(result.schema,
                                                        union)
            document = {
                "construction": used,
                "armstrong": relation_document(armstrong,
                                               max_rows=max_rows),
                "session": session.document(),
            }
        return document, 200


class _ServiceHandler(BaseHTTPRequestHandler):
    """Thin HTTP adapter over :class:`ServiceApp`."""

    protocol_version = "HTTP/1.1"
    server_version = f"{SERVICE_NAME}/{PROTOCOL_VERSION}"

    # BaseHTTPRequestHandler logs to stderr by default; route through
    # the module logger so `repro serve -q` stays quiet.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        logger.debug("%s %s", self.address_string(), format % args)

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def do_DELETE(self) -> None:
        self._dispatch("DELETE")

    def _dispatch(self, method: str) -> None:
        app: ServiceApp = self.server.app  # type: ignore[attr-defined]
        parsed = urllib.parse.urlsplit(self.path)
        route = parsed.path.rstrip("/") or "/"
        query = dict(urllib.parse.parse_qsl(parsed.query))
        tracer = Tracer()
        metrics = MetricsRegistry()
        status = 500
        try:
            with tracer.span("service.request", phase=True,
                             method=method, route=route):
                payload = parse_body(self._read_body(method))
                document, status = app.handle(
                    method, route, query, payload, tracer, metrics
                )
        except ReproError as error:
            status = http_status_for(error)
            document = error_document(error)
            logger.info("%s %s -> %d %s: %s", method, route, status,
                        type(error).__name__, error)
        except Exception as error:  # noqa: BLE001 - daemon must not die
            status = 500
            document = error_document(error)
            logger.exception("%s %s failed unexpectedly", method, route)
        document.setdefault("protocol", PROTOCOL_VERSION)
        # Fold telemetry (and write the request manifest) *before* the
        # response goes out: a client that reads its answer and
        # immediately asks /stats must see this request's counters.
        try:
            app.finish_request(method, route, status, tracer, metrics)
        except Exception:  # noqa: BLE001 - telemetry must not kill replies
            logger.exception("per-request telemetry failed")
        self._send_json(status, document)
        if app.shutdown_requested.is_set():
            self._trigger_shutdown()

    def _read_body(self, method: str) -> bytes:
        if method not in ("POST", "PUT"):
            return b""
        try:
            length = int(self.headers.get("Content-Length", 0) or 0)
        except ValueError:
            raise ServiceError("malformed Content-Length header") from None
        if length > MAX_BODY_BYTES:
            raise ServiceError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit",
                http_status=413,
            )
        return self.rfile.read(length) if length else b""

    def _send_json(self, status: int, document: Dict[str, Any]) -> None:
        import json

        body = json.dumps(document).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            logger.debug("client went away before the response was sent")

    def _trigger_shutdown(self) -> None:
        server = self.server
        if getattr(server, "_shutdown_started", False):
            return
        server._shutdown_started = True  # type: ignore[attr-defined]

        def stop() -> None:
            # shutdown() blocks until serve_forever returns; it must run
            # off the serve_forever thread.  Closing the listening
            # socket right after makes further connection attempts fail
            # fast instead of queueing in the accept backlog forever.
            server.shutdown()
            server.server_close()

        threading.Thread(target=stop, name="repro-serve-shutdown").start()


class ReproServiceServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`ServiceApp`.

    ``daemon_threads`` stays False (with ``block_on_close``) so a
    graceful shutdown — ``POST /shutdown`` or SIGTERM — drains every
    in-flight request before the process exits; no client ever sees a
    connection die mid-mine.
    """

    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True

    def __init__(self, config: ServiceConfig,
                 app: Optional[ServiceApp] = None):
        self.app = app if app is not None else ServiceApp(config)
        self.config = config
        self._shutdown_started = False
        super().__init__((config.host, config.port), _ServiceHandler)

    @property
    def port(self) -> int:
        return self.server_address[1]


def serve(config: ServiceConfig) -> int:
    """Run the daemon until SIGTERM/SIGINT or ``POST /shutdown``.

    Prints one parseable startup line — ``serving on http://HOST:PORT``
    (the actual port, also when ``--port 0`` asked for an ephemeral
    one) — that ``scripts/check_serve.py`` and the benchmark harness
    wait for.  With ``--fault-plan`` the whole server lifetime runs
    under :func:`repro.reliability.fault_plan_active` (activated by the
    app itself), so injected faults surface through the structured
    error responses.
    """
    server = ReproServiceServer(config)
    app = server.app

    def _signal_shutdown(signum: int, frame: Any) -> None:
        logger.info("signal %d: shutting down", signum)
        app.shutdown_requested.set()
        threading.Thread(target=server.shutdown,
                         name="repro-serve-shutdown").start()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, _signal_shutdown)
        except ValueError:  # not the main thread (tests drive serve())
            break

    app.warm_pool()
    print(f"serving on http://{config.host}:{server.port}", flush=True)
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        app.close()
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    logger.info("server stopped after %d requests",
                app.metrics.snapshot()["counters"].get(
                    "service.requests", 0))
    return 0
