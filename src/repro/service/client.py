"""A tiny stdlib client for the discovery daemon.

Used by the test suite, ``scripts/check_serve.py`` and
``benchmarks/bench_serve.py``; applications are equally welcome to
speak the JSON protocol directly (``docs/service.md``).

Server-side typed errors are re-raised client-side as
:class:`RemoteServiceError` carrying the HTTP status and the original
error type name, so ``except ReproError`` keeps working across the
wire.
"""

from __future__ import annotations

import http.client
import json
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.service.protocol import PROTOCOL_VERSION

__all__ = ["RemoteServiceError", "ServiceClient"]


class RemoteServiceError(ReproError):
    """The daemon answered with a structured error document."""

    def __init__(self, message: str, status: int,
                 error_type: str = "InternalError"):
        super().__init__(message)
        self.status = status
        self.error_type = error_type

    def __str__(self) -> str:
        return (f"[{self.status} {self.error_type}] "
                f"{super().__str__()}")


class ServiceClient:
    """Blocking JSON-over-HTTP client, one instance per server."""

    def __init__(self, base_url: str, timeout: float = 60.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------------

    def request(self, method: str, route: str,
                payload: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + route, data=body, headers=headers,
            method=method,
        )
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                document = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            raw = error.read().decode("utf-8", "replace")
            try:
                document = json.loads(raw)
            except json.JSONDecodeError:
                raise RemoteServiceError(
                    raw.strip() or error.reason, error.code
                ) from None
            detail = document.get("error", {})
            raise RemoteServiceError(
                detail.get("message", error.reason), error.code,
                detail.get("type", "InternalError"),
            ) from None
        except urllib.error.URLError as error:
            raise RemoteServiceError(
                f"cannot reach {self.base_url}: {error.reason}", 0,
                "ConnectionError",
            ) from None
        except (OSError, http.client.HTTPException) as error:
            # The connection died mid-response (e.g. the daemon closed
            # the socket while shutting down) — urllib only wraps
            # errors raised before the response starts.
            raise RemoteServiceError(
                f"connection to {self.base_url} failed: {error!r}", 0,
                "ConnectionError",
            ) from None
        protocol = document.get("protocol")
        if protocol is not None and protocol > PROTOCOL_VERSION:
            raise RemoteServiceError(
                f"server speaks protocol {protocol}, this client "
                f"understands {PROTOCOL_VERSION}", 0, "ProtocolError",
            )
        return document

    # -- endpoints -----------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self.request("GET", "/health")

    def stats(self) -> Dict[str, Any]:
        return self.request("GET", "/stats")

    def register(self, name: str = "relation", *,
                 csv_path: Optional[str] = None,
                 csv_text: Optional[str] = None,
                 attributes: Optional[Sequence[str]] = None,
                 rows: Optional[Sequence[Sequence[Any]]] = None,
                 options: Optional[Dict[str, Any]] = None
                 ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"name": name}
        if csv_path is not None:
            payload["csv_path"] = csv_path
        if csv_text is not None:
            payload["csv_text"] = csv_text
        if rows is not None:
            payload["rows"] = [list(row) for row in rows]
        if attributes is not None:
            payload["attributes"] = list(attributes)
        if options:
            payload["options"] = options
        return self.request("POST", "/sessions", payload)

    def sessions(self) -> List[Dict[str, Any]]:
        return self.request("GET", "/sessions")["sessions"]

    def session(self, session_id: str) -> Dict[str, Any]:
        return self.request("GET", f"/sessions/{session_id}")

    def append(self, session_id: str,
               rows: Sequence[Sequence[Any]]) -> Dict[str, Any]:
        return self.request("POST", f"/sessions/{session_id}/append",
                            {"rows": [list(row) for row in rows]})

    def cover(self, session_id: str) -> Dict[str, Any]:
        return self.request("GET", f"/sessions/{session_id}/cover")

    def keys(self, session_id: str) -> Dict[str, Any]:
        return self.request("GET", f"/sessions/{session_id}/keys")

    def armstrong(self, session_id: str,
                  construction: Optional[str] = None,
                  max_rows: Optional[int] = None) -> Dict[str, Any]:
        route = f"/sessions/{session_id}/armstrong"
        params = []
        if construction is not None:
            params.append(f"construction={construction}")
        if max_rows is not None:
            params.append(f"max_rows={max_rows}")
        if params:
            route += "?" + "&".join(params)
        return self.request("GET", route)

    def close(self, session_id: str) -> Dict[str, Any]:
        return self.request("DELETE", f"/sessions/{session_id}")

    def shutdown(self) -> Dict[str, Any]:
        return self.request("POST", "/shutdown")
