"""Session state of the discovery daemon.

A *session* is one registered relation plus the
:class:`~repro.cache.incremental.IncrementalMiner` that keeps its FD
cover warm across appends.  The :class:`SessionRegistry` owns every
live session and enforces the daemon's two resource bounds:

- **count** — at most ``max_sessions`` concurrent sessions; a
  registration that would exceed the bound first tries to evict idle
  sessions and otherwise fails with a typed
  :class:`~repro.errors.SessionLimitError` (HTTP 429);
- **idle TTL** — a session untouched for ``ttl_seconds`` is evicted on
  the next registry sweep (every mutating call sweeps).

Concurrency model, in one paragraph: the registry's own lock protects
only the session *table* (dict insert/lookup/delete plus the pending
reservation counter) and is never held while mining runs.  Each session
carries an :class:`threading.RLock` serializing its requests — two
clients hammering the same session take turns, two clients on
different sessions mine in parallel, and the process-wide
:class:`~repro.cache.store.ArtifactStore` (itself thread-safe since the
memory-tier lock landed) is the only object requests share.
"""

from __future__ import annotations

import contextlib
import itertools
import logging
import threading
import time
import uuid
from typing import Any, Callable, Dict, List, Optional

from repro.cache.incremental import IncrementalMiner
from repro.errors import SessionLimitError, SessionNotFoundError

logger = logging.getLogger(__name__)

__all__ = ["Session", "SessionRegistry"]


class Session:
    """One registered relation and its warm incremental miner."""

    def __init__(self, session_id: str, name: str,
                 miner: IncrementalMiner,
                 options: Dict[str, Any]):
        self.id = session_id
        self.name = name
        self.miner = miner
        self.options = dict(options)
        self.lock = threading.RLock()
        self.created_unix = time.time()
        self.last_used = time.monotonic()
        self.appends = 0
        self.requests = 0

    def touch(self) -> None:
        self.last_used = time.monotonic()

    def idle_seconds(self) -> float:
        return time.monotonic() - self.last_used

    @contextlib.contextmanager
    def observe(self, tracer=None, metrics=None):
        """Point the session's miner at a per-request tracer/metrics.

        Session requests are serialized by ``self.lock`` (held by the
        caller), so swapping the miner's telemetry sinks for the
        duration of one request is race-free; the sinks are restored
        even when the request raises.
        """
        miner = self.miner.miner
        saved = (miner.tracer, miner.metrics)
        if tracer is not None:
            miner.tracer = tracer
        if metrics is not None:
            miner.metrics = metrics
        try:
            yield miner
        finally:
            miner.tracer, miner.metrics = saved

    def document(self) -> Dict[str, Any]:
        """The JSON description of this session (no cover payload)."""
        result = self.miner.result
        return {
            "id": self.id,
            "name": self.name,
            "attributes": list(result.schema.names),
            "num_rows": self.miner.num_rows,
            "num_fds": len(result.fds),
            "fingerprint": self.miner.relation_key,
            "appends": self.appends,
            "requests": self.requests,
            "created_unix": round(self.created_unix, 3),
            "idle_seconds": round(self.idle_seconds(), 3),
        }


class SessionRegistry:
    """Bounded, TTL-evicting table of live sessions.

    ``register`` runs the (possibly slow) session *build* outside the
    registry lock; a pending-reservation counter keeps the
    ``max_sessions`` bound strict while builds are in flight.
    """

    def __init__(self, max_sessions: int = 64,
                 ttl_seconds: float = 3600.0):
        if max_sessions < 1:
            raise SessionLimitError(
                f"max_sessions must be >= 1, got {max_sessions}",
                http_status=500,
            )
        self.max_sessions = int(max_sessions)
        self.ttl_seconds = float(ttl_seconds)
        self._lock = threading.Lock()
        self._sessions: Dict[str, Session] = {}
        self._pending = 0
        self._counter = itertools.count(1)
        self.evicted = 0

    # -- lifecycle -----------------------------------------------------------

    def register(self, name: str,
                 build: Callable[[str], Session]) -> Session:
        """Reserve a slot, build the session, publish it.

        *build* receives the freshly minted session id and returns the
        :class:`Session`; it runs without any registry lock held, so a
        large cold mine never blocks other sessions' requests.
        """
        session_id = f"s{next(self._counter):04d}-{uuid.uuid4().hex[:8]}"
        with self._lock:
            self._sweep_locked()
            if len(self._sessions) + self._pending >= self.max_sessions:
                raise SessionLimitError(
                    f"session registry is full "
                    f"({self.max_sessions} sessions, none idle past the "
                    f"{self.ttl_seconds:g}s TTL); close a session or "
                    f"raise --max-sessions"
                )
            self._pending += 1
        session = None
        try:
            session = build(session_id)
        finally:
            with self._lock:
                self._pending -= 1
                if session is not None:
                    self._sessions[session_id] = session
        logger.info("session %s (%r) registered: %d rows, %d attributes",
                    session.id, session.name, session.miner.num_rows,
                    len(session.miner.result.schema))
        return session

    def acquire(self, session_id: str) -> Session:
        """Look up a live session, sweeping expired ones first."""
        with self._lock:
            self._sweep_locked()
            session = self._sessions.get(session_id)
            if session is None:
                raise SessionNotFoundError(
                    f"unknown session {session_id!r} "
                    f"(expired, closed, or never registered)"
                )
            session.touch()
            return session

    def remove(self, session_id: str) -> Session:
        with self._lock:
            session = self._sessions.pop(session_id, None)
        if session is None:
            raise SessionNotFoundError(
                f"unknown session {session_id!r} "
                f"(expired, closed, or never registered)"
            )
        logger.info("session %s (%r) closed", session.id, session.name)
        return session

    def close_all(self) -> int:
        with self._lock:
            count = len(self._sessions)
            self._sessions.clear()
        return count

    # -- eviction ------------------------------------------------------------

    def _sweep_locked(self) -> None:
        """Drop *quiescent* sessions idle past the TTL (registry lock
        held).  A session whose own lock is taken is mid-request — a
        long mine does not make a session "idle", and it is never
        evicted out from under its client."""
        if self.ttl_seconds <= 0:
            return
        expired = [sid for sid, session in self._sessions.items()
                   if session.idle_seconds() > self.ttl_seconds]
        for sid in expired:
            session = self._sessions[sid]
            if not session.lock.acquire(blocking=False):
                continue  # busy right now: not idle after all
            try:
                del self._sessions[sid]
                self.evicted += 1
                logger.info("session %s (%r) evicted after %.1fs idle",
                            session.id, session.name,
                            session.idle_seconds())
            finally:
                session.lock.release()

    # -- introspection -------------------------------------------------------

    def sessions(self) -> List[Session]:
        with self._lock:
            self._sweep_locked()
            return list(self._sessions.values())

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "sessions": len(self._sessions),
                "max_sessions": self.max_sessions,
                "ttl_seconds": self.ttl_seconds,
                "pending": self._pending,
                "evicted": self.evicted,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)
