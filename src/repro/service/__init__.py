"""The long-lived discovery service (``repro serve``).

A stdlib-only HTTP+JSON daemon that keeps registered relations warm
across requests: per-session incremental miners, a shared artifact
store for cross-session (and cross-restart, with ``--cache-dir``)
cover reuse, typed structured errors, per-request traces and
manifests.  See ``docs/service.md``.
"""

from repro.service.client import RemoteServiceError, ServiceClient
from repro.service.protocol import PROTOCOL_VERSION, SERVICE_NAME
from repro.service.server import (
    ReproServiceServer,
    ServiceApp,
    ServiceConfig,
    serve,
)
from repro.service.sessions import Session, SessionRegistry

__all__ = [
    "PROTOCOL_VERSION",
    "SERVICE_NAME",
    "RemoteServiceError",
    "ReproServiceServer",
    "ServiceApp",
    "ServiceClient",
    "ServiceConfig",
    "Session",
    "SessionRegistry",
    "serve",
]
