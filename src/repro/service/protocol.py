"""Wire protocol of the discovery service (``repro serve``).

Everything the daemon speaks is plain HTTP + JSON; this module is the
single place where library objects become JSON documents and request
bodies become validated Python values, shared by the server
(:mod:`repro.service.server`) and the client
(:mod:`repro.service.client`).

Design rules:

- **Names, not bitmasks.**  Attribute sets cross the wire as attribute
  *name* lists (the same convention as :mod:`repro.serialize`), so
  responses stay meaningful to clients that never saw the schema object.
- **Typed errors, never a wrong answer.**  Every failure the library
  can produce is a :class:`~repro.errors.ReproError` subclass; the
  server maps it to :func:`error_document` — ``{"error": {"type", ...,
  "message": ...}}`` — with the HTTP status of :func:`http_status_for`.
  Unexpected exceptions become a 500 ``InternalError`` document; the
  one thing the service never does is answer 200 with a cover it is not
  sure about (the reliability layer either recovers or raises).
- **Versioned.**  Every response carries ``protocol`` =
  :data:`PROTOCOL_VERSION`; clients should reject documents from a
  newer major protocol.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.attributes import AttributeSet
from repro.core.relation import Relation
from repro.errors import (
    ArmstrongExistenceError,
    ReproError,
    ServiceError,
)

__all__ = [
    "PROTOCOL_VERSION",
    "SERVICE_NAME",
    "MINER_OPTION_KEYS",
    "parse_body",
    "parse_rows",
    "miner_options",
    "error_document",
    "http_status_for",
    "cover_document",
    "keys_document",
    "relation_document",
]

#: Bumped on incompatible changes to the request/response documents.
PROTOCOL_VERSION = 1
SERVICE_NAME = "repro-service"

#: ``options`` keys a registration may carry, mapped to the
#: :class:`~repro.core.depminer.DepMiner` keyword they configure.
MINER_OPTION_KEYS = {
    "backend": "backend",
    "jobs": "jobs",
    "algorithm": "agree_algorithm",
    "transversal": "transversal_algorithm",
    "max_couples": "max_couples",
    "max_lhs_size": "max_lhs_size",
    "sql_nulls": "nulls_equal",  # inverted: nulls_equal = not sql_nulls
    "shard_timeout": "shard_timeout",
}


# -- requests ----------------------------------------------------------------

def parse_body(raw: bytes) -> Dict[str, Any]:
    """Decode a JSON request body into a dict (empty body → ``{}``)."""
    if not raw:
        return {}
    try:
        document = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ServiceError(
            f"request body is not valid JSON: {error}"
        ) from None
    if not isinstance(document, dict):
        raise ServiceError(
            f"request body must be a JSON object, "
            f"got {type(document).__name__}"
        )
    return document


def parse_rows(payload: Dict[str, Any], key: str = "rows") -> List[tuple]:
    """Validate an inline ``rows`` field: a list of scalar lists."""
    rows = payload.get(key)
    if not isinstance(rows, list):
        raise ServiceError(f"{key!r} must be a JSON array of rows")
    parsed = []
    for index, row in enumerate(rows):
        if not isinstance(row, (list, tuple)):
            raise ServiceError(
                f"{key}[{index}] must be an array, "
                f"got {type(row).__name__}"
            )
        for value in row:
            if value is not None and \
                    not isinstance(value, (str, int, float, bool)):
                raise ServiceError(
                    f"{key}[{index}] holds a {type(value).__name__}; "
                    f"cell values must be strings, numbers, booleans "
                    f"or null"
                )
        parsed.append(tuple(row))
    return parsed


def miner_options(payload: Optional[Dict[str, Any]],
                  defaults: Dict[str, Any]) -> Dict[str, Any]:
    """Validate a registration's ``options`` into DepMiner keywords.

    *defaults* (the server's ``--backend``/``--jobs`` configuration)
    fills anything the client did not send; unknown keys are rejected
    loudly rather than silently ignored, so typos never mine with the
    wrong configuration.
    """
    payload = dict(payload or {})
    unknown = sorted(set(payload) - set(MINER_OPTION_KEYS))
    if unknown:
        raise ServiceError(
            f"unknown miner option(s) {', '.join(map(repr, unknown))}; "
            f"supported: {', '.join(sorted(MINER_OPTION_KEYS))}"
        )
    options = dict(defaults)
    for key, value in payload.items():
        if key == "sql_nulls":
            if not isinstance(value, bool):
                raise ServiceError("'sql_nulls' must be a boolean")
            options["nulls_equal"] = not value
        elif key in ("jobs", "max_couples", "max_lhs_size"):
            if value is not None and (isinstance(value, bool)
                                      or not isinstance(value, int)):
                raise ServiceError(f"{key!r} must be an integer or null")
            if value is not None:
                options[MINER_OPTION_KEYS[key]] = value
        elif key == "shard_timeout":
            if value is not None and not isinstance(value, (int, float)):
                raise ServiceError(
                    "'shard_timeout' must be a number or null"
                )
            if value is not None:
                options[MINER_OPTION_KEYS[key]] = float(value)
        else:
            if not isinstance(value, str):
                raise ServiceError(f"{key!r} must be a string")
            options[MINER_OPTION_KEYS[key]] = value
    return options


# -- errors ------------------------------------------------------------------

def http_status_for(error: BaseException) -> int:
    """The HTTP status a raised exception maps to."""
    status = getattr(error, "http_status", None)
    if status is not None:
        return int(status)
    if isinstance(error, ArmstrongExistenceError):
        return 409  # the relation conflicts with the construction asked for
    if isinstance(error, ReproError):
        return 400
    return 500


def error_document(error: BaseException) -> Dict[str, Any]:
    """The structured JSON error body (typed, never a wrong answer)."""
    document: Dict[str, Any] = {
        "protocol": PROTOCOL_VERSION,
        "error": {
            "type": type(error).__name__
            if isinstance(error, ReproError) else "InternalError",
            "message": str(error) or type(error).__name__,
            "repro_error": isinstance(error, ReproError),
        },
    }
    failing = getattr(error, "failing_attributes", None)
    if failing:
        document["error"]["failing_attributes"] = [
            getattr(a, "names", a) for a in failing
        ]
    return document


# -- responses ---------------------------------------------------------------

def _fd_document(fd) -> Dict[str, Any]:
    return {"lhs": list(fd.lhs.names), "rhs": fd.rhs}


def cover_document(result) -> Dict[str, Any]:
    """The FD cover (plus cheap summary stats) of a mining result."""
    return {
        "fds": [_fd_document(fd) for fd in result.fds],
        "count": len(result.fds),
        "num_rows": result.num_rows,
        "attributes": list(result.schema.names),
        "stats": {key: value for key, value in result.stats.items()
                  if isinstance(value, int)},
        "phase_seconds": {name: round(seconds, 6) for name, seconds
                          in result.phase_seconds.items()},
    }


def keys_document(keys: Sequence[AttributeSet]) -> Dict[str, Any]:
    """Minimal candidate keys as attribute-name lists."""
    return {
        "keys": [list(key.names) for key in keys],
        "count": len(keys),
    }


def relation_document(relation: Relation,
                      max_rows: Optional[int] = None) -> Dict[str, Any]:
    """A relation (e.g. an Armstrong sample) as attributes + row arrays."""
    rows = list(relation.rows())
    truncated = max_rows is not None and len(rows) > max_rows
    if truncated:
        rows = rows[:max_rows]
    return {
        "attributes": list(relation.schema.names),
        "rows": [list(row) for row in rows],
        "num_rows": len(relation),
        "truncated": truncated,
    }


def split_csv_source(payload: Dict[str, Any]) -> Tuple[Optional[str],
                                                       Optional[str]]:
    """The (csv_path, csv_text) pair of a registration body, validated."""
    csv_path = payload.get("csv_path")
    csv_text = payload.get("csv_text")
    if csv_path is not None and not isinstance(csv_path, str):
        raise ServiceError("'csv_path' must be a string path")
    if csv_text is not None and not isinstance(csv_text, str):
        raise ServiceError("'csv_text' must be a string of CSV data")
    return csv_path, csv_text
