"""Benchmark harness regenerating every table and figure of section 5.3."""

from repro.bench.experiments import (
    EXPERIMENTS,
    Experiment,
    experiment_report,
    run_experiment,
)
from repro.bench.harness import (
    ALGORITHM_LABELS,
    ALGORITHM_NAMES,
    CellResult,
    GridResult,
    run_algorithm,
    run_cell,
    run_grid,
)
from repro.bench.report import (
    armstrong_table,
    ascii_figure,
    speedup_table,
    times_table,
)

__all__ = [
    "ALGORITHM_NAMES",
    "ALGORITHM_LABELS",
    "CellResult",
    "GridResult",
    "run_algorithm",
    "run_cell",
    "run_grid",
    "Experiment",
    "EXPERIMENTS",
    "run_experiment",
    "experiment_report",
    "times_table",
    "armstrong_table",
    "speedup_table",
    "ascii_figure",
]
