"""Paper-style reports: the tables and ASCII figures of section 5.3.

:func:`times_table` and :func:`armstrong_table` render a
:class:`~repro.bench.harness.GridResult` in the layout of Tables 3–5
(rows ``|r|``, columns ``|R|``, one line per algorithm; ``*`` for cells
that hit the limit).  :func:`ascii_figure` renders the figures — time or
Armstrong-size curves against ``|r|`` — as a monospace line plot, so the
harness regenerates every artefact of the evaluation without plotting
dependencies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import ALGORITHM_LABELS, GridResult

__all__ = ["times_table", "armstrong_table", "ascii_figure", "speedup_table"]


def _format_grid(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [
        max(len(str(headers[c])), *(len(str(row[c])) for row in rows))
        if rows else len(str(headers[c]))
        for c in range(len(headers))
    ]
    lines = [
        "  ".join(str(h).rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append(
            "  ".join(str(v).rjust(w) for v, w in zip(row, widths))
        )
    return "\n".join(lines)


def times_table(result: GridResult) -> str:
    """Execution times in the layout of Tables 3(a), 4 and 5 (left)."""
    grid = result.grid
    headers = ["|r|", "algorithm"] + [str(a) for a in grid.attribute_counts]
    rows: List[List[str]] = []
    for num_tuples in grid.tuple_counts:
        for position, algorithm in enumerate(result.algorithms):
            row = [
                str(num_tuples) if position == 0 else "",
                ALGORITHM_LABELS.get(algorithm, algorithm),
            ]
            for num_attributes in grid.attribute_counts:
                cell = result.cell(num_attributes, num_tuples, algorithm)
                row.append(cell.display_time if cell else "?")
            rows.append(row)
    correlation = (
        "without constraints" if grid.correlation is None
        else f"c = {grid.correlation:.0%}"
    )
    title = f"Execution times (seconds), data {correlation}"
    return title + "\n" + _format_grid(headers, rows)


def armstrong_table(result: GridResult) -> str:
    """Armstrong sizes in the layout of Tables 3(b), 4 and 5 (right)."""
    grid = result.grid
    headers = ["|r|"] + [str(a) for a in grid.attribute_counts]
    rows: List[List[str]] = []
    for num_tuples in grid.tuple_counts:
        row = [str(num_tuples)]
        for num_attributes in grid.attribute_counts:
            series = dict(result.armstrong_series(num_attributes))
            size = series.get(num_tuples)
            row.append("*" if size is None else str(size))
        rows.append(row)
    correlation = (
        "without constraints" if grid.correlation is None
        else f"c = {grid.correlation:.0%}"
    )
    title = (
        "Sizes of real-world Armstrong relations (tuples), data "
        + correlation
    )
    return title + "\n" + _format_grid(headers, rows)


def speedup_table(result: GridResult, baseline: str = "tane",
                  subject: str = "depminer") -> str:
    """Baseline/subject time ratios per cell (shape check: > 1 ⇒ subject
    wins, growing with |R| reproduces the paper's headline claim)."""
    grid = result.grid
    headers = ["|r|"] + [str(a) for a in grid.attribute_counts]
    rows: List[List[str]] = []
    for num_tuples in grid.tuple_counts:
        row = [str(num_tuples)]
        for num_attributes in grid.attribute_counts:
            base = result.cell(num_attributes, num_tuples, baseline)
            subj = result.cell(num_attributes, num_tuples, subject)
            if (
                base is None or subj is None or base.timed_out
                or subj.timed_out or subj.seconds == 0
            ):
                row.append("*")
            else:
                row.append(f"{base.seconds / subj.seconds:.2f}x")
        rows.append(row)
    title = (
        f"Speedup of {ALGORITHM_LABELS.get(subject, subject)} over "
        f"{ALGORITHM_LABELS.get(baseline, baseline)}"
    )
    return title + "\n" + _format_grid(headers, rows)


def ascii_figure(series: Dict[str, List[Tuple[int, Optional[float]]]],
                 title: str, x_label: str = "|r|",
                 y_label: str = "seconds",
                 width: int = 64, height: int = 18) -> str:
    """Render named (x, y) series as a monospace scatter/line figure.

    ``None`` y-values (timed-out cells) are skipped.  Each series is
    drawn with its own marker; a legend maps markers to series names.
    """
    markers = "o+x*#@%&"
    points: List[Tuple[float, float, str]] = []
    legend: List[str] = []
    for index, (name, values) in enumerate(sorted(series.items())):
        marker = markers[index % len(markers)]
        legend.append(f"  {marker} = {name}")
        for x, y in values:
            if y is not None:
                points.append((float(x), float(y), marker))
    if not points:
        return f"{title}\n(no data points)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = x_max - x_min or 1.0
    y_span = y_max - y_min or 1.0
    canvas = [[" "] * width for _ in range(height)]
    for x, y, marker in points:
        column = round((x - x_min) / x_span * (width - 1))
        row = height - 1 - round((y - y_min) / y_span * (height - 1))
        canvas[row][column] = marker
    lines = [title]
    for row_number, row in enumerate(canvas):
        if row_number == 0:
            label = f"{y_max:10.2f} |"
        elif row_number == height - 1:
            label = f"{y_min:10.2f} |"
        else:
            label = "           |"
        lines.append(label + "".join(row))
    lines.append("           +" + "-" * width)
    lines.append(
        f"            {x_min:<12.0f}{x_label:^{max(width - 24, 4)}}{x_max:>12.0f}"
    )
    lines.append(f"  y: {y_label}")
    lines.extend(legend)
    return "\n".join(lines)
