"""The experiment index: one entry per table and figure of the paper.

Each experiment names a workload grid (correlation setting) and an
output kind; :func:`run_experiment` executes it at a chosen scale and
returns both the raw :class:`~repro.bench.harness.GridResult` and the
paper-style textual report.

| id       | paper artefact | correlation | output                         |
|----------|----------------|-------------|--------------------------------|
| table3   | Table 3(a)+(b) | none        | times table + sizes table      |
| table4   | Table 4        | c = 30%     | times table + sizes table      |
| table5   | Table 5        | c = 50%     | times table + sizes table      |
| fig2     | Figure 2       | none        | time curves at |R| ∈ {10, 50}  |
| fig3     | Figure 3       | none        | Armstrong-size curves, all |R| |
| fig4     | Figure 4       | c = 30%     | time curves at |R| ∈ {10, 50}  |
| fig5     | Figure 5       | c = 30%     | Armstrong-size curves, all |R| |
| fig6     | Figure 6       | c = 50%     | time curves at |R| ∈ {10, 50}  |
| fig7     | Figure 7       | c = 50%     | Armstrong-size curves, all |R| |

At non-paper scales the |R| values of the figures are mapped onto the
scale's smallest and largest attribute counts, preserving the figures'
intent (one "narrow" and one "wide" curve set).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import (
    ALGORITHM_LABELS,
    ALGORITHM_NAMES,
    GridResult,
    run_grid,
)
from repro.bench.report import (
    armstrong_table,
    ascii_figure,
    speedup_table,
    times_table,
)
from repro.datagen.workloads import grid_for
from repro.errors import BenchmarkError

__all__ = ["Experiment", "EXPERIMENTS", "run_experiment", "experiment_report"]


@dataclass(frozen=True)
class Experiment:
    """One reproducible artefact of the paper's evaluation."""

    name: str
    paper_artifact: str
    correlation_name: str
    kind: str  # "tables", "times_figure" or "sizes_figure"
    description: str


EXPERIMENTS: Dict[str, Experiment] = {
    "table3": Experiment(
        "table3", "Table 3 (a) and (b)", "none", "tables",
        "Times and Armstrong sizes, data without constraints",
    ),
    "table4": Experiment(
        "table4", "Table 4", "c30", "tables",
        "Times and Armstrong sizes, correlated data (30%)",
    ),
    "table5": Experiment(
        "table5", "Table 5", "c50", "tables",
        "Times and Armstrong sizes, correlated data (50%)",
    ),
    "fig2": Experiment(
        "fig2", "Figure 2", "none", "times_figure",
        "Execution times vs |r| at narrow/wide |R|, no constraints",
    ),
    "fig3": Experiment(
        "fig3", "Figure 3", "none", "sizes_figure",
        "Armstrong sizes vs |r| for every |R|, no constraints",
    ),
    "fig4": Experiment(
        "fig4", "Figure 4", "c30", "times_figure",
        "Execution times vs |r| at narrow/wide |R|, c = 30%",
    ),
    "fig5": Experiment(
        "fig5", "Figure 5", "c30", "sizes_figure",
        "Armstrong sizes vs |r| for every |R|, c = 30%",
    ),
    "fig6": Experiment(
        "fig6", "Figure 6", "c50", "times_figure",
        "Execution times vs |r| at narrow/wide |R|, c = 50%",
    ),
    "fig7": Experiment(
        "fig7", "Figure 7", "c50", "sizes_figure",
        "Armstrong sizes vs |r| for every |R|, c = 50%",
    ),
}


def run_experiment(name: str, scale: str = "small",
                   algorithms: Sequence[str] = ALGORITHM_NAMES,
                   timeout: Optional[float] = None,
                   isolated: bool = False, seed: int = 0,
                   jobs: int = 1,
                   progress=None, tracer=None, metrics=None,
                   miner_progress=None) -> Tuple[Experiment, GridResult]:
    """Execute the named experiment's grid and return the measurements.

    *jobs* forwards to each miner's sharded execution layer
    (:mod:`repro.parallel`; the measured artefacts are identical at any
    value).  *tracer*/*metrics*/*miner_progress* are the observability
    hooks of :func:`~repro.bench.harness.run_grid` (per-cell span trees
    on ``CellResult.trace``, miner counters, inner-loop progress).
    """
    try:
        experiment = EXPERIMENTS[name]
    except KeyError:
        raise BenchmarkError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
    grid = grid_for(experiment.correlation_name, scale=scale, seed=seed)
    result = run_grid(
        grid, algorithms=algorithms, timeout=timeout,
        isolated=isolated, jobs=jobs, progress=progress,
        tracer=tracer, metrics=metrics, miner_progress=miner_progress,
    )
    return experiment, result


def experiment_report(experiment: Experiment, result: GridResult) -> str:
    """The paper-style textual artefact for the experiment."""
    header = (
        f"== {experiment.paper_artifact}: {experiment.description} ==\n"
    )
    if experiment.kind == "tables":
        parts = [times_table(result), "", armstrong_table(result)]
        if "tane" in result.algorithms and "depminer" in result.algorithms:
            parts.extend(["", speedup_table(result)])
        return header + "\n".join(parts)
    grid = result.grid
    if experiment.kind == "times_figure":
        narrow = grid.attribute_counts[0]
        wide = grid.attribute_counts[-1]
        figures = []
        for num_attributes in (narrow, wide):
            series = {
                ALGORITHM_LABELS.get(a, a): result.time_series(
                    num_attributes, a
                )
                for a in result.algorithms
            }
            figures.append(
                ascii_figure(
                    series,
                    title=f"{experiment.paper_artifact} — |R| = "
                          f"{num_attributes}: time vs |r|",
                )
            )
        return header + "\n\n".join(figures)
    if experiment.kind == "sizes_figure":
        series = {
            f"|R| = {num_attributes}": [
                (x, float(y) if y is not None else None)
                for x, y in result.armstrong_series(num_attributes)
            ]
            for num_attributes in grid.attribute_counts
        }
        return header + ascii_figure(
            series,
            title=f"{experiment.paper_artifact} — Armstrong size vs |r|",
            y_label="tuples of the real-world Armstrong relation",
        )
    raise BenchmarkError(f"unknown experiment kind {experiment.kind!r}")
