"""Benchmark harness: run algorithms over workload grids.

Measures, for every cell of a workload grid (|R| × |r| at one
correlation), the wall-clock time of each competing algorithm and the
size of the real-world Armstrong relation — the two metrics of the
paper's Tables 3–5 and Figures 2–7.

Algorithms under test (the paper's three competitors):

- ``depminer``  — Dep-Miner with the couples algorithm (Algorithm 2);
- ``depminer2`` — Dep-Miner 2 with the identifier-set algorithm
  (Algorithm 3);
- ``tane``      — our TANE reimplementation (exact mode), with the
  Armstrong extension of section 5.1 so the comparison covers the same
  functionality.

Cells can be executed in a forked subprocess with a hard timeout
(``isolated=True``), reproducing the paper's ``*`` cells (memory
overload / two-hour limit); the default runs in-process and flags
overruns after the fact.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.depminer import DepMiner
from repro.core.relation import Relation
from repro.datagen.synthetic import SyntheticSpec, generate_relation
from repro.datagen.workloads import WorkloadGrid
from repro.errors import BenchmarkError
from repro.obs import (
    MetricsRegistry,
    ProgressCallback,
    Span,
    Tracer,
    get_logger,
)
from repro.tane.armstrong_ext import tane_with_armstrong

__all__ = [
    "ALGORITHM_NAMES",
    "ALGORITHM_LABELS",
    "CellResult",
    "GridResult",
    "run_algorithm",
    "run_cell",
    "run_grid",
]

logger = get_logger(__name__)

# The paper's three competitors (run by default)...
ALGORITHM_NAMES = ("depminer", "depminer2", "tane")

ALGORITHM_LABELS = {
    "depminer": "Dep-Miner",
    "depminer2": "Dep-Miner 2",
    "tane": "TANE",
    "fdep": "FDEP",
    "depminer-fast": "Dep-Miner (vec)",
    "depminer-columnar": "Dep-Miner (col)",
}


def _run_depminer(relation: Relation, jobs: int = 1, cache=None,
                  **obs) -> Tuple[int, Optional[int]]:
    result = DepMiner(agree_algorithm="couples", jobs=jobs, cache=cache,
                      **obs).run(relation)
    return len(result.fds), result.armstrong_size

def _run_depminer2(relation: Relation, jobs: int = 1, cache=None,
                   **obs) -> Tuple[int, Optional[int]]:
    result = DepMiner(agree_algorithm="identifiers", jobs=jobs, cache=cache,
                      **obs).run(relation)
    return len(result.fds), result.armstrong_size

def _run_tane(relation: Relation, jobs: int = 1, cache=None,
              **obs) -> Tuple[int, Optional[int]]:
    # TANE's lattice walk has no sharded path and no cache integration;
    # *jobs* and *cache* are accepted (the harness passes them
    # uniformly) and ignored.
    del jobs, cache
    result = tane_with_armstrong(relation, **obs)
    size = len(result.armstrong) if result.armstrong is not None else None
    return len(result.fds), size

def _run_depminer_fast(relation: Relation, jobs: int = 1, cache=None,
                       **obs) -> Tuple[int, Optional[int]]:
    result = DepMiner(agree_algorithm="vectorized", jobs=jobs, cache=cache,
                      **obs).run(relation)
    return len(result.fds), result.armstrong_size

def _run_depminer_columnar(relation: Relation, jobs: int = 1, cache=None,
                           **obs) -> Tuple[int, Optional[int]]:
    # The end-to-end columnar backend (repro.columnar): identical output
    # to the Python path; falls back to it (with a logged warning) when
    # NumPy is missing.
    result = DepMiner(backend="columnar", jobs=jobs, cache=cache,
                      **obs).run(relation)
    return len(result.fds), result.armstrong_size

def _run_fdep(relation: Relation, jobs: int = 1, cache=None,
              **obs) -> Tuple[int, Optional[int]]:
    # FDEP [SF93] — an extra baseline beyond the paper's comparison; it
    # produces no Armstrong relation (like TANE without the extension)
    # and, like TANE, runs single-core and uncached regardless of
    # *jobs*/*cache*.
    del jobs, cache
    from repro.fdep import Fdep

    result = Fdep(**obs).run(relation)
    return len(result.fds), None


# ... plus extra baselines selectable by name.  Every runner forwards the
# observability keywords (tracer/metrics/progress) to its miner.
_RUNNERS: Dict[str, Callable[..., Tuple[int, Optional[int]]]] = {
    "depminer": _run_depminer,
    "depminer2": _run_depminer2,
    "tane": _run_tane,
    "fdep": _run_fdep,
    "depminer-fast": _run_depminer_fast,
    "depminer-columnar": _run_depminer_columnar,
}


@dataclass(frozen=True)
class CellResult:
    """One (workload cell, algorithm) measurement.

    ``trace`` carries the finished :class:`~repro.obs.Span` objects of
    the measurement when the run collected one (``tracer=`` passed to
    :func:`run_cell`/:func:`run_grid`); isolated subprocess cells never
    carry a trace (the spans die with the child process).
    """

    spec: SyntheticSpec
    algorithm: str
    seconds: float
    num_fds: int
    armstrong_size: Optional[int]
    timed_out: bool = False
    trace: Optional[Tuple[Span, ...]] = None

    @property
    def display_time(self) -> str:
        """Formatted like the paper's tables; ``*`` for timed-out cells."""
        return "*" if self.timed_out else f"{self.seconds:.2f}"


@dataclass
class GridResult:
    """All measurements of one grid run."""

    grid: WorkloadGrid
    algorithms: Tuple[str, ...]
    cells: List[CellResult] = field(default_factory=list)

    def cell(self, num_attributes: int, num_tuples: int,
             algorithm: str) -> Optional[CellResult]:
        for cell in self.cells:
            if (
                cell.spec.num_attributes == num_attributes
                and cell.spec.num_tuples == num_tuples
                and cell.algorithm == algorithm
            ):
                return cell
        return None

    def time_series(self, num_attributes: int,
                    algorithm: str) -> List[Tuple[int, Optional[float]]]:
        """(|r|, seconds) pairs at fixed |R| — one curve of a time figure."""
        series = []
        for num_tuples in self.grid.tuple_counts:
            cell = self.cell(num_attributes, num_tuples, algorithm)
            if cell is None or cell.timed_out:
                series.append((num_tuples, None))
            else:
                series.append((num_tuples, cell.seconds))
        return series

    def armstrong_series(self, num_attributes: int) -> List[Tuple[int, Optional[int]]]:
        """(|r|, Armstrong tuples) pairs at fixed |R| — one size curve."""
        series = []
        for num_tuples in self.grid.tuple_counts:
            cell = self.cell(num_attributes, num_tuples, "depminer") or \
                self.cell(num_attributes, num_tuples, "depminer2")
            size = cell.armstrong_size if cell else None
            series.append((num_tuples, size))
        return series

    def to_dict(self) -> dict:
        """JSON-ready document of every measurement (for archiving runs)."""
        return {
            "grid": {
                "name": self.grid.name,
                "correlation": self.grid.correlation,
                "attribute_counts": list(self.grid.attribute_counts),
                "tuple_counts": list(self.grid.tuple_counts),
                "seed": self.grid.seed,
            },
            "algorithms": list(self.algorithms),
            "cells": [
                {
                    "attrs": cell.spec.num_attributes,
                    "rows": cell.spec.num_tuples,
                    "algorithm": cell.algorithm,
                    "seconds": round(cell.seconds, 6),
                    "num_fds": cell.num_fds,
                    "armstrong_size": cell.armstrong_size,
                    "timed_out": cell.timed_out,
                }
                for cell in self.cells
            ],
        }


def run_algorithm(algorithm: str, relation: Relation,
                  jobs: int = 1,
                  cache=None,
                  tracer: Optional[Tracer] = None,
                  metrics: Optional[MetricsRegistry] = None,
                  progress: Optional[ProgressCallback] = None) -> Tuple[float, int, Optional[int]]:
    """Time one algorithm on one relation; returns (seconds, #FDs, size).

    *jobs* selects the sharded execution layer for the Dep-Miner
    variants (TANE and FDEP accept and ignore it — they have no sharded
    path); *cache* is an optional
    :class:`~repro.cache.store.ArtifactStore` forwarded to the
    Dep-Miner variants, so warm/cold comparisons (``make bench-cache``)
    go through the very same measurement path as everything else.
    *tracer*/*metrics*/*progress* are forwarded to the miner under test
    so a benchmark run can collect the same per-phase spans and
    counters as a direct :class:`~repro.core.depminer.DepMiner` run.
    """
    try:
        runner = _RUNNERS[algorithm]
    except KeyError:
        raise BenchmarkError(
            f"unknown algorithm {algorithm!r}; choose from {ALGORITHM_NAMES}"
        ) from None
    start = time.perf_counter()
    num_fds, armstrong_size = runner(
        relation, jobs=jobs, cache=cache, tracer=tracer, metrics=metrics,
        progress=progress,
    )
    return time.perf_counter() - start, num_fds, armstrong_size


def _run_cell_isolated(spec: SyntheticSpec, algorithm: str,
                       timeout: float,
                       jobs: int = 1) -> Optional[Tuple[float, int, Optional[int]]]:
    """Fork a child, run the cell, kill it at *timeout* (the paper's ``*``)."""
    import multiprocessing

    context = multiprocessing.get_context("fork")
    queue = context.Queue()

    def worker(queue):
        relation = generate_relation(
            spec.num_attributes, spec.num_tuples,
            correlation=spec.correlation, seed=spec.seed,
        )
        queue.put(run_algorithm(algorithm, relation, jobs=jobs))

    process = context.Process(target=worker, args=(queue,))
    process.start()
    process.join(timeout)
    if process.is_alive():
        process.terminate()
        process.join()
        return None
    if queue.empty():
        return None  # the child crashed (e.g. memory overload)
    return queue.get()


def _measure_cell(spec: SyntheticSpec, algorithm: str, relation: Relation,
                  timeout: Optional[float],
                  tracer: Optional[Tracer],
                  metrics: Optional[MetricsRegistry],
                  progress: Optional[ProgressCallback],
                  jobs: int = 1) -> CellResult:
    """In-process measurement; attaches the cell's spans when tracing."""
    trace: Optional[Tuple[Span, ...]] = None
    if tracer is not None:
        mark = tracer.mark()
        with tracer.span("bench.cell", algorithm=algorithm,
                         attributes=spec.num_attributes,
                         rows=spec.num_tuples,
                         correlation=spec.correlation, seed=spec.seed,
                         jobs=jobs):
            seconds, num_fds, armstrong_size = run_algorithm(
                algorithm, relation, jobs=jobs, tracer=tracer,
                metrics=metrics, progress=progress,
            )
        trace = tuple(tracer.finished_spans(mark))
    else:
        seconds, num_fds, armstrong_size = run_algorithm(
            algorithm, relation, jobs=jobs, metrics=metrics,
            progress=progress,
        )
    logger.debug(
        "cell %s %s: %.3fs, %d FDs", spec.label(), algorithm, seconds,
        num_fds,
    )
    return CellResult(
        spec=spec, algorithm=algorithm, seconds=seconds,
        num_fds=num_fds, armstrong_size=armstrong_size,
        timed_out=timeout is not None and seconds > timeout,
        trace=trace,
    )


def run_cell(spec: SyntheticSpec, algorithm: str,
             timeout: Optional[float] = None,
             isolated: bool = False,
             jobs: int = 1,
             tracer: Optional[Tracer] = None,
             metrics: Optional[MetricsRegistry] = None,
             progress: Optional[ProgressCallback] = None) -> CellResult:
    """Run one algorithm on one workload cell.

    With ``isolated=True`` and a *timeout*, the cell runs in a forked
    subprocess that is terminated at the deadline (hard ``*`` cells);
    otherwise the run completes in-process and is merely *flagged* as
    timed out when it exceeded the budget.

    *jobs* forwards to the miner's sharded execution layer (the
    measured output is identical at every value).  In-process cells can
    collect observability data: pass a *tracer* to attach the cell's
    span tree to ``CellResult.trace`` (isolated cells cannot — the
    spans die with the forked child).
    """
    if isolated and timeout is not None:
        outcome = _run_cell_isolated(spec, algorithm, timeout, jobs=jobs)
        if outcome is None:
            return CellResult(
                spec=spec, algorithm=algorithm, seconds=float(timeout),
                num_fds=0, armstrong_size=None, timed_out=True,
            )
        seconds, num_fds, armstrong_size = outcome
        return CellResult(
            spec=spec, algorithm=algorithm, seconds=seconds,
            num_fds=num_fds, armstrong_size=armstrong_size,
        )
    relation = generate_relation(
        spec.num_attributes, spec.num_tuples,
        correlation=spec.correlation, seed=spec.seed,
    )
    return _measure_cell(
        spec, algorithm, relation, timeout, tracer, metrics, progress,
        jobs=jobs,
    )


def run_grid(grid: WorkloadGrid,
             algorithms: Sequence[str] = ALGORITHM_NAMES,
             timeout: Optional[float] = None,
             isolated: bool = False,
             jobs: int = 1,
             progress: Optional[Callable[[str], None]] = None,
             tracer: Optional[Tracer] = None,
             metrics: Optional[MetricsRegistry] = None,
             miner_progress: Optional[ProgressCallback] = None) -> GridResult:
    """Run every algorithm over every cell of *grid*.

    The relation of each cell is generated once and shared by the
    in-process algorithms (isolated runs regenerate it in the child).
    *progress* receives one line per finished measurement; *jobs*
    forwards to each miner's sharded execution layer.

    A shared *tracer* collects one ``bench.cell`` span tree per
    in-process measurement, sliced into that cell's
    :attr:`CellResult.trace`; *metrics* and *miner_progress* are
    forwarded to the miners (isolated cells skip all three — the spans
    would die with the forked child).
    """
    for algorithm in algorithms:
        if algorithm not in _RUNNERS:
            raise BenchmarkError(
                f"unknown algorithm {algorithm!r}; "
                f"choose from {ALGORITHM_NAMES}"
            )
    result = GridResult(grid=grid, algorithms=tuple(algorithms))
    for spec in grid.specs():
        shared: Optional[Relation] = None
        if not isolated:
            shared = generate_relation(
                spec.num_attributes, spec.num_tuples,
                correlation=spec.correlation, seed=spec.seed,
            )
        for algorithm in algorithms:
            if isolated and timeout is not None:
                cell = run_cell(
                    spec, algorithm, timeout=timeout, isolated=True,
                    jobs=jobs,
                )
            else:
                cell = _measure_cell(
                    spec, algorithm, shared, timeout, tracer, metrics,
                    miner_progress, jobs=jobs,
                )
            result.cells.append(cell)
            if progress is not None:
                progress(
                    f"{spec.label()}  {ALGORITHM_LABELS[algorithm]:<12} "
                    f"{cell.display_time:>8}s  fds={cell.num_fds}"
                )
    return result
